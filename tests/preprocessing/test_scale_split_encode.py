"""Unit tests for scaling, splitting and encoding."""

import numpy as np
import pytest

from repro.core import NotFittedError, Table, ValidationError, categorical, numeric
from repro.datasets import iris, play_tennis
from repro.preprocessing import (
    MinMaxScaler,
    StandardScaler,
    impute_missing,
    one_hot_matrix,
    scale_table,
    train_test_split,
)


class TestScalers:
    def test_minmax_range(self):
        X = np.random.default_rng(0).normal(5, 3, size=(50, 3))
        scaled = MinMaxScaler().fit_transform(X)
        assert scaled.min() == pytest.approx(0.0)
        assert scaled.max() == pytest.approx(1.0)

    def test_standard_moments(self):
        X = np.random.default_rng(1).normal(5, 3, size=(200, 2))
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_no_blowup(self):
        X = np.ones((10, 1))
        assert np.isfinite(StandardScaler().fit_transform(X)).all()
        assert np.isfinite(MinMaxScaler().fit_transform(X)).all()

    def test_nan_passthrough(self):
        X = np.array([[1.0], [np.nan], [3.0]])
        out = StandardScaler().fit_transform(X)
        assert np.isnan(out[1, 0])
        assert np.isfinite(out[[0, 2], 0]).all()

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((2, 2)))
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.ones((2, 2)))

    def test_train_statistics_apply_to_test(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        assert scaler.transform(np.array([[20.0]]))[0, 0] == pytest.approx(2.0)


class TestScaleTable:
    def test_scales_numeric_only(self):
        table = iris()
        out = scale_table(table, "standard")
        col = out.column("sepal_length")
        assert abs(col.mean()) < 1e-9
        assert out.attribute("species").is_categorical

    def test_exclude(self):
        table = iris()
        out = scale_table(table, "minmax", exclude=["sepal_width"])
        assert np.allclose(
            out.column("sepal_width"), table.column("sepal_width")
        )

    def test_invalid_method(self):
        with pytest.raises(ValidationError):
            scale_table(iris(), "robust")


class TestTrainTestSplit:
    def test_sizes(self):
        train, test = train_test_split(iris(), 0.2, random_state=0)
        assert train.n_rows + test.n_rows == 150
        assert test.n_rows == 30

    def test_stratified_preserves_proportions(self):
        train, test = train_test_split(
            iris(), 0.2, stratify="species", random_state=0
        )
        from collections import Counter

        train_counts = Counter(train.column("species").tolist())
        test_counts = Counter(test.column("species").tolist())
        assert set(train_counts.values()) == {40}
        assert set(test_counts.values()) == {10}

    def test_disjoint_and_complete(self):
        table = iris()
        train, test = train_test_split(table, 0.3, random_state=1)
        combined = sorted(
            train.column("sepal_length").tolist()
            + test.column("sepal_length").tolist()
        )
        assert combined == sorted(table.column("sepal_length").tolist())

    def test_invalid_fraction(self):
        with pytest.raises(ValidationError):
            train_test_split(iris(), 0.0)
        with pytest.raises(ValidationError):
            train_test_split(iris(), 1.0)

    def test_too_few_rows(self):
        tiny = iris().take([0])
        with pytest.raises(ValidationError):
            train_test_split(tiny, 0.5)


class TestEncode:
    def test_one_hot_shapes_and_names(self):
        X, names = one_hot_matrix(play_tennis(), exclude=("play",))
        assert X.shape == (14, 10)
        assert any(name.startswith("outlook=") for name in names)

    def test_one_hot_rows_sum_per_attribute(self):
        X, _ = one_hot_matrix(play_tennis(), exclude=("play",))
        # outlook block is the first 3 columns; exactly one hot per row.
        assert (X[:, :3].sum(axis=1) == 1.0).all()

    def test_one_hot_rejects_missing(self):
        table = Table.from_rows(
            [(None, "x")],
            [categorical("f", ["a"]), categorical("y", ["x"])],
        )
        with pytest.raises(ValidationError):
            one_hot_matrix(table)

    def test_impute_numeric_mean(self):
        table = Table.from_rows(
            [(1.0,), (None,), (3.0,)], [numeric("x")]
        )
        out = impute_missing(table)
        assert out.value(1, "x") == pytest.approx(2.0)

    def test_impute_categorical_mode(self):
        table = Table.from_rows(
            [("a",), ("a",), (None,), ("b",)],
            [categorical("c", ["a", "b"])],
        )
        out = impute_missing(table)
        assert out.value(2, "c") == "a"

    def test_impute_all_missing_rejected(self):
        table = Table.from_rows([(None,), (None,)], [numeric("x")])
        with pytest.raises(ValidationError):
            impute_missing(table)
