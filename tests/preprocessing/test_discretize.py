"""Unit tests for the discretizers."""

import numpy as np
import pytest

from repro.core import NotFittedError, ValidationError
from repro.datasets import weather_numeric
from repro.preprocessing import MDLP, EqualFrequency, EqualWidth, discretize_table


class TestEqualWidth:
    def test_bins_cover_range(self):
        codes = EqualWidth(5).fit_transform(np.linspace(0, 10, 100))
        assert codes.min() == 0 and codes.max() == 4

    def test_constant_column_single_bin(self):
        disc = EqualWidth(4).fit(np.full(10, 3.0))
        assert disc.n_bins_ == 1
        assert (disc.transform(np.full(5, 3.0)) == 0).all()

    def test_missing_maps_to_minus_one(self):
        disc = EqualWidth(2).fit(np.array([0.0, 1.0]))
        assert disc.transform(np.array([np.nan]))[0] == -1

    def test_out_of_range_values_clamp_to_edge_bins(self):
        disc = EqualWidth(2).fit(np.array([0.0, 10.0]))
        assert disc.transform(np.array([-100.0]))[0] == 0
        assert disc.transform(np.array([100.0]))[0] == 1

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            EqualWidth(2).transform(np.array([1.0]))

    def test_all_missing_rejected(self):
        with pytest.raises(ValidationError):
            EqualWidth(2).fit(np.array([np.nan, np.nan]))

    def test_invalid_bins(self):
        with pytest.raises(ValidationError):
            EqualWidth(1)


class TestEqualFrequency:
    def test_balanced_bins(self):
        values = np.arange(100, dtype=float)
        codes = EqualFrequency(4).fit_transform(values)
        _, counts = np.unique(codes, return_counts=True)
        assert counts.max() - counts.min() <= 2

    def test_skewed_data_still_splits(self):
        values = np.concatenate([np.zeros(90), np.arange(10, dtype=float)])
        disc = EqualFrequency(4).fit(values)
        assert disc.n_bins_ >= 2

    def test_duplicate_quantiles_collapse(self):
        disc = EqualFrequency(10).fit(np.array([1.0, 1.0, 1.0, 2.0]))
        assert disc.n_bins_ <= 3


class TestMDLP:
    def test_finds_obvious_boundary(self):
        values = np.concatenate([np.arange(50.0), np.arange(100.0, 150.0)])
        y = np.array([0] * 50 + [1] * 50)
        disc = MDLP().fit(values, y)
        assert disc.n_bins_ == 2
        assert 50.0 < disc.cut_points_[0] < 100.0

    def test_no_split_on_random_labels(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=200)
        y = rng.integers(0, 2, 200)
        disc = MDLP().fit(values, y)
        assert disc.n_bins_ <= 2  # MDL rejects uninformative cuts

    def test_multi_boundary(self):
        # lo / hi / lo pattern needs two cuts.
        values = np.arange(300, dtype=float)
        y = np.array([0] * 100 + [1] * 100 + [0] * 100)
        disc = MDLP().fit(values, y)
        assert disc.n_bins_ == 3

    def test_requires_labels(self):
        with pytest.raises(ValidationError):
            MDLP().fit(np.array([1.0, 2.0]))


class TestDiscretizeTable:
    def test_numeric_become_categorical(self, weather):
        out = discretize_table(weather, "equal_width", n_bins=3)
        assert out.attribute("temperature").is_categorical
        assert out.attribute("humidity").is_categorical
        assert out.n_rows == weather.n_rows

    def test_target_is_preserved(self, weather):
        out = discretize_table(weather, "mdlp", target="play")
        assert out.attribute("play").is_categorical
        assert out.attribute("play").values == ("no", "yes")

    def test_id3_runs_on_discretized_numeric_data(self, weather):
        from repro.classification import ID3

        out = discretize_table(weather, "equal_frequency", n_bins=4)
        model = ID3().fit(out, "play")
        assert model.score(out) >= 0.85

    def test_mdlp_requires_target(self, weather):
        with pytest.raises(ValidationError):
            discretize_table(weather, "mdlp")

    def test_unknown_method(self, weather):
        with pytest.raises(ValidationError):
            discretize_table(weather, "chi_merge")
