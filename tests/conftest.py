"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SequenceDatabase, TransactionDatabase
from repro.datasets import (
    agrawal,
    gaussian_blobs,
    play_tennis,
    quest_basket,
    quest_sequences,
    weather_numeric,
)


@pytest.fixture
def small_db() -> TransactionDatabase:
    """Five-transaction toy basket from the Apriori paper family."""
    return TransactionDatabase(
        [
            (0, 1, 4),
            (1, 3),
            (1, 2),
            (0, 1, 3),
            (0, 2),
        ]
    )


@pytest.fixture
def medium_db() -> TransactionDatabase:
    """Deterministic Quest workload small enough for exact oracles."""
    return quest_basket(
        300, avg_transaction_length=6, avg_pattern_length=3,
        n_items=40, n_patterns=25, random_state=42,
    )


@pytest.fixture
def small_seq_db() -> SequenceDatabase:
    """The worked example of the AprioriAll paper (customer sequences)."""
    return SequenceDatabase(
        [
            [(3,), (9,)],
            [(1, 2), (3,), (4, 6, 7)],
            [(3, 5, 7)],
            [(3,), (4, 7), (9,)],
            [(9,)],
        ]
    )


@pytest.fixture
def medium_seq_db() -> SequenceDatabase:
    return quest_sequences(
        120, avg_elements=5, avg_items_per_element=2,
        n_items=30, random_state=9,
    )


@pytest.fixture
def tennis():
    return play_tennis()


@pytest.fixture
def weather():
    return weather_numeric()


@pytest.fixture
def f2_train():
    return agrawal(1500, function=2, noise=0.05, random_state=10)


@pytest.fixture
def f2_test():
    return agrawal(600, function=2, noise=0.0, random_state=11)


@pytest.fixture
def blobs4():
    centers = np.array([[0.0, 0.0], [8.0, 0.0], [0.0, 8.0], [8.0, 8.0]])
    return gaussian_blobs(240, centers=centers, cluster_std=0.7, random_state=5)
