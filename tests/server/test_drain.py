"""Graceful drain: back-pressure, requeue-without-penalty, and the
restart-completes-byte-identically proof.

The scheduler-level tests exercise :meth:`Scheduler.drain` directly;
the slow subprocess test drives the real ``repro serve`` process with
SIGTERM mid-job and pins the acceptance criteria: exit code 0, the job
re-enqueued durably, and a restarted server finishing it with bytes
identical to an undisturbed run.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.server.scheduler import (
    Draining,
    Scheduler,
    canonical_result_bytes,
    execute_job,
)
from repro.server.store import JobStore

DEADLINE = 60.0
TERMINAL = ("done", "failed", "cancelled", "poisoned")

SLOW_PARAMS = {"min_support": 0.02, "min_confidence": 0.6,
               "pass_delay": 0.5, "checkpoint_every": 1}


def _wait(predicate, deadline, message):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(message)


def _wait_terminal(store, job_id, deadline=DEADLINE):
    _wait(lambda: store.get(job_id).state in TERMINAL, deadline,
          f"job {job_id} never reached a terminal state")
    return store.get(job_id)


def _reference_bytes(dataset):
    params = {k: v for k, v in SLOW_PARAMS.items()
              if k not in ("pass_delay", "checkpoint_every")}
    return canonical_result_bytes(
        execute_job("mine", dataset, "apriori", params)
    )


class TestSchedulerDrain:
    def test_drain_rejects_submissions(self, tmp_path):
        store = JobStore(tmp_path / "store")
        scheduler = Scheduler(store, workers=1)
        scheduler.start()
        try:
            assert scheduler.drain(grace=5.0) is True
            assert scheduler.draining is True
            with pytest.raises(Draining) as excinfo:
                scheduler.submit("t", "mine", "apriori", "x.dat", {})
            assert excinfo.value.retry_after > 0
            assert store.list() == []
        finally:
            scheduler.stop()

    def test_drain_requeues_running_job_without_penalty(
        self, tmp_path, basket_path
    ):
        store = JobStore(tmp_path / "store")
        scheduler = Scheduler(store, workers=1)
        scheduler.start()
        try:
            record = scheduler.submit("t", "mine", "apriori", basket_path,
                                      dict(SLOW_PARAMS))
            _wait(lambda: store.get(record.job_id).state == "running",
                  DEADLINE, "job never started")
            assert scheduler.drain(grace=15.0) is True
        finally:
            scheduler.stop()
        parked = store.get(record.job_id)
        # Drain is not a failure: back to queued, no dead-letter entry,
        # no recovery penalty.
        assert parked.state == "queued"
        assert store.read_failures(record.job_id) == []
        assert parked.recoveries == 0

    def test_restart_after_drain_completes_byte_identical(
        self, tmp_path, basket_path
    ):
        store = JobStore(tmp_path / "store")
        scheduler = Scheduler(store, workers=1)
        scheduler.start()
        try:
            record = scheduler.submit("t", "mine", "apriori", basket_path,
                                      dict(SLOW_PARAMS))
            _wait(lambda: store.get(record.job_id).state == "running",
                  DEADLINE, "job never started")
            assert scheduler.drain(grace=15.0) is True
        finally:
            scheduler.stop()
        assert store.get(record.job_id).state == "queued"

        restarted = Scheduler(store, workers=1)
        restarted.start()
        try:
            final = _wait_terminal(store, record.job_id)
        finally:
            restarted.stop()
        assert final.state == "done", final.error
        assert store.read_result_bytes(record.job_id) == \
            _reference_bytes(basket_path)

    def test_drain_is_idempotent(self, tmp_path):
        store = JobStore(tmp_path / "store")
        scheduler = Scheduler(store, workers=1)
        scheduler.start()
        try:
            assert scheduler.drain(grace=5.0) is True
            assert scheduler.drain(grace=5.0) is True
        finally:
            scheduler.stop()


# ---------------------------------------------------------------------------
# Full-process drain: SIGTERM against a live ``repro serve``.
# ---------------------------------------------------------------------------

def _src_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _start_server(store_root):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", str(store_root),
         "--port", "0", "--workers", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=_src_env(),
    )
    port = None
    end = time.monotonic() + 30.0
    lines = []
    while time.monotonic() < end:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        if "repro-server listening" in line:
            for token in line.split():
                if token.startswith("port="):
                    port = int(token.split("=", 1)[1])
            break
    if port is None:
        proc.kill()
        raise AssertionError("server never announced a port:\n"
                             + "".join(lines))
    return proc, port


def _request(port, method, path, body=None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", method=method,
        data=json.dumps(body).encode() if body is not None else None,
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


@pytest.mark.slow
class TestServeSigterm:
    def test_sigterm_mid_job_drains_exits_zero_and_restart_is_byte_identical(
        self, tmp_path, basket_path
    ):
        store_root = tmp_path / "store"
        proc, port = _start_server(store_root)
        try:
            _status, record = _request(
                port, "POST", "/jobs",
                {"kind": "mine", "algorithm": "apriori",
                 "dataset": basket_path, "params": dict(SLOW_PARAMS)},
            )
            job_id = record["job_id"]
            store = JobStore(store_root)
            _wait(lambda: store.get(job_id).state == "running",
                  30.0, "job never started under the server")
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=30)
        except Exception:
            proc.kill()
            raise
        assert proc.returncode == 0, output
        assert "repro-server drained clean exit" in output
        # The in-flight job was parked durably, not failed.
        store = JobStore(store_root)
        assert store.get(job_id).state == "queued"
        assert store.read_failures(job_id) == []

        # A fresh process on the same store finishes the job and the
        # result bytes match an undisturbed in-process run exactly.
        proc2, port2 = _start_server(store_root)
        try:
            _wait(lambda: store.get(job_id).state in TERMINAL,
                  DEADLINE, "restarted server never finished the job")
            final = store.get(job_id)
            assert final.state == "done", final.error
            assert store.read_result_bytes(job_id) == \
                _reference_bytes(basket_path)
            _status, payload = _request(port2, "GET", "/healthz")
            assert payload["jobs"]["done"] >= 1
        finally:
            proc2.send_signal(signal.SIGTERM)
            try:
                proc2.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc2.kill()
