"""HTTP surface: routes, error semantics, quota back-pressure."""

import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.server import build_server
from repro.server.api import BadSubmission, validate_submission
from repro.server.quotas import QuotaPolicy, TenantQuota

DEADLINE = 60.0


@pytest.fixture
def server(tmp_path):
    quotas = QuotaPolicy(
        default=TenantQuota(max_running=1, max_queued=2,
                            retry_after_seconds=3.0),
    )
    httpd, scheduler = build_server(
        str(tmp_path / "store"), port=0, workers=1, quotas=quotas,
    )
    scheduler.start()
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd, scheduler
    finally:
        httpd.shutdown()
        httpd.server_close()
        scheduler.stop()
        thread.join(timeout=5.0)


def _call(httpd, method, path, body=None, headers=None):
    port = httpd.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", method=method,
        data=json.dumps(body).encode() if body is not None else None,
        headers=headers or {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), \
                json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def _submit(httpd, dataset, **overrides):
    body = {"kind": "mine", "algorithm": "apriori", "dataset": dataset,
            "params": {"min_support": 0.05}}
    body.update(overrides)
    return _call(httpd, "POST", "/jobs", body)


def _wait_state(httpd, job_id, states, deadline=DEADLINE):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        _status, _headers, record = _call(httpd, "GET", f"/jobs/{job_id}")
        if record["state"] in states:
            return record
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never reached {states}")


class TestRoutes:
    def test_healthz(self, server):
        httpd, _scheduler = server
        status, _headers, payload = _call(httpd, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["draining"] is False
        assert set(payload["jobs"]) == {"queued", "running", "done",
                                        "failed", "cancelled", "poisoned"}
        # Worker liveness: one worker thread, heartbeat age in seconds.
        liveness = payload["worker_liveness"]
        assert len(liveness) == 1
        for age in liveness.values():
            assert 0.0 <= age < 30.0

    def test_algorithms_table(self, server):
        httpd, _scheduler = server
        status, _headers, payload = _call(httpd, "GET", "/algorithms")
        assert status == 200
        names = {entry["name"] for entry in payload["algorithms"]}
        assert {"apriori", "kmeans", "c45"} <= names
        apriori = next(e for e in payload["algorithms"]
                       if e["name"] == "apriori")
        assert apriori["capabilities"]["checkpointable"] is True

    def test_unknown_route_404(self, server):
        httpd, _scheduler = server
        assert _call(httpd, "GET", "/nope")[0] == 404
        assert _call(httpd, "POST", "/nope")[0] == 404
        assert _call(httpd, "GET", "/jobs/missing")[0] == 404
        assert _call(httpd, "POST", "/jobs/missing/cancel")[0] == 404


class TestSubmitLifecycle:
    def test_submit_poll_fetch(self, server, basket_path):
        httpd, scheduler = server
        status, _headers, record = _submit(httpd, basket_path)
        assert status == 202
        assert record["state"] == "queued"
        final = _wait_state(httpd, record["job_id"], ("done", "failed"))
        assert final["state"] == "done", final.get("error")
        port = httpd.server_address[1]
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/jobs/{record['job_id']}/result",
            timeout=30,
        ) as response:
            body = response.read()
        assert body == scheduler.store.read_result_bytes(record["job_id"])

    def test_result_before_done_is_409(self, server, basket_path):
        httpd, _scheduler = server
        _status, _headers, record = _submit(
            httpd, basket_path, params={"min_support": 0.05,
                                        "pass_delay": 0.2},
        )
        status, _headers, payload = _call(
            httpd, "GET", f"/jobs/{record['job_id']}/result"
        )
        assert status == 409
        assert payload["state"] in ("queued", "running")
        _wait_state(httpd, record["job_id"], ("done",))

    def test_job_listing(self, server, basket_path):
        httpd, _scheduler = server
        _status, _headers, record = _submit(httpd, basket_path,
                                            tenant="lister")
        _wait_state(httpd, record["job_id"], ("done",))
        status, _headers, payload = _call(
            httpd, "GET", "/jobs?tenant=lister"
        )
        assert status == 200
        assert [j["job_id"] for j in payload["jobs"]] == [record["job_id"]]

    def test_cancel_flow(self, server, basket_path):
        httpd, _scheduler = server
        _status, _headers, record = _submit(
            httpd, basket_path,
            params={"min_support": 0.02, "pass_delay": 0.3},
        )
        status, _headers, _payload = _call(
            httpd, "POST", f"/jobs/{record['job_id']}/cancel"
        )
        assert status == 202
        final = _wait_state(httpd, record["job_id"], ("cancelled", "done"))
        assert final["state"] == "cancelled"
        # Cancelling a terminal job is a conflict, not a 500.
        status, _headers, _payload = _call(
            httpd, "POST", f"/jobs/{record['job_id']}/cancel"
        )
        assert status == 409


class TestRejections:
    def test_unknown_algorithm_400_with_capabilities(self, server,
                                                     basket_path):
        httpd, _scheduler = server
        status, _headers, payload = _submit(httpd, basket_path,
                                            algorithm="nope")
        assert status == 400
        names = {entry["name"] for entry in payload["capabilities"]}
        assert "apriori" in names
        assert all(entry["family"] == "associations"
                   for entry in payload["capabilities"])

    def test_capability_gated_flags_400(self, server, basket_path):
        httpd, _scheduler = server
        cases = [
            {"kind": "classify", "algorithm": "knn",
             "params": {"target": "y", "checkpoint_every": 2}},
            {"kind": "classify", "algorithm": "nb",
             "params": {"target": "y", "n_jobs": 2}},
            {"kind": "mine", "algorithm": "apriori",
             "params": {"on_exhausted": "explode"}},
        ]
        for case in cases:
            status, _headers, payload = _submit(httpd, basket_path, **case)
            assert status == 400, case
            assert "capabilities" in payload

    def test_malformed_bodies_400(self, server, basket_path):
        httpd, _scheduler = server
        for body in [[], {"kind": "mine"}, {"surprise": 1},
                     {"kind": "teleport", "algorithm": "a", "dataset": "d"}]:
            status, _headers, _payload = _call(httpd, "POST", "/jobs", body)
            assert status == 400, body

    def test_over_quota_429_with_retry_after(self, server, basket_path):
        httpd, _scheduler = server
        accepted = []
        rejected = None
        for n in range(4):
            # Distinct params per request: identical submissions would
            # now deduplicate onto one job and never fill the backlog.
            slow = {"min_support": 0.02, "pass_delay": 0.5, "nonce": n}
            status, headers, payload = _submit(
                httpd, basket_path, tenant="burst", params=slow,
            )
            if status == 202:
                accepted.append(payload["job_id"])
            else:
                rejected = (status, headers, payload)
        assert rejected is not None, "backlog quota never tripped"
        status, headers, payload = rejected
        assert status == 429
        assert headers["Retry-After"] == "3"
        assert payload["retry_after"] == 3.0
        # The rejection must not disturb the admitted jobs: every one
        # still runs to completion.
        for job_id in accepted:
            final = _wait_state(httpd, job_id, ("done", "failed"))
            assert final["state"] == "done", final.get("error")


class TestDrainRoute:
    def test_drain_flips_healthz_and_rejects_submissions(
        self, server, basket_path
    ):
        httpd, scheduler = server
        status, _headers, payload = _call(httpd, "POST", "/drain")
        assert status == 202
        assert payload["draining"] is True
        assert payload["stopped_clean"] is True
        status, _headers, payload = _call(httpd, "GET", "/healthz")
        assert payload["status"] == "draining"
        assert payload["draining"] is True
        # Submissions now bounce with 503 + Retry-After and persist
        # nothing.
        status, headers, payload = _submit(httpd, basket_path)
        assert status == 503
        assert int(headers["Retry-After"]) >= 1
        assert payload["retry_after"] > 0
        assert scheduler.store.list() == []


class TestFailureSurface:
    def test_job_payload_carries_dead_letter_history(
        self, server, basket_path
    ):
        httpd, scheduler = server
        _status, _headers, record = _submit(httpd, basket_path)
        job_id = record["job_id"]
        _wait_state(httpd, job_id, ("done",))
        # A clean job exposes no failures key at all.
        _status, _headers, payload = _call(httpd, "GET", f"/jobs/{job_id}")
        assert "failures" not in payload
        scheduler.store.append_failure(job_id, {"cause": "crash",
                                                "message": "boom"})
        _status, _headers, payload = _call(httpd, "GET", f"/jobs/{job_id}")
        assert [f["cause"] for f in payload["failures"]] == ["crash"]
        assert payload["failures"][0]["at"] > 0


class TestBusyPort:
    def test_serve_on_taken_port_is_one_line_and_exit_2(
        self, tmp_path, capsys
    ):
        import socket

        from repro.server.api import serve

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            code = serve(str(tmp_path / "store"), port=port)
        finally:
            blocker.close()
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot bind" in err
        assert "is another server running?" in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_cli_serve_on_taken_port_exits_2_without_traceback(
        self, tmp_path
    ):
        import socket
        import subprocess
        import sys
        from pathlib import Path

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parents[2] / "src")
            + os.pathsep + env.get("PYTHONPATH", "")
        )
        try:
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "serve",
                 "--store", str(tmp_path / "store"),
                 "--port", str(port)],
                capture_output=True, text=True, timeout=30, env=env,
            )
        finally:
            blocker.close()
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert "cannot bind" in proc.stderr


class TestValidateSubmission:
    def test_normalizes_defaults(self, basket_path):
        submission = validate_submission({
            "kind": "mine", "algorithm": "apriori", "dataset": basket_path,
        })
        assert submission["tenant"] == "default"
        assert submission["params"] == {}

    def test_classify_requires_target(self):
        with pytest.raises(BadSubmission):
            validate_submission({
                "kind": "classify", "algorithm": "c45", "dataset": "d.csv",
            })


class TestClientEdge:
    """Idempotent resubmission, the events route, and request hardening."""

    def test_healthz_reports_cache_and_events(self, server):
        httpd, _scheduler = server
        _status, _headers, payload = _call(httpd, "GET", "/healthz")
        cache = payload["cache"]
        assert cache["enabled"] is True
        assert {"entries", "hits", "misses", "quarantined"} <= set(cache)
        assert isinstance(payload["events_appended"], int)

    def test_duplicate_post_is_200_same_id(self, server, basket_path):
        httpd, _scheduler = server
        slow = {"min_support": 0.02, "pass_delay": 0.3}
        status, _h, first = _submit(httpd, basket_path, params=slow)
        assert status == 202
        status, _h, second = _submit(httpd, basket_path, params=slow)
        assert status == 200
        assert second["job_id"] == first["job_id"]
        assert second["deduplicated"] is True
        _wait_state(httpd, first["job_id"], ("done",))

    def test_idempotency_key_header_dedupes(self, server, basket_path):
        httpd, _scheduler = server
        headers = {"Idempotency-Key": "client-retry-7"}
        body = {"kind": "mine", "algorithm": "apriori",
                "dataset": basket_path,
                "params": {"min_support": 0.02, "pass_delay": 0.3}}
        status, _h, first = _call(httpd, "POST", "/jobs", body,
                                  headers=headers)
        assert status == 202
        # Same key, different params: still the same job.
        body["params"] = {"min_support": 0.05, "pass_delay": 0.3}
        status, _h, second = _call(httpd, "POST", "/jobs", body,
                                   headers=headers)
        assert status == 200
        assert second["job_id"] == first["job_id"]
        _wait_state(httpd, first["job_id"], ("done",))

    def test_bad_idempotency_key_400(self, server, basket_path):
        httpd, _scheduler = server
        body = {"kind": "mine", "algorithm": "apriori",
                "dataset": basket_path}
        status, _h, payload = _call(
            httpd, "POST", "/jobs", body,
            headers={"Idempotency-Key": "x" * 300},
        )
        assert status == 400
        assert payload["reason"] == "bad-idempotency-key"

    def test_cached_resubmission_via_http(self, server, basket_path):
        httpd, scheduler = server
        params = {"min_support": 0.05, "nonce": "cache-http"}
        _s, _h, first = _submit(httpd, basket_path, params=params)
        _wait_state(httpd, first["job_id"], ("done",))
        status, _h, second = _submit(httpd, basket_path, params=params)
        assert status == 202
        record = _wait_state(httpd, second["job_id"], ("done",))
        assert record["cache_hit"] is True
        assert (scheduler.store.read_result_bytes(second["job_id"])
                == scheduler.store.read_result_bytes(first["job_id"]))
        _s, _h, health = _call(httpd, "GET", "/healthz")
        assert health["cache"]["hits"] >= 1

    def test_events_route_resumable(self, server, basket_path):
        httpd, _scheduler = server
        params = {"min_support": 0.05, "nonce": "events-http"}
        _s, _h, record = _submit(httpd, basket_path, params=params)
        job_id = record["job_id"]
        _wait_state(httpd, job_id, ("done",))
        status, _h, payload = _call(httpd, "GET", f"/jobs/{job_id}/events")
        assert status == 200
        phases = [e["phase"] for e in payload["events"]]
        assert phases[0] == "submitted" and phases[-1] == "done"
        assert payload["next_offset"] == len(phases)
        # Resume from next_offset: nothing new, same offset back.
        status, _h, tail = _call(
            httpd, "GET",
            f"/jobs/{job_id}/events?offset={payload['next_offset']}",
        )
        assert status == 200
        assert tail["events"] == []
        assert tail["next_offset"] == payload["next_offset"]

    def test_events_route_errors(self, server, basket_path):
        httpd, _scheduler = server
        assert _call(httpd, "GET", "/jobs/missing/events")[0] == 404
        _s, _h, record = _submit(
            httpd, basket_path,
            params={"min_support": 0.05, "nonce": "events-err"},
        )
        status, _h, payload = _call(
            httpd, "GET", f"/jobs/{record['job_id']}/events?offset=bogus"
        )
        assert status == 400
        assert payload["reason"] == "bad-offset"
        _wait_state(httpd, record["job_id"], ("done",))


def _raw_http(httpd, data, timeout=10.0):
    """Send raw bytes, return everything the server answers."""
    import socket

    port = httpd.server_address[1]
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=timeout) as sock:
        sock.sendall(data)
        chunks = b""
        while True:
            try:
                part = sock.recv(65536)
            except socket.timeout:
                break
            if not part:
                break
            chunks += part
    return chunks


class TestRequestHardening:
    def test_payload_too_large_413(self, server):
        httpd, _scheduler = server
        response = _raw_http(
            httpd,
            b"POST /jobs HTTP/1.1\r\nHost: t\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 2000000\r\n\r\n",
        )
        head, _, body = response.partition(b"\r\n\r\n")
        assert b"413" in head.splitlines()[0]
        assert b"payload-too-large" in body

    def test_malformed_json_structured_400(self, server):
        httpd, _scheduler = server
        payload = b"{this is not json"
        response = _raw_http(
            httpd,
            b"POST /jobs HTTP/1.1\r\nHost: t\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(payload)}\r\n\r\n".encode()
            + payload
            + b"",
        )
        head, _, body = response.partition(b"\r\n\r\n")
        assert b"400" in head.splitlines()[0]
        parsed = json.loads(body.split(b"\r\n\r\n")[-1] or body)
        assert parsed["reason"] == "invalid-json"
        assert "capabilities" not in parsed

    def test_bad_content_length_400(self, server):
        httpd, _scheduler = server
        response = _raw_http(
            httpd,
            b"POST /jobs HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: banana\r\n\r\n",
        )
        head, _, body = response.partition(b"\r\n\r\n")
        assert b"400" in head.splitlines()[0]
        assert b"bad-content-length" in body

    def test_slow_loris_connection_dropped(self, tmp_path):
        httpd, scheduler = build_server(
            str(tmp_path / "loris-store"), port=0, workers=1,
            request_timeout=0.5,
        )
        scheduler.start()
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            start = time.monotonic()
            # Headers promise a body that never arrives: the handler
            # thread must give up and close, not wait forever.
            response = _raw_http(
                httpd,
                b"POST /jobs HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 100\r\n\r\n",
                timeout=10.0,
            )
            elapsed = time.monotonic() - start
            assert response == b""  # dropped without an answer
            assert elapsed < 8.0
        finally:
            httpd.shutdown()
            httpd.server_close()
            scheduler.stop()
            thread.join(timeout=5.0)
