"""Crash-safe progress event log: gapless seq, torn tails, resumable reads."""

import json
import time

import pytest

from repro.runtime.faults import DiskGremlin
from repro.runtime.fsio import clear_injector, install_injector
from repro.server.scheduler import Scheduler
from repro.server.store import JobStore, scan_events

DEADLINE = 60.0


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "store")


@pytest.fixture(autouse=True)
def _clean_injector():
    clear_injector()
    yield
    clear_injector()


def _job(store, **overrides):
    fields = dict(tenant="t", kind="mine", algorithm="apriori",
                  dataset="/data/basket.dat")
    fields.update(overrides)
    return store.create(**fields)


def _wait_terminal(store, job_id, deadline=DEADLINE):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        record = store.get(job_id)
        if record.state in ("done", "failed", "cancelled"):
            return record
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


class TestAppendAndScan:
    def test_lifecycle_events_are_gapless(self, store):
        record = _job(store)
        store.transition(record.job_id, "running")
        appender = store.event_appender(record.job_id)
        appender.append("pass", {"candidates": 10})
        appender.append("pass", {"candidates": 4})
        store.transition(record.job_id, "done")
        events, total = store.read_events(record.job_id)
        assert total == 5
        assert [e["phase"] for e in events] == [
            "submitted", "running", "pass", "pass", "done",
        ]
        assert [e["seq"] for e in events] == list(range(5))
        assert events[2]["info"] == {"candidates": 10}

    def test_offset_read_is_resumable(self, store):
        record = _job(store)
        appender = store.event_appender(record.job_id)
        appender.append("pass", {"n": 1})
        tail, next_offset = store.read_events(record.job_id, offset=1)
        assert [e["phase"] for e in tail] == ["pass"]
        assert next_offset == 2
        # Nothing new: the poll from next_offset returns no events and
        # the same offset — no gap, no repeat.
        again, still = store.read_events(record.job_id, offset=next_offset)
        assert again == [] and still == next_offset
        appender.append("pass", {"n": 2})
        fresh, _ = store.read_events(record.job_id, offset=next_offset)
        assert [e["info"]["n"] for e in fresh] == [2]

    def test_requeue_appends_requeued_event(self, store):
        record = _job(store)
        store.transition(record.job_id, "running")
        store.transition(record.job_id, "queued",
                         event_info={"reason": "drain"})
        events, _ = store.read_events(record.job_id)
        assert events[-1]["phase"] == "requeued"
        assert events[-1]["info"] == {"reason": "drain"}


class TestTornTail:
    def _tear(self, store, job_id, fragment=b'{"seq": 99, "ph'):
        with open(store.events_path(job_id), "ab") as handle:
            handle.write(fragment)

    def test_reader_stops_at_torn_line(self, store):
        record = _job(store)
        self._tear(store, record.job_id)
        events, total = store.read_events(record.job_id)
        assert [e["phase"] for e in events] == ["submitted"]
        assert total == 1

    def test_recover_truncates_torn_tail(self, store):
        record = _job(store)
        self._tear(store, record.job_id)
        before = store.events_path(record.job_id).stat().st_size
        store.recover()
        after = store.events_path(record.job_id).stat().st_size
        assert after < before
        # The log ends on a valid line and extends cleanly.
        store.append_event(record.job_id, "resumed")
        events, _ = store.read_events(record.job_id)
        assert [e["phase"] for e in events] == ["submitted", "resumed"]
        assert [e["seq"] for e in events] == [0, 1]

    def test_writer_repairs_before_extending(self, store):
        # Appending after a newline-less fragment must not weld the
        # fragment and the new event into one corrupt line.
        record = _job(store)
        self._tear(store, record.job_id)
        store.append_event(record.job_id, "next", {"k": 1})
        raw = store.events_path(record.job_id).read_text()
        lines = [json.loads(line) for line in raw.splitlines()]
        assert [entry["phase"] for entry in lines] == ["submitted", "next"]

    def test_garbage_line_ends_the_log(self, store):
        record = _job(store)
        with open(store.events_path(record.job_id), "ab") as handle:
            handle.write(b"not json at all\n")
            handle.write(b'{"seq": 2, "phase": "after"}\n')
        events, total = store.read_events(record.job_id)
        assert total == 1  # nothing past the first invalid line counts
        _events, end = scan_events(store.events_path(record.job_id))
        assert end == len(b'') or end > 0


class TestAppendFaults:
    def test_failed_append_does_not_consume_seq(self, store):
        record = _job(store)
        appender = store.event_appender(record.job_id)
        appender.append("pass", {"n": 1})
        gremlin = DiskGremlin(op="append", after=0, burst=2)
        install_injector(gremlin)
        assert appender.append("lost", {"n": 2}) is None
        assert appender.append("lost", {"n": 3}) is None
        clear_injector()
        appender.append("pass", {"n": 4})
        events, _ = store.read_events(record.job_id)
        assert [e["phase"] for e in events] == ["submitted", "pass", "pass"]
        assert [e["seq"] for e in events] == [0, 1, 2]  # gapless

    def test_lifecycle_append_fault_never_fails_transition(self, store):
        record = _job(store)
        gremlin = DiskGremlin(op="append", after=0, burst=None)
        install_injector(gremlin)
        done = store.transition(record.job_id, "running")
        assert done.state == "running"  # the transition survived


class TestSchedulerEvents:
    def test_run_emits_progress_events(self, store, basket_path):
        scheduler = Scheduler(store, workers=1)
        scheduler.start()
        try:
            record = scheduler.submit(
                "t", "mine", "apriori", basket_path,
                {"min_support": 0.05, "checkpoint_every": 1},
            )
            final = _wait_terminal(store, record.job_id)
        finally:
            scheduler.stop()
        assert final.state == "done", final.error
        events, total = store.read_events(record.job_id)
        phases = [e["phase"] for e in events]
        assert phases[0] == "submitted"
        assert phases[1] == "running"
        assert phases[-1] == "done"
        # The forked child's ctx.step boundaries ("pass-2", "pass-3"...)
        assert any(p.startswith("pass") for p in phases)
        assert [e["seq"] for e in events] == list(range(total))

    def test_healthz_counter_counts_all_logs(self, store):
        a, b = _job(store), _job(store)
        store.append_event(a.job_id, "x")
        store.append_event(b.job_id, "y")
        assert store.events_appended_total() == 4  # 2 submitted + 2 manual
