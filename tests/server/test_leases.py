"""Job leases, the reaper, and the poison-job quarantine.

Three proofs live here:

* an orphaned ``running`` record (its worker died without a trace) is
  reclaimed by the reaper and still finishes;
* a wedged job — alive but never reaching a heartbeat boundary — is
  stopped through the supervisor, re-enqueued, and poisoned once its
  dead-letter history reaches the cap;
* the acceptance proof: a job whose child SIGKILLs itself on *every*
  attempt lands ``poisoned`` with at least three persisted
  :class:`FailureReport` entries — never an infinite crash-retry loop.
"""

import time

import pytest

from repro.server.scheduler import Scheduler
from repro.server.store import JobStore

DEADLINE = 60.0
TERMINAL = ("done", "failed", "cancelled", "poisoned")


def _wait_terminal(store, job_id, deadline=DEADLINE):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        record = store.get(job_id)
        if record.state in TERMINAL:
            return record
        time.sleep(0.05)
    raise AssertionError(
        f"job {job_id} still {store.get(job_id).state!r} after {deadline}s"
    )


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "store")


class TestHeartbeat:
    def test_running_job_keeps_its_lease_fresh(self, store, basket_path):
        scheduler = Scheduler(store, workers=1, lease_timeout=30.0)
        scheduler.start()
        try:
            record = scheduler.submit(
                "t", "mine", "apriori", basket_path,
                {"min_support": 0.02, "pass_delay": 0.2},
            )
            # Sample the lease while the job runs: the forked child
            # refreshes it at every pass boundary.
            saw_running = False
            end = time.monotonic() + DEADLINE
            while time.monotonic() < end:
                current = store.get(record.job_id)
                if current.state == "running":
                    saw_running = True
                    assert store.lease_age(record.job_id) < 10.0
                elif current.state in TERMINAL:
                    break
                time.sleep(0.05)
            assert saw_running
            final = store.get(record.job_id)
            assert final.state == "done", final.error
            # Terminal jobs shed their lease.
            assert not store.lease_path(record.job_id).exists()
        finally:
            scheduler.stop()


class TestReaper:
    def test_orphan_running_record_is_reclaimed_and_finishes(
        self, store, basket_path
    ):
        scheduler = Scheduler(store, workers=1, lease_timeout=0.3,
                              reap_interval=0.05)
        scheduler.start()
        try:
            # Forge what a dead worker thread leaves behind: a running
            # record nobody owns, created *after* the boot recovery scan.
            record = store.create(
                tenant="t", kind="mine", algorithm="apriori",
                dataset=basket_path, params={"min_support": 0.05},
            )
            store.transition(record.job_id, "running", attempts=1)
            final = _wait_terminal(store, record.job_id)
            assert final.state == "done", final.error
            assert final.recoveries == 1
            causes = [f["cause"] for f in store.read_failures(record.job_id)]
            assert causes == ["lease-expired"]
        finally:
            scheduler.stop()

    def test_wedged_job_is_reaped_until_poisoned(self, store, basket_path):
        """A job that never heartbeats fast enough burns its failure
        budget on lease expiries and is quarantined, not retried
        forever."""
        scheduler = Scheduler(store, workers=1, lease_timeout=0.3,
                              reap_interval=0.05, max_failures=2)
        scheduler.start()
        try:
            record = scheduler.submit(
                "t", "mine", "apriori", basket_path,
                # Each boundary stalls far past the lease timeout.
                {"min_support": 0.02, "pass_delay": 5.0},
            )
            final = _wait_terminal(store, record.job_id)
            assert final.state == "poisoned"
            assert final.error["cause"] == "poisoned"
            failures = store.read_failures(record.job_id)
            assert len(failures) >= 2
            assert all(f["cause"] == "lease-expired" for f in failures)
        finally:
            scheduler.stop()


class TestPoisonQuarantine:
    def test_job_that_kills_every_attempt_is_poisoned_with_history(
        self, store, basket_path
    ):
        """The acceptance proof: SIGKILL on every attempt → ``poisoned``
        with ≥3 persisted FailureReports, reached in bounded time."""
        scheduler = Scheduler(store, workers=1, max_retries=2,
                              max_failures=3)
        scheduler.start()
        try:
            record = scheduler.submit(
                "t", "mine", "apriori", basket_path,
                {"min_support": 0.05, "kill_at_step": 1},
            )
            final = _wait_terminal(store, record.job_id)
            assert final.state == "poisoned"
            assert final.error["cause"] == "poisoned"
            assert final.error["last_failure"]["cause"] == "killed"
            failures = store.read_failures(record.job_id)
            assert len(failures) >= 3
            # Every entry is a full crash post-mortem.
            assert all(f["kind"] == "crash" for f in failures)
            assert all(f["signal_name"] == "SIGKILL" for f in failures)
            assert [f["attempt"] for f in failures] == [1, 2, 3]
        finally:
            scheduler.stop()

    def test_poisoned_job_is_not_redispatched_on_restart(
        self, store, basket_path
    ):
        scheduler = Scheduler(store, workers=1, max_retries=2,
                              max_failures=3)
        scheduler.start()
        try:
            record = scheduler.submit(
                "t", "mine", "apriori", basket_path,
                {"min_support": 0.05, "kill_at_step": 1},
            )
            final = _wait_terminal(store, record.job_id)
            assert final.state == "poisoned"
        finally:
            scheduler.stop()
        # A restarted scheduler must leave the quarantined job alone.
        scheduler = Scheduler(store, workers=1)
        recovered = scheduler.start()
        try:
            assert recovered == []
            time.sleep(0.3)
            assert store.get(record.job_id).state == "poisoned"
        finally:
            scheduler.stop()
