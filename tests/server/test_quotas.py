"""Per-tenant quotas: admission, concurrency gate, budget clamping."""

import json

import pytest

from repro.core.exceptions import ValidationError
from repro.registry import Capabilities
from repro.server.quotas import (
    OverQuota,
    QuotaPolicy,
    TenantQuota,
    job_budget,
)


class TestTenantQuota:
    def test_validation(self):
        with pytest.raises(ValidationError):
            TenantQuota(max_running=0)
        with pytest.raises(ValidationError):
            TenantQuota(max_queued=0)
        with pytest.raises(ValidationError):
            TenantQuota(time_limit=0.0)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValidationError):
            TenantQuota.from_dict({"max_flying": 3})


class TestQuotaPolicy:
    def test_tenant_overrides_fall_back_to_default(self):
        policy = QuotaPolicy(
            default=TenantQuota(max_queued=8),
            tenants={"acme": TenantQuota(max_queued=1)},
        )
        assert policy.quota_for("acme").max_queued == 1
        assert policy.quota_for("other").max_queued == 8

    def test_admit_raises_when_backlog_full(self):
        policy = QuotaPolicy(default=TenantQuota(max_queued=2,
                                                 retry_after_seconds=7.0))
        policy.admit("t", {"queued": 1})
        with pytest.raises(OverQuota) as excinfo:
            policy.admit("t", {"queued": 2})
        assert excinfo.value.retry_after == 7.0

    def test_running_jobs_do_not_block_admission(self):
        policy = QuotaPolicy(default=TenantQuota(max_running=1, max_queued=2))
        policy.admit("t", {"queued": 0, "running": 5})

    def test_over_concurrency_gate(self):
        policy = QuotaPolicy(default=TenantQuota(max_running=2))
        assert not policy.over_concurrency("t", {"running": 1})
        assert policy.over_concurrency("t", {"running": 2})

    def test_from_file(self, tmp_path):
        path = tmp_path / "quotas.json"
        path.write_text(json.dumps({
            "default": {"max_queued": 4},
            "tenants": {"acme": {"max_running": 1, "time_limit": 2.5}},
        }))
        policy = QuotaPolicy.from_file(path)
        assert policy.default.max_queued == 4
        assert policy.quota_for("acme").time_limit == 2.5

    def test_from_file_rejects_garbage(self, tmp_path):
        path = tmp_path / "quotas.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValidationError):
            QuotaPolicy.from_file(path)
        with pytest.raises(ValidationError):
            QuotaPolicy.from_file(tmp_path / "missing.json")


class TestJobBudget:
    CAPS = Capabilities(budget_resource="candidates")

    def test_uncapped_is_none(self):
        assert job_budget(self.CAPS, TenantQuota(), {}) is None

    def test_quota_cap_applies(self):
        budget = job_budget(self.CAPS, TenantQuota(max_candidates=100), {})
        assert budget.max_candidates == 100

    def test_tighter_of_request_and_quota_wins(self):
        quota = TenantQuota(max_candidates=100, time_limit=10.0)
        budget = job_budget(
            self.CAPS, quota,
            {"max_candidates": 50, "time_limit": 60.0},
        )
        assert budget.max_candidates == 50
        assert budget.time_limit == 10.0

    def test_request_alone_applies(self):
        budget = job_budget(self.CAPS, TenantQuota(), {"max_candidates": 9})
        assert budget.max_candidates == 9

    def test_no_budget_resource_drops_unit_cap(self):
        caps = Capabilities(budget_resource=None)
        quota = TenantQuota(max_candidates=100)
        assert job_budget(caps, quota, {}) is None
        budget = job_budget(caps, quota, {"time_limit": 5.0})
        assert budget.time_limit == 5.0
