"""Durable job store: lifecycle, atomicity, crash recovery."""

import json

import pytest

from repro.server.store import (
    InvalidTransition,
    JobRecord,
    JobStore,
    JobStoreError,
    TERMINAL_STATES,
    UnknownJob,
)


def _store(tmp_path):
    return JobStore(tmp_path / "store")


def _job(store, **overrides):
    kwargs = dict(tenant="t", kind="mine", algorithm="apriori",
                  dataset="basket.dat", params={"min_support": 0.1})
    kwargs.update(overrides)
    return store.create(**kwargs)


class TestLifecycle:
    def test_create_persists_queued_record(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        loaded = store.get(record.job_id)
        assert loaded.state == "queued"
        assert loaded.params == {"min_support": 0.1}
        assert loaded.created_at > 0

    def test_record_file_is_valid_json(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        payload = json.loads(store.record_path(record.job_id).read_text())
        assert payload["job_id"] == record.job_id

    def test_get_unknown_job_raises(self, tmp_path):
        with pytest.raises(UnknownJob):
            _store(tmp_path).get("nope")

    def test_duplicate_id_rejected(self, tmp_path):
        store = _store(tmp_path)
        _job(store, job_id="fixed")
        with pytest.raises(JobStoreError):
            _job(store, job_id="fixed")

    def test_full_happy_path(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        store.transition(record.job_id, "running", expect="queued")
        store.write_result_bytes(record.job_id, b'{"x":1}\n')
        done = store.transition(record.job_id, "done", degraded=True)
        assert done.state == "done"
        assert done.degraded is True
        assert store.read_result_bytes(record.job_id) == b'{"x":1}\n'

    def test_terminal_states_are_final(self, tmp_path):
        store = _store(tmp_path)
        for terminal in sorted(TERMINAL_STATES):
            record = _job(store)
            store.transition(record.job_id, "running")
            store.transition(record.job_id, terminal)
            with pytest.raises(InvalidTransition):
                store.transition(record.job_id, "running")

    def test_expect_guard(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        with pytest.raises(InvalidTransition):
            store.transition(record.job_id, "running", expect="running")

    def test_illegal_edge_rejected(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        with pytest.raises(InvalidTransition):
            store.transition(record.job_id, "failed")  # queued -> failed

    def test_cache_hit_edge(self, tmp_path):
        # queued -> done is the one legal shortcut past "running": a
        # resubmission served from the result cache never runs.
        store = _store(tmp_path)
        record = _job(store)
        done = store.transition(record.job_id, "done", cache_hit=True)
        assert done.state == "done"
        assert done.cache_hit is True

    def test_unknown_field_rejected(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        with pytest.raises(JobStoreError):
            store.update(record.job_id, nonsense=1)

    def test_list_filters_and_orders(self, tmp_path):
        store = _store(tmp_path)
        first = _job(store, tenant="a")
        second = _job(store, tenant="b")
        assert [r.tenant for r in store.list(tenant="a")] == ["a"]
        listing = store.list()
        assert {r.job_id for r in listing} == {first.job_id, second.job_id}
        assert [r.job_id for r in store.list(states=("running",))] == []

    def test_counts_per_tenant(self, tmp_path):
        store = _store(tmp_path)
        _job(store, tenant="a")
        record = _job(store, tenant="a")
        store.transition(record.job_id, "running")
        counts = store.counts("a")
        assert counts["queued"] == 1
        assert counts["running"] == 1
        assert store.counts("b")["queued"] == 0


class TestCancellation:
    def test_cancel_queued_is_immediate(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        cancelled = store.request_cancel(record.job_id)
        assert cancelled.state == "cancelled"

    def test_cancel_running_sets_marker(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        store.transition(record.job_id, "running")
        flagged = store.request_cancel(record.job_id)
        assert flagged.state == "running"
        assert flagged.cancel_requested is True
        assert store.cancel_requested(record.job_id)

    def test_cancel_terminal_raises(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        store.transition(record.job_id, "running")
        store.transition(record.job_id, "done")
        with pytest.raises(InvalidTransition):
            store.request_cancel(record.job_id)


class TestRecovery:
    def test_running_jobs_requeued_with_bumped_counter(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        store.transition(record.job_id, "running", attempts=1)
        # Simulate the server dying here; a fresh store object boots.
        reborn = JobStore(store.root)
        recovered = reborn.recover()
        assert [r.job_id for r in recovered] == [record.job_id]
        after = reborn.get(record.job_id)
        assert after.state == "queued"
        assert after.recoveries == 1

    def test_terminal_jobs_untouched(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        store.transition(record.job_id, "running")
        store.transition(record.job_id, "done")
        assert JobStore(store.root).recover() == []
        assert store.get(record.job_id).state == "done"

    def test_running_with_cancel_marker_becomes_cancelled(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        store.transition(record.job_id, "running")
        store.request_cancel(record.job_id)
        assert JobStore(store.root).recover() == []
        assert store.get(record.job_id).state == "cancelled"

    def test_corrupted_record_is_quarantined(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        store.record_path(record.job_id).write_text("{ not json")
        assert JobStore(store.root).recover() == []
        after = store.get(record.job_id)
        assert after.state == "failed"
        assert after.error["cause"] == "store-corrupted"

    def test_torn_tmp_files_swept(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        store.transition(record.job_id, "running")
        torn = store.job_dir(record.job_id) / ".job.json.tmp"
        torn.write_bytes(b"half a record")
        scratch = store.scratch_dir(record.job_id)
        scratch.mkdir(parents=True)
        (scratch / "result-1.pkl").write_bytes(b"stale")
        (scratch / ".result-2.pkl.tmp").write_bytes(b"torn")
        JobStore(store.root).recover()
        assert not torn.exists()
        assert list(scratch.iterdir()) == []

    def test_record_roundtrip_and_validation(self):
        record = JobRecord(job_id="j", tenant="t", kind="mine",
                           algorithm="apriori", dataset="d")
        assert JobRecord.from_dict(record.to_dict()) == record
        with pytest.raises(JobStoreError):
            JobRecord.from_dict({"job_id": "j"})
        bad = record.to_dict()
        bad["state"] = "limbo"
        with pytest.raises(JobStoreError):
            JobRecord.from_dict(bad)


class TestLeases:
    def test_entering_running_creates_a_fresh_lease(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        assert not store.lease_path(record.job_id).exists()
        store.transition(record.job_id, "running")
        assert store.lease_path(record.job_id).exists()
        assert store.lease_age(record.job_id) < 5.0

    def test_leaving_running_sheds_the_lease(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        store.transition(record.job_id, "running")
        store.transition(record.job_id, "done")
        assert not store.lease_path(record.job_id).exists()

    def test_touch_refreshes_age(self, tmp_path):
        import os

        store = _store(tmp_path)
        record = _job(store)
        store.transition(record.job_id, "running")
        lease = store.lease_path(record.job_id)
        stale = lease.stat().st_mtime - 1000
        os.utime(lease, (stale, stale))
        assert store.lease_age(record.job_id) > 900
        store.touch_lease(record.job_id)
        assert store.lease_age(record.job_id) < 5.0

    def test_missing_lease_falls_back_to_updated_at(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        store.transition(record.job_id, "running")
        store.lease_path(record.job_id).unlink()
        # The record was just written: the fallback age is small, so
        # a pre-lease store is not instantly reaped.
        assert store.lease_age(record.job_id) < 5.0


class TestDeadLetters:
    def test_append_and_read_roundtrip(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        assert store.read_failures(record.job_id) == []
        count = store.append_failure(record.job_id,
                                     {"cause": "crash", "message": "boom"})
        assert count == 1
        count = store.append_failure(record.job_id,
                                     {"cause": "lease-expired"})
        assert count == 2
        failures = store.read_failures(record.job_id)
        assert [f["cause"] for f in failures] == ["crash", "lease-expired"]
        assert all(f["at"] > 0 for f in failures)
        assert store.failure_count(record.job_id) == 2

    def test_corrupt_history_is_replaced_not_fatal(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        store.failures_path(record.job_id).write_text("{torn")
        assert store.read_failures(record.job_id) == []
        count = store.append_failure(record.job_id, {"cause": "crash"})
        assert count == 1


class TestPoisonedState:
    def test_poisoned_is_terminal(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        store.transition(record.job_id, "running")
        store.transition(record.job_id, "poisoned",
                         error={"cause": "poisoned"})
        assert "poisoned" in TERMINAL_STATES
        with pytest.raises(InvalidTransition):
            store.transition(record.job_id, "queued")
        with pytest.raises(InvalidTransition):
            store.request_cancel(record.job_id)

    def test_recover_poisons_past_the_failure_cap(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        store.transition(record.job_id, "running", attempts=1)
        # Two prior lives already recorded their post-mortems; the
        # third recovery entry breaches the cap of 3.
        store.append_failure(record.job_id, {"cause": "recovery"})
        store.append_failure(record.job_id, {"cause": "recovery"})
        recovered = store.recover(max_failures=3)
        assert recovered == []
        final = store.get(record.job_id)
        assert final.state == "poisoned"
        assert final.error["cause"] == "poisoned"
        assert store.failure_count(record.job_id) == 3

    def test_recover_below_cap_requeues_and_records(self, tmp_path):
        store = _store(tmp_path)
        record = _job(store)
        store.transition(record.job_id, "running", attempts=1)
        recovered = store.recover(max_failures=3)
        assert [r.job_id for r in recovered] == [record.job_id]
        assert store.get(record.job_id).state == "queued"
        failures = store.read_failures(record.job_id)
        assert [f["cause"] for f in failures] == ["recovery"]


class TestTornCreate:
    def test_job_dir_without_record_is_removed(self, tmp_path):
        store = _store(tmp_path)
        survivor = _job(store)
        # A create() torn between mkdir and the record rename: the
        # directory exists, with at most a temp half inside.
        torn = store.job_dir("torn0000babe")
        torn.mkdir(parents=True)
        (torn / ".job.json.tmp").write_text("{half")
        store.recover()
        assert not torn.exists()
        assert store.get(survivor.job_id).state == "queued"
