"""Shared fixtures for the job-server tests: small on-disk datasets."""

import pytest

from repro.core.table import Table, numeric
from repro.datasets import (
    agrawal,
    gaussian_blobs,
    quest_basket,
    save_table,
    save_transactions,
)


@pytest.fixture(scope="session")
def basket_path(tmp_path_factory):
    """A small FIMI transaction file for mine jobs."""
    path = tmp_path_factory.mktemp("server-data") / "basket.dat"
    save_transactions(quest_basket(150, random_state=0), str(path))
    return str(path)


@pytest.fixture(scope="session")
def agrawal_path(tmp_path_factory):
    """A small typed CSV with a categorical target for classify jobs."""
    path = tmp_path_factory.mktemp("server-data") / "agrawal.csv"
    save_table(agrawal(200, function=1, random_state=0), str(path))
    return str(path)


@pytest.fixture(scope="session")
def blobs_path(tmp_path_factory):
    """A small numeric CSV for cluster jobs."""
    path = tmp_path_factory.mktemp("server-data") / "blobs.csv"
    X, _y = gaussian_blobs(120, centers=3, random_state=0)
    table = Table(
        [numeric("x"), numeric("y")],
        {"x": X[:, 0], "y": X[:, 1]},
    )
    save_table(table, str(path))
    return str(path)
