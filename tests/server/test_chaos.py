"""The acceptance proof: SIGKILL the *server* mid-job, restart, finish.

``test_kill_storm.py`` proves the child-process story; this file proves
the server-level one.  A real ``repro serve`` process is killed with
SIGKILL while a checkpointed apriori job is mid-run.  A second process
started against the same store must:

* report the job as recovered on boot,
* move it back through ``queued → running`` and finish it,
* produce result bytes identical to an uninterrupted serial run.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.server.scheduler import canonical_result_bytes, execute_job
from repro.server.store import JobStore

DEADLINE = 90.0

#: slow the job to one checkpoint boundary per second so the kill
#: reliably lands mid-run.
JOB_PARAMS = {
    "min_support": 0.02,
    "min_confidence": 0.6,
    "pass_delay": 1.0,
    "checkpoint_every": 1,
}


def _src_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _start_server(store_root):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", str(store_root),
         "--port", "0", "--workers", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=_src_env(),
    )
    deadline = time.monotonic() + 30.0
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"server died during startup:\n{''.join(lines)}"
            )
        lines.append(line)
        if line.startswith("repro-server listening"):
            port = int(line.split("port=")[1].split()[0])
            return proc, port, lines
    raise AssertionError("server never printed its banner")


def _request(port, method, path, body=None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", method=method,
        data=json.dumps(body).encode() if body is not None else None,
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def _wait(predicate, deadline=DEADLINE, message="condition"):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        value = predicate()
        if value:
            return value
        time.sleep(0.1)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.mark.slow
def test_sigkill_server_midjob_then_restart_finishes_byte_identical(
    tmp_path, basket_path
):
    store_root = tmp_path / "store"
    proc, port, _lines = _start_server(store_root)
    try:
        record = _request(port, "POST", "/jobs", {
            "kind": "mine", "algorithm": "apriori",
            "dataset": basket_path, "params": JOB_PARAMS,
        })
        job_id = record["job_id"]
        store = JobStore(store_root)

        def _mid_run():
            current = store.get(job_id)
            snapshots = list(store.checkpoint_dir(job_id).glob("snapshot-*"))
            return current.state == "running" and snapshots
        _wait(_mid_run, message="job running with a persisted checkpoint")

        # No warning, no cleanup, no finally blocks: the server is gone.
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    # The store still says "running" -- the truth as the dead server
    # knew it.  Restart against the same store.
    assert store.get(job_id).state == "running"
    proc, port, lines = _start_server(store_root)
    try:
        assert any(f"recovered job={job_id}" in line for line in lines), lines
        final = _wait(
            lambda: (store.get(job_id)
                     if store.get(job_id).state in
                     ("done", "failed", "cancelled") else None),
            message="recovered job to finish",
        )
        assert final.state == "done", final.error
        assert final.recoveries == 1
        assert final.attempts == 2
        result = store.read_result_bytes(job_id)
        reference = canonical_result_bytes(
            execute_job("mine", basket_path, "apriori", JOB_PARAMS)
        )
        assert result == reference
        # And the HTTP surface serves the same bytes.
        fetched = _request(port, "GET", f"/jobs/{job_id}/result")
        assert canonical_result_bytes(fetched) == reference
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)
