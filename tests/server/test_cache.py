"""Result cache: integrity checking, quarantine, cache-hit admission."""

import time

import pytest

from repro.runtime.faults import DiskGremlin
from repro.runtime.fsio import clear_injector, install_injector
from repro.server.cache import MAGIC, ResultCache, content_key
from repro.server.quotas import QuotaPolicy, TenantQuota
from repro.server.scheduler import Scheduler
from repro.server.store import JobStore

DEADLINE = 60.0


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "store")


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


@pytest.fixture(autouse=True)
def _clean_injector():
    clear_injector()
    yield
    clear_injector()


def _wait_terminal(store, job_id, deadline=DEADLINE):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        record = store.get(job_id)
        if record.state in ("done", "failed", "cancelled"):
            return record
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


class TestResultCacheUnit:
    def test_roundtrip(self, cache):
        cache.put("k1", b'{"answer":42}\n')
        assert cache.get("k1") == b'{"answer":42}\n'
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 0,
                                 "quarantined": 0}

    def test_miss(self, cache):
        assert cache.get("absent") is None
        assert cache.stats()["misses"] == 1

    def test_overwrite(self, cache):
        cache.put("k", b"old")
        cache.put("k", b"new")
        assert cache.get("k") == b"new"
        assert cache.entries() == 1

    @pytest.mark.parametrize("corrupt", [
        lambda raw: raw[:-3],                          # truncated payload
        lambda raw: raw[: len(MAGIC)],                 # header only
        lambda raw: b"XX" + raw[2:],                   # wrong magic
        lambda raw: raw[:-1] + bytes([raw[-1] ^ 1]),   # flipped bit
        lambda raw: b"",                               # empty file
    ])
    def test_corruption_is_quarantined_never_served(self, cache, corrupt):
        cache.put("k", b'{"answer":42}\n')
        path = cache.entry_path("k")
        path.write_bytes(corrupt(path.read_bytes()))
        assert cache.get("k") is None  # a wrong answer is never served
        assert cache.entries() == 0
        assert cache.quarantined() == 1
        # The damaged bytes are kept aside for post-mortem.
        assert path.with_name(path.name + ".quarantined").exists()
        # The key is reusable: a recompute repopulates it cleanly.
        cache.put("k", b'{"answer":42}\n')
        assert cache.get("k") == b'{"answer":42}\n'

    def test_put_failure_raises_oserror(self, cache):
        gremlin = DiskGremlin(op="write", after=0, burst=1,
                              match=str(cache.root))
        install_injector(gremlin)
        with pytest.raises(OSError):
            cache.put("k", b"data")
        clear_injector()
        assert cache.entries() == 0  # atomic: no torn entry visible


class TestCacheHitAdmission:
    def _scheduler(self, store, tmp_path, **kwargs):
        return Scheduler(store, workers=1,
                         result_cache=ResultCache(tmp_path / "cache"),
                         **kwargs)

    def test_identical_resubmission_served_from_cache(
        self, store, tmp_path, basket_path
    ):
        scheduler = self._scheduler(store, tmp_path)
        scheduler.start()
        try:
            params = {"min_support": 0.05}
            first = scheduler.submit("t", "mine", "apriori", basket_path,
                                     params)
            done = _wait_terminal(store, first.job_id)
            assert done.state == "done", done.error
            original = store.read_result_bytes(first.job_id)

            second = scheduler.submit("t", "mine", "apriori", basket_path,
                                      params)
            # Admitted straight to done — no queue wait, no re-mining.
            fresh = store.get(second.job_id)
            assert fresh.state == "done"
            assert fresh.cache_hit is True
            assert second.job_id != first.job_id
            assert store.read_result_bytes(second.job_id) == original
            events, _ = store.read_events(second.job_id)
            assert [e["phase"] for e in events] == ["submitted", "done"]
            assert events[-1]["info"] == {"cache_hit": True}
        finally:
            scheduler.stop()

    def test_cache_hit_bypasses_backlog_quota(
        self, store, tmp_path, basket_path
    ):
        quotas = QuotaPolicy(default=TenantQuota(max_queued=1))
        scheduler = self._scheduler(store, tmp_path, quotas=quotas)
        scheduler.start()
        try:
            params = {"min_support": 0.05}
            first = scheduler.submit("t", "mine", "apriori", basket_path,
                                     params)
            _wait_terminal(store, first.job_id)
        finally:
            scheduler.stop()
        # Fill the backlog (scheduler stopped: jobs stay queued).
        scheduler.submit("t", "mine", "apriori", basket_path,
                         {"min_support": 0.2})
        # A fresh submission bounces off the full backlog...
        from repro.server.quotas import OverQuota
        with pytest.raises(OverQuota):
            scheduler.submit("t", "mine", "apriori", basket_path,
                             {"min_support": 0.3})
        # ...but the cached duplicate still gets in: no work is burned.
        hit = scheduler.submit("t", "mine", "apriori", basket_path, params)
        assert store.get(hit.job_id).cache_hit is True

    def test_degraded_results_are_never_cached(
        self, store, tmp_path, basket_path
    ):
        quotas = QuotaPolicy(default=TenantQuota(max_candidates=5))
        scheduler = self._scheduler(store, tmp_path, quotas=quotas)
        scheduler.start()
        try:
            params = {"min_support": 0.02}
            first = scheduler.submit("t", "mine", "apriori", basket_path,
                                     params)
            done = _wait_terminal(store, first.job_id)
            assert done.state == "done" and done.degraded is True
            assert scheduler.result_cache.entries() == 0
            # The resubmission runs again instead of inheriting the
            # truncated answer.
            second = scheduler.submit("t", "mine", "apriori", basket_path,
                                      params)
            assert store.get(second.job_id).cache_hit is False
        finally:
            scheduler.stop()

    def test_corrupted_entry_recomputed_not_served(
        self, store, tmp_path, basket_path
    ):
        scheduler = self._scheduler(store, tmp_path)
        scheduler.start()
        try:
            params = {"min_support": 0.05}
            first = scheduler.submit("t", "mine", "apriori", basket_path,
                                     params)
            _wait_terminal(store, first.job_id)
            original = store.read_result_bytes(first.job_id)
            cache = scheduler.result_cache
            key = content_key("mine", "apriori", basket_path, params)
            path = cache.entry_path(key)
            raw = path.read_bytes()
            path.write_bytes(raw[:-4])  # bit rot

            second = scheduler.submit("t", "mine", "apriori", basket_path,
                                      params)
            assert getattr(second, "deduplicated", False) is False
            final = _wait_terminal(store, second.job_id)
            assert final.state == "done"
            assert final.cache_hit is False  # recomputed, not served
            assert store.read_result_bytes(second.job_id) == original
            assert cache.quarantined() == 1
            # ...and the recompute healed the entry for the next one.
            third = scheduler.submit("t", "mine", "apriori", basket_path,
                                     params)
            assert store.get(third.job_id).cache_hit is True
        finally:
            scheduler.stop()

    def test_cache_put_fault_does_not_fail_job(
        self, store, tmp_path, basket_path
    ):
        scheduler = self._scheduler(store, tmp_path)
        gremlin = DiskGremlin(op="write", after=0, burst=None,
                              match=str(tmp_path / "cache"))
        install_injector(gremlin)
        scheduler.start()
        try:
            record = scheduler.submit("t", "mine", "apriori", basket_path,
                                      {"min_support": 0.05})
            final = _wait_terminal(store, record.job_id)
            assert final.state == "done", final.error
            assert scheduler.result_cache.entries() == 0
        finally:
            scheduler.stop()
            clear_injector()

    def test_disabled_cache_never_hits(self, store, basket_path):
        scheduler = Scheduler(store, workers=1)  # result_cache=None
        scheduler.start()
        try:
            params = {"min_support": 0.05}
            first = scheduler.submit("t", "mine", "apriori", basket_path,
                                     params)
            _wait_terminal(store, first.job_id)
            second = scheduler.submit("t", "mine", "apriori", basket_path,
                                      params)
            final = _wait_terminal(store, second.job_id)
            assert final.cache_hit is False
            assert scheduler.cache_stats() == {
                "enabled": False, "entries": 0, "hits": 0,
                "misses": 0, "quarantined": 0,
            }
        finally:
            scheduler.stop()
