"""Scheduler: supervised execution, degradation, cancellation, recovery."""

import time

import pytest

from repro.server.quotas import QuotaPolicy, TenantQuota
from repro.server.scheduler import (
    Scheduler,
    canonical_result_bytes,
    execute_job,
)
from repro.server.store import JobStore

#: generous ceiling for a small job to finish on a loaded CI box.
DEADLINE = 60.0


def _wait_terminal(store, job_id, deadline=DEADLINE):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        record = store.get(job_id)
        if record.state in ("done", "failed", "cancelled"):
            return record
        time.sleep(0.05)
    raise AssertionError(
        f"job {job_id} still {store.get(job_id).state!r} after {deadline}s"
    )


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "store")


def _run_one(store, kind, algorithm, dataset, params, **sched_kwargs):
    scheduler = Scheduler(store, workers=1, **sched_kwargs)
    scheduler.start()
    try:
        record = scheduler.submit("t", kind, algorithm, dataset, params)
        return _wait_terminal(store, record.job_id)
    finally:
        scheduler.stop()


class TestExecution:
    def test_mine_job_matches_serial_reference(self, store, basket_path):
        params = {"min_support": 0.05, "min_confidence": 0.6}
        record = _run_one(store, "mine", "apriori", basket_path, params)
        assert record.state == "done", record.error
        assert record.degraded is False
        reference = canonical_result_bytes(
            execute_job("mine", basket_path, "apriori", params)
        )
        assert store.read_result_bytes(record.job_id) == reference

    def test_classify_job(self, store, agrawal_path):
        record = _run_one(store, "classify", "c45", agrawal_path,
                          {"target": "group"})
        assert record.state == "done", record.error
        payload = store.read_result_bytes(record.job_id)
        assert b'"accuracy"' in payload

    def test_cluster_job(self, store, blobs_path):
        record = _run_one(store, "cluster", "kmeans", blobs_path, {"k": 3})
        assert record.state == "done", record.error
        payload = store.read_result_bytes(record.job_id)
        assert b'"sse"' in payload

    def test_application_error_is_failed_not_crash(self, store):
        record = _run_one(store, "mine", "apriori", "/no/such/file.dat", {})
        assert record.state == "failed"
        assert record.error["cause"] == "error"

    def test_unknown_kind_is_failed(self, store, basket_path):
        record = _run_one(store, "bogus-kind", "apriori", basket_path, {})
        assert record.state == "failed"


class TestDegradation:
    def test_quota_budget_degrades_instead_of_failing(self, store, basket_path):
        quotas = QuotaPolicy(default=TenantQuota(max_candidates=5))
        record = _run_one(store, "mine", "apriori", basket_path,
                          {"min_support": 0.02}, quotas=quotas)
        assert record.state == "done", record.error
        assert record.degraded is True
        result = store.read_result_bytes(record.job_id)
        assert b'"degraded":true' in result


class TestCancellation:
    def test_cancel_queued_job_never_runs(self, store, basket_path):
        scheduler = Scheduler(store, workers=1)
        # Not started: the job stays queued, cancel wins the race trivially.
        record = scheduler.submit("t", "mine", "apriori", basket_path, {})
        cancelled = scheduler.cancel(record.job_id)
        assert cancelled.state == "cancelled"
        scheduler.start()
        try:
            time.sleep(0.3)
            assert store.get(record.job_id).state == "cancelled"
        finally:
            scheduler.stop()

    def test_cancel_running_job_lands_cancelled(self, store, basket_path):
        scheduler = Scheduler(store, workers=1)
        scheduler.start()
        try:
            record = scheduler.submit(
                "t", "mine", "apriori", basket_path,
                {"min_support": 0.02, "pass_delay": 0.3},
            )
            deadline = time.monotonic() + DEADLINE
            while store.get(record.job_id).state == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.02)
            if store.get(record.job_id).state == "running":
                scheduler.cancel(record.job_id)
            final = _wait_terminal(store, record.job_id)
            # If the job outran the cancel it may have finished; both are
            # legal, but with a 0.3s-per-pass throttle cancel should win.
            assert final.state == "cancelled"
        finally:
            scheduler.stop()


class TestRecovery:
    def test_restart_requeues_and_finishes_byte_identical(
        self, store, basket_path
    ):
        """A job left ``running`` by a dead scheduler restarts cleanly."""
        params = {"min_support": 0.05, "min_confidence": 0.6}
        abandoned = store.create(
            tenant="t", kind="mine", algorithm="apriori",
            dataset=basket_path, params=params,
        )
        store.transition(abandoned.job_id, "running", attempts=1)
        scheduler = Scheduler(store, workers=1)
        recovered = scheduler.start()
        try:
            assert [r.job_id for r in recovered] == [abandoned.job_id]
            final = _wait_terminal(store, abandoned.job_id)
            assert final.state == "done", final.error
            assert final.recoveries == 1
            reference = canonical_result_bytes(
                execute_job("mine", basket_path, "apriori", params)
            )
            assert store.read_result_bytes(abandoned.job_id) == reference
        finally:
            scheduler.stop()


class TestConcurrencyGate:
    def test_tenant_running_limit_serializes_dispatch(
        self, store, basket_path
    ):
        quotas = QuotaPolicy(default=TenantQuota(max_running=1))
        scheduler = Scheduler(store, workers=2, quotas=quotas,
                              poll_interval=0.02)
        scheduler.start()
        try:
            first = scheduler.submit("t", "mine", "apriori", basket_path,
                                     {"min_support": 0.05})
            second = scheduler.submit("t", "mine", "apriori", basket_path,
                                      {"min_support": 0.05})
            for job_id in (first.job_id, second.job_id):
                final = _wait_terminal(store, job_id)
                assert final.state == "done", final.error
        finally:
            scheduler.stop()
