"""Idempotent resubmission: key derivation, dedupe, duplicate storms."""

import os
import threading
import time

import pytest

from repro.runtime.faults import DiskGremlin
from repro.runtime.fsio import clear_injector, install_injector
from repro.server.cache import content_key
from repro.server.scheduler import Scheduler
from repro.server.store import JobStore

DEADLINE = 60.0


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "store")


@pytest.fixture(autouse=True)
def _clean_injector():
    clear_injector()
    yield
    clear_injector()


def _job_dirs(store):
    return [entry for entry in store.root.iterdir()
            if entry.is_dir() and not entry.name.startswith("_")]


def _wait_terminal(store, job_id, deadline=DEADLINE):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        record = store.get(job_id)
        if record.state in ("done", "failed", "cancelled"):
            return record
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


class TestContentKey:
    def test_same_submission_same_key(self, basket_path):
        a = content_key("mine", "apriori", basket_path, {"min_support": 0.1})
        b = content_key("mine", "apriori", basket_path, {"min_support": 0.1})
        assert a == b and a is not None

    def test_any_difference_changes_key(self, basket_path):
        base = content_key("mine", "apriori", basket_path,
                           {"min_support": 0.1})
        assert content_key("mine", "dhp", basket_path,
                           {"min_support": 0.1}) != base
        assert content_key("mine", "apriori", basket_path,
                           {"min_support": 0.2}) != base

    def test_param_order_is_canonical(self, basket_path):
        a = content_key("mine", "apriori", basket_path,
                        {"min_support": 0.1, "min_confidence": 0.5})
        b = content_key("mine", "apriori", basket_path,
                        {"min_confidence": 0.5, "min_support": 0.1})
        assert a == b

    def test_dataset_bytes_matter_not_name(self, tmp_path):
        first = tmp_path / "a.dat"
        second = tmp_path / "b.dat"
        first.write_bytes(b"1 2 3\n")
        second.write_bytes(b"1 2 3\n")
        assert (content_key("mine", "apriori", first, {})
                == content_key("mine", "apriori", second, {}))
        second.write_bytes(b"1 2 4\n")
        assert (content_key("mine", "apriori", first, {})
                != content_key("mine", "apriori", second, {}))

    def test_unreadable_dataset_yields_no_key(self):
        assert content_key("mine", "apriori", "/no/such/file", {}) is None


class TestDedupe:
    def test_inflight_duplicate_returns_same_job(self, store, basket_path):
        scheduler = Scheduler(store, workers=1)
        # Not started: jobs stay queued (in-flight) for the whole test.
        params = {"min_support": 0.05}
        first = scheduler.submit("t", "mine", "apriori", basket_path, params)
        second = scheduler.submit("t", "mine", "apriori", basket_path, params)
        assert second.job_id == first.job_id
        assert getattr(second, "deduplicated", False) is True
        assert getattr(first, "deduplicated", False) is False
        assert len(_job_dirs(store)) == 1

    def test_user_key_dedupes_different_params(self, store, basket_path):
        scheduler = Scheduler(store, workers=1)
        first = scheduler.submit("t", "mine", "apriori", basket_path,
                                 {"min_support": 0.05},
                                 idempotency_key="retry-42")
        second = scheduler.submit("t", "mine", "apriori", basket_path,
                                  {"min_support": 0.2},
                                  idempotency_key="retry-42")
        assert second.job_id == first.job_id
        assert len(_job_dirs(store)) == 1

    def test_different_submissions_get_different_jobs(
        self, store, basket_path
    ):
        scheduler = Scheduler(store, workers=1)
        first = scheduler.submit("t", "mine", "apriori", basket_path,
                                 {"min_support": 0.05})
        second = scheduler.submit("t", "mine", "apriori", basket_path,
                                  {"min_support": 0.2})
        assert second.job_id != first.job_id
        assert len(_job_dirs(store)) == 2

    def test_dedupe_survives_restart(self, tmp_path, basket_path):
        # The submission index is durable: a new store/scheduler over
        # the same root still dedupes the retry.
        root = tmp_path / "store"
        first = Scheduler(JobStore(root), workers=1).submit(
            "t", "mine", "apriori", basket_path, {"min_support": 0.05},
        )
        reborn = Scheduler(JobStore(root), workers=1)
        second = reborn.submit(
            "t", "mine", "apriori", basket_path, {"min_support": 0.05},
        )
        assert second.job_id == first.job_id


class TestDuplicateStorm:
    def test_concurrent_storm_one_job(self, store, basket_path):
        scheduler = Scheduler(store, workers=1)
        params = {"min_support": 0.05}
        results, errors = [], []
        barrier = threading.Barrier(8)

        def storm():
            try:
                barrier.wait(timeout=10)
                record = scheduler.submit(
                    "t", "mine", "apriori", basket_path, params,
                    idempotency_key="storm-1",
                )
                results.append(record.job_id)
            except Exception as exc:  # noqa: BLE001 - collected below
                errors.append(exc)

        threads = [threading.Thread(target=storm) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(results) == 8
        assert len(set(results)) == 1  # N identical ids
        assert len(_job_dirs(store)) == 1  # exactly one job directory

    def test_storm_under_enospc_burst(self, store, basket_path):
        # First submission lands durably; then the disk starts failing
        # writes.  Duplicate retries ride the read-only dedupe path, so
        # every one still resolves to the same id and no half-created
        # directories appear.
        scheduler = Scheduler(store, workers=1)
        params = {"min_support": 0.05}
        first = scheduler.submit("t", "mine", "apriori", basket_path,
                                 params, idempotency_key="storm-2")
        gremlin = DiskGremlin(op="write", after=0, burst=None)
        install_injector(gremlin)
        results, errors = [], []

        def storm():
            try:
                record = scheduler.submit(
                    "t", "mine", "apriori", basket_path, params,
                    idempotency_key="storm-2",
                )
                results.append(record.job_id)
            except Exception as exc:  # noqa: BLE001 - collected below
                errors.append(exc)

        threads = [threading.Thread(target=storm) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        clear_injector()
        assert not errors
        assert set(results) == {first.job_id}
        assert len(_job_dirs(store)) == 1

    def test_fresh_create_under_enospc_rolls_back(self, store, basket_path):
        # A brand-new submission that cannot be durably indexed must
        # not leave a half-admitted directory behind.
        scheduler = Scheduler(store, workers=1)
        gremlin = DiskGremlin(op="write", after=0, burst=None)
        install_injector(gremlin)
        with pytest.raises(OSError):
            scheduler.submit("t", "mine", "apriori", basket_path,
                             {"min_support": 0.05})
        clear_injector()
        assert _job_dirs(store) == []


class TestDedupeAfterCompletion:
    def test_terminal_job_without_cache_reruns(self, store, basket_path):
        # Caching disabled: a duplicate of a *finished* job is a fresh
        # run (dedupe only collapses in-flight work).
        scheduler = Scheduler(store, workers=1)
        scheduler.start()
        try:
            params = {"min_support": 0.05}
            first = scheduler.submit("t", "mine", "apriori", basket_path,
                                     params)
            _wait_terminal(store, first.job_id)
            second = scheduler.submit("t", "mine", "apriori", basket_path,
                                      params)
            assert second.job_id != first.job_id
            assert getattr(second, "deduplicated", False) is False
            final = _wait_terminal(store, second.job_id)
            assert final.state == "done"
            assert final.cache_hit is False
        finally:
            scheduler.stop()
