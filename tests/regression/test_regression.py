"""Unit tests for the regression subpackage."""

import numpy as np
import pytest

from repro.core import NotFittedError, Table, ValidationError, categorical, numeric
from repro.datasets import friedman1
from repro.preprocessing import train_test_split
from repro.regression import (
    LinearRegression,
    RegressionTree,
    mean_absolute_error,
    mean_squared_error,
    r_squared,
    root_mean_squared_error,
)


class TestMetrics:
    def test_mse_by_hand(self):
        assert mean_squared_error([1.0, 2.0], [1.0, 4.0]) == 2.0

    def test_rmse_is_sqrt(self):
        assert root_mean_squared_error([0.0, 0.0], [3.0, 4.0]) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_mae_by_hand(self):
        assert mean_absolute_error([1.0, -1.0], [0.0, 0.0]) == 1.0

    def test_r2_perfect_and_mean(self):
        y = [1.0, 2.0, 3.0]
        assert r_squared(y, y) == 1.0
        assert r_squared(y, [2.0, 2.0, 2.0]) == 0.0

    def test_r2_worse_than_mean_is_negative(self):
        assert r_squared([1.0, 2.0, 3.0], [3.0, 2.0, 1.0]) < 0.0

    def test_constant_target_convention(self):
        assert r_squared([5.0, 5.0], [5.0, 5.0]) == 1.0
        assert r_squared([5.0, 5.0], [4.0, 6.0]) == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            mean_squared_error([1.0], [1.0, 2.0])
        with pytest.raises(ValidationError):
            r_squared([], [])
        with pytest.raises(ValidationError):
            mean_absolute_error([np.nan], [1.0])


class TestRegressionTree:
    def test_fits_step_function_exactly(self):
        rows = [(float(x), 0.0 if x < 50 else 10.0) for x in range(100)]
        table = Table.from_rows(rows, [numeric("x"), numeric("y")])
        model = RegressionTree().fit(table, "y")
        assert model.score(table) == pytest.approx(1.0)
        assert model.depth() == 1

    def test_piecewise_linear_approximation_improves_with_depth(self):
        rows = [(float(x) / 10, float(x) / 10 * 2.0) for x in range(200)]
        table = Table.from_rows(rows, [numeric("x"), numeric("y")])
        shallow = RegressionTree(max_depth=2).fit(table, "y").score(table)
        deep = RegressionTree(max_depth=6).fit(table, "y").score(table)
        assert deep > shallow

    def test_categorical_split_exact_ordering(self):
        rows = []
        means = {"a": 0.0, "b": 10.0, "c": 0.5, "d": 9.5}
        for cat, mean in means.items():
            rows += [(cat, mean + d) for d in (-0.1, 0.0, 0.1)]
        table = Table.from_rows(
            rows, [categorical("g", list(means)), numeric("y")]
        )
        model = RegressionTree(max_depth=1).fit(table, "y")
        # One split must separate {a, c} from {b, d}.
        predictions = model.predict(table)
        low = predictions[[0, 1, 2, 6, 7, 8]]
        high = predictions[[3, 4, 5, 9, 10, 11]]
        assert low.max() < high.min()

    def test_friedman_beats_mean_predictor(self):
        table = friedman1(1200, random_state=3)
        train, test = train_test_split(table, 0.3, random_state=0)
        model = RegressionTree(max_depth=8, min_samples_leaf=5).fit(train, "y")
        assert model.score(test) > 0.5

    def test_ignores_noise_features(self):
        # Friedman1's x6..x10 are irrelevant; a shallow tree should
        # never split on them first.
        table = friedman1(1500, noise_sd=0.5, random_state=4)
        model = RegressionTree(max_depth=1).fit(table, "y")
        assert model.tree_.attribute.name in ("x1", "x2", "x3", "x4", "x5")

    def test_min_samples_leaf(self):
        table = friedman1(300, random_state=5)
        model = RegressionTree(min_samples_leaf=30).fit(table, "y")

        def leaf_sizes(node):
            if hasattr(node, "value"):
                return [node.n]
            return leaf_sizes(node.left) + leaf_sizes(node.right)

        assert min(leaf_sizes(model.tree_)) >= 30

    def test_missing_feature_handling(self):
        rows = [(1.0, 1.0), (None, 1.2), (10.0, 9.8), (11.0, 10.0)]
        table = Table.from_rows(rows, [numeric("x"), numeric("y")])
        model = RegressionTree(min_samples_leaf=1).fit(table, "y")
        assert np.isfinite(model.predict(table)).all()

    def test_rejects_categorical_target(self):
        table = Table.from_rows(
            [(1.0, "a")], [numeric("x"), categorical("y", ["a"])]
        )
        with pytest.raises(ValidationError):
            RegressionTree().fit(table, "y")

    def test_rejects_missing_target(self):
        table = Table.from_rows([(1.0, None)], [numeric("x"), numeric("y")])
        with pytest.raises(ValidationError):
            RegressionTree().fit(table, "y")

    def test_predict_before_fit(self):
        table = Table.from_rows([(1.0, 2.0)], [numeric("x"), numeric("y")])
        with pytest.raises(NotFittedError):
            RegressionTree().predict(table)


class TestLinearRegression:
    def test_recovers_exact_line(self):
        rows = [(float(x), 3.0 * x + 1.0) for x in range(20)]
        table = Table.from_rows(rows, [numeric("x"), numeric("y")])
        model = LinearRegression().fit(table, "y")
        assert model.coefficients_[0] == pytest.approx(3.0)
        assert model.intercept_ == pytest.approx(1.0)
        assert model.score(table) == pytest.approx(1.0)

    def test_multivariate(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        y = X @ np.array([2.0, -1.0, 0.5]) + 4.0
        table = Table(
            [numeric("a"), numeric("b"), numeric("c"), numeric("y")],
            {"a": X[:, 0], "b": X[:, 1], "c": X[:, 2], "y": y},
        )
        model = LinearRegression().fit(table, "y")
        assert np.allclose(model.coefficients_, [2.0, -1.0, 0.5])

    def test_categorical_one_hot(self):
        rows = [("a", 1.0), ("b", 5.0)] * 10
        table = Table.from_rows(
            rows, [categorical("g", ["a", "b"]), numeric("y")]
        )
        model = LinearRegression().fit(table, "y")
        assert model.score(table) == pytest.approx(1.0)

    def test_tree_beats_ols_on_nonlinear_signal(self):
        # A low/high/low plateau signal: zero linear trend, trivially
        # piecewise-constant.  (A balanced square wave would defeat the
        # *greedy* splitter — every first split has zero gain — which is
        # the classic greedy-myopia caveat, not a bug.)
        rows = [
            (float(x), 10.0 if 100 <= x < 200 else 0.0) for x in range(300)
        ]
        table = Table.from_rows(rows, [numeric("x"), numeric("y")])
        tree = RegressionTree(max_depth=8).fit(table, "y").score(table)
        ols = LinearRegression().fit(table, "y").score(table)
        assert tree == pytest.approx(1.0)
        assert tree > ols + 0.3

    def test_schema_mismatch_rejected(self):
        rows = [(1.0, 2.0)]
        table = Table.from_rows(rows, [numeric("x"), numeric("y")])
        model = LinearRegression().fit(table, "y")
        other = Table.from_rows([(1.0,)], [numeric("z")])
        with pytest.raises(ValidationError):
            model.predict(other)

    def test_predict_before_fit(self):
        table = Table.from_rows([(1.0, 2.0)], [numeric("x"), numeric("y")])
        with pytest.raises(NotFittedError):
            LinearRegression().predict(table)


class TestFriedman1:
    def test_shapes_and_determinism(self):
        a = friedman1(50, random_state=1)
        b = friedman1(50, random_state=1)
        assert np.allclose(a.column("y"), b.column("y"))
        assert a.attribute_names[-1] == "y"

    def test_noise_free_signal_formula(self):
        table = friedman1(100, noise_sd=0.0, random_state=2)
        x = {name: table.column(name) for name in table.attribute_names}
        expected = (
            10 * np.sin(np.pi * x["x1"] * x["x2"])
            + 20 * (x["x3"] - 0.5) ** 2
            + 10 * x["x4"]
            + 5 * x["x5"]
        )
        assert np.allclose(table.column("y"), expected)

    def test_needs_five_features(self):
        with pytest.raises(ValidationError):
            friedman1(10, n_features=4)
