"""Property-based tests for classifiers and clusterers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classification import C45, CART, KNN, NaiveBayes, ZeroR
from repro.clustering import KMeans
from repro.core import Table, categorical, numeric
from repro.evaluation import sse


@st.composite
def labelled_tables(draw):
    """Random small numeric tables with a binary target."""
    n = draw(st.integers(8, 40))
    xs = draw(
        st.lists(
            st.floats(-100.0, 100.0, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    zs = draw(
        st.lists(
            st.floats(-100.0, 100.0, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    # Force both classes to appear.
    labels = draw(
        st.lists(st.sampled_from(["p", "q"]), min_size=n, max_size=n).filter(
            lambda ls: len(set(ls)) == 2
        )
    )
    rows = list(zip(xs, zs, labels))
    table = Table.from_rows(
        rows,
        [numeric("x"), numeric("z"), categorical("y", ["p", "q"])],
    )
    return table


CLASSIFIERS = [
    lambda: C45(prune=False),
    lambda: CART(),
    lambda: NaiveBayes(),
    lambda: KNN(n_neighbors=1),
    lambda: ZeroR(),
]


@settings(max_examples=25, deadline=None)
@given(labelled_tables(), st.integers(0, len(CLASSIFIERS) - 1))
def test_classifier_protocol_invariants(table, which):
    model = CLASSIFIERS[which]().fit(table, "y")
    predictions = model.predict(table)
    assert len(predictions) == table.n_rows
    assert set(predictions).issubset({"p", "q"})
    proba = model.predict_proba(table)
    assert proba.shape == (table.n_rows, 2)
    assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-9)
    assert (proba >= -1e-12).all()
    score = model.score(table)
    assert 0.0 <= score <= 1.0


@settings(max_examples=25, deadline=None)
@given(labelled_tables())
def test_zeror_is_a_floor_for_trees(table):
    floor = ZeroR().fit(table, "y").score(table)
    tree = CART().fit(table, "y").score(table)
    assert tree >= floor - 1e-12


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(-50.0, 50.0, allow_nan=False),
            st.floats(-50.0, 50.0, allow_nan=False),
        ),
        min_size=6,
        max_size=40,
    ),
    st.integers(1, 4),
)
def test_kmeans_invariants(points, k):
    X = np.array(points)
    k = min(k, len(np.unique(X, axis=0)))
    model = KMeans(k, n_init=2, random_state=0).fit(X)
    assert model.labels_.shape == (len(X),)
    assert model.labels_.min() >= 0 and model.labels_.max() < k
    assert model.cluster_centers_.shape == (k, 2)
    # Inertia equals the SSE of the final assignment...
    assert model.inertia_ >= -1e-9
    assert abs(model.inertia_ - sse(X, model.labels_, model.cluster_centers_)) < 1e-6
    # ...and every point sits with its nearest center.
    d = ((X[:, None, :] - model.cluster_centers_[None]) ** 2).sum(axis=2)
    assert (d[np.arange(len(X)), model.labels_] <= d.min(axis=1) + 1e-9).all()
