"""Property-based tests for the outlier detectors."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.outliers import distance_outliers, iqr_outliers, zscore_outliers

matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(3, 40), st.integers(1, 3)),
    elements=st.floats(-1e4, 1e4, allow_nan=False),
)


@settings(max_examples=50, deadline=None)
@given(matrices)
def test_masks_align_with_rows(X):
    for mask in (
        zscore_outliers(X, 3.0),
        iqr_outliers(X, 1.5),
        distance_outliers(X, eps=1.0, fraction=0.9),
    ):
        assert mask.shape == (len(X),)
        assert mask.dtype == bool


@settings(max_examples=50, deadline=None)
@given(matrices)
def test_zscore_monotone_in_threshold(X):
    loose = zscore_outliers(X, 1.0)
    strict = zscore_outliers(X, 3.0)
    # Everything flagged at the strict threshold is flagged at the loose.
    assert (loose | ~strict).all()


@settings(max_examples=50, deadline=None)
@given(matrices)
def test_iqr_monotone_in_k(X):
    loose = iqr_outliers(X, 1.0)
    strict = iqr_outliers(X, 3.0)
    assert (loose | ~strict).all()


@settings(max_examples=50, deadline=None)
@given(matrices, st.floats(0.1, 10.0))
def test_distance_outliers_monotone_in_eps(X, eps):
    small = distance_outliers(X, eps=eps, fraction=0.9)
    large = distance_outliers(X, eps=eps * 4, fraction=0.9)
    # Growing eps can only turn outliers into inliers.
    assert (small | ~large).all()


@settings(max_examples=50, deadline=None)
@given(matrices)
def test_translation_invariance(X):
    # Quantize so the shift cannot absorb sub-epsilon values (floating
    # point addition is not exactly translation-invariant).
    X = np.round(X, 3)
    shifted = X + 123.456
    assert (zscore_outliers(X, 2.5) == zscore_outliers(shifted, 2.5)).all()
    assert (iqr_outliers(X) == iqr_outliers(shifted)).all()
    assert (
        distance_outliers(X, 2.0, 0.9)
        == distance_outliers(shifted, 2.0, 0.9)
    ).all()


@settings(max_examples=40, deadline=None)
@given(matrices)
def test_duplicated_dataset_never_more_outliers_by_distance(X):
    # Duplicating every point doubles each point's within-eps count
    # relative to n, so no inlier can become an outlier.
    doubled = np.vstack([X, X])
    base = distance_outliers(X, 2.0, 0.9)
    dup = distance_outliers(doubled, 2.0, 0.9)[: len(X)]
    assert (base | ~dup).all()
