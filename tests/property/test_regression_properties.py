"""Property-based tests for the regression subpackage."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import Table, numeric
from repro.regression import (
    LinearRegression,
    RegressionTree,
    mean_absolute_error,
    mean_squared_error,
    r_squared,
    root_mean_squared_error,
)

vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(2, 40),
    elements=st.floats(-1e3, 1e3, allow_nan=False),
)


@settings(max_examples=60, deadline=None)
@given(vectors, vectors)
def test_metric_relationships(a, b):
    n = min(len(a), len(b))
    y_true, y_pred = a[:n], b[:n]
    mse = mean_squared_error(y_true, y_pred)
    assert mse >= 0.0
    assert root_mean_squared_error(y_true, y_pred) ** 2 == np.float64(
        mse
    ).item() or abs(root_mean_squared_error(y_true, y_pred) ** 2 - mse) < 1e-6
    assert mean_absolute_error(y_true, y_pred) >= 0.0
    # MAE <= RMSE (Jensen).
    assert (
        mean_absolute_error(y_true, y_pred)
        <= root_mean_squared_error(y_true, y_pred) + 1e-9
    )
    assert r_squared(y_true, y_true) == 1.0
    assert r_squared(y_true, y_pred) <= 1.0 + 1e-12


@st.composite
def regression_tables(draw):
    n = draw(st.integers(6, 50))
    x = draw(
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=n, max_size=n)
    )
    y = draw(
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=n, max_size=n)
    )
    return Table(
        [numeric("x"), numeric("y")],
        {"x": np.array(x), "y": np.array(y)},
    )


@settings(max_examples=30, deadline=None)
@given(regression_tables())
def test_tree_predictions_bounded_by_target_range(table):
    model = RegressionTree(max_depth=4).fit(table, "y")
    predictions = model.predict(table)
    y = table.column("y")
    assert predictions.min() >= y.min() - 1e-9
    assert predictions.max() <= y.max() + 1e-9
    # Training R^2 of any least-squares tree is never below the mean
    # predictor's 0 (each leaf predicts its own mean).
    assert model.score(table) >= -1e-9


@settings(max_examples=30, deadline=None)
@given(regression_tables())
def test_deeper_trees_fit_training_data_no_worse(table):
    shallow = RegressionTree(max_depth=1).fit(table, "y").score(table)
    deep = RegressionTree(max_depth=5).fit(table, "y").score(table)
    assert deep >= shallow - 1e-9


@settings(max_examples=30, deadline=None)
@given(regression_tables())
def test_ols_training_r2_nonnegative(table):
    # OLS with intercept can never do worse than the mean on its own
    # training data.
    model = LinearRegression().fit(table, "y")
    assert model.score(table) >= -1e-6
