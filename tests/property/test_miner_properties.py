"""Property-based tests for the frequent-itemset miners."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.associations import (
    apriori,
    apriori_hybrid,
    apriori_tid,
    brute_force,
    eclat,
    fp_growth,
    generate_rules,
)
from repro.core import TransactionDatabase
from repro.core.itemsets import subsets_of_size

transactions = st.lists(
    st.lists(st.integers(0, 9), min_size=0, max_size=6),
    min_size=1,
    max_size=25,
)
supports = st.sampled_from([0.1, 0.25, 0.5, 0.8])


@settings(max_examples=40, deadline=None)
@given(transactions, supports)
def test_all_miners_agree_with_oracle(txns, min_support):
    db = TransactionDatabase(txns)
    want = brute_force(db, min_support).supports
    for miner in (apriori, apriori_tid, apriori_hybrid, eclat, fp_growth):
        assert miner(db, min_support).supports == want


@settings(max_examples=40, deadline=None)
@given(transactions, supports)
def test_downward_closure(txns, min_support):
    db = TransactionDatabase(txns)
    result = apriori(db, min_support)
    for itemset in result:
        if len(itemset) > 1:
            for sub in subsets_of_size(itemset, len(itemset) - 1):
                assert sub in result
                assert result.count(sub) >= result.count(itemset)


@settings(max_examples=30, deadline=None)
@given(transactions)
def test_support_monotone_in_threshold(txns):
    db = TransactionDatabase(txns)
    loose = set(apriori(db, 0.1).supports)
    tight = set(apriori(db, 0.5).supports)
    assert tight.issubset(loose)


@settings(max_examples=30, deadline=None)
@given(transactions, supports)
def test_counts_match_direct_scan(txns, min_support):
    db = TransactionDatabase(txns)
    result = fp_growth(db, min_support)
    for itemset, count in result.supports.items():
        assert count == db.support_count(itemset)


@settings(max_examples=30, deadline=None)
@given(transactions, supports, st.sampled_from([0.3, 0.6, 0.9]))
def test_rule_statistics_are_consistent(txns, min_support, min_conf):
    db = TransactionDatabase(txns)
    itemsets = apriori(db, min_support)
    for rule in generate_rules(itemsets, min_conf):
        assert rule.confidence >= min_conf
        assert 0.0 <= rule.support <= 1.0
        # Confidence = support(X∪Y) / support(X), recomputed from scratch.
        union = tuple(sorted(rule.antecedent + rule.consequent))
        direct = db.support_count(union) / db.support_count(rule.antecedent)
        assert abs(rule.confidence - direct) < 1e-9


@settings(max_examples=25, deadline=None)
@given(transactions, supports)
def test_maximal_and_closed_invariants(txns, min_support):
    db = TransactionDatabase(txns)
    result = apriori(db, min_support)
    maximal = result.maximal()
    closed = result.closed()
    # Maximal sets are closed; both are subsets of the frequent sets.
    assert set(maximal).issubset(set(closed))
    assert set(closed).issubset(set(result.supports))
