"""Property-based tests for the sequential-pattern miners."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SequenceDatabase
from repro.core.sequences import sequence_contains
from repro.sequences import apriori_all, brute_force_sequences, gsp, prefixspan

sequences = st.lists(
    st.lists(
        st.lists(st.integers(0, 5), min_size=1, max_size=3),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=12,
)
supports = st.sampled_from([0.2, 0.4, 0.7])


@settings(max_examples=30, deadline=None)
@given(sequences, supports)
def test_gsp_and_prefixspan_match_oracle(seqs, min_support):
    db = SequenceDatabase(seqs)
    want = brute_force_sequences(db, min_support, max_length=5).supports
    assert gsp(db, min_support, max_length=5).supports == want
    assert prefixspan(db, min_support, max_length=5).supports == want


@settings(max_examples=25, deadline=None)
@given(sequences, supports)
def test_apriori_all_agrees_with_gsp(seqs, min_support):
    db = SequenceDatabase(seqs)
    assert apriori_all(db, min_support).supports == gsp(db, min_support).supports


@settings(max_examples=25, deadline=None)
@given(sequences, supports)
def test_counts_match_direct_scan(seqs, min_support):
    db = SequenceDatabase(seqs)
    result = prefixspan(db, min_support, max_length=5)
    for pattern, count in result.supports.items():
        assert count == db.support_count(pattern)


@settings(max_examples=25, deadline=None)
@given(sequences)
def test_pattern_antimonotonicity(seqs):
    """Every frequent pattern's sub-patterns are at least as frequent."""
    db = SequenceDatabase(seqs)
    result = gsp(db, 0.3, max_length=4)
    patterns = list(result.supports)
    for p in patterns:
        for q in patterns:
            if p != q and sequence_contains(p, q):
                assert result.count(q) >= result.count(p)


@settings(max_examples=20, deadline=None)
@given(sequences, supports)
def test_maximal_patterns_are_frequent_and_uncovered(seqs, min_support):
    db = SequenceDatabase(seqs)
    result = gsp(db, min_support, max_length=4)
    maximal = result.maximal()
    for pattern in maximal:
        assert pattern in result.supports
        for other in result.supports:
            if other != pattern:
                assert not sequence_contains(other, pattern)
