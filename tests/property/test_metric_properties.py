"""Property-based tests for evaluation metrics and measures."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.associations.measures import confidence, conviction, leverage, lift
from repro.classification import entropy, gini
from repro.evaluation import (
    accuracy,
    adjusted_rand_index,
    normalized_mutual_info,
    purity,
    rand_index,
)

labelings = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(2, 40),
    elements=st.integers(0, 4),
)


@settings(max_examples=60, deadline=None)
@given(labelings)
def test_external_metrics_perfect_on_self(labels):
    assert rand_index(labels, labels) == 1.0
    assert adjusted_rand_index(labels, labels) == 1.0
    assert purity(labels, labels) == 1.0
    assert abs(normalized_mutual_info(labels, labels) - 1.0) < 1e-9


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_external_metrics_in_bounds(data):
    n = data.draw(st.integers(2, 30))
    a = data.draw(hnp.arrays(np.int64, n, elements=st.integers(0, 3)))
    b = data.draw(hnp.arrays(np.int64, n, elements=st.integers(0, 3)))
    assert 0.0 <= rand_index(a, b) <= 1.0
    assert adjusted_rand_index(a, b) <= 1.0 + 1e-12
    assert 0.0 < purity(a, b) <= 1.0
    assert 0.0 <= normalized_mutual_info(a, b) <= 1.0


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_metrics_invariant_under_label_permutation(data):
    n = data.draw(st.integers(2, 30))
    a = data.draw(hnp.arrays(np.int64, n, elements=st.integers(0, 3)))
    b = data.draw(hnp.arrays(np.int64, n, elements=st.integers(0, 3)))
    remapped = (b + 7) * 3  # injective relabeling
    assert rand_index(a, b) == rand_index(a, remapped)
    assert adjusted_rand_index(a, b) == adjusted_rand_index(a, remapped)
    assert normalized_mutual_info(a, b) == normalized_mutual_info(a, remapped)


counts = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 6),
    elements=st.floats(0.0, 100.0),
)


@settings(max_examples=80, deadline=None)
@given(counts)
def test_entropy_and_gini_bounds(class_counts):
    h = entropy(class_counts)
    g = gini(class_counts)
    k = len(class_counts)
    assert 0.0 <= h <= math.log2(k) + 1e-9 if k > 1 else h == 0.0
    assert 0.0 <= g <= 1.0 - 1.0 / k + 1e-9


@settings(max_examples=80, deadline=None)
@given(
    st.floats(0.0, 1.0),
    st.floats(0.0, 1.0),
    st.floats(0.0, 1.0),
)
def test_measure_relationships(pxy, px, py):
    # Keep inputs coherent: max(0, px+py-1) <= pxy <= min(px, py).
    pxy = min(pxy, px, py)
    pxy = max(pxy, px + py - 1.0, 0.0)
    conf = confidence(pxy, px)
    assert 0.0 <= conf <= 1.0 + 1e-12
    lev = leverage(pxy, px, py)
    assert -0.25 - 1e-12 <= lev <= 0.25 + 1e-12
    lft = lift(pxy, px, py)
    assert lft >= 0.0
    # lift > 1 exactly when leverage > 0 (both measure the same deviation),
    # whenever lift is finite and marginals are non-degenerate.
    if 0 < px and 0 < py and math.isfinite(lft):
        assert (lft > 1.0) == (lev > 1e-15) or abs(lev) <= 1e-12
    conv = conviction(pxy, px, py)
    assert conv >= 0.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 3), min_size=1, max_size=40))
def test_accuracy_self_is_one(labels):
    assert accuracy(labels, labels) == 1.0
