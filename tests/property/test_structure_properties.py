"""Property-based tests for core data structures and preprocessing."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.associations import HashTree, apriori_gen
from repro.core import TransactionDatabase
from repro.preprocessing import EqualFrequency, EqualWidth, MinMaxScaler, StandardScaler


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.lists(st.integers(0, 12), max_size=8), min_size=1, max_size=20)
)
def test_transaction_db_invariants(txns):
    db = TransactionDatabase(txns)
    assert len(db) == len(txns)
    for txn in db:
        assert list(txn) == sorted(set(txn))
    counts = db.item_counts()
    for item, count in counts.items():
        assert count == db.support_count((item,))


@settings(max_examples=50, deadline=None)
@given(
    st.sets(
        st.tuples(st.integers(0, 15), st.integers(0, 15), st.integers(0, 15)),
        max_size=30,
    ),
    st.lists(
        st.sets(st.integers(0, 15), min_size=1, max_size=10),
        min_size=1,
        max_size=30,
    ),
)
def test_hash_tree_equals_naive_counting(raw_candidates, raw_txns):
    candidates = sorted(
        {tuple(sorted(set(c))) for c in raw_candidates if len(set(c)) == 3}
    )
    txns = [tuple(sorted(t)) for t in raw_txns]
    tree = HashTree(candidates, leaf_capacity=2, n_buckets=4)
    tree.count_transactions(txns)
    counts = tree.counts()
    for cand in candidates:
        assert counts[cand] == sum(
            1 for t in txns if set(cand).issubset(t)
        )


@settings(max_examples=50, deadline=None)
@given(
    st.sets(
        st.tuples(st.integers(0, 8), st.integers(0, 8)), min_size=0, max_size=20
    )
)
def test_apriori_gen_subsets_frequent(pairs):
    frequent = sorted({tuple(sorted(set(p))) for p in pairs if len(set(p)) == 2})
    from repro.core.itemsets import subsets_of_size

    out = apriori_gen(frequent)
    prev = set(frequent)
    for candidate in out:
        assert len(candidate) == 3
        assert list(candidate) == sorted(set(candidate))
        for sub in subsets_of_size(candidate, 2):
            assert sub in prev


matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 30), st.integers(1, 4)),
    elements=st.floats(-1e6, 1e6, allow_nan=False),
)


@settings(max_examples=50, deadline=None)
@given(matrices)
def test_minmax_scaler_bounds(X):
    scaled = MinMaxScaler().fit_transform(X)
    assert (scaled >= -1e-9).all() and (scaled <= 1.0 + 1e-9).all()


@settings(max_examples=50, deadline=None)
@given(matrices)
def test_standard_scaler_centering(X):
    scaler = StandardScaler()
    scaled = scaler.fit_transform(X)
    # Catastrophic cancellation bounds the achievable centering: the
    # residual mean is O(eps * |X|max / std) per column.
    eps = np.finfo(np.float64).eps
    bound = 1e-9 + 100 * eps * np.abs(X).max(axis=0) / np.maximum(
        scaler.std_, 1e-300
    )
    assert (np.abs(scaled.mean(axis=0)) <= bound).all()


@settings(max_examples=50, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.integers(2, 60),
        elements=st.floats(-1e3, 1e3, allow_nan=False),
    ),
    st.integers(2, 8),
)
def test_discretizers_produce_valid_codes(values, n_bins):
    for disc in (EqualWidth(n_bins), EqualFrequency(n_bins)):
        codes = disc.fit_transform(values)
        assert codes.min() >= 0
        assert codes.max() < disc.n_bins_
        # Binning preserves order: v1 <= v2 implies bin(v1) <= bin(v2).
        order = np.argsort(values, kind="mergesort")
        assert (np.diff(codes[order]) >= 0).all()
