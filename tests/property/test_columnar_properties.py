"""Properties of the columnar backends: identity, budgets, cache hygiene.

Three contracts the shared columnar data plane promises:

* every vectorized backend is **byte-identical** to its scalar twin —
  same supports, same model, same bytes — for any input, at any
  ``n_jobs``;
* a budget exhausted mid-kernel degrades exactly like the scalar path
  (same truncation point, same partial result, same exception class);
* memoized encodings are keyed on dataset identity and can never leak
  between two distinct dataset objects, even with equal content.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.associations import dhp, eclat, partition_miner
from repro.classification import KNN, SLIQ, NaiveBayes
from repro.clustering import KMeans
from repro.core import SequenceDatabase, TransactionDatabase
from repro.core.columnar import sequence_bitmap, transaction_bitmap
from repro.datasets import agrawal, gaussian_blobs, quest_basket
from repro.runtime import Budget, ExecutionContext, SpaceBudgetExceeded
from repro.sequences import gsp

transactions = st.lists(
    st.lists(st.integers(0, 9), min_size=0, max_size=6),
    min_size=1,
    max_size=25,
)
sequences = st.lists(
    st.lists(
        st.lists(st.integers(0, 7), min_size=1, max_size=3),
        min_size=1,
        max_size=5,
    ),
    min_size=1,
    max_size=15,
)
supports = st.sampled_from([0.1, 0.25, 0.5])

JOBS = [1, 2, 4]


def _mine_fingerprint(result) -> bytes:
    return pickle.dumps(
        (sorted(result.supports.items()), result.truncated)
    )


# ----------------------------------------------------------------------
# Vectorized == scalar, for arbitrary inputs
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(transactions, supports)
def test_eclat_bitset_identical_for_any_input(txns, min_support):
    db = TransactionDatabase(txns)
    scalar = eclat(db, min_support)
    vector = eclat(db, min_support, backend="bitset")
    assert _mine_fingerprint(vector) == _mine_fingerprint(scalar)


@settings(max_examples=30, deadline=None)
@given(transactions, supports)
def test_partition_bitset_identical_for_any_input(txns, min_support):
    db = TransactionDatabase(txns)
    scalar = partition_miner(db, min_support, n_partitions=2)
    vector = partition_miner(db, min_support, n_partitions=2,
                             backend="bitset")
    assert _mine_fingerprint(vector) == _mine_fingerprint(scalar)


@settings(max_examples=30, deadline=None)
@given(transactions, supports)
def test_dhp_bitmap_identical_for_any_input(txns, min_support):
    db = TransactionDatabase(txns)
    scalar = dhp(db, min_support)
    vector = dhp(db, min_support, backend="bitmap")
    assert _mine_fingerprint(vector) == _mine_fingerprint(scalar)


@settings(max_examples=20, deadline=None)
@given(sequences, supports)
def test_gsp_bitmap_identical_for_any_input(seqs, min_support):
    sdb = SequenceDatabase(seqs)
    scalar = gsp(sdb, min_support)
    vector = gsp(sdb, min_support, backend="bitmap")
    assert _mine_fingerprint(vector) == _mine_fingerprint(scalar)


# ----------------------------------------------------------------------
# Vectorized == scalar, across n_jobs
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def basket():
    return quest_basket(200, random_state=17)


@pytest.mark.parametrize("n_jobs", JOBS)
def test_partition_bitset_identical_across_jobs(basket, n_jobs):
    scalar = partition_miner(basket, 0.05, n_partitions=4)
    vector = partition_miner(basket, 0.05, n_partitions=4,
                             backend="bitset", n_jobs=n_jobs)
    assert _mine_fingerprint(vector) == _mine_fingerprint(scalar)


@pytest.mark.parametrize("n_jobs", JOBS)
def test_gsp_bitmap_identical_across_jobs(medium_seq_db, n_jobs):
    scalar = gsp(medium_seq_db, 0.05)
    vector = gsp(medium_seq_db, 0.05, backend="bitmap", n_jobs=n_jobs)
    assert _mine_fingerprint(vector) == _mine_fingerprint(scalar)


@pytest.mark.parametrize("n_jobs", JOBS)
def test_kmeans_elkan_identical_across_jobs(n_jobs):
    X, _ = gaussian_blobs(400, centers=5, n_features=4, cluster_std=1.5,
                          random_state=23)
    full = KMeans(5, n_init=4, random_state=1).fit(X)
    elkan = KMeans(5, n_init=4, random_state=1, backend="elkan",
                   n_jobs=n_jobs).fit(X)
    assert elkan.labels_.tobytes() == full.labels_.tobytes()
    assert elkan.cluster_centers_.tobytes() == \
        full.cluster_centers_.tobytes()
    assert elkan.inertia_ == full.inertia_
    assert elkan.n_iter_ == full.n_iter_


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("function", [1, 2, 5])
def test_sliq_columnar_identical_trees(function, seed):
    table = agrawal(400, function=function, noise=0.05, random_state=seed)
    scan = SLIQ(max_depth=6).fit(table, "group")
    columnar = SLIQ(max_depth=6, backend="columnar").fit(table, "group")
    assert pickle.dumps(columnar.tree_) == pickle.dumps(scan.tree_)
    assert tuple(columnar.predict(table)) == tuple(scan.predict(table))


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_nb_and_knn_columnar_identical_probas(seed):
    train = agrawal(300, function=2, noise=0.05, random_state=seed)
    test = agrawal(120, function=2, noise=0.0, random_state=seed + 100)
    nb_scan = NaiveBayes().fit(train, "group")
    nb_col = NaiveBayes(backend="columnar").fit(train, "group")
    assert nb_col.predict_proba(test).tobytes() == \
        nb_scan.predict_proba(test).tobytes()
    knn_scan = KNN(n_neighbors=5).fit(train, "group")
    knn_col = KNN(n_neighbors=5, backend="columnar").fit(train, "group")
    assert knn_col.predict_proba(test).tobytes() == \
        knn_scan.predict_proba(test).tobytes()


# ----------------------------------------------------------------------
# Budget exhaustion mid-kernel degrades identically
# ----------------------------------------------------------------------
@pytest.mark.parametrize("limit", [5, 20, 80])
def test_eclat_truncates_at_same_point(basket, limit):
    def run(backend):
        ctx = ExecutionContext(budget=Budget(max_candidates=limit))
        return eclat(basket, 0.05, ctx=ctx, on_exhausted="truncate",
                     backend=backend)

    scalar, vector = run("tidset"), run("bitset")
    assert scalar.truncated and vector.truncated
    assert _mine_fingerprint(vector) == _mine_fingerprint(scalar)


@pytest.mark.parametrize("limit", [5, 40])
def test_partition_truncates_at_same_point(basket, limit):
    def run(backend):
        ctx = ExecutionContext(budget=Budget(max_candidates=limit))
        return partition_miner(basket, 0.05, n_partitions=3, ctx=ctx,
                               on_exhausted="truncate", backend=backend)

    assert _mine_fingerprint(run("bitset")) == \
        _mine_fingerprint(run("tidset"))


def test_eclat_raise_policy_raises_in_both_backends(basket):
    for backend in ("tidset", "bitset"):
        ctx = ExecutionContext(budget=Budget(max_candidates=5))
        with pytest.raises(SpaceBudgetExceeded):
            eclat(basket, 0.05, ctx=ctx, backend=backend)


@pytest.mark.parametrize("limit", [10, 60])
def test_gsp_truncates_at_same_point(medium_seq_db, limit):
    def run(backend):
        ctx = ExecutionContext(budget=Budget(max_candidates=limit))
        return gsp(medium_seq_db, 0.05, ctx=ctx, on_exhausted="truncate",
                   backend=backend)

    assert _mine_fingerprint(run("bitmap")) == _mine_fingerprint(run("scan"))


# ----------------------------------------------------------------------
# Cache hygiene: encodings never shared across distinct datasets
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(transactions)
def test_transaction_encodings_never_shared(txns):
    a, b = TransactionDatabase(txns), TransactionDatabase(txns)
    ea, eb = transaction_bitmap(a), transaction_bitmap(b)
    assert ea is not eb
    assert transaction_bitmap(a) is ea
    assert transaction_bitmap(b) is eb


@settings(max_examples=15, deadline=None)
@given(sequences)
def test_sequence_encodings_never_shared(seqs):
    a, b = SequenceDatabase(seqs), SequenceDatabase(seqs)
    assert sequence_bitmap(a) is not sequence_bitmap(b)
    assert sequence_bitmap(a).packed.tobytes() == \
        sequence_bitmap(b).packed.tobytes()
