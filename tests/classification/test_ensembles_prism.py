"""Unit tests for Bagging, AdaBoost.M1 and PRISM."""

import numpy as np
import pytest

from repro.classification import CART, PRISM, AdaBoostM1, Bagging, NaiveBayes
from repro.core import Table, ValidationError, categorical
from repro.datasets import agrawal, play_tennis
from repro.preprocessing import discretize_table, train_test_split


@pytest.fixture(scope="module")
def noisy_split():
    data = agrawal(2400, function=5, noise=0.15, random_state=31)
    return train_test_split(data, 0.3, stratify="group", random_state=0)


class TestBagging:
    def test_beats_or_matches_unstable_base(self, noisy_split):
        train, test = noisy_split
        single = CART().fit(train, "group").score(test)
        bagged = Bagging(CART, 9, random_state=0).fit(train, "group")
        assert bagged.score(test) >= single - 0.01

    def test_proba_is_average_of_members(self, noisy_split):
        train, test = noisy_split
        model = Bagging(lambda: CART(max_depth=3), 4, random_state=1)
        model.fit(train, "group")
        manual = np.mean(
            [m.predict_proba(test) for m in model.estimators_], axis=0
        )
        assert np.allclose(model.predict_proba(test), manual)

    def test_ensemble_size(self, tennis):
        model = Bagging(lambda: CART(max_depth=2), 7, random_state=2)
        model.fit(tennis, "play")
        assert len(model.estimators_) == 7

    def test_reproducible(self, noisy_split):
        train, test = noisy_split
        a = Bagging(lambda: CART(max_depth=3), 5, random_state=3).fit(
            train, "group"
        ).predict(test)
        b = Bagging(lambda: CART(max_depth=3), 5, random_state=3).fit(
            train, "group"
        ).predict(test)
        assert a == b

    def test_invalid_size(self):
        with pytest.raises(ValidationError):
            Bagging(CART, 0)


class TestAdaBoost:
    def test_boosted_stumps_beat_one_stump(self):
        # F9 is additive over several attributes, so one stump saturates
        # early and boosting visibly helps.
        data = agrawal(2000, function=9, noise=0.05, random_state=17)
        train, test = train_test_split(data, 0.3, random_state=0)
        stump = CART(max_depth=1).fit(train, "group").score(test)
        boosted = AdaBoostM1(
            lambda: CART(max_depth=1), 30, random_state=0
        ).fit(train, "group").score(test)
        assert boosted > stump + 0.02

    def test_alphas_positive(self, noisy_split):
        train, _ = noisy_split
        model = AdaBoostM1(lambda: CART(max_depth=2), 10, random_state=1)
        model.fit(train, "group")
        assert all(a > 0 for a in model.alphas_)
        assert len(model.alphas_) == len(model.estimators_)

    def test_strong_base_stays_exact(self, tennis):
        # Full CART is a strong base learner; the boosted ensemble must
        # remain exact on the training data it can already memorise.
        model = AdaBoostM1(CART, 10, random_state=0).fit(tennis, "play")
        assert 1 <= len(model.estimators_) <= 10
        assert model.score(tennis) == 1.0

    def test_proba_rows_normalised(self, noisy_split):
        train, test = noisy_split
        model = AdaBoostM1(lambda: CART(max_depth=2), 8, random_state=2)
        model.fit(train, "group")
        proba = model.predict_proba(test)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_invalid_size(self):
        with pytest.raises(ValidationError):
            AdaBoostM1(CART, 0)


class TestPRISM:
    def test_tennis_rules_are_exact(self, tennis):
        model = PRISM().fit(tennis, "play")
        assert model.score(tennis) == 1.0

    def test_rendered_rules_reference_real_values(self, tennis):
        model = PRISM().fit(tennis, "play")
        rendered = model.render_rules()
        assert rendered[-1].startswith("if true")  # default rule last
        assert any("outlook" in r for r in rendered)

    def test_rules_cover_all_predictions(self, tennis):
        model = PRISM().fit(tennis, "play")
        predictions = model.predict(tennis)
        assert all(p in ("yes", "no") for p in predictions)

    def test_rejects_numeric(self, weather):
        with pytest.raises(ValidationError):
            PRISM().fit(weather, "play")

    def test_works_after_discretization(self, weather):
        table = discretize_table(weather, "equal_frequency", n_bins=3)
        model = PRISM().fit(table, "play")
        assert model.score(table) >= 0.8

    def test_min_coverage_limits_rules(self):
        data = agrawal(800, function=3, noise=0.05, random_state=5)
        table = discretize_table(data, "equal_width", n_bins=4)
        small = PRISM(min_coverage=1).fit(table, "group")
        large = PRISM(min_coverage=25).fit(table, "group")
        assert len(large.rules_) <= len(small.rules_)

    def test_rejects_missing(self):
        table = Table.from_rows(
            [("a", "x"), (None, "y")],
            [categorical("f", ["a"]), categorical("t", ["x", "y"])],
        )
        with pytest.raises(ValidationError):
            PRISM().fit(table, "t")

    def test_strong_on_clean_categorical_data(self):
        # PRISM's home turf: noise-free data whose predicate is a small
        # conjunction over categorical attributes (F3 = age x elevel).
        # It has no pruning, so label noise is explicitly out of scope.
        data = agrawal(1500, function=3, noise=0.0, random_state=6)
        table = discretize_table(data, "equal_width", n_bins=6)
        train, test = train_test_split(table, 0.3, random_state=0)
        prism_acc = PRISM(min_coverage=5).fit(train, "group").score(test)
        nb_acc = NaiveBayes().fit(train, "group").score(test)
        assert prism_acc > 0.8
        assert prism_acc >= nb_acc - 0.05
