"""Unit tests shared across the tree classifiers (ID3/C4.5/CART/SLIQ)."""

import numpy as np
import pytest

from repro.classification import C45, CART, ID3, SLIQ, extract_rules, render_tree
from repro.core import Table, ValidationError, categorical, numeric
from repro.datasets import agrawal
from repro.preprocessing import train_test_split

ALL_TREES = {
    "id3": lambda: ID3(),
    "c45": lambda: C45(prune=False),
    "cart": lambda: CART(),
    "sliq": lambda: SLIQ(),
}
NUMERIC_TREES = {k: v for k, v in ALL_TREES.items() if k != "id3"}


@pytest.mark.parametrize("name", sorted(ALL_TREES))
class TestOnPlayTennis:
    def test_fits_training_data_perfectly(self, name, tennis):
        model = ALL_TREES[name]().fit(tennis, "play")
        assert model.score(tennis) == 1.0

    def test_tree_is_small(self, name, tennis):
        model = ALL_TREES[name]().fit(tennis, "play")
        assert model.n_leaves() <= 8
        assert model.depth() <= 4

    def test_predict_unseen_row(self, name, tennis):
        model = ALL_TREES[name]().fit(tennis, "play")
        row = Table.from_rows(
            [("overcast", "cool", "high", "weak", None)],
            tennis.attributes,
        )
        assert model.predict(row) == ["yes"]  # overcast always plays

    def test_proba_sums_to_one(self, name, tennis):
        model = ALL_TREES[name]().fit(tennis, "play")
        proba = model.predict_proba(tennis)
        assert proba.shape == (14, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)


@pytest.mark.parametrize("name", sorted(NUMERIC_TREES))
class TestOnNumericData:
    def test_weather_numeric(self, name, weather):
        model = NUMERIC_TREES[name]().fit(weather, "play")
        assert model.score(weather) == 1.0

    def test_generalises_on_f2(self, name, f2_train, f2_test):
        model = NUMERIC_TREES[name]().fit(f2_train, "group")
        assert model.score(f2_test) > 0.85

    def test_threshold_split_learns_boundary(self, name):
        rows = [(float(v), "lo" if v < 50 else "hi") for v in range(100)]
        table = Table.from_rows(
            rows, [numeric("x"), categorical("y", ["lo", "hi"])]
        )
        model = NUMERIC_TREES[name]().fit(table, "y")
        assert model.score(table) == 1.0
        assert model.depth() == 1  # one threshold suffices


class TestID3Specifics:
    def test_rejects_numeric_attributes(self, weather):
        with pytest.raises(ValidationError):
            ID3().fit(weather, "play")

    def test_rejects_missing_values(self):
        table = Table.from_rows(
            [("a", "x"), (None, "y")],
            [categorical("f", ["a"]), categorical("y", ["x", "y"])],
        )
        with pytest.raises(ValidationError):
            ID3().fit(table, "y")

    def test_max_depth_limits_tree(self, tennis):
        model = ID3(max_depth=1).fit(tennis, "play")
        assert model.depth() <= 1

    def test_root_split_is_outlook(self, tennis):
        # Information gain picks outlook at the root (Quinlan's example).
        model = ID3().fit(tennis, "play")
        assert model.tree_.attribute.name == "outlook"

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            ID3(max_depth=0)
        with pytest.raises(ValidationError):
            ID3(min_samples_split=1)


class TestC45Specifics:
    def test_handles_missing_training_values(self):
        rows = [
            ("sunny", "no"), ("sunny", "no"), (None, "no"),
            ("rain", "yes"), ("rain", "yes"), (None, "yes"),
        ]
        table = Table.from_rows(
            rows,
            [categorical("outlook", ["sunny", "rain"]),
             categorical("play", ["no", "yes"])],
        )
        model = C45(prune=False).fit(table, "play")
        complete = table.mask(table.column("outlook") >= 0)
        assert model.score(complete) == 1.0

    def test_handles_missing_at_predict_time(self, tennis):
        model = C45(prune=False).fit(tennis, "play")
        row = Table.from_rows(
            [(None, "mild", "high", "weak", None)], tennis.attributes
        )
        assert model.predict(row)[0] in ("yes", "no")

    def test_pruned_tree_not_larger(self, f2_train):
        full = C45(prune=False).fit(f2_train, "group")
        pruned = C45(prune=True).fit(f2_train, "group")
        assert pruned.n_nodes() <= full.n_nodes()

    def test_pruning_helps_on_noisy_data(self):
        train = agrawal(1200, function=5, noise=0.2, random_state=3)
        test = agrawal(800, function=5, noise=0.0, random_state=4)
        full = C45(prune=False).fit(train, "group")
        pruned = C45(prune=True).fit(train, "group")
        # Pruning must not hurt much and usually helps under noise.
        assert pruned.score(test) >= full.score(test) - 0.02

    def test_numeric_attribute_reusable_deeper(self):
        # x < 25 -> a; 25 <= x < 75 -> b; x >= 75 -> a needs two cuts on x.
        rows = [
            (float(v), "a" if v < 25 or v >= 75 else "b") for v in range(100)
        ]
        table = Table.from_rows(
            rows, [numeric("x"), categorical("y", ["a", "b"])]
        )
        model = C45(prune=False).fit(table, "y")
        assert model.score(table) == 1.0
        assert model.depth() >= 2


class TestCARTSpecifics:
    def test_binary_subset_split(self):
        # Classes {a, c} vs {b, d} require a subset split.
        rows = [(cat, "x" if cat in "ac" else "y") for cat in "abcdabcd"]
        table = Table.from_rows(
            rows,
            [categorical("f", ["a", "b", "c", "d"]),
             categorical("target", ["x", "y"])],
        )
        model = CART().fit(table, "target")
        assert model.score(table) == 1.0
        assert model.depth() == 1

    def test_ccp_alpha_shrinks_tree(self, f2_train):
        full = CART(ccp_alpha=0.0).fit(f2_train, "group")
        pruned = CART(ccp_alpha=0.02).fit(f2_train, "group")
        assert pruned.n_leaves() < full.n_leaves()

    def test_min_samples_leaf_respected(self, f2_train):
        model = CART(min_samples_leaf=40).fit(f2_train, "group")
        for node in model.tree_.iter_nodes():
            if node.n_leaves() == 1 and node.n_nodes() == 1:
                assert node.training_mass >= 40

    def test_entropy_criterion_works(self, weather):
        model = CART(criterion="entropy").fit(weather, "play")
        assert model.score(weather) == 1.0

    def test_invalid_criterion(self):
        with pytest.raises(ValidationError):
            CART(criterion="twoing")


class TestSLIQSpecifics:
    def test_matches_cart_accuracy_closely(self, f2_train, f2_test):
        cart = CART(min_samples_leaf=5).fit(f2_train, "group")
        sliq = SLIQ(min_samples_leaf=5).fit(f2_train, "group")
        assert abs(cart.score(f2_test) - sliq.score(f2_test)) < 0.05

    def test_rejects_missing(self):
        table = Table.from_rows(
            [(1.0, "x"), (None, "y")],
            [numeric("f"), categorical("y", ["x", "y"])],
        )
        with pytest.raises(ValidationError):
            SLIQ().fit(table, "y")

    def test_max_depth(self, f2_train):
        model = SLIQ(max_depth=3).fit(f2_train, "group")
        assert model.depth() <= 3

    def test_pruning_option(self, f2_train):
        unpruned = SLIQ(prune=False).fit(f2_train, "group")
        pruned = SLIQ(prune=True).fit(f2_train, "group")
        assert pruned.n_nodes() <= unpruned.n_nodes()


class TestTreeIntrospection:
    def test_render_tree_mentions_attributes(self, tennis):
        model = ID3().fit(tennis, "play")
        text = render_tree(model.tree_, tennis.attribute("play"))
        assert "outlook" in text
        assert "'yes'" in text

    def test_extract_rules_covers_all_leaves(self, tennis):
        model = ID3().fit(tennis, "play")
        rules = extract_rules(model.tree_, tennis.attribute("play"))
        assert len(rules) == model.n_leaves()
        labels = {label for _, label in rules}
        assert labels == {"yes", "no"}

    def test_extract_rules_numeric_conditions(self, weather):
        model = CART().fit(weather, "play")
        rules = extract_rules(model.tree_, weather.attribute("play"))
        assert any(
            "<=" in condition
            for conditions, _ in rules
            for condition in conditions
        )
