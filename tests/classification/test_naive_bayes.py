"""Unit tests for NaiveBayes."""

import numpy as np
import pytest

from repro.classification import NaiveBayes
from repro.core import Table, ValidationError, categorical, numeric
from repro.datasets import iris


class TestCategoricalNB:
    def test_play_tennis_posterior(self, tennis):
        model = NaiveBayes().fit(tennis, "play")
        # The textbook query: sunny/cool/high/strong -> "no".
        row = Table.from_rows(
            [("sunny", "cool", "high", "strong", None)], tennis.attributes
        )
        assert model.predict(row) == ["no"]

    def test_laplace_smoothing_avoids_zeroes(self):
        rows = [("a", "x"), ("a", "x"), ("b", "y")]
        table = Table.from_rows(
            rows,
            [categorical("f", ["a", "b", "c"]),
             categorical("t", ["x", "y"])],
        )
        model = NaiveBayes().fit(table, "t")
        unseen = Table.from_rows(
            [("c", None)],
            [categorical("f", ["a", "b", "c"]), categorical("t", ["x", "y"])],
        )
        proba = model.predict_proba(unseen)
        assert (proba > 0).all()

    def test_invalid_laplace(self):
        with pytest.raises(ValidationError):
            NaiveBayes(laplace=0.0)


class TestGaussianNB:
    def test_separable_gaussians(self):
        rng = np.random.default_rng(0)
        rows = [(float(v), "lo") for v in rng.normal(0, 1, 100)]
        rows += [(float(v), "hi") for v in rng.normal(10, 1, 100)]
        table = Table.from_rows(
            rows, [numeric("x"), categorical("y", ["lo", "hi"])]
        )
        model = NaiveBayes().fit(table, "y")
        assert model.score(table) == 1.0

    def test_iris_accuracy(self):
        table = iris()
        assert NaiveBayes().fit(table, "species").score(table) > 0.9

    def test_variance_floor_handles_constant_class(self):
        rows = [(1.0, "a")] * 5 + [(2.0, "b")] * 5
        table = Table.from_rows(
            rows, [numeric("x"), categorical("y", ["a", "b"])]
        )
        model = NaiveBayes().fit(table, "y")
        assert model.score(table) == 1.0


class TestMissingValues:
    def test_missing_features_are_marginalised(self, tennis):
        model = NaiveBayes().fit(tennis, "play")
        row = Table.from_rows(
            [(None, None, None, None, None)], tennis.attributes
        )
        proba = model.predict_proba(row)[0]
        # With nothing observed the posterior is (smoothed) prior.
        prior = np.exp(model.class_log_prior_)
        assert np.allclose(proba, prior / prior.sum(), atol=1e-9)

    def test_missing_in_training(self):
        rows = [("a", "x"), (None, "x"), ("b", "y"), ("b", "y")]
        table = Table.from_rows(
            rows,
            [categorical("f", ["a", "b"]), categorical("t", ["x", "y"])],
        )
        model = NaiveBayes().fit(table, "t")
        assert model.score(table) >= 0.75


class TestProba:
    def test_rows_sum_to_one(self, tennis):
        proba = NaiveBayes().fit(tennis, "play").predict_proba(tennis)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_argmax_matches_predict(self, tennis):
        model = NaiveBayes().fit(tennis, "play")
        proba = model.predict_proba(tennis)
        labels = model.predict(tennis)
        values = tennis.attribute("play").values
        assert [values[i] for i in proba.argmax(axis=1)] == labels
