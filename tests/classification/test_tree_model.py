"""Unit tests for the shared tree node structures."""

import numpy as np
import pytest

from repro.classification import (
    BinaryCategoricalSplit,
    CategoricalSplit,
    Leaf,
    NumericSplit,
    render_tree,
)
from repro.classification.tree_model import predict_distributions
from repro.core import Table, categorical, numeric


@pytest.fixture
def numeric_tree():
    """x <= 5 -> class 0 (4 samples), x > 5 -> class 1 (6 samples)."""
    left = Leaf(np.array([4.0, 0.0]))
    right = Leaf(np.array([0.0, 6.0]))
    return NumericSplit(
        numeric("x"), 5.0, left, right, np.array([4.0, 6.0])
    )


@pytest.fixture
def categorical_tree():
    attr = categorical("color", ["red", "green", "blue"])
    children = {
        0: Leaf(np.array([3.0, 0.0])),
        1: Leaf(np.array([0.0, 2.0])),
        2: Leaf(np.array([1.0, 1.0])),
    }
    return CategoricalSplit(attr, children, np.array([4.0, 3.0]))


class TestLeaf:
    def test_distribution_normalises(self):
        leaf = Leaf(np.array([3.0, 1.0]))
        assert np.allclose(leaf.distribution({}), [0.75, 0.25])

    def test_empty_leaf_is_uniform(self):
        leaf = Leaf(np.array([0.0, 0.0]))
        assert np.allclose(leaf.distribution({}), [0.5, 0.5])

    def test_counters(self):
        leaf = Leaf(np.array([3.0, 1.0]))
        assert leaf.n_nodes() == leaf.n_leaves() == 1
        assert leaf.depth() == 0
        assert leaf.majority_class == 0
        assert leaf.training_errors() == 1.0


class TestNumericSplit:
    def test_routing(self, numeric_tree):
        assert numeric_tree.distribution({"x": 3.0}).argmax() == 0
        assert numeric_tree.distribution({"x": 7.0}).argmax() == 1

    def test_boundary_goes_left(self, numeric_tree):
        assert numeric_tree.distribution({"x": 5.0}).argmax() == 0

    def test_missing_blends_by_mass(self, numeric_tree):
        blended = numeric_tree.distribution({"x": None})
        assert np.allclose(blended, [0.4, 0.6])

    def test_nan_treated_as_missing(self, numeric_tree):
        blended = numeric_tree.distribution({"x": float("nan")})
        assert np.allclose(blended, [0.4, 0.6])

    def test_structure_counters(self, numeric_tree):
        assert numeric_tree.n_nodes() == 3
        assert numeric_tree.n_leaves() == 2
        assert numeric_tree.depth() == 1
        assert len(list(numeric_tree.iter_nodes())) == 3


class TestCategoricalSplit:
    def test_routing(self, categorical_tree):
        assert categorical_tree.distribution({"color": 0}).argmax() == 0
        assert categorical_tree.distribution({"color": 1}).argmax() == 1

    def test_unseen_code_blends(self, categorical_tree):
        # Code 7 is not a child: falls back to mass-weighted blend.
        blended = categorical_tree.distribution({"color": 7})
        expected = (
            3 / 7 * np.array([1.0, 0.0])
            + 2 / 7 * np.array([0.0, 1.0])
            + 2 / 7 * np.array([0.5, 0.5])
        )
        assert np.allclose(blended, expected)

    def test_missing_blends(self, categorical_tree):
        assert categorical_tree.distribution({"color": None}).sum() == pytest.approx(1.0)


class TestBinaryCategoricalSplit:
    def _tree(self):
        attr = categorical("g", ["a", "b", "c"])
        return BinaryCategoricalSplit(
            attr,
            frozenset({0, 2}),
            Leaf(np.array([5.0, 0.0])),
            Leaf(np.array([0.0, 5.0])),
            np.array([5.0, 5.0]),
        )

    def test_membership_routing(self):
        tree = self._tree()
        assert tree.distribution({"g": 0}).argmax() == 0
        assert tree.distribution({"g": 2}).argmax() == 0
        assert tree.distribution({"g": 1}).argmax() == 1

    def test_missing_blends(self):
        assert np.allclose(self._tree().distribution({"g": None}), [0.5, 0.5])


class TestWholeTableHelpers:
    def test_predict_distributions_alignment(self, numeric_tree):
        table = Table.from_rows(
            [(1.0,), (9.0,), (None,)], [numeric("x")]
        )
        dist = predict_distributions(numeric_tree, table)
        assert dist.shape == (3, 2)
        assert dist[0].argmax() == 0
        assert dist[1].argmax() == 1
        assert np.allclose(dist[2], [0.4, 0.6])

    def test_render_tree_shows_threshold_and_labels(self, numeric_tree):
        target = categorical("y", ["no", "yes"])
        text = render_tree(numeric_tree, target)
        assert "x <= 5" in text
        assert "'no'" in text and "'yes'" in text
