"""Unit tests for split criteria."""

import math

import numpy as np
import pytest

from repro.classification import (
    entropy,
    gain_ratio,
    gini,
    gini_gain,
    information_gain,
    split_information,
)


class TestEntropy:
    def test_uniform_two_class(self):
        assert entropy(np.array([5.0, 5.0])) == pytest.approx(1.0)

    def test_pure(self):
        assert entropy(np.array([7.0, 0.0])) == 0.0

    def test_empty(self):
        assert entropy(np.array([0.0, 0.0])) == 0.0

    def test_uniform_k_classes_is_log2_k(self):
        assert entropy(np.ones(8)) == pytest.approx(3.0)

    def test_weighted_counts(self):
        assert entropy(np.array([2.5, 2.5])) == pytest.approx(1.0)


class TestGini:
    def test_uniform_two_class(self):
        assert gini(np.array([5.0, 5.0])) == pytest.approx(0.5)

    def test_pure(self):
        assert gini(np.array([3.0, 0.0])) == 0.0

    def test_bounds(self):
        assert 0.0 <= gini(np.array([1.0, 2.0, 3.0])) < 1.0

    def test_uniform_k_classes(self):
        assert gini(np.ones(4)) == pytest.approx(0.75)


class TestInformationGain:
    def test_perfect_split(self):
        parent = np.array([5.0, 5.0])
        branches = [np.array([5.0, 0.0]), np.array([0.0, 5.0])]
        assert information_gain(parent, branches) == pytest.approx(1.0)

    def test_useless_split(self):
        parent = np.array([4.0, 4.0])
        branches = [np.array([2.0, 2.0]), np.array([2.0, 2.0])]
        assert information_gain(parent, branches) == pytest.approx(0.0)

    def test_play_tennis_outlook(self):
        # Quinlan's canonical value: gain(outlook) = 0.2467 bits.
        parent = np.array([5.0, 9.0])
        branches = [
            np.array([3.0, 2.0]),  # sunny: 3 no / 2 yes
            np.array([0.0, 4.0]),  # overcast
            np.array([2.0, 3.0]),  # rain
        ]
        assert information_gain(parent, branches) == pytest.approx(
            0.2467, abs=1e-4
        )


class TestSplitInformationAndGainRatio:
    def test_split_information_uniform(self):
        branches = [np.array([2.0, 0.0]), np.array([0.0, 2.0])]
        assert split_information(branches) == pytest.approx(1.0)

    def test_gain_ratio_of_perfect_balanced_split(self):
        parent = np.array([5.0, 5.0])
        branches = [np.array([5.0, 0.0]), np.array([0.0, 5.0])]
        assert gain_ratio(parent, branches) == pytest.approx(1.0)

    def test_gain_ratio_zero_when_one_branch(self):
        parent = np.array([5.0, 5.0])
        assert gain_ratio(parent, [parent]) == 0.0

    def test_gain_ratio_penalises_high_arity(self):
        parent = np.array([4.0, 4.0])
        # Perfect 2-way vs perfect 8-way split of the same 8 rows.
        two_way = [np.array([4.0, 0.0]), np.array([0.0, 4.0])]
        eight_way = [np.array([1.0, 0.0])] * 4 + [np.array([0.0, 1.0])] * 4
        assert gain_ratio(parent, two_way) > gain_ratio(parent, eight_way)


class TestGiniGain:
    def test_perfect_split(self):
        parent = np.array([5.0, 5.0])
        branches = [np.array([5.0, 0.0]), np.array([0.0, 5.0])]
        assert gini_gain(parent, branches) == pytest.approx(0.5)

    def test_never_negative_for_partitions(self):
        parent = np.array([3.0, 7.0])
        branches = [np.array([1.0, 4.0]), np.array([2.0, 3.0])]
        assert gini_gain(parent, branches) >= 0.0
