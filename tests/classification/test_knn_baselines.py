"""Unit tests for KNN, ZeroR and OneR."""

import numpy as np
import pytest

from repro.classification import KNN, OneR, ZeroR
from repro.core import Table, ValidationError, categorical, numeric
from repro.datasets import iris


class TestKNN:
    def test_one_neighbor_memorises(self):
        table = iris()
        assert KNN(n_neighbors=1).fit(table, "species").score(table) == 1.0

    def test_reasonable_iris_accuracy(self):
        table = iris()
        assert KNN(n_neighbors=7).fit(table, "species").score(table) > 0.9

    def test_manhattan_metric(self):
        table = iris()
        model = KNN(n_neighbors=5, metric="manhattan").fit(table, "species")
        assert model.score(table) > 0.9

    def test_distance_weighting_breaks_ties_toward_closer(self):
        rows = [(0.0, "a"), (0.1, "a"), (1.0, "b"), (1.1, "b")]
        table = Table.from_rows(
            rows, [numeric("x"), categorical("y", ["a", "b"])]
        )
        model = KNN(n_neighbors=4, weights="distance").fit(table, "y")
        query = Table.from_rows(
            [(0.2, None)], [numeric("x"), categorical("y", ["a", "b"])]
        )
        assert model.predict(query) == ["a"]

    def test_categorical_mismatch_distance(self):
        rows = [("a", "x"), ("a", "x"), ("b", "y"), ("b", "y")]
        table = Table.from_rows(
            rows, [categorical("f", ["a", "b"]), categorical("y", ["x", "y"])]
        )
        model = KNN(n_neighbors=2).fit(table, "y")
        assert model.score(table) == 1.0

    def test_k_larger_than_train_rejected(self, tennis):
        with pytest.raises(ValidationError):
            KNN(n_neighbors=100).fit(tennis, "play")

    def test_missing_rejected(self):
        table = Table.from_rows(
            [(1.0, "x"), (None, "y")],
            [numeric("f"), categorical("y", ["x", "y"])],
        )
        with pytest.raises(ValidationError):
            KNN(n_neighbors=1).fit(table, "y")

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            KNN(n_neighbors=0)
        with pytest.raises(ValidationError):
            KNN(metric="cosine")
        with pytest.raises(ValidationError):
            KNN(weights="magic")

    def test_blockwise_equals_single_block(self):
        table = iris()
        a = KNN(n_neighbors=5, block_size=7).fit(table, "species")
        b = KNN(n_neighbors=5, block_size=10**6).fit(table, "species")
        assert a.predict(table) == b.predict(table)


class TestZeroR:
    def test_predicts_majority(self, tennis):
        model = ZeroR().fit(tennis, "play")
        assert set(model.predict(tennis)) == {"yes"}

    def test_score_equals_majority_fraction(self, tennis):
        assert ZeroR().fit(tennis, "play").score(tennis) == pytest.approx(9 / 14)

    def test_proba_is_class_frequency(self, tennis):
        proba = ZeroR().fit(tennis, "play").predict_proba(tennis)
        assert np.allclose(proba[0], [5 / 14, 9 / 14])


class TestOneR:
    def test_picks_single_best_attribute(self, tennis):
        model = OneR().fit(tennis, "play")
        assert model.rule_attribute_ in tennis.attribute_names
        assert model.score(tennis) >= ZeroR().fit(tennis, "play").score(tennis)

    def test_numeric_attribute_binning(self):
        rows = [(float(v), "lo" if v < 50 else "hi") for v in range(100)]
        table = Table.from_rows(
            rows, [numeric("x"), categorical("y", ["lo", "hi"])]
        )
        model = OneR().fit(table, "y")
        assert model.score(table) > 0.9

    def test_unseen_bin_falls_back_to_default(self, tennis):
        model = OneR().fit(tennis, "play")
        stripped = tennis.drop([model.rule_attribute_])
        # Without the rule attribute every row uses the default class.
        predictions = model.predict(stripped)
        assert len(set(predictions)) == 1

    def test_invalid_bins(self):
        with pytest.raises(ValidationError):
            OneR(n_bins=1)
