"""Unit tests for the pruning strategies."""

import numpy as np
import pytest

from repro.classification import (
    C45,
    CART,
    Leaf,
    binomial_upper_limit,
    cost_complexity_path,
    pessimistic_prune,
    prune_to_alpha,
    reduced_error_prune,
)
from repro.datasets import agrawal
from repro.preprocessing import train_test_split


class TestBinomialUpperLimit:
    def test_no_errors_still_positive(self):
        u = binomial_upper_limit(0.0, 10.0, 0.25)
        assert 0.0 < u < 0.2

    def test_increases_with_errors(self):
        low = binomial_upper_limit(1.0, 20.0, 0.25)
        high = binomial_upper_limit(5.0, 20.0, 0.25)
        assert high > low

    def test_decreases_with_sample_size(self):
        small = binomial_upper_limit(1.0, 10.0, 0.25)
        large = binomial_upper_limit(10.0, 100.0, 0.25)
        assert large < small

    def test_all_errors_gives_one(self):
        assert binomial_upper_limit(10.0, 10.0, 0.25) == 1.0

    def test_zero_n(self):
        assert binomial_upper_limit(0.0, 0.0, 0.25) == 1.0

    def test_quinlan_example_magnitude(self):
        # C4.5 book: U_0.25(0, 6) ~= 0.206.
        assert binomial_upper_limit(0.0, 6.0, 0.25) == pytest.approx(
            0.206, abs=0.01
        )


class TestPessimisticPrune:
    def test_leaf_is_fixed_point(self):
        leaf = Leaf(np.array([3.0, 1.0]))
        assert pessimistic_prune(leaf) is leaf

    def test_collapses_useless_split(self, f2_train):
        # A tree grown to purity on noisy data must shrink.
        full = C45(prune=False).fit(f2_train, "group")
        pruned_root = pessimistic_prune(full.tree_, confidence=0.25)
        assert pruned_root.n_nodes() <= full.tree_.n_nodes()

    def test_lower_confidence_prunes_more(self, f2_train):
        full = C45(prune=False).fit(f2_train, "group")
        mild = pessimistic_prune(full.tree_, confidence=0.45)
        harsh = pessimistic_prune(full.tree_, confidence=0.05)
        assert harsh.n_nodes() <= mild.n_nodes()

    def test_preserves_class_counts_at_root(self, f2_train):
        full = C45(prune=False).fit(f2_train, "group")
        pruned = pessimistic_prune(full.tree_)
        assert np.allclose(pruned.class_counts, full.tree_.class_counts)


class TestReducedErrorPrune:
    def test_never_hurts_validation_accuracy(self):
        data = agrawal(1600, function=5, noise=0.15, random_state=21)
        train, rest = train_test_split(data, 0.5, random_state=0)
        valid, test = train_test_split(rest, 0.5, random_state=1)
        model = CART().fit(train, "group")
        y_valid = valid.class_codes("group")

        def errors(tree):
            from repro.classification.tree_model import predict_distributions

            pred = predict_distributions(tree, valid.drop(["group"])).argmax(axis=1)
            return int((pred != y_valid).sum())

        pruned = reduced_error_prune(model.tree_, valid.drop(["group"]), y_valid)
        assert errors(pruned) <= errors(model.tree_)
        assert pruned.n_nodes() <= model.tree_.n_nodes()

    def test_mismatched_labels_rejected(self, tennis):
        from repro.core import ValidationError

        model = CART().fit(tennis, "play")
        with pytest.raises(ValidationError):
            reduced_error_prune(
                model.tree_, tennis.drop(["play"]), np.array([0])
            )


class TestCostComplexity:
    def test_alpha_zero_keeps_tree(self, f2_train):
        model = CART().fit(f2_train, "group")
        same = prune_to_alpha(model.tree_, 0.0, float(f2_train.n_rows))
        assert same.n_leaves() <= model.tree_.n_leaves()

    def test_huge_alpha_collapses_to_leaf(self, f2_train):
        model = CART().fit(f2_train, "group")
        root = prune_to_alpha(model.tree_, 1e9, float(f2_train.n_rows))
        assert isinstance(root, Leaf)

    def test_path_is_ascending_and_shrinking(self, f2_train):
        model = CART().fit(f2_train, "group")
        alphas = cost_complexity_path(model.tree_)
        assert alphas == sorted(alphas)
        sizes = [
            prune_to_alpha(model.tree_, a, float(f2_train.n_rows)).n_leaves()
            for a in alphas
        ]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] == 1

    def test_invalid_alpha(self, tennis):
        from repro.core import ValidationError

        model = CART().fit(tennis, "play")
        with pytest.raises(ValidationError):
            prune_to_alpha(model.tree_, -0.1, 14.0)
