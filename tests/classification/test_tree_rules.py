"""Unit tests for C4.5rules-style rule simplification."""

import numpy as np
import pytest

from repro.classification import C45, CART, C45Rules, Condition
from repro.core import NotFittedError, Table, ValidationError, categorical, numeric
from repro.datasets import agrawal, play_tennis
from repro.preprocessing import train_test_split


class TestCondition:
    def test_numeric_tests(self):
        col = np.array([1.0, 5.0, 9.0])
        le = Condition("x", "le", threshold=5.0)
        gt = Condition("x", "gt", threshold=5.0)
        assert le.matches(col).tolist() == [True, True, False]
        assert gt.matches(col).tolist() == [False, False, True]

    def test_categorical_membership(self):
        col = np.array([0, 1, 2, 1])
        cond = Condition("c", "in", codes=frozenset({1, 2}))
        assert cond.matches(col).tolist() == [False, True, True, True]

    def test_render(self):
        attr = categorical("c", ["a", "b", "c"])
        single = Condition("c", "in", codes=frozenset({0}))
        multi = Condition("c", "in", codes=frozenset({0, 2}))
        assert single.render(attr) == "c = 'a'"
        assert "['a', 'c']" in multi.render(attr)


class TestC45Rules:
    def test_tennis_rules_are_compact(self, tennis):
        model = C45Rules().fit(tennis, "play")
        assert model.score(tennis) >= 0.9
        # Simplification drops conditions the tree needed structurally:
        # fewer total conditions than leaves x depth.
        assert model.n_conditions() <= 10

    def test_rendered_rules_have_default(self, tennis):
        model = C45Rules().fit(tennis, "play")
        lines = model.render_rules(tennis)
        assert lines[-1].startswith("default:")
        assert any("outlook" in line for line in lines)

    def test_competitive_with_source_tree(self):
        data = agrawal(2000, function=5, noise=0.1, random_state=8)
        train, test = train_test_split(data, 0.3, random_state=0)
        tree_acc = C45(prune=True).fit(train, "group").score(test)
        rules_acc = C45Rules().fit(train, "group").score(test)
        assert rules_acc >= tree_acc - 0.03

    def test_simplification_reduces_conditions(self):
        data = agrawal(1500, function=3, noise=0.1, random_state=9)
        model = C45Rules().fit(data, "group")
        raw_conditions = sum(
            len(r.conditions) for r in _raw_rules_of(data)
        )
        assert model.n_conditions() < raw_conditions

    def test_custom_tree_factory(self, weather):
        model = C45Rules(
            make_tree=lambda: CART(max_depth=3)
        ).fit(weather, "play")
        assert model.score(weather) >= 0.7

    def test_rules_ordered_by_quality(self, tennis):
        model = C45Rules().fit(tennis, "play")
        pess = [r.pessimistic for r in model.rules_]
        assert pess == sorted(pess)

    def test_predict_before_fit(self, tennis):
        with pytest.raises(NotFittedError):
            C45Rules().predict(tennis)

    def test_empty_conditions_rule_possible(self):
        # A constant-ish target collapses to few/no conditions.
        rows = [(1.0, "a")] * 20 + [(2.0, "a")] * 20
        table = Table.from_rows(
            rows, [numeric("x"), categorical("y", ["a", "b"])]
        )
        model = C45Rules().fit(table, "y")
        assert model.predict(table) == ["a"] * 40


def _raw_rules_of(data):
    from repro.classification.tree_rules import _paths_to_rules

    tree = C45(prune=True).fit(data, "group")
    return _paths_to_rules(tree.tree_)
