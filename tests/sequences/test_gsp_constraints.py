"""Unit tests for GSP's time constraints (window, min-gap, max-gap)."""

import pytest

from repro.core import SequenceDatabase, ValidationError
from repro.sequences import gsp
from repro.sequences.gsp import _ContainsChecker


def _checker(min_gap=None, max_gap=None, window=0.0):
    return _ContainsChecker(min_gap, max_gap, window)


class TestContainsChecker:
    SEQ = ((1,), (2,), (3,), (4,))
    TIMES = [0.0, 1.0, 2.0, 10.0]

    def test_plain_containment(self):
        c = _checker()
        assert c.contains(self.SEQ, self.TIMES, ((1,), (3,)))
        assert not c.contains(self.SEQ, self.TIMES, ((3,), (1,)))

    def test_max_gap_rejects_distant_elements(self):
        c = _checker(max_gap=5.0)
        assert c.contains(self.SEQ, self.TIMES, ((1,), (2,)))
        assert not c.contains(self.SEQ, self.TIMES, ((3,), (4,)))

    def test_min_gap_rejects_adjacent_elements(self):
        c = _checker(min_gap=1.5)
        # 1 -> 2 are 1.0 apart (< min_gap), but 1 -> 3 are 2.0 apart.
        assert not c.contains(self.SEQ, self.TIMES, ((1,), (2,)))
        assert c.contains(self.SEQ, self.TIMES, ((1,), (3,)))

    def test_window_assembles_one_element_from_neighbours(self):
        seq = ((1,), (2,), (5,))
        times = [0.0, 0.5, 3.0]
        # (1 2) never co-occurs, but a window of 1 merges the first two.
        assert not _checker().contains(seq, times, ((1, 2),))
        assert _checker(window=1.0).contains(seq, times, ((1, 2),))

    def test_window_respects_span(self):
        seq = ((1,), (2,))
        times = [0.0, 5.0]
        assert not _checker(window=1.0).contains(seq, times, ((1, 2),))

    def test_empty_pattern(self):
        assert _checker().contains(self.SEQ, self.TIMES, ())

    def test_combined_constraints(self):
        seq = ((1,), (2,), (3,))
        times = [0.0, 2.0, 4.0]
        c = _checker(min_gap=1.0, max_gap=3.0)
        assert c.contains(seq, times, ((1,), (2,)))
        assert c.contains(seq, times, ((2,), (3,)))
        # 1 -> 3 violates max_gap (end 4.0 - start 0.0 > 3.0).
        assert not c.contains(seq, times, ((1,), (3,)))


class TestGspWithConstraints:
    def _db(self):
        return SequenceDatabase(
            [
                [(1,), (2,), (3,)],
                [(1,), (2,), (3,)],
                [(1,), (3,)],
            ]
        )

    def test_max_gap_shrinks_results(self):
        db = self._db()
        unconstrained = gsp(db, 0.3)
        constrained = gsp(db, 0.3, max_gap=1.0)
        assert set(constrained.supports).issubset(set(unconstrained.supports))
        # <(1)(3)> holds in all three sequences unconstrained...
        assert unconstrained.supports[((1,), (3,))] == 3
        # ...but with max_gap=1 only where 3 directly follows 1.
        assert constrained.supports.get(((1,), (3,)), 0) == 1

    def test_window_grows_results(self):
        db = SequenceDatabase([[(1,), (2,)], [(1,), (2,)], [(1, 2)]])
        without = gsp(db, 0.9)
        with_window = gsp(db, 0.9, window=1.0)
        # (1 2) as one element only reaches 90% support via the window.
        assert ((1, 2),) not in without.supports
        assert with_window.supports[((1, 2),)] == 3

    def test_explicit_times(self):
        db = SequenceDatabase([[(1,), (2,)]] * 3)
        times = [[0.0, 100.0]] * 3
        result = gsp(db, 0.9, max_gap=10.0, times=times)
        assert ((1,), (2,)) not in result.supports

    def test_times_validation(self):
        db = SequenceDatabase([[(1,), (2,)]])
        with pytest.raises(ValidationError):
            gsp(db, 0.5, times=[[0.0]])
        with pytest.raises(ValidationError):
            gsp(db, 0.5, times=[[1.0, 0.5]])

    def test_parameter_validation(self):
        db = self._db()
        with pytest.raises(ValidationError):
            gsp(db, 0.5, window=-1.0)
        with pytest.raises(ValidationError):
            gsp(db, 0.5, min_gap=-0.5)
        with pytest.raises(ValidationError):
            gsp(db, 0.5, max_gap=0.0)
