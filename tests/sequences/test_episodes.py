"""Unit tests for WINEPI episode mining."""

import numpy as np
import pytest

from repro.core import ValidationError
from repro.sequences import EventSequence, winepi


def _brute_count(sequence, episode, window, episode_type):
    """Oracle: test every window start explicitly."""
    first, last = sequence.span()
    events = list(sequence)
    count = 0
    for s in range(first - window + 1, last + 1):
        in_window = [(t, e) for t, e in events if s <= t < s + window]
        if episode_type == "parallel":
            present = {e for _, e in in_window}
            if set(episode).issubset(present):
                count += 1
        else:
            t_prev = None
            pos_ok = True
            remaining = list(in_window)
            for wanted in episode:
                found = None
                for t, e in remaining:
                    if e == wanted and (t_prev is None or t > t_prev):
                        found = t
                        break
                if found is None:
                    pos_ok = False
                    break
                t_prev = found
            if pos_ok:
                count += 1
    return count


class TestEventSequence:
    def test_sorts_events(self):
        seq = EventSequence([(5, 0), (1, 1)])
        assert list(seq) == [(1, 1), (5, 0)]

    def test_occurrences(self):
        seq = EventSequence([(1, 0), (3, 0), (2, 1)])
        assert seq.occurrences(0) == [1, 3]
        assert seq.occurrences(9) == []

    def test_validation(self):
        with pytest.raises(ValidationError):
            EventSequence([(1.5, 0)])
        with pytest.raises(ValidationError):
            EventSequence([(1, -1)])
        with pytest.raises(ValidationError):
            EventSequence([]).span()


class TestWinepi:
    def test_alarm_pattern_serial(self):
        # Event 0 is always followed by event 1 one tick later.
        seq = EventSequence(
            [(t, 0) for t in range(0, 60, 5)]
            + [(t + 1, 1) for t in range(0, 60, 5)]
        )
        result = winepi(seq, window=3, min_frequency=0.3,
                        episode_type="serial")
        assert (0, 1) in result
        assert (1, 0) not in result  # the reverse order never occurs

    def test_parallel_ignores_order(self):
        seq = EventSequence(
            [(t, 0) for t in range(0, 60, 5)]
            + [(t + 1, 1) for t in range(0, 60, 5)]
        )
        result = winepi(seq, window=3, min_frequency=0.3,
                        episode_type="parallel")
        assert (0, 1) in result  # parallel episodes are sorted sets

    def test_counts_match_oracle_serial(self):
        rng = np.random.default_rng(0)
        events = [(int(t), int(rng.integers(4))) for t in range(60)]
        seq = EventSequence(events)
        result = winepi(seq, window=5, min_frequency=0.05,
                        episode_type="serial", max_size=3)
        for episode, freq in list(result.frequencies.items())[:30]:
            expected = _brute_count(seq, episode, 5, "serial")
            assert freq == pytest.approx(expected / result.n_windows), episode

    def test_counts_match_oracle_parallel(self):
        rng = np.random.default_rng(1)
        events = [(int(t), int(rng.integers(4))) for t in range(60)]
        seq = EventSequence(events)
        result = winepi(seq, window=5, min_frequency=0.05,
                        episode_type="parallel", max_size=3)
        for episode, freq in result.frequencies.items():
            expected = _brute_count(seq, episode, 5, "parallel")
            assert freq == pytest.approx(expected / result.n_windows), episode

    def test_antimonotone_frequencies(self):
        rng = np.random.default_rng(2)
        events = [(int(t), int(rng.integers(3))) for t in range(80)]
        seq = EventSequence(events)
        result = winepi(seq, window=6, min_frequency=0.05,
                        episode_type="serial", max_size=3)
        for episode in result:
            if len(episode) >= 2:
                for i in range(len(episode)):
                    sub = episode[:i] + episode[i + 1:]
                    if sub in result:
                        assert result.frequency(sub) >= result.frequency(episode)

    def test_serial_episodes_may_repeat_types(self):
        seq = EventSequence([(t, 0) for t in range(30)])
        result = winepi(seq, window=4, min_frequency=0.3,
                        episode_type="serial", max_size=3)
        assert (0, 0) in result  # two zeros within any window of 4

    def test_wider_window_higher_frequency(self):
        seq = EventSequence(
            [(t, 0) for t in range(0, 50, 7)]
            + [(t + 3, 1) for t in range(0, 50, 7)]
        )
        narrow = winepi(seq, window=4, min_frequency=0.01,
                        episode_type="serial", max_size=2)
        wide = winepi(seq, window=10, min_frequency=0.01,
                      episode_type="serial", max_size=2)
        assert wide.frequency((0, 1)) > narrow.frequency((0, 1))

    def test_max_size(self):
        seq = EventSequence([(t, t % 3) for t in range(40)])
        result = winepi(seq, window=6, min_frequency=0.05, max_size=2)
        assert all(len(e) <= 2 for e in result)

    def test_empty_sequence(self):
        result = winepi(EventSequence([]), window=5)
        assert len(result) == 0 and result.n_windows == 0

    def test_invalid_params(self):
        seq = EventSequence([(1, 0)])
        with pytest.raises(ValidationError):
            winepi(seq, window=0)
        with pytest.raises(ValidationError):
            winepi(seq, window=5, episode_type="hybrid")
        with pytest.raises(ValidationError):
            winepi(seq, window=5, max_size=0)
