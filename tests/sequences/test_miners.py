"""Unit tests for AprioriAll, GSP and PrefixSpan (shared behaviours)."""

import pytest

from repro.core import EmptyInputError, SequenceDatabase, ValidationError
from repro.core.sequences import pattern_length
from repro.sequences import (
    apriori_all,
    brute_force_sequences,
    gsp,
    prefixspan,
)


class TestWorkedExample:
    """The AprioriAll paper's five-customer example at 25% support
    (min_count = 2)."""

    def test_maximal_sequences(self, small_seq_db):
        result = apriori_all(small_seq_db, min_support=0.4)
        maximal = result.maximal()
        # The paper's answer: <(3)(9)> and <(3)(4 7)> are maximal
        # (plus any singleton not contained in them: (1 2)-family absent
        # at this support).
        assert ((3,), (9,)) in maximal
        assert ((3,), (4, 7)) in maximal

    def test_supports_match_full_scan(self, small_seq_db):
        result = apriori_all(small_seq_db, min_support=0.4)
        for pattern, count in result.supports.items():
            assert count == small_seq_db.support_count(pattern), pattern


@pytest.mark.parametrize("miner", [gsp, prefixspan])
class TestItemLevelMiners:
    def test_matches_oracle_small(self, miner, small_seq_db):
        ref = brute_force_sequences(small_seq_db, 0.4, max_length=5).supports
        got = miner(small_seq_db, 0.4, max_length=5).supports
        assert got == ref

    def test_matches_oracle_medium(self, miner, medium_seq_db):
        # Restrict to sequences the exponential oracle can afford.
        small_enough = SequenceDatabase(
            [
                seq
                for seq in medium_seq_db
                if len(seq) <= 10 and all(len(e) <= 5 for e in seq)
            ],
            item_labels=medium_seq_db.item_labels,
        )
        assert len(small_enough) >= 50  # the filter must keep real data
        ref = brute_force_sequences(small_enough, 0.1, max_length=4).supports
        got = miner(small_enough, 0.1, max_length=4).supports
        assert got == ref

    def test_empty_db_rejected(self, miner):
        with pytest.raises(EmptyInputError, match="empty"):
            miner(SequenceDatabase([]), 0.5)

    def test_monotone_in_support(self, miner, medium_seq_db):
        loose = set(miner(medium_seq_db, 0.1, max_length=4).supports)
        tight = set(miner(medium_seq_db, 0.3, max_length=4).supports)
        assert tight.issubset(loose)

    def test_max_length_counts_items(self, miner, medium_seq_db):
        result = miner(medium_seq_db, 0.1, max_length=2)
        assert all(pattern_length(p) <= 2 for p in result.supports)

    def test_invalid_max_length(self, miner, small_seq_db):
        with pytest.raises(ValidationError):
            miner(small_seq_db, 0.5, max_length=0)


class TestAprioriAllAgreesWithGsp:
    def test_same_patterns_without_length_cap(self, medium_seq_db):
        a = apriori_all(medium_seq_db, 0.15).supports
        g = gsp(medium_seq_db, 0.15).supports
        assert a == g

    def test_small_db_agreement(self, small_seq_db):
        a = apriori_all(small_seq_db, 0.4).supports
        g = gsp(small_seq_db, 0.4).supports
        assert a == g


class TestResultContainer:
    def test_of_length_and_max_length(self, small_seq_db):
        result = gsp(small_seq_db, 0.4)
        for length, patterns in [
            (1, result.of_length(1)), (2, result.of_length(2))
        ]:
            assert all(pattern_length(p) == length for p in patterns)
        assert result.max_length() >= 2

    def test_sorted_by_support(self, small_seq_db):
        ordered = gsp(small_seq_db, 0.4).sorted_by_support()
        counts = [c for _, c in ordered]
        assert counts == sorted(counts, reverse=True)

    def test_support_accessors(self, small_seq_db):
        result = gsp(small_seq_db, 0.4)
        pattern = ((3,), (9,))
        assert result.count(pattern) == 2
        assert result.support(pattern) == pytest.approx(0.4)
        assert pattern in result
