"""Unit tests for rule generation."""

import math

import pytest

from repro.associations import apriori, filter_rules, generate_rules
from repro.core import TransactionDatabase, ValidationError


def _mined(db, min_support=0.3):
    return apriori(db, min_support)


class TestGenerateRules:
    def test_simple_confidences(self):
        db = TransactionDatabase([(0, 1), (0, 1), (0, 2), (1,)])
        rules = generate_rules(_mined(db, 0.5), min_confidence=0.0)
        by_pair = {(r.antecedent, r.consequent): r for r in rules}
        r01 = by_pair[((0,), (1,))]
        assert r01.confidence == pytest.approx(2 / 3)
        assert r01.support == pytest.approx(0.5)
        r10 = by_pair[((1,), (0,))]
        assert r10.confidence == pytest.approx(2 / 3)

    def test_min_confidence_filters(self):
        db = TransactionDatabase([(0, 1), (0, 1), (0, 2), (1,)])
        rules = generate_rules(_mined(db, 0.5), min_confidence=0.7)
        assert rules == []

    def test_consequent_growth_pruning_is_sound(self, medium_db):
        """Every rule from the fast path must match a brute enumeration."""
        from itertools import combinations

        itemsets = apriori(medium_db, 0.05)
        fast = {
            (r.antecedent, r.consequent): r.confidence
            for r in generate_rules(itemsets, min_confidence=0.6)
        }
        slow = {}
        for itemset in itemsets:
            if len(itemset) < 2:
                continue
            for size in range(1, len(itemset)):
                for consequent in combinations(itemset, size):
                    antecedent = tuple(
                        i for i in itemset if i not in consequent
                    )
                    conf = itemsets.count(itemset) / itemsets.count(antecedent)
                    if conf >= 0.6:
                        slow[(antecedent, consequent)] = conf
        assert set(fast) == set(slow)
        for key in fast:
            assert fast[key] == pytest.approx(slow[key])

    def test_rules_sorted_by_confidence(self, medium_db):
        rules = generate_rules(apriori(medium_db, 0.05), 0.3)
        confs = [r.confidence for r in rules]
        assert confs == sorted(confs, reverse=True)

    def test_conviction_inf_for_exact_rules(self):
        db = TransactionDatabase([(0, 1), (0, 1), (2,)])
        rules = generate_rules(_mined(db, 0.5), 0.99)
        exact = [r for r in rules if r.confidence == 1.0]
        assert exact and all(math.isinf(r.conviction) for r in exact)

    def test_max_consequent_size(self, medium_db):
        rules = generate_rules(
            apriori(medium_db, 0.05), 0.3, max_consequent_size=1
        )
        assert all(len(r.consequent) == 1 for r in rules)

    def test_invalid_confidence(self, small_db):
        with pytest.raises(ValidationError):
            generate_rules(_mined(small_db), min_confidence=1.5)

    def test_empty_itemsets_give_no_rules(self):
        from repro.core import FrequentItemsets
        assert generate_rules(FrequentItemsets({}, 0, 0.5), 0.5) == []

    def test_str_rendering(self):
        db = TransactionDatabase([(0, 1)] * 3)
        rules = generate_rules(_mined(db, 0.5), 0.5)
        assert "->" in str(rules[0])


class TestFilterRules:
    def _rules(self, medium_db):
        return generate_rules(apriori(medium_db, 0.05), 0.3)

    def test_filter_by_lift(self, medium_db):
        rules = self._rules(medium_db)
        strong = filter_rules(rules, min_lift=1.5)
        assert all(r.lift >= 1.5 for r in strong)
        assert len(strong) <= len(rules)

    def test_filter_combination(self, medium_db):
        rules = self._rules(medium_db)
        out = filter_rules(rules, min_support=0.08, min_confidence=0.5)
        assert all(r.support >= 0.08 and r.confidence >= 0.5 for r in out)

    def test_no_filters_is_identity(self, medium_db):
        rules = self._rules(medium_db)
        assert filter_rules(rules) == rules
