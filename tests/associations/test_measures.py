"""Unit tests for interestingness measures."""

import math

import pytest

from repro.associations import chi_square, confidence, conviction, leverage, lift
from repro.core import ValidationError


class TestConfidence:
    def test_basic(self):
        assert confidence(0.2, 0.4) == pytest.approx(0.5)

    def test_zero_antecedent(self):
        assert confidence(0.0, 0.0) == 0.0

    def test_range_validation(self):
        with pytest.raises(ValidationError):
            confidence(1.2, 0.5)


class TestLift:
    def test_independence_is_one(self):
        assert lift(0.25, 0.5, 0.5) == pytest.approx(1.0)

    def test_positive_correlation(self):
        assert lift(0.4, 0.5, 0.5) > 1.0

    def test_zero_marginals(self):
        assert lift(0.0, 0.0, 0.5) == 0.0

    def test_impossible_support_gives_inf(self):
        assert math.isinf(lift(0.1, 0.0, 0.5))


class TestLeverage:
    def test_independence_is_zero(self):
        assert leverage(0.25, 0.5, 0.5) == pytest.approx(0.0)

    def test_sign_matches_correlation(self):
        assert leverage(0.4, 0.5, 0.5) > 0
        assert leverage(0.1, 0.5, 0.5) < 0

    def test_bounds(self):
        assert -0.25 <= leverage(0.0, 0.5, 0.5) <= 0.25


class TestConviction:
    def test_independence_is_one(self):
        assert conviction(0.25, 0.5, 0.5) == pytest.approx(1.0)

    def test_perfect_rule_is_inf(self):
        assert math.isinf(conviction(0.5, 0.5, 0.5))

    def test_weak_rule_below_one(self):
        assert conviction(0.1, 0.5, 0.5) < 1.0


class TestChiSquare:
    def test_independence_is_zero(self):
        assert chi_square(0.25, 0.5, 0.5, 1000) == pytest.approx(0.0)

    def test_perfect_association_equals_n(self):
        # X == Y exactly: chi-square equals the number of transactions.
        assert chi_square(0.5, 0.5, 0.5, 200) == pytest.approx(200.0)

    def test_degenerate_marginals(self):
        assert chi_square(0.5, 1.0, 0.5, 100) == 0.0
        assert chi_square(0.0, 0.0, 0.5, 100) == 0.0

    def test_scales_with_n(self):
        small = chi_square(0.3, 0.5, 0.5, 100)
        large = chi_square(0.3, 0.5, 0.5, 1000)
        assert large == pytest.approx(10 * small)

    def test_zero_transactions(self):
        assert chi_square(0.3, 0.5, 0.5, 0) == 0.0
