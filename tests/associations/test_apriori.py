"""Unit tests for the Apriori miner."""

import pytest

from repro.associations import apriori, brute_force, min_count_from_support
from repro.core import EmptyInputError, TransactionDatabase, ValidationError


class TestMinCount:
    def test_ceiling_semantics(self):
        assert min_count_from_support(10, 0.25) == 3
        assert min_count_from_support(10, 0.3) == 3
        assert min_count_from_support(100, 0.01) == 1

    def test_zero_support_rejected(self):
        with pytest.raises(ValidationError, match="0.0"):
            min_count_from_support(10, 0.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            min_count_from_support(10, 1.5)


class TestApriori:
    def test_small_db_exact(self, small_db):
        result = apriori(small_db, min_support=0.4)
        assert result.supports == {
            (0,): 3, (1,): 4, (2,): 2, (3,): 2,
            (0, 1): 2, (1, 3): 2,
        }

    def test_matches_oracle(self, medium_db):
        for min_support in (0.02, 0.05, 0.1):
            got = apriori(medium_db, min_support).supports
            want = brute_force(medium_db, min_support).supports
            assert got == want

    def test_dict_store_matches_hash_tree(self, medium_db):
        a = apriori(medium_db, 0.05, candidate_store="hash_tree").supports
        b = apriori(medium_db, 0.05, candidate_store="dict").supports
        assert a == b

    def test_max_size_caps_output(self, medium_db):
        result = apriori(medium_db, 0.02, max_size=2)
        assert result.max_size() <= 2

    def test_empty_database_rejected(self):
        with pytest.raises(EmptyInputError, match="empty"):
            apriori(TransactionDatabase([]), 0.1)

    def test_support_one_returns_only_universal_items(self):
        db = TransactionDatabase([(0, 1), (0, 2), (0, 1)])
        result = apriori(db, min_support=1.0)
        assert set(result.supports) == {(0,)}

    def test_pass_stats_are_recorded(self, small_db):
        result = apriori(small_db, 0.4)
        assert result.pass_stats[0].k == 1
        assert result.pass_stats[0].n_frequent == 4
        assert all(s.n_frequent <= s.n_candidates for s in result.pass_stats[1:])

    def test_monotone_in_min_support(self, medium_db):
        loose = set(apriori(medium_db, 0.02).supports)
        tight = set(apriori(medium_db, 0.1).supports)
        assert tight.issubset(loose)

    def test_invalid_candidate_store(self, small_db):
        with pytest.raises(ValidationError):
            apriori(small_db, 0.1, candidate_store="magic")

    def test_invalid_max_size(self, small_db):
        with pytest.raises(ValidationError):
            apriori(small_db, 0.1, max_size=0)

    def test_downward_closure_holds(self, medium_db):
        result = apriori(medium_db, 0.05)
        from repro.core.itemsets import subsets_of_size

        for itemset in result:
            for sub in subsets_of_size(itemset, len(itemset) - 1):
                if sub:
                    assert sub in result
                    assert result.count(sub) >= result.count(itemset)
