"""Unit tests for generalized (taxonomy) and quantitative rule mining."""

import pytest

from repro.associations import (
    QuantitativeMiner,
    basic_generalized,
    cumulate,
    r_interesting_rules,
)
from repro.core import (
    Table,
    Taxonomy,
    TransactionDatabase,
    ValidationError,
    categorical,
    numeric,
)


@pytest.fixture
def clothes_db():
    # 0:jacket 1:ski_pants 2:hiking_boots 3:shoes
    # categories 4:outerwear 5:footwear 6:clothes
    txns = [
        (0, 2),       # jacket + hiking boots
        (1, 2),       # ski pants + hiking boots
        (3,),         # shoes
        (0,),         # jacket
        (1, 3),       # ski pants + shoes
        (0, 2),
    ]
    tax = Taxonomy({0: [4], 1: [4], 4: [6], 2: [5], 3: [5]})
    db = TransactionDatabase(txns, item_labels=list(range(7)))
    return db, tax


class TestGeneralized:
    def test_paper_motivating_example(self, clothes_db):
        """'outerwear -> hiking boots' is frequent even though neither
        jacket nor ski-pants rules are (the VLDB '95 motivation)."""
        db, tax = clothes_db
        result = basic_generalized(db, tax, min_support=0.5)
        # outerwear (4) appears in 5 of 6 transactions.
        assert result.supports[(4,)] == 5
        # outerwear + hiking boots co-occur 3 times (>= 50%).
        assert result.supports[(2, 4)] == 3
        # The specific pairs are infrequent.
        assert (0, 2) not in result.supports
        assert (1, 2) not in result.supports

    def test_cumulate_matches_basic(self, clothes_db):
        db, tax = clothes_db
        for min_support in (0.2, 0.4, 0.7):
            assert (
                cumulate(db, tax, min_support).supports
                == basic_generalized(db, tax, min_support).supports
            )

    def test_ancestor_support_dominates(self, clothes_db):
        db, tax = clothes_db
        result = cumulate(db, tax, 0.1)
        for item in (0, 1):
            for ancestor in tax.ancestors(item):
                assert (
                    result.supports[(ancestor,)] >= result.supports[(item,)]
                )

    def test_item_plus_ancestor_support_equal(self, clothes_db):
        db, tax = clothes_db
        result = cumulate(db, tax, 0.1)
        # {jacket, outerwear} must carry jacket's own support.
        assert result.supports[(0, 4)] == result.supports[(0,)]

    def test_empty_db_rejected(self, clothes_db):
        _, tax = clothes_db
        from repro.core import EmptyInputError
        with pytest.raises(EmptyInputError, match="empty"):
            cumulate(TransactionDatabase([]), tax, 0.5)

    def test_r_interesting_filters_redundant_specialisations(self, clothes_db):
        db, tax = clothes_db
        itemsets = cumulate(db, tax, 0.15)
        all_rules = r_interesting_rules(itemsets, tax, 0.5, r=1.0)
        strict = r_interesting_rules(itemsets, tax, 0.5, r=1.3)
        assert len(strict) <= len(all_rules)

    def test_r_below_one_rejected(self, clothes_db):
        db, tax = clothes_db
        with pytest.raises(ValidationError):
            r_interesting_rules(cumulate(db, tax, 0.3), tax, 0.5, r=0.5)


class TestQuantitative:
    def _table(self):
        rows = []
        for age in range(20, 70):
            married = "yes" if age >= 40 else "no"
            cars = 2.0 if age >= 40 else 1.0
            rows.append((float(age), married, cars))
        return Table.from_rows(
            rows,
            [numeric("age"), categorical("married", ["no", "yes"]),
             numeric("cars")],
        )

    def test_finds_planted_boundary(self):
        miner = QuantitativeMiner(
            n_base_intervals=5, min_support=0.2, max_support=0.7
        )
        rules = miner.mine(self._table())
        rendered = [miner.render_rule(r) for r in rules]
        assert any(
            "married = 'yes'" in line and "age" in line for line in rendered
        )

    def test_no_attribute_twice_in_an_itemset(self):
        miner = QuantitativeMiner(n_base_intervals=4, min_support=0.1)
        miner.mine(self._table())
        for itemset in miner.itemsets_:
            attrs = [q.attribute for q in miner.decode(itemset)]
            assert len(attrs) == len(set(attrs))

    def test_max_support_caps_ranges(self):
        miner = QuantitativeMiner(
            n_base_intervals=4, min_support=0.05, max_support=0.3
        )
        miner.mine(self._table())
        n = 50
        for item_id in range(len(miner.items_)):
            support = miner.itemsets_.supports.get((item_id,))
            if support is not None:
                assert support <= 0.3 * n + 1e-9

    def test_more_base_intervals_more_items(self):
        table = self._table()
        coarse = QuantitativeMiner(n_base_intervals=3, min_support=0.1)
        fine = QuantitativeMiner(n_base_intervals=10, min_support=0.1)
        coarse.mine(table)
        fine.mine(table)
        assert len(fine.items_) > len(coarse.items_)

    def test_supports_match_direct_row_counts(self):
        table = self._table()
        miner = QuantitativeMiner(n_base_intervals=4, min_support=0.1)
        miner.mine(table)
        ages = table.column("age")
        for itemset, count in miner.itemsets_.supports.items():
            quants = miner.decode(itemset)
            if len(quants) == 1 and quants[0].attribute == "age":
                q = quants[0]
                direct = int(((ages >= q.low) & (ages <= q.high)).sum())
                assert count == direct

    def test_item_str_rendering(self):
        from repro.associations import QuantItem

        assert str(QuantItem("married", value="yes")) == "married = 'yes'"
        assert (
            str(QuantItem("age", low=30.0, high=39.0)) == "age in [30 .. 39]"
        )

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            QuantitativeMiner(n_base_intervals=1)
        with pytest.raises(ValidationError):
            QuantitativeMiner(min_support=0.5, max_support=0.2)

    def test_missing_numeric_cells_ignored(self):
        rows = [(1.0, "a"), (None, "a"), (2.0, "b"), (None, "b")] * 5
        table = Table.from_rows(
            rows, [numeric("x"), categorical("c", ["a", "b"])]
        )
        miner = QuantitativeMiner(n_base_intervals=2, min_support=0.2)
        rules = miner.mine(table)  # must not crash on NaN cells
        assert miner.items_
