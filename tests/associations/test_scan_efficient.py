"""Unit tests for the scan-efficient miners: DHP, Partition, Sampling."""

import pytest

from repro.associations import (
    apriori,
    brute_force,
    dhp,
    negative_border,
    partition_miner,
    sampling_miner,
)
from repro.core import EmptyInputError, TransactionDatabase, ValidationError


class TestDHP:
    def test_agrees_with_apriori(self, medium_db):
        for min_support in (0.02, 0.05, 0.15):
            assert (
                dhp(medium_db, min_support).supports
                == apriori(medium_db, min_support).supports
            )

    def test_filter_is_lossless_even_with_tiny_table(self, medium_db):
        # Massive collisions (8 buckets) weaken pruning but never drop a
        # real frequent pair.
        assert (
            dhp(medium_db, 0.05, n_buckets=8).supports
            == apriori(medium_db, 0.05).supports
        )

    def test_filter_reduces_c2(self, medium_db):
        result = dhp(medium_db, 0.05, n_buckets=4096)
        assert result.c2_filtered <= result.c2_unfiltered
        # With many buckets on this workload the reduction is real.
        assert result.c2_filtered < result.c2_unfiltered

    def test_more_buckets_never_weaker(self, medium_db):
        coarse = dhp(medium_db, 0.05, n_buckets=16)
        fine = dhp(medium_db, 0.05, n_buckets=65536)
        assert fine.c2_filtered <= coarse.c2_filtered

    def test_empty_db_rejected(self):
        with pytest.raises(EmptyInputError, match="empty"):
            dhp(TransactionDatabase([]), 0.1)

    def test_max_size_one_skips_pass2(self, medium_db):
        result = dhp(medium_db, 0.05, max_size=1)
        assert result.max_size() <= 1


class TestPartition:
    def test_agrees_with_apriori(self, medium_db):
        for n_partitions in (1, 3, 7):
            assert (
                partition_miner(medium_db, 0.05, n_partitions=n_partitions).supports
                == apriori(medium_db, 0.05).supports
            )

    def test_more_partitions_than_transactions(self):
        db = TransactionDatabase([(0, 1), (1, 2), (0, 2)])
        result = partition_miner(db, 0.3, n_partitions=10)
        assert result.supports == brute_force(db, 0.3).supports

    def test_empty_db_rejected(self):
        with pytest.raises(EmptyInputError, match="empty"):
            partition_miner(TransactionDatabase([]), 0.1)

    def test_invalid_partitions(self, small_db):
        with pytest.raises(ValidationError):
            partition_miner(small_db, 0.1, n_partitions=0)


class TestSampling:
    def test_exact_across_seeds(self, medium_db):
        want = apriori(medium_db, 0.05).supports
        for seed in range(5):
            result = sampling_miner(
                medium_db, 0.05, sample_fraction=0.3, random_state=seed
            )
            assert result.supports == want
            assert result.misses >= 0

    def test_tiny_sample_still_exact(self, medium_db):
        want = apriori(medium_db, 0.1).supports
        result = sampling_miner(
            medium_db, 0.1, sample_fraction=0.05, random_state=1
        )
        assert result.supports == want

    def test_lowering_one_is_valid(self, medium_db):
        result = sampling_miner(
            medium_db, 0.05, lowering=0.999, random_state=0
        )
        assert result.supports == apriori(medium_db, 0.05).supports

    def test_invalid_params(self, small_db):
        with pytest.raises(ValidationError):
            sampling_miner(small_db, 0.1, sample_fraction=0.0)
        with pytest.raises(ValidationError):
            sampling_miner(small_db, 0.1, lowering=1.5)

    def test_empty_db_rejected(self):
        with pytest.raises(EmptyInputError, match="empty"):
            sampling_miner(TransactionDatabase([]), 0.1)


class TestNegativeBorder:
    def test_singleton_border(self):
        border = negative_border({(0,), (1,)}, n_items=4, max_size=None)
        assert (2,) in border and (3,) in border

    def test_pair_border(self):
        frequent = {(0,), (1,), (2,), (0, 1)}
        border = negative_border(frequent, n_items=3, max_size=None)
        # (0,2) and (1,2) have all singleton subsets frequent but are
        # not frequent themselves.
        assert (0, 2) in border and (1, 2) in border
        assert (0, 1) not in border

    def test_max_size_caps_border(self):
        frequent = {(0,), (1,)}
        border = negative_border(frequent, n_items=2, max_size=1)
        assert all(len(b) <= 1 for b in border)
