"""Unit tests for apriori-gen (join + prune)."""

from repro.associations import apriori_gen


class TestJoin:
    def test_paper_example(self):
        # Frequent 3-itemsets {123, 124, 134, 135, 234} join to {1234, 1345},
        # and the prune step kills 1345 (145 not frequent) — the worked
        # example of the Apriori paper.
        frequent = [(1, 2, 3), (1, 2, 4), (1, 3, 4), (1, 3, 5), (2, 3, 4)]
        assert apriori_gen(frequent) == [(1, 2, 3, 4)]

    def test_pairs_from_singletons(self):
        assert apriori_gen([(1,), (2,), (3,)]) == [(1, 2), (1, 3), (2, 3)]

    def test_empty_input(self):
        assert apriori_gen([]) == []

    def test_no_joinable_pairs(self):
        assert apriori_gen([(1, 2), (3, 4)]) == []

    def test_prune_removes_unsupported_subsets(self):
        # (1,3) and (2,3) frequent but (1,2) not -> no candidate (1,2,3).
        assert apriori_gen([(1, 3), (2, 3)]) == []

    def test_output_is_sorted_and_canonical(self):
        out = apriori_gen([(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)])
        assert out == sorted(out)
        assert all(list(c) == sorted(set(c)) for c in out)

    def test_k4_from_k3_complete_lattice(self):
        frequent = [
            (1, 2, 3), (1, 2, 4), (1, 3, 4), (2, 3, 4),
        ]
        assert apriori_gen(frequent) == [(1, 2, 3, 4)]
