"""Unit tests for AprioriTid, AprioriHybrid, Eclat and FP-Growth.

All four must produce byte-identical results to Apriori; each also has
variant-specific behaviours worth pinning down.
"""

import pytest

from repro.associations import (
    apriori,
    apriori_hybrid,
    apriori_tid,
    eclat,
    fp_growth,
)
from repro.core import EmptyInputError, TransactionDatabase, ValidationError

MINERS = {
    "apriori_tid": apriori_tid,
    "apriori_hybrid": apriori_hybrid,
    "eclat": eclat,
    "fp_growth": fp_growth,
}


@pytest.mark.parametrize("name", sorted(MINERS))
class TestAgreement:
    def test_small_db(self, name, small_db):
        want = apriori(small_db, 0.4).supports
        assert MINERS[name](small_db, 0.4).supports == want

    def test_medium_db_multiple_thresholds(self, name, medium_db):
        for min_support in (0.02, 0.05, 0.15):
            want = apriori(medium_db, min_support).supports
            assert MINERS[name](medium_db, min_support).supports == want

    def test_empty_db_rejected(self, name):
        with pytest.raises(EmptyInputError, match="empty"):
            MINERS[name](TransactionDatabase([]), 0.1)

    def test_max_size(self, name, medium_db):
        result = MINERS[name](medium_db, 0.02, max_size=2)
        want = apriori(medium_db, 0.02, max_size=2).supports
        assert result.supports == want

    def test_invalid_max_size(self, name, small_db):
        with pytest.raises(ValidationError):
            MINERS[name](small_db, 0.1, max_size=0)


class TestAprioriTidSpecifics:
    def test_pass_stats_match_apriori(self, medium_db):
        a = apriori(medium_db, 0.05).pass_stats
        t = apriori_tid(medium_db, 0.05).pass_stats
        for pa, pt in zip(a, t):
            assert (pa.k, pa.n_frequent) == (pt.k, pt.n_frequent)

    def test_single_transaction(self):
        db = TransactionDatabase([(0, 1, 2)])
        result = apriori_tid(db, 1.0)
        assert result.supports[(0, 1, 2)] == 1
        assert len(result) == 7


class TestHybridSpecifics:
    def test_switch_is_recorded(self, medium_db):
        result = apriori_hybrid(medium_db, 0.05)
        # With the default budget the switch happens at some pass >= 2,
        # or never (None); either way the attribute must exist.
        assert result.switched_at is None or result.switched_at >= 2

    def test_forced_early_switch_still_correct(self, medium_db):
        huge_budget = 10**9
        result = apriori_hybrid(medium_db, 0.05, switch_budget=huge_budget)
        assert result.switched_at == 2
        assert result.supports == apriori(medium_db, 0.05).supports

    def test_forced_no_switch_still_correct(self, medium_db):
        result = apriori_hybrid(medium_db, 0.05, switch_budget=0)
        assert result.switched_at is None
        assert result.supports == apriori(medium_db, 0.05).supports


class TestFPGrowthSpecifics:
    def test_single_path_shortcut(self):
        # All transactions identical -> the FP-tree is one path.
        db = TransactionDatabase([(0, 1, 2)] * 4)
        result = fp_growth(db, 0.5)
        assert len(result) == 7
        assert all(c == 4 for c in result.supports.values())

    def test_handles_all_infrequent(self):
        db = TransactionDatabase([(0,), (1,), (2,)])
        assert len(fp_growth(db, 0.9)) == 0


class TestEclatSpecifics:
    def test_vertical_supports_match_scan(self, small_db):
        result = eclat(small_db, 0.2)
        for itemset, count in result.supports.items():
            assert count == small_db.support_count(itemset)
