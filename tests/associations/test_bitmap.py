"""BitmapDatabase contract: windowed counting and degenerate inputs.

Regression coverage for the bugs fixed alongside the columnar data
plane: ``frequent()`` used to ignore its ``begin``/``stop`` window
(thresholding full-database counts inside a shard), and empty candidate
lists / all-empty-transaction databases tripped ``np.packbits`` shape
handling.
"""

import pytest

from repro.associations.bitmap import BitmapDatabase
from repro.core import TransactionDatabase


@pytest.fixture
def db():
    return TransactionDatabase(
        [(0, 1), (0, 1), (0, 2), (1, 2), (0, 1), (2,)]
    )


def test_frequent_honours_window(db):
    bitmap = BitmapDatabase(db)
    # (0, 1) appears in transactions 0, 1, 4: full support 3, but only
    # twice inside [0, 3).  The old implementation thresholded the full
    # count, returning {(0, 1): 3} for min_count=3 even in the window.
    assert bitmap.frequent([(0, 1)], min_count=3) == {(0, 1): 3}
    assert bitmap.frequent([(0, 1)], min_count=3, begin=0, stop=3) == {}
    assert bitmap.frequent([(0, 1)], min_count=2, begin=0, stop=3) == \
        {(0, 1): 2}
    assert bitmap.frequent([(0, 1)], min_count=1, begin=2, stop=4) == {}


def test_windowed_frequent_reports_window_counts(db):
    bitmap = BitmapDatabase(db)
    out = bitmap.frequent([(0,), (1,), (2,)], min_count=1, begin=3, stop=6)
    assert out == {(0,): 1, (1,): 2, (2,): 2}


def test_empty_candidate_list(db):
    bitmap = BitmapDatabase(db)
    assert bitmap.count([]) == []
    assert bitmap.frequent([], min_count=1) == {}


def test_all_empty_transactions():
    db = TransactionDatabase([(), (), (), ()])
    bitmap = BitmapDatabase(db)
    assert bitmap.n_transactions == 4
    assert bitmap.count([]) == []
    assert bitmap.count([()]) == [4]
    assert bitmap.frequent([()], min_count=4) == {(): 4}
    assert bitmap.frequent([()], min_count=4, begin=0, stop=2) == {}


def test_empty_database():
    db = TransactionDatabase([])
    bitmap = BitmapDatabase(db)
    assert bitmap.count([()]) == [0]
    assert bitmap.frequent([()], min_count=1) == {}


def test_shared_encoding_across_wrappers(db):
    assert BitmapDatabase(db).packed is BitmapDatabase(db).packed
