"""Unit tests for the brute-force oracle itself."""

import pytest

from repro.associations import brute_force
from repro.core import EmptyInputError, TransactionDatabase, ValidationError


class TestBruteForce:
    def test_counts_by_hand(self):
        db = TransactionDatabase([(0, 1), (0,), (1,)])
        result = brute_force(db, min_support=0.3)
        assert result.supports == {(0,): 2, (1,): 2, (0, 1): 1}

    def test_max_size_cap(self):
        db = TransactionDatabase([(0, 1, 2)])
        result = brute_force(db, 0.5, max_size=2)
        assert result.max_size() == 2
        assert len(result) == 6

    def test_guard_against_long_transactions(self):
        db = TransactionDatabase([tuple(range(30))])
        with pytest.raises(ValidationError):
            brute_force(db, 0.5)

    def test_long_transactions_allowed_with_cap(self):
        db = TransactionDatabase([tuple(range(30))])
        result = brute_force(db, 0.5, max_size=1)
        assert len(result) == 30

    def test_empty_db_rejected(self):
        with pytest.raises(EmptyInputError, match="empty"):
            brute_force(TransactionDatabase([]), 0.5)
