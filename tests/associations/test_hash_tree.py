"""Unit tests for the hash-tree candidate store."""

import itertools
import random

import pytest

from repro.associations import HashTree


class TestHashTree:
    def test_counts_match_naive(self):
        candidates = [(1, 2), (1, 3), (2, 3), (2, 4), (17, 33)]
        txns = [(1, 2, 3), (2, 3, 4), (1, 17, 33), (1, 2, 3, 4, 17, 33)]
        tree = HashTree(candidates)
        tree.count_transactions(txns)
        counts = tree.counts()
        for cand in candidates:
            expected = sum(
                1 for t in txns if set(cand).issubset(t)
            )
            assert counts[cand] == expected, cand

    def test_no_double_count_on_hash_collisions(self):
        # Items 1 and 17 collide modulo the default 16 buckets.
        tree = HashTree([(1, 17)], leaf_capacity=1, n_buckets=16)
        tree.count_transaction((1, 17, 33))
        assert tree.counts()[(1, 17)] == 1

    def test_deep_split_still_correct(self):
        items = list(range(12))
        candidates = list(itertools.combinations(items, 3))
        tree = HashTree(candidates, leaf_capacity=2, n_buckets=4)
        txn = tuple(range(0, 12, 2))
        tree.count_transaction(txn)
        counts = tree.counts()
        for cand in candidates:
            expected = 1 if set(cand).issubset(txn) else 0
            assert counts[cand] == expected

    def test_short_transactions_skipped(self):
        tree = HashTree([(1, 2, 3)])
        tree.count_transaction((1, 2))
        assert all(c == 0 for c in tree.counts().values())

    def test_empty_candidate_set(self):
        tree = HashTree([])
        tree.count_transaction((1, 2))
        assert tree.counts() == {}
        assert len(tree) == 0

    def test_mixed_sizes_rejected(self):
        with pytest.raises(ValueError):
            HashTree([(1,), (1, 2)])

    def test_frequent_thresholding(self):
        tree = HashTree([(1, 2), (3, 4)])
        tree.count_transactions([(1, 2), (1, 2, 5), (3, 4)])
        assert tree.frequent(2) == {(1, 2): 2}

    def test_randomised_against_naive(self):
        rng = random.Random(3)
        items = range(30)
        candidates = sorted(
            {tuple(sorted(rng.sample(items, 3))) for _ in range(60)}
        )
        txns = [
            tuple(sorted(rng.sample(items, rng.randint(3, 12))))
            for _ in range(150)
        ]
        tree = HashTree(candidates, leaf_capacity=4, n_buckets=8)
        tree.count_transactions(txns)
        counts = tree.counts()
        for cand in candidates:
            expected = sum(1 for t in txns if set(cand).issubset(t))
            assert counts[cand] == expected
