"""Predict-before-fit must raise NotFittedError across every estimator.

A uniform guard matters for the runtime layer: budget-truncated fits
still produce *fitted* models, so ``NotFittedError`` must mean exactly
"fit was never called", never "fit was cut short".
"""

import numpy as np
import pytest

from repro.classification import (
    C45,
    CART,
    ID3,
    KNN,
    PRISM,
    SLIQ,
    AdaBoostM1,
    Bagging,
    C45Rules,
    NaiveBayes,
    OneR,
    ZeroR,
)
from repro.clustering import KMeans
from repro.core.exceptions import NotFittedError
from repro.regression import LinearRegression, RegressionTree

CLASSIFIER_FACTORIES = {
    "id3": lambda: ID3(),
    "c45": lambda: C45(),
    "cart": lambda: CART(),
    "sliq": lambda: SLIQ(),
    "nb": lambda: NaiveBayes(),
    "knn": lambda: KNN(),
    "prism": lambda: PRISM(),
    "c45_rules": lambda: C45Rules(),
    "bagging": lambda: Bagging(lambda: C45(prune=False)),
    "adaboost": lambda: AdaBoostM1(lambda: C45(max_depth=1, prune=False)),
    "zeror": lambda: ZeroR(),
    "oner": lambda: OneR(),
}


@pytest.mark.parametrize("name", sorted(CLASSIFIER_FACTORIES))
def test_classifier_predict_before_fit(name, tennis):
    model = CLASSIFIER_FACTORIES[name]()
    with pytest.raises(NotFittedError):
        model.predict(tennis)


@pytest.mark.parametrize("name", sorted(CLASSIFIER_FACTORIES))
def test_classifier_score_before_fit(name, tennis):
    model = CLASSIFIER_FACTORIES[name]()
    with pytest.raises(NotFittedError):
        model.score(tennis)


def test_kmeans_predict_before_fit():
    X = np.zeros((4, 2))
    with pytest.raises(NotFittedError):
        KMeans(2).predict(X)
    with pytest.raises(NotFittedError):
        KMeans(2).transform(X)


@pytest.mark.parametrize(
    "factory", [RegressionTree, LinearRegression], ids=["tree", "linear"]
)
def test_regressor_predict_before_fit(factory, weather):
    with pytest.raises(NotFittedError):
        factory().predict(weather)


def test_truncated_fit_is_still_fitted(f2_train):
    """A budget-truncated tree is fitted — NotFittedError must not fire."""
    from repro.runtime import Budget

    model = C45(prune=False, budget=Budget(max_nodes=1))
    model.fit(f2_train, "group")
    assert model.truncated_
    assert len(model.predict(f2_train)) == f2_train.n_rows
