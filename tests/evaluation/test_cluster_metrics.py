"""Unit tests for clustering metrics."""

import numpy as np
import pytest

from repro.core import ValidationError
from repro.evaluation import (
    adjusted_rand_index,
    normalized_mutual_info,
    purity,
    rand_index,
    silhouette,
    sse,
)


class TestSSE:
    def test_by_hand(self):
        X = np.array([[0.0], [2.0], [10.0]])
        labels = np.array([0, 0, 1])
        assert sse(X, labels) == pytest.approx(2.0)

    def test_with_explicit_centers(self):
        X = np.array([[0.0], [2.0]])
        centers = np.array([[0.0]])
        assert sse(X, np.array([0, 0]), centers) == pytest.approx(4.0)

    def test_noise_skipped(self):
        X = np.array([[0.0], [1000.0]])
        labels = np.array([0, -1])
        assert sse(X, labels) == pytest.approx(0.0)

    def test_singletons_are_zero(self):
        X = np.random.default_rng(0).normal(size=(5, 2))
        assert sse(X, np.arange(5)) == pytest.approx(0.0)


class TestPurity:
    def test_perfect(self):
        assert purity([0, 0, 1, 1], ["a", "a", "b", "b"]) == 1.0

    def test_mixed(self):
        assert purity([0, 0, 0, 0], ["a", "a", "b", "c"]) == 0.5

    def test_singleton_clusters_are_pure(self):
        assert purity([0, 1, 2], ["a", "a", "b"]) == 1.0


class TestRandIndices:
    def test_identical_partitions(self):
        assert rand_index([0, 0, 1], [5, 5, 9]) == 1.0
        assert adjusted_rand_index([0, 0, 1], [5, 5, 9]) == 1.0

    def test_ari_zero_ish_for_random(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 3, 600)
        b = rng.integers(0, 3, 600)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_rand_counts_by_hand(self):
        # Partitions {1,2},{3} vs {1},{2,3}: agree only on pair (1,3).
        a = [0, 0, 1]
        b = [0, 1, 1]
        assert rand_index(a, b) == pytest.approx(1 / 3)

    def test_ari_leq_one(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 4, 100)
        b = a.copy()
        b[:10] = (b[:10] + 1) % 4
        value = adjusted_rand_index(a, b)
        assert 0.0 < value < 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            rand_index([0], [0, 1])


class TestNMI:
    def test_identical(self):
        assert normalized_mutual_info([0, 1, 0], [7, 8, 7]) == 1.0

    def test_independent(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 2, 2000)
        b = rng.integers(0, 2, 2000)
        assert normalized_mutual_info(a, b) < 0.05

    def test_single_cluster_against_many(self):
        assert normalized_mutual_info([0, 0, 0], [0, 1, 2]) == pytest.approx(
            0.0, abs=1e-9
        )


class TestSilhouette:
    def test_well_separated_near_one(self):
        X = np.concatenate([
            np.random.default_rng(0).normal(0, 0.1, (20, 2)),
            np.random.default_rng(1).normal(10, 0.1, (20, 2)),
        ])
        labels = np.array([0] * 20 + [1] * 20)
        assert silhouette(X, labels) > 0.95

    def test_single_cluster_zero(self):
        X = np.random.default_rng(3).normal(size=(10, 2))
        assert silhouette(X, np.zeros(10, dtype=int)) == 0.0

    def test_noise_excluded(self):
        X = np.concatenate([
            np.random.default_rng(0).normal(0, 0.1, (10, 2)),
            np.random.default_rng(1).normal(10, 0.1, (10, 2)),
            [[1000.0, 1000.0]],
        ])
        labels = np.array([0] * 10 + [1] * 10 + [-1])
        assert silhouette(X, labels) > 0.9

    def test_bad_partition_scores_lower(self):
        X = np.concatenate([
            np.random.default_rng(0).normal(0, 0.1, (20, 2)),
            np.random.default_rng(1).normal(10, 0.1, (20, 2)),
        ])
        good = np.array([0] * 20 + [1] * 20)
        bad = np.array(([0, 1] * 20))
        assert silhouette(X, good) > silhouette(X, bad)
