"""Unit tests for classification metrics."""

import numpy as np
import pytest

from repro.core import ValidationError
from repro.evaluation import (
    accuracy,
    classification_report,
    confusion_matrix,
    error_rate,
    macro_f1,
    precision_recall_f1,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([1, 2], [1, 2]) == 1.0

    def test_partial(self):
        assert accuracy(["a", "b", "c"], ["a", "x", "c"]) == pytest.approx(2 / 3)

    def test_error_rate_complement(self):
        assert error_rate([1, 0], [1, 1]) == pytest.approx(0.5)

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            accuracy([1], [1, 2])

    def test_empty(self):
        with pytest.raises(ValidationError):
            accuracy([], [])


class TestConfusionMatrix:
    def test_counts(self):
        m, labels = confusion_matrix(
            ["cat", "cat", "dog", "dog"], ["cat", "dog", "dog", "dog"]
        )
        assert labels == ["cat", "dog"]
        assert m.tolist() == [[1, 1], [0, 2]]

    def test_diagonal_sum_is_correct_predictions(self):
        y_true = [0, 1, 2, 2, 1]
        y_pred = [0, 2, 2, 2, 1]
        m, _ = confusion_matrix(y_true, y_pred)
        assert np.trace(m) == 4

    def test_explicit_label_order(self):
        m, labels = confusion_matrix([1, 0], [1, 0], labels=[1, 0])
        assert labels == [1, 0]
        assert m.tolist() == [[1, 0], [0, 1]]

    def test_unknown_label_rejected(self):
        with pytest.raises(ValidationError):
            confusion_matrix([0, 1], [0, 1], labels=[0])


class TestPrecisionRecallF1:
    def test_textbook_values(self):
        # TP=2, FP=1, FN=1.
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        p, r, f1 = precision_recall_f1(y_true, y_pred, positive=1)
        assert p == pytest.approx(2 / 3)
        assert r == pytest.approx(2 / 3)
        assert f1 == pytest.approx(2 / 3)

    def test_no_predicted_positives(self):
        p, r, f1 = precision_recall_f1([1, 0], [0, 0], positive=1)
        assert (p, r, f1) == (0.0, 0.0, 0.0)

    def test_perfect(self):
        assert precision_recall_f1([1, 0], [1, 0], 1) == (1.0, 1.0, 1.0)


class TestReport:
    def test_per_class_entries(self):
        report = classification_report(["a", "a", "b"], ["a", "b", "b"])
        assert report["a"].support == 2
        assert report["a"].precision == 1.0
        assert report["a"].recall == pytest.approx(0.5)
        assert report["b"].recall == 1.0

    def test_macro_f1_averages(self):
        value = macro_f1(["a", "a", "b", "b"], ["a", "a", "b", "b"])
        assert value == 1.0

    def test_macro_f1_penalises_missed_minority(self):
        y_true = ["maj"] * 98 + ["min"] * 2
        y_pred = ["maj"] * 100
        assert accuracy(y_true, y_pred) == pytest.approx(0.98)
        assert macro_f1(y_true, y_pred) < 0.6
