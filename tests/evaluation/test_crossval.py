"""Unit tests for cross-validation."""

import numpy as np
import pytest

from repro.classification import NaiveBayes, ZeroR
from repro.core import ValidationError
from repro.datasets import iris
from repro.evaluation import (
    cross_val_score,
    kfold_indices,
    stratified_kfold_indices,
)


class TestKFold:
    def test_partitions_all_rows(self):
        folds = list(kfold_indices(23, 5, shuffle=False))
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(23))

    def test_train_test_disjoint(self):
        for train, test in kfold_indices(30, 4, random_state=0):
            assert not set(train.tolist()) & set(test.tolist())
            assert len(train) + len(test) == 30

    def test_sizes_balanced(self):
        sizes = [len(t) for _, t in kfold_indices(10, 3, shuffle=False)]
        assert sizes == [4, 3, 3]

    def test_shuffle_changes_order(self):
        plain = [t.tolist() for _, t in kfold_indices(20, 4, shuffle=False)]
        shuffled = [
            t.tolist() for _, t in kfold_indices(20, 4, random_state=0)
        ]
        assert plain != shuffled

    def test_too_many_folds(self):
        with pytest.raises(ValidationError):
            list(kfold_indices(3, 5))

    def test_invalid_folds(self):
        with pytest.raises(ValidationError):
            list(kfold_indices(10, 1))


class TestStratifiedKFold:
    def test_class_balance_per_fold(self):
        y = np.array([0] * 50 + [1] * 50)
        for _, test in stratified_kfold_indices(y, 5, random_state=0):
            labels = y[test]
            assert (labels == 0).sum() == 10
            assert (labels == 1).sum() == 10

    def test_partitions_all_rows(self):
        y = np.array([0, 1, 0, 1, 2, 2, 0, 1, 2, 0])
        folds = list(stratified_kfold_indices(y, 3, random_state=1))
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(10))

    def test_rare_class_spread(self):
        y = np.array([0] * 97 + [1] * 3)
        folds = list(stratified_kfold_indices(y, 3, random_state=2))
        rare_in_fold = [int((y[test] == 1).sum()) for _, test in folds]
        assert rare_in_fold == [1, 1, 1]


class TestCrossValScore:
    def test_returns_one_score_per_fold(self):
        scores = cross_val_score(NaiveBayes, iris(), "species", n_folds=4,
                                 random_state=0)
        assert len(scores) == 4
        assert all(0.0 <= s <= 1.0 for s in scores)

    def test_nb_beats_zeror_on_iris(self):
        nb = np.mean(cross_val_score(NaiveBayes, iris(), "species",
                                     random_state=0))
        zr = np.mean(cross_val_score(ZeroR, iris(), "species",
                                     random_state=0))
        assert nb > zr + 0.3

    def test_unstratified_variant(self):
        scores = cross_val_score(
            NaiveBayes, iris(), "species", stratified=False, random_state=0
        )
        assert len(scores) == 5
