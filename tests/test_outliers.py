"""Unit tests for the outlier detectors."""

import numpy as np
import pytest

from repro.core import ValidationError
from repro.outliers import distance_outliers, iqr_outliers, zscore_outliers


@pytest.fixture
def blob_with_outliers():
    rng = np.random.default_rng(0)
    X = rng.normal(0, 1.0, size=(200, 2))
    outliers = np.array([[25.0, 25.0], [-30.0, 10.0], [0.0, 40.0]])
    return np.vstack([X, outliers]), np.array([False] * 200 + [True] * 3)


class TestZScore:
    def test_flags_planted_outliers(self, blob_with_outliers):
        X, truth = blob_with_outliers
        flags = zscore_outliers(X, threshold=4.0)
        assert flags[truth].all()
        assert flags[~truth].mean() < 0.02

    def test_constant_column_never_flags(self):
        X = np.column_stack([np.ones(50), np.linspace(0, 1, 50)])
        assert not zscore_outliers(X, threshold=3.0)[:10].any()

    def test_lower_threshold_flags_more(self, blob_with_outliers):
        X, _ = blob_with_outliers
        loose = zscore_outliers(X, threshold=1.0).sum()
        strict = zscore_outliers(X, threshold=3.0).sum()
        assert loose > strict

    def test_invalid_threshold(self):
        with pytest.raises(ValidationError):
            zscore_outliers(np.ones((3, 1)), threshold=0.0)


class TestIQR:
    def test_flags_planted_outliers(self, blob_with_outliers):
        X, truth = blob_with_outliers
        flags = iqr_outliers(X, k=3.0)
        assert flags[truth].all()

    def test_uniform_data_mostly_clean(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(size=(300, 3))
        assert iqr_outliers(X, k=1.5).mean() < 0.05

    def test_textbook_fences(self):
        X = np.array([[1.0], [2.0], [3.0], [4.0], [100.0]])
        flags = iqr_outliers(X)
        assert flags.tolist() == [False, False, False, False, True]


class TestDistanceBased:
    def test_flags_planted_outliers(self, blob_with_outliers):
        X, truth = blob_with_outliers
        flags = distance_outliers(X, eps=5.0, fraction=0.95)
        assert flags[truth].all()
        assert not flags[~truth].any()

    def test_handles_cluster_structure_unlike_zscore(self):
        # Two tight clusters far apart: cluster members are NOT outliers
        # under DB(p, D) with a sensible eps, but a lone point is.
        rng = np.random.default_rng(2)
        X = np.vstack([
            rng.normal(0, 0.2, (50, 2)),
            rng.normal(50, 0.2, (50, 2)),
            [[25.0, 25.0]],
        ])
        flags = distance_outliers(X, eps=2.0, fraction=0.6)
        assert flags[-1]
        assert not flags[:100].any()

    def test_blockwise_matches_single_block(self, blob_with_outliers):
        X, _ = blob_with_outliers
        a = distance_outliers(X, eps=5.0, fraction=0.95, block_size=7)
        b = distance_outliers(X, eps=5.0, fraction=0.95, block_size=10**6)
        assert (a == b).all()

    def test_fraction_one_flags_isolated_only(self):
        X = np.array([[0.0], [0.1], [100.0]])
        flags = distance_outliers(X, eps=1.0, fraction=1.0)
        # fraction=1 demands ALL other points beyond eps.
        assert flags.tolist() == [False, False, True]

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            distance_outliers(np.ones((3, 1)), eps=0.0)
        with pytest.raises(ValidationError):
            distance_outliers(np.ones((3, 1)), eps=1.0, fraction=1.5)
