"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def basket_file(tmp_path):
    path = tmp_path / "basket.dat"
    assert main(["generate", "basket", str(path), "--rows", "300",
                 "--seed", "1"]) == 0
    return path


@pytest.fixture
def agrawal_file(tmp_path):
    path = tmp_path / "credit.csv"
    assert main(["generate", "agrawal", str(path), "--rows", "600",
                 "--function", "2", "--seed", "2"]) == 0
    return path


@pytest.fixture
def blobs_file(tmp_path):
    path = tmp_path / "blobs.csv"
    assert main(["generate", "blobs", str(path), "--rows", "200",
                 "--centers", "3", "--seed", "3"]) == 0
    return path


class TestGenerate:
    def test_basket_file_loads(self, basket_file):
        from repro.datasets import load_transactions

        db = load_transactions(basket_file)
        assert len(db) == 300

    def test_agrawal_file_loads(self, agrawal_file):
        from repro.datasets import load_table

        table = load_table(agrawal_file)
        assert table.n_rows == 600
        assert "group" in table.attribute_names


class TestMine:
    def test_mine_reports_itemsets_and_rules(self, basket_file, capsys):
        assert main(["mine", str(basket_file), "--min-support", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "frequent itemsets" in out
        assert "rules at confidence" in out

    def test_all_miners_run(self, basket_file):
        for miner in ("apriori", "fp_growth", "eclat", "apriori_tid"):
            assert main(["mine", str(basket_file), "--miner", miner,
                         "--min-support", "0.05"]) == 0

    def test_missing_file_fails_cleanly(self, capsys):
        assert main(["mine", "/nonexistent/file.dat"]) == 2
        assert "error" in capsys.readouterr().err


class TestClassify:
    def test_c45_on_generated_table(self, agrawal_file, capsys):
        assert main(["classify", str(agrawal_file), "--target", "group"]) == 0
        out = capsys.readouterr().out
        assert "test accuracy" in out
        assert "class 'A'" in out or "class 'B'" in out

    @pytest.mark.parametrize("clf", ["cart", "nb", "zeror"])
    def test_other_classifiers(self, agrawal_file, clf):
        assert main(["classify", str(agrawal_file), "--target", "group",
                     "--classifier", clf]) == 0

    def test_unknown_target_fails_cleanly(self, agrawal_file, capsys):
        assert main(["classify", str(agrawal_file), "--target", "nope"]) == 2
        assert "error" in capsys.readouterr().err


class TestCluster:
    def test_kmeans(self, blobs_file, capsys):
        assert main(["cluster", str(blobs_file), "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "clusters: 3" in out
        assert "silhouette" in out

    def test_dbscan(self, blobs_file, capsys):
        assert main(["cluster", str(blobs_file), "--algorithm", "dbscan",
                     "--eps", "1.5"]) == 0
        assert "SSE" in capsys.readouterr().out

    @pytest.mark.parametrize("algo", ["pam", "birch", "agglomerative"])
    def test_other_algorithms(self, blobs_file, algo):
        assert main(["cluster", str(blobs_file), "--algorithm", algo,
                     "--k", "3", "--eps", "1.0"]) == 0
