"""Integration tests for the command-line interface."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import main

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def run_cli(*argv):
    """Run the CLI in a fresh interpreter (true end-to-end contract)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=env,
    )


@pytest.fixture
def basket_file(tmp_path):
    path = tmp_path / "basket.dat"
    assert main(["generate", "basket", str(path), "--rows", "300",
                 "--seed", "1"]) == 0
    return path


@pytest.fixture
def agrawal_file(tmp_path):
    path = tmp_path / "credit.csv"
    assert main(["generate", "agrawal", str(path), "--rows", "600",
                 "--function", "2", "--seed", "2"]) == 0
    return path


@pytest.fixture
def blobs_file(tmp_path):
    path = tmp_path / "blobs.csv"
    assert main(["generate", "blobs", str(path), "--rows", "200",
                 "--centers", "3", "--seed", "3"]) == 0
    return path


class TestGenerate:
    def test_basket_file_loads(self, basket_file):
        from repro.datasets import load_transactions

        db = load_transactions(basket_file)
        assert len(db) == 300

    def test_agrawal_file_loads(self, agrawal_file):
        from repro.datasets import load_table

        table = load_table(agrawal_file)
        assert table.n_rows == 600
        assert "group" in table.attribute_names


class TestMine:
    def test_mine_reports_itemsets_and_rules(self, basket_file, capsys):
        assert main(["mine", str(basket_file), "--min-support", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "frequent itemsets" in out
        assert "rules at confidence" in out

    def test_all_miners_run(self, basket_file):
        for miner in ("apriori", "fp_growth", "eclat", "apriori_tid"):
            assert main(["mine", str(basket_file), "--miner", miner,
                         "--min-support", "0.05"]) == 0

    def test_missing_file_fails_cleanly(self, capsys):
        assert main(["mine", "/nonexistent/file.dat"]) == 2
        assert "error" in capsys.readouterr().err


class TestClassify:
    def test_c45_on_generated_table(self, agrawal_file, capsys):
        assert main(["classify", str(agrawal_file), "--target", "group"]) == 0
        out = capsys.readouterr().out
        assert "test accuracy" in out
        assert "class 'A'" in out or "class 'B'" in out

    @pytest.mark.parametrize("clf", ["cart", "nb", "zeror"])
    def test_other_classifiers(self, agrawal_file, clf):
        assert main(["classify", str(agrawal_file), "--target", "group",
                     "--classifier", clf]) == 0

    def test_unknown_target_fails_cleanly(self, agrawal_file, capsys):
        assert main(["classify", str(agrawal_file), "--target", "nope"]) == 2
        assert "error" in capsys.readouterr().err


class TestCluster:
    def test_kmeans(self, blobs_file, capsys):
        assert main(["cluster", str(blobs_file), "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "clusters: 3" in out
        assert "silhouette" in out

    def test_dbscan(self, blobs_file, capsys):
        assert main(["cluster", str(blobs_file), "--algorithm", "dbscan",
                     "--eps", "1.5"]) == 0
        assert "SSE" in capsys.readouterr().out

    @pytest.mark.parametrize("algo", ["pam", "birch", "agglomerative"])
    def test_other_algorithms(self, blobs_file, algo):
        assert main(["cluster", str(blobs_file), "--algorithm", algo,
                     "--k", "3", "--eps", "1.0"]) == 0


class TestBackendFlag:
    """``--backend`` selects a vectorized kernel, byte-identical output."""

    def test_mine_backend_output_identical(self, basket_file, capsys):
        base = ["mine", str(basket_file), "--miner", "eclat",
                "--min-support", "0.05"]
        assert main(base) == 0
        scalar = capsys.readouterr().out
        assert main(base + ["--backend", "bitset"]) == 0
        assert capsys.readouterr().out == scalar

    def test_classify_backend_output_identical(self, agrawal_file, capsys):
        base = ["classify", str(agrawal_file), "--target", "group",
                "--classifier", "sliq"]
        assert main(base) == 0
        scalar = capsys.readouterr().out
        assert main(base + ["--backend", "columnar"]) == 0
        assert capsys.readouterr().out == scalar

    def test_cluster_backend_output_identical(self, blobs_file, capsys):
        base = ["cluster", str(blobs_file), "--k", "3", "--seed", "0"]
        assert main(base) == 0
        scalar = capsys.readouterr().out
        assert main(base + ["--backend", "elkan"]) == 0
        assert capsys.readouterr().out == scalar

    def test_backend_on_non_vectorizable_miner_is_usage_error(
            self, basket_file, capsys):
        assert main(["mine", str(basket_file), "--miner", "fp_growth",
                     "--backend", "bitset"]) == 2
        assert "does not support --backend" in capsys.readouterr().err

    def test_backend_on_non_vectorizable_clusterer_is_usage_error(
            self, blobs_file, capsys):
        assert main(["cluster", str(blobs_file), "--algorithm", "dbscan",
                     "--eps", "1.5", "--backend", "elkan"]) == 2
        assert "does not support --backend" in capsys.readouterr().err

    def test_unknown_backend_value_fails_cleanly(self, basket_file, capsys):
        assert main(["mine", str(basket_file), "--miner", "eclat",
                     "--backend", "warp"]) == 2
        err = capsys.readouterr().err
        assert "backend" in err
        assert "Traceback" not in err


class TestAlgorithms:
    def test_lists_every_registered_algorithm(self, capsys):
        from repro import registry

        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "capabilities" in out
        for spec in registry.specs():
            assert spec.name in out

    def test_json_emits_the_machine_readable_table(self, capsys):
        import json

        from repro import registry

        assert main(["algorithms", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        entries = {e["name"]: e for e in payload["algorithms"]}
        assert set(entries) == {s.name for s in registry.specs()}
        apriori = entries["apriori"]
        assert apriori["family"] == "associations"
        caps = apriori["capabilities"]
        assert caps["checkpointable"] is True
        assert caps["budget_resource"] == "candidates"
        assert isinstance(caps["degradation_policies"], list)
        assert caps["vectorizable"] is False
        assert entries["eclat"]["capabilities"]["vectorizable"] is True
        assert entries["sliq"]["capabilities"]["vectorizable"] is True

    def test_choices_come_from_the_registry(self):
        """The subcommand choices are the registry, not a literal list."""
        from repro import registry
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["mine", "x.dat", "--miner", registry.names("associations")[0]]
        )
        assert args.miner == "apriori"
        for family, flag, command in (
            ("associations", "--miner", "mine"),
            ("clustering", "--algorithm", "cluster"),
        ):
            for name in registry.names(family):
                assert parser.parse_args(
                    [command, "x", flag, name]
                ) is not None
        for name in registry.names("classification"):
            assert parser.parse_args(
                ["classify", "x", "--target", "t", "--classifier", name]
            ) is not None


class TestCheckpointCLI:
    def _itemset_lines(self, out):
        return [line for line in out.splitlines() if "->" in line or
                "support" in line]

    def test_mine_checkpoint_roundtrip(self, basket_file, tmp_path, capsys):
        ckdir = tmp_path / "ck"
        assert main(["mine", str(basket_file), "--min-support", "0.05",
                     "--checkpoint-dir", str(ckdir)]) == 0
        first = capsys.readouterr().out
        assert list(ckdir.glob("*.ckpt"))
        assert main(["mine", str(basket_file), "--min-support", "0.05",
                     "--checkpoint-dir", str(ckdir), "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert self._itemset_lines(resumed) == self._itemset_lines(first)

    def test_exhaust_then_resume_with_fresh_budget(self, basket_file,
                                                   tmp_path, capsys):
        """The walkthrough from the docs: a budget-limited run truncates
        (exit 0 + NOTE), the checkpoint survives, and a resumed run with
        a fresh budget completes with the full answer."""
        assert main(["mine", str(basket_file), "--min-support", "0.02"]) == 0
        full = capsys.readouterr().out
        ckdir = tmp_path / "ck"
        assert main(["mine", str(basket_file), "--min-support", "0.02",
                     "--checkpoint-dir", str(ckdir),
                     "--max-candidates", "30"]) == 0
        out = capsys.readouterr().out
        assert "NOTE: budget exhausted" in out
        assert list(ckdir.glob("*.ckpt"))
        assert main(["mine", str(basket_file), "--min-support", "0.02",
                     "--checkpoint-dir", str(ckdir), "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "NOTE" not in resumed
        assert self._itemset_lines(resumed) == self._itemset_lines(full)

    @pytest.mark.parametrize("miner", ["eclat", "apriori_tid", "dhp",
                                       "partition"])
    def test_all_snapshottable_miners_roundtrip(self, basket_file, tmp_path,
                                                miner):
        ckdir = tmp_path / miner
        args = ["mine", str(basket_file), "--miner", miner,
                "--min-support", "0.05", "--checkpoint-dir", str(ckdir)]
        assert main(args) == 0
        assert main(args + ["--resume"]) == 0

    def test_resume_requires_checkpoint_dir(self, basket_file, capsys):
        assert main(["mine", str(basket_file), "--resume"]) == 2
        assert "checkpoint-dir" in capsys.readouterr().err

    def test_fp_growth_checkpoint_unsupported(self, basket_file, tmp_path,
                                              capsys):
        assert main(["mine", str(basket_file), "--miner", "fp_growth",
                     "--checkpoint-dir", str(tmp_path / "ck")]) == 2
        assert "checkpoint" in capsys.readouterr().err

    def test_mine_retries_flag(self, basket_file):
        assert main(["mine", str(basket_file), "--min-support", "0.05",
                     "--retries", "2"]) == 0

    def test_cluster_checkpoint_roundtrip(self, blobs_file, tmp_path,
                                          capsys):
        ckdir = tmp_path / "ck"
        base = ["cluster", str(blobs_file), "--k", "3", "--seed", "0",
                "--checkpoint-dir", str(ckdir)]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert list(ckdir.glob("*.ckpt"))
        assert main(base + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_cluster_pam_checkpoint(self, blobs_file, tmp_path):
        ckdir = tmp_path / "ck"
        base = ["cluster", str(blobs_file), "--algorithm", "pam",
                "--k", "3", "--checkpoint-dir", str(ckdir)]
        assert main(base) == 0
        assert main(base + ["--resume"]) == 0

    def test_cluster_checkpoint_unsupported_algorithm(self, blobs_file,
                                                      tmp_path, capsys):
        assert main(["cluster", str(blobs_file), "--algorithm", "birch",
                     "--checkpoint-dir", str(tmp_path / "ck")]) == 2
        assert "checkpoint" in capsys.readouterr().err

    def test_cluster_resume_requires_checkpoint_dir(self, blobs_file,
                                                    capsys):
        assert main(["cluster", str(blobs_file), "--resume"]) == 2
        assert "checkpoint-dir" in capsys.readouterr().err


class TestSupervisedCLI:
    """Round-trips for --supervise / --max-rss-mb / --hard-time-limit."""

    def test_supervised_mine_output_matches_unsupervised(self, basket_file,
                                                         capsys):
        base = ["mine", str(basket_file), "--min-support", "0.05"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        assert main(base + ["--supervise"]) == 0
        assert capsys.readouterr().out == plain

    def test_supervised_mine_cleans_checkpoints(self, basket_file, tmp_path,
                                                capsys):
        ckdir = tmp_path / "ck"
        assert main(["mine", str(basket_file), "--min-support", "0.05",
                     "--supervise", "--retries", "2",
                     "--checkpoint-dir", str(ckdir)]) == 0
        # A completed supervised run leaves the checkpoint dir empty.
        assert not list(ckdir.glob("*.ckpt"))

    def test_supervised_classify(self, agrawal_file, capsys):
        assert main(["classify", str(agrawal_file), "--target", "group",
                     "--supervise"]) == 0
        assert "test accuracy" in capsys.readouterr().out

    def test_supervised_cluster_output_matches_unsupervised(self, blobs_file,
                                                            capsys):
        base = ["cluster", str(blobs_file), "--k", "3", "--seed", "0"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        assert main(base + ["--supervise"]) == 0
        assert capsys.readouterr().out == plain

    def test_clarans_is_exposed_and_supervisable(self, blobs_file, capsys):
        assert main(["cluster", str(blobs_file), "--algorithm", "clarans",
                     "--k", "3", "--seed", "0", "--supervise"]) == 0
        assert "clusters" in capsys.readouterr().out

    def test_rss_limit_exits_3_with_json_report(self, basket_file):
        # Runs in a fresh interpreter: forked from the in-process pytest
        # parent, the child could satisfy its allocations from freed
        # glibc arena space inherited at fork time and never trip
        # RLIMIT_AS, so the cap only binds reliably from a small parent.
        proc = run_cli("mine", str(basket_file), "--min-support", "0.02",
                       "--supervise", "--max-rss-mb", "8")
        assert proc.returncode == 3
        report = json.loads(proc.stderr.strip().splitlines()[-1])
        assert report["cause"] == "rss-limit"
        assert report["limits"]["max_rss_mb"] == 8
        assert "Traceback" not in proc.stderr

    def test_hard_time_limit_exits_3_with_json_report(self, basket_file,
                                                      capsys):
        assert main(["mine", str(basket_file), "--min-support", "0.01",
                     "--supervise", "--hard-time-limit", "0.2"]) == 3
        report = json.loads(
            capsys.readouterr().err.strip().splitlines()[-1]
        )
        assert report["cause"] == "wall-limit"

    def test_max_rss_requires_supervise(self, basket_file, capsys):
        assert main(["mine", str(basket_file), "--max-rss-mb", "100"]) == 2
        assert "--supervise" in capsys.readouterr().err

    def test_hard_time_limit_requires_supervise(self, blobs_file, capsys):
        assert main(["cluster", str(blobs_file),
                     "--hard-time-limit", "5"]) == 2
        assert "--supervise" in capsys.readouterr().err

    def test_supervise_rejects_non_checkpointable_miner(self, basket_file,
                                                        capsys):
        assert main(["mine", str(basket_file), "--miner", "fp_growth",
                     "--supervise"]) == 2
        err = capsys.readouterr().err
        assert "fp_growth" in err
        assert err.count("\n") == 1  # one-line message, not a traceback

    def test_supervise_rejects_non_checkpointable_clusterer(self, blobs_file,
                                                            capsys):
        assert main(["cluster", str(blobs_file), "--algorithm", "dbscan",
                     "--supervise"]) == 2
        assert "dbscan" in capsys.readouterr().err
