"""Integration: sequential mining end-to-end on generated workloads."""

import pytest

from repro.core.sequences import pattern_length
from repro.datasets import QuestSequenceConfig, QuestSequenceGenerator
from repro.sequences import apriori_all, gsp, prefixspan


@pytest.fixture(scope="module")
def workload():
    config = QuestSequenceConfig(
        n_customers=300,
        avg_elements=6,
        avg_items_per_element=2,
        avg_pattern_elements=3,
        avg_itemset_size=1.5,
        n_items=80,
        n_sequence_patterns=20,
        n_itemset_patterns=40,
    )
    return QuestSequenceGenerator(config, random_state=2024).generate()


class TestSequencePipeline:
    def test_three_miners_one_answer(self, workload):
        a = apriori_all(workload, 0.05).supports
        g = gsp(workload, 0.05).supports
        p = prefixspan(workload, 0.05).supports
        assert a == g == p
        assert a, "expected frequent patterns in a patterned workload"

    def test_planted_patterns_surface(self, workload):
        result = prefixspan(workload, 0.05)
        # The generator plants multi-element patterns; mining must find
        # sequences longer than single items.
        assert any(len(pattern) >= 2 for pattern in result.supports)

    def test_constraints_form_a_hierarchy(self, workload):
        free = set(gsp(workload, 0.05, max_length=3).supports)
        gapped = set(
            gsp(workload, 0.05, max_length=3, max_gap=2.0).supports
        )
        assert gapped.issubset(free)

    def test_window_only_adds_patterns(self, workload):
        base = gsp(workload, 0.08, max_length=2)
        windowed = gsp(workload, 0.08, max_length=2, window=1.0)
        for pattern, count in base.supports.items():
            assert windowed.supports.get(pattern, 0) >= count

    def test_maximal_is_a_compression(self, workload):
        result = gsp(workload, 0.05, max_length=3)
        maximal = result.maximal()
        assert 0 < len(maximal) <= len(result.supports)
