"""Integration: the classic classifier-study loop on AIS data.

Generate -> split -> (discretize/scale) -> train many classifiers ->
cross-validate -> compare. Mirrors the E6 benchmark at test scale.
"""

import numpy as np
import pytest

from repro.classification import (
    C45,
    CART,
    KNN,
    SLIQ,
    NaiveBayes,
    OneR,
    ZeroR,
)
from repro.datasets import agrawal
from repro.evaluation import (
    accuracy,
    classification_report,
    confusion_matrix,
    cross_val_score,
)
from repro.preprocessing import discretize_table, scale_table, train_test_split


@pytest.fixture(scope="module")
def f6_data():
    return agrawal(2500, function=6, noise=0.05, random_state=77)


class TestClassifierStudy:
    def test_trees_beat_baselines_on_f6(self, f6_data):
        train, test = train_test_split(f6_data, 0.3, stratify="group",
                                       random_state=0)
        scores = {}
        for name, model in [
            ("c45", C45()),
            ("cart", CART(min_samples_leaf=5)),
            ("sliq", SLIQ(min_samples_leaf=5)),
            ("oner", OneR()),
            ("zeror", ZeroR()),
        ]:
            scores[name] = model.fit(train, "group").score(test)
        assert scores["c45"] > scores["oner"] > 0
        assert scores["cart"] > scores["zeror"]
        assert scores["sliq"] > scores["zeror"]
        # The AIS functions are axis-parallel: trees should do well.
        assert max(scores["c45"], scores["cart"]) > 0.85

    def test_scaling_helps_knn(self, f6_data):
        train, test = train_test_split(f6_data, 0.3, random_state=1)
        raw = KNN(9).fit(train, "group").score(test)
        train_s = scale_table(train, "standard")
        test_s = scale_table(test, "standard")
        scaled = KNN(9).fit(train_s, "group").score(test_s)
        assert scaled > raw

    def test_discretized_pipeline_runs_id3(self, f6_data):
        from repro.classification import ID3

        table = discretize_table(f6_data, "mdlp", target="group")
        train, test = train_test_split(table, 0.3, random_state=2)
        model = ID3(max_depth=6).fit(train, "group")
        assert model.score(test) > 0.7

    def test_cross_validation_agrees_with_holdout(self, f6_data):
        cv = np.mean(
            cross_val_score(
                lambda: CART(min_samples_leaf=5), f6_data, "group",
                n_folds=5, random_state=3,
            )
        )
        train, test = train_test_split(f6_data, 0.25, random_state=3)
        holdout = CART(min_samples_leaf=5).fit(train, "group").score(test)
        assert abs(cv - holdout) < 0.08

    def test_report_and_confusion_consistency(self, f6_data):
        train, test = train_test_split(f6_data, 0.3, random_state=4)
        model = NaiveBayes().fit(train, "group")
        y_true = [test.value(i, "group") for i in range(test.n_rows)]
        y_pred = model.predict(test)
        matrix, labels = confusion_matrix(y_true, y_pred)
        assert matrix.sum() == test.n_rows
        acc = accuracy(y_true, y_pred)
        assert np.trace(matrix) / matrix.sum() == pytest.approx(acc)
        report = classification_report(y_true, y_pred)
        assert set(report) == set(labels) & set(y_true)
