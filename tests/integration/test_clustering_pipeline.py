"""Integration: clustering study across methods, metrics and workloads."""

import numpy as np
import pytest

from repro.clustering import (
    CLARA,
    CLARANS,
    DBSCAN,
    PAM,
    Agglomerative,
    Birch,
    KMeans,
)
from repro.datasets import gaussian_grid, two_moons
from repro.evaluation import adjusted_rand_index, silhouette, sse


@pytest.fixture(scope="module")
def grid_data():
    return gaussian_grid(
        900, grid_side=3, spacing=6.0, cluster_std=0.5, random_state=123
    )


class TestClusteringStudy:
    def test_all_partitional_methods_recover_the_grid(self, grid_data):
        X, y = grid_data
        methods = {
            "kmeans": KMeans(9, random_state=0),
            "pam": PAM(9),
            "clara": CLARA(9, random_state=0),
            "clarans": CLARANS(9, num_local=3, random_state=0),
            "birch": Birch(threshold=1.0, n_clusters=9, random_state=0),
            "ward": Agglomerative(9, "ward"),
        }
        for name, model in methods.items():
            ari = adjusted_rand_index(model.fit_predict(X), y)
            assert ari > 0.85, f"{name} ARI={ari:.3f}"

    def test_internal_metrics_prefer_true_k(self, grid_data):
        X, _ = grid_data
        sil = {
            k: silhouette(X, KMeans(k, random_state=0).fit_predict(X))
            for k in (3, 9, 16)
        }
        assert sil[9] == max(sil.values())

    def test_sse_elbow_flattens_past_true_k(self, grid_data):
        X, _ = grid_data
        inertia = {
            k: KMeans(k, random_state=0).fit(X).inertia_
            for k in (4, 9, 14)
        }
        gain_before = inertia[4] - inertia[9]
        gain_after = inertia[9] - inertia[14]
        assert gain_before > 3 * gain_after

    def test_density_vs_centroid_on_moons(self):
        X, y = two_moons(500, noise=0.05, random_state=7)
        db = DBSCAN(eps=0.2, min_samples=5).fit(X)
        clustered = db.labels_ >= 0
        ari_db = adjusted_rand_index(db.labels_[clustered], y[clustered])
        ari_km = adjusted_rand_index(KMeans(2, random_state=0).fit_predict(X), y)
        assert ari_db > 0.9
        assert ari_db > ari_km

    def test_birch_compression_pipeline(self, grid_data):
        X, y = grid_data
        model = Birch(threshold=0.8, n_clusters=9, random_state=1).fit(X)
        # The compressed representation is much smaller than the data but
        # the final labels still align with the ground truth.
        assert len(model.subcluster_centers_) < len(X) / 3
        assert adjusted_rand_index(model.labels_, y) > 0.85

    def test_noise_robustness_ranking(self):
        X, y = gaussian_grid(
            600, grid_side=2, spacing=8.0, cluster_std=0.4,
            noise_fraction=0.1, random_state=5,
        )
        true_mask = y >= 0
        km = KMeans(4, random_state=0).fit_predict(X)
        db = DBSCAN(eps=1.0, min_samples=5).fit(X)
        # DBSCAN flags a sensible amount of the injected noise.
        assert (db.labels_ == -1).sum() >= 20
        ari_db = adjusted_rand_index(db.labels_[true_mask], y[true_mask])
        ari_km = adjusted_rand_index(km[true_mask], y[true_mask])
        assert ari_db >= ari_km - 0.05
