"""Integration: generate a Quest workload, mine it end-to-end, persist it."""

import numpy as np
import pytest

from repro.associations import (
    apriori,
    apriori_hybrid,
    apriori_tid,
    eclat,
    fp_growth,
    generate_rules,
)
from repro.datasets import (
    QuestBasketGenerator,
    QuestConfig,
    load_transactions,
    save_transactions,
)


@pytest.fixture(scope="module")
def workload():
    config = QuestConfig(
        n_transactions=800,
        avg_transaction_length=8,
        avg_pattern_length=3,
        n_items=120,
        n_patterns=30,
    )
    return QuestBasketGenerator(config, random_state=99).generate()


class TestFullMiningPipeline:
    def test_five_miners_one_answer(self, workload):
        results = {
            name: miner(workload, 0.02).supports
            for name, miner in [
                ("apriori", apriori),
                ("apriori_tid", apriori_tid),
                ("apriori_hybrid", apriori_hybrid),
                ("eclat", eclat),
                ("fp_growth", fp_growth),
            ]
        }
        reference = results.pop("apriori")
        assert reference  # the workload must actually contain patterns
        for name, supports in results.items():
            assert supports == reference, name

    def test_rules_from_mined_itemsets_validate_on_db(self, workload):
        itemsets = apriori(workload, 0.02)
        rules = generate_rules(itemsets, min_confidence=0.5)
        assert rules, "expected rules at 2% support on a patterned workload"
        for rule in rules[:25]:
            union = tuple(sorted(rule.antecedent + rule.consequent))
            direct_conf = (
                workload.support_count(union)
                / workload.support_count(rule.antecedent)
            )
            assert rule.confidence == pytest.approx(direct_conf)

    def test_persistence_roundtrip_preserves_mining(self, workload, tmp_path):
        path = tmp_path / "workload.dat"
        save_transactions(workload, path)
        reloaded = load_transactions(path)
        assert apriori(reloaded, 0.05).supports == apriori(workload, 0.05).supports

    def test_pass_stats_tell_the_levelwise_story(self, workload):
        result = apriori(workload, 0.02)
        ks = [s.k for s in result.pass_stats]
        assert ks == list(range(1, len(ks) + 1))
        # Candidate counts must bound frequent counts at every level.
        for s in result.pass_stats:
            assert s.n_frequent <= s.n_candidates
