"""Graceful-degradation semantics: partial results, fallbacks, identity.

The contract under test:

* ``budget=None`` (the default) is byte-identical to a build without the
  runtime layer — zero checks, zero behavioural drift;
* ``truncate`` returns everything completed before exhaustion, flagged;
* ``partition`` / ``sampling`` re-mine the interrupted pass with a
  cheaper one-shot miner, so the recovered result supersets plain
  truncation while every itemset remains genuinely frequent;
* estimator degradation (trees, clusterers) keeps the model usable.
"""

import warnings

import numpy as np
import pytest

from repro.associations.apriori import ON_EXHAUSTED, apriori
from repro.classification import C45
from repro.clustering import KMeans
from repro.core.exceptions import ConvergenceWarning, ValidationError
from repro.runtime import Budget, TriggerAfter
from repro.cli import main


def _fault_budget(n_checks: int = 2) -> Budget:
    return Budget(check_interval=1).install_fault(TriggerAfter(n_checks))


class TestMinerDegradation:
    def test_unbudgeted_result_identical(self, medium_db):
        plain = apriori(medium_db, 0.05)
        defaulted = apriori(medium_db, 0.05, budget=None, on_exhausted="raise")
        assert plain.supports == defaulted.supports
        assert not plain.truncated

    def test_truncate_keeps_completed_passes(self, medium_db):
        full = apriori(medium_db, 0.05)
        partial = apriori(
            medium_db, 0.05, budget=_fault_budget(2), on_exhausted="truncate"
        )
        assert partial.truncated
        assert set(partial.supports) <= set(full.supports)
        # Whatever was kept carries the exact support counts.
        for itemset, count in partial.supports.items():
            assert full.supports[itemset] == count

    @pytest.mark.parametrize("policy", ["partition", "sampling"])
    def test_fallback_policies_recover_more(self, medium_db, policy):
        truncated = apriori(
            medium_db, 0.05, budget=_fault_budget(2), on_exhausted="truncate"
        )
        recovered = apriori(
            medium_db, 0.05, budget=_fault_budget(2), on_exhausted=policy
        )
        full = apriori(medium_db, 0.05)
        assert recovered.truncated  # deeper passes are still unexplored
        assert set(truncated.supports) <= set(recovered.supports)
        assert set(recovered.supports) <= set(full.supports)
        for itemset, count in recovered.supports.items():
            assert full.supports[itemset] == count

    def test_invalid_policy_rejected(self, medium_db):
        with pytest.raises(ValidationError):
            apriori(medium_db, 0.05, on_exhausted="retry-harder")
        assert "truncate" in ON_EXHAUSTED

    def test_truncation_reason_names_the_exception(self, medium_db):
        partial = apriori(
            medium_db, 0.05, budget=_fault_budget(1), on_exhausted="truncate"
        )
        assert partial.truncated
        assert "InjectedFault" in partial.truncation_reason


class TestEstimatorDegradation:
    def test_tree_truncation_resets_between_fits(self, f2_train):
        model = C45(prune=False, budget=Budget(max_nodes=1))
        model.fit(f2_train, "group")
        assert model.truncated_
        model.budget = None
        model.fit(f2_train, "group")
        assert not model.truncated_
        assert model.truncation_reason_ is None

    def test_kmeans_restarts_recover_convergence(self, blobs4):
        X, _ = blobs4
        # max_iter=1 cannot converge; the warning must name the attempts.
        with pytest.warns(ConvergenceWarning, match="did not converge"):
            KMeans(4, max_iter=1, n_init=2, random_state=0).fit(X)
        # A generous retry allowance plus normal iterations converges
        # silently.
        with warnings.catch_warnings():
            warnings.simplefilter("error", ConvergenceWarning)
            KMeans(4, n_init=2, max_restarts=3, random_state=0).fit(X)

    def test_kmeans_budget_suppresses_convergence_warning(self, blobs4):
        # Truncation is reported through truncated_, not mislabelled as
        # a convergence failure.
        X, _ = blobs4
        model = KMeans(4, random_state=0, budget=Budget(max_expansions=1))
        with warnings.catch_warnings():
            warnings.simplefilter("error", ConvergenceWarning)
            model.fit(X)
        assert model.truncated_


class TestCLIBudgets:
    @pytest.fixture
    def basket_file(self, tmp_path):
        path = tmp_path / "basket.dat"
        assert main(["generate", "basket", str(path), "--rows", "400",
                     "--seed", "42"]) == 0
        return path

    @pytest.fixture
    def blobs_file(self, tmp_path):
        path = tmp_path / "blobs.csv"
        assert main(["generate", "blobs", str(path), "--rows", "200",
                     "--centers", "3", "--seed", "3"]) == 0
        return path

    def test_mine_time_limit_exits_zero_with_notice(self, basket_file, capsys):
        code = main(["mine", str(basket_file), "--min-support", "0.001",
                     "--time-limit", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "NOTE: budget exhausted" in out
        assert "frequent itemsets" in out

    def test_mine_without_flags_identical(self, basket_file, capsys):
        assert main(["mine", str(basket_file), "--min-support", "0.02"]) == 0
        first = capsys.readouterr().out
        assert main(["mine", str(basket_file), "--min-support", "0.02"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "NOTE" not in first

    def test_mine_max_candidates(self, basket_file, capsys):
        code = main(["mine", str(basket_file), "--min-support", "0.01",
                     "--max-candidates", "50"])
        out = capsys.readouterr().out
        assert code == 0
        assert "NOTE: budget exhausted" in out

    def test_mine_eclat_accepts_budget(self, basket_file, capsys):
        # eclat gained budget support alongside checkpointing; a budget
        # large enough to finish behaves exactly like no budget.
        code = main(["mine", str(basket_file), "--miner", "eclat",
                     "--min-support", "0.05", "--time-limit", "600"])
        out = capsys.readouterr().out
        assert code == 0
        assert "NOTE" not in out

    def test_mine_eclat_budget_notice(self, basket_file, capsys):
        code = main(["mine", str(basket_file), "--miner", "eclat",
                     "--min-support", "0.01", "--max-candidates", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "NOTE: budget exhausted" in out

    def test_cluster_budget_notice(self, blobs_file, capsys):
        code = main(["cluster", str(blobs_file), "--algorithm", "kmeans",
                     "--k", "3", "--max-candidates", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "NOTE: budget exhausted" in out

    def test_cluster_birch_accepts_budget(self, blobs_file, capsys):
        # birch gained budget support alongside the checkpoint work; the
        # unsupported-combination exit 2 now applies to --checkpoint-dir
        # (covered in tests/test_cli.py), not budgets.
        code = main(["cluster", str(blobs_file), "--algorithm", "birch",
                     "--time-limit", "600"])
        assert code == 0
        assert "NOTE" not in capsys.readouterr().out

    def test_classify_budget_notice(self, tmp_path, capsys):
        path = tmp_path / "credit.csv"
        assert main(["generate", "agrawal", str(path), "--rows", "400",
                     "--seed", "2"]) == 0
        capsys.readouterr()
        code = main(["classify", str(path), "--target", "group",
                     "--classifier", "c45", "--max-candidates", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "NOTE: budget exhausted" in out
        assert "accuracy" in out
