"""Regression tests: orphaned transport temp files are swept, not leaked.

Before the sweep existed, a SIGKILLed parent left its
``repro-supervised-*`` / ``repro-pool-*`` scratch directories (and any
half-written ``*.tmp`` result files inside them) in the system temp dir
forever.  These tests pin the three sweep surfaces:

* :func:`sweep_stale_tmp` — targeted unlink of torn temp files;
* :func:`sweep_stale_transport` — startup scan of the temp root for
  aged transport droppings, run once per process by pools/supervisors;
* the Supervisor's persistent-scratch reset, which must clear stale
  ``result-*.pkl`` files whose names would collide with the new run's
  attempt numbering.
"""

import os
import time

from repro.runtime import Supervisor, sweep_stale_tmp, sweep_stale_transport
from repro.runtime.transport import (
    _SWEPT_ROOTS,
    SEGMENT_PREFIX,
    TRANSPORT_PREFIXES,
    SharedRegion,
    segment_dir,
)


def _age(path, seconds):
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


class TestSweepStaleTmp:
    def test_removes_matching_files_only(self, tmp_path):
        torn = tmp_path / "result-1.pkl.tmp"
        torn.write_bytes(b"half")
        keep = tmp_path / "result-1.pkl"
        keep.write_bytes(b"whole")
        assert sweep_stale_tmp(tmp_path) == 1
        assert not torn.exists()
        assert keep.exists()

    def test_custom_pattern(self, tmp_path):
        stale = tmp_path / "result-7.pkl"
        stale.write_bytes(b"old attempt")
        assert sweep_stale_tmp(tmp_path, pattern="result-*.pkl") == 1
        assert not stale.exists()

    def test_min_age_spares_young_files(self, tmp_path):
        young = tmp_path / "a.tmp"
        young.write_bytes(b"")
        old = tmp_path / "b.tmp"
        old.write_bytes(b"")
        _age(old, 7200)
        assert sweep_stale_tmp(tmp_path, min_age_seconds=3600) == 1
        assert young.exists()
        assert not old.exists()

    def test_missing_directory_is_noop(self, tmp_path):
        assert sweep_stale_tmp(tmp_path / "nope") == 0


class TestSweepStaleTransport:
    def test_removes_aged_transport_dirs(self, tmp_path):
        for prefix in TRANSPORT_PREFIXES:
            dead = tmp_path / f"{prefix}dead"
            dead.mkdir()
            (dead / "result-1.pkl.tmp").write_bytes(b"torn")
            _age(dead, 7200)
        fresh = tmp_path / f"{TRANSPORT_PREFIXES[0]}fresh"
        fresh.mkdir()
        unrelated = tmp_path / "someone-elses-dir"
        unrelated.mkdir()
        _age(unrelated, 7200)
        removed = sweep_stale_transport(root=tmp_path)
        assert removed == len(TRANSPORT_PREFIXES)
        assert fresh.exists()
        assert unrelated.exists()
        assert not any(
            (tmp_path / f"{p}dead").exists() for p in TRANSPORT_PREFIXES
        )

    def test_once_guard_scans_a_root_only_once(self, tmp_path):
        _SWEPT_ROOTS.discard(str(tmp_path))
        first = tmp_path / f"{TRANSPORT_PREFIXES[0]}one"
        first.mkdir()
        _age(first, 7200)
        assert sweep_stale_transport(root=tmp_path, once=True) == 1
        second = tmp_path / f"{TRANSPORT_PREFIXES[0]}two"
        second.mkdir()
        _age(second, 7200)
        # Guarded: the second call is a no-op for this root...
        assert sweep_stale_transport(root=tmp_path, once=True) == 0
        assert second.exists()
        # ...but an unguarded call still works.
        assert sweep_stale_transport(root=tmp_path) == 1
        _SWEPT_ROOTS.discard(str(tmp_path))


class TestSweepSharedSegments:
    """Orphaned shared-memory segment *files* are reclaimed too.

    Segments live in :func:`segment_dir` (``/dev/shm`` when writable)
    rather than the temp root, and are plain files rather than scratch
    directories — a SIGKILLed pool owner leaks them all the same.
    """

    def test_aged_orphan_segment_files_are_swept(self, tmp_path):
        dead = tmp_path / f"{SEGMENT_PREFIX}12345-deadbeef"
        dead.write_bytes(b"orphaned payload")
        _age(dead, 7200)
        young = tmp_path / f"{SEGMENT_PREFIX}12345-cafef00d"
        young.write_bytes(b"live run, leave me")
        assert sweep_stale_transport(root=tmp_path) == 1
        assert not dead.exists()
        assert young.exists()

    def test_segments_of_live_regions_are_never_swept(self):
        region = SharedRegion()
        try:
            handle = region.put_object([1, 2, 3])
            _age(handle.path, 7200)
            sweep_stale_transport(root=os.path.dirname(handle.path))
            assert os.path.exists(handle.path)
        finally:
            region.close()
        assert not os.path.exists(handle.path)

    def test_default_roots_cover_the_segment_dir(self, tmp_path, monkeypatch):
        import repro.runtime.transport as transport

        monkeypatch.setattr(transport, "segment_dir", lambda: tmp_path)
        orphan = tmp_path / f"{SEGMENT_PREFIX}999-feedface"
        orphan.write_bytes(b"")
        _age(orphan, 7200)
        removed = sweep_stale_transport()
        assert removed >= 1
        assert not orphan.exists()


def _answer():
    return 42


class TestSupervisorScratchReset:
    def test_persistent_scratch_swept_before_and_after_run(self, tmp_path):
        """Stale attempt results in a reused scratch dir must go.

        A ``result-1.pkl`` left by a dead process would otherwise be
        read as attempt 1's (complete, wrong) result by the next run.
        """
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        stale = scratch / "result-1.pkl"
        stale.write_bytes(b"a corpse from the previous process")
        torn = scratch / "result-2.pkl.tmp"
        torn.write_bytes(b"half")
        outcome = Supervisor(scratch_dir=str(scratch)).run(_answer)
        assert outcome.value == 42
        assert scratch.exists()  # persistent dirs are kept...
        assert list(scratch.iterdir()) == []  # ...but left clean
        assert not stale.exists()
        assert not torn.exists()
