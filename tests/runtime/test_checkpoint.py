"""Unit tests for the CheckpointStore / Checkpointer primitives.

The corruption suite mutilates snapshot files the way real crashes do —
truncation (torn write), a flipped payload byte (silent bit rot), a
stale format header — and asserts that loading falls back to the newest
snapshot that still verifies instead of resuming from garbage.
"""

import pytest

from repro.core.exceptions import ValidationError
from repro.runtime import (
    CheckpointCorrupted,
    CheckpointMismatch,
    CheckpointStore,
    Checkpointer,
)
from repro.runtime.checkpoint import MAGIC


KEY = {"algorithm": "test", "n": 5}


class TestStoreRoundTrip:
    def test_save_then_load_latest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"key": KEY, "state": {"k": 3, "items": [1, 2]}})
        payload = store.load_latest()
        assert payload == {"key": KEY, "state": {"k": 3, "items": [1, 2]}}

    def test_load_latest_empty_dir_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load_latest() is None
        assert CheckpointStore(tmp_path / "never-created").load_latest() is None

    def test_snapshots_numbered_and_sorted(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=10)
        for k in range(3):
            store.save({"state": k})
        assert [seq for seq, _ in store.snapshots()] == [1, 2, 3]
        assert store.load_latest() == {"state": 2}

    def test_rotation_keeps_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for k in range(5):
            store.save({"state": k})
        seqs = [seq for seq, _ in store.snapshots()]
        assert seqs == [4, 5]
        assert store.load_latest() == {"state": 4}

    def test_no_temp_files_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"state": 1})
        leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".ckpt"]
        assert leftovers == []

    def test_prefixes_are_independent(self, tmp_path):
        a = CheckpointStore(tmp_path, prefix="alpha")
        b = CheckpointStore(tmp_path, prefix="beta")
        a.save({"state": "a"})
        b.save({"state": "b"})
        assert a.load_latest() == {"state": "a"}
        assert b.load_latest() == {"state": "b"}

    def test_validation(self, tmp_path):
        with pytest.raises(ValidationError):
            CheckpointStore(tmp_path, keep=0)
        with pytest.raises(ValidationError):
            CheckpointStore(tmp_path, prefix="")
        with pytest.raises(ValidationError):
            CheckpointStore(tmp_path, prefix="a/b")


class TestCorruption:
    """Each mutilation must raise CheckpointCorrupted on direct read and
    be skipped by load_latest in favour of an older valid snapshot."""

    def _store_with_two(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=5)
        store.save({"state": "older"})
        store.save({"state": "newest"})
        return store, store.snapshots()[-1][1]

    def test_truncated_file_falls_back(self, tmp_path):
        store, newest = self._store_with_two(tmp_path)
        raw = newest.read_bytes()
        newest.write_bytes(raw[: len(raw) // 2])  # torn write
        with pytest.raises(CheckpointCorrupted):
            store.read(newest)
        assert store.load_latest() == {"state": "older"}

    def test_shorter_than_header_falls_back(self, tmp_path):
        store, newest = self._store_with_two(tmp_path)
        newest.write_bytes(b"\x00" * 4)
        assert store.load_latest() == {"state": "older"}

    def test_flipped_payload_byte_falls_back(self, tmp_path):
        store, newest = self._store_with_two(tmp_path)
        raw = bytearray(newest.read_bytes())
        raw[-1] ^= 0xFF  # single-bit-rot-ish corruption
        newest.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorrupted, match="checksum"):
            store.read(newest)
        assert store.load_latest() == {"state": "older"}

    def test_stale_version_header_falls_back(self, tmp_path):
        store, newest = self._store_with_two(tmp_path)
        raw = bytearray(newest.read_bytes())
        assert raw[: len(MAGIC)] == MAGIC
        raw[: len(MAGIC)] = b"RPCKPT00"  # an older format version
        newest.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorrupted, match="header"):
            store.read(newest)
        assert store.load_latest() == {"state": "older"}

    def test_all_corrupted_raises(self, tmp_path):
        store, _ = self._store_with_two(tmp_path)
        for _, path in store.snapshots():
            path.write_bytes(b"garbage")
        with pytest.raises(CheckpointCorrupted, match="all 2 snapshots"):
            store.load_latest()

    def test_unpicklable_payload_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"state": 1})
        path = store.snapshots()[0][1]
        raw = bytearray(path.read_bytes())
        # Valid header and checksum over a payload that is not a pickle.
        import hashlib
        import struct

        body = b"not a pickle at all"
        header = struct.pack(
            ">8sQ32s", MAGIC, len(body), hashlib.sha256(body).digest()
        )
        path.write_bytes(header + body)
        with pytest.raises(CheckpointCorrupted, match="unpickle"):
            store.read(path)
        del raw


class TestCheckpointer:
    def test_mark_persists_every_nth(self, tmp_path):
        ckpt = Checkpointer(tmp_path, every=2)
        ckpt.mark(KEY, {"k": 1})
        assert ckpt.store.snapshots() == []  # first mark buffered
        ckpt.mark(KEY, {"k": 2})
        assert len(ckpt.store.snapshots()) == 1
        ckpt.mark(KEY, {"k": 3})
        ckpt.flush()  # exhaustion path persists the buffered mark
        assert ckpt.store.load_latest()["state"] == {"k": 3}

    def test_flush_without_pending_is_noop(self, tmp_path):
        ckpt = Checkpointer(tmp_path)
        ckpt.flush()
        assert ckpt.store.snapshots() == []
        ckpt.mark(KEY, {"k": 1})
        n = len(ckpt.store.snapshots())
        ckpt.flush()  # already on disk: no extra snapshot
        assert len(ckpt.store.snapshots()) == n

    def test_resume_not_requested_returns_none(self, tmp_path):
        Checkpointer(tmp_path).mark(KEY, {"k": 1})
        assert Checkpointer(tmp_path, resume=False).resume(KEY) is None

    def test_resume_returns_latest_state(self, tmp_path):
        writer = Checkpointer(tmp_path)
        writer.mark(KEY, {"k": 1})
        writer.mark(KEY, {"k": 2})
        assert Checkpointer(tmp_path, resume=True).resume(KEY) == {"k": 2}

    def test_resume_empty_dir_returns_none(self, tmp_path):
        assert Checkpointer(tmp_path, resume=True).resume(KEY) is None

    def test_resume_key_mismatch_raises(self, tmp_path):
        Checkpointer(tmp_path).mark(KEY, {"k": 1})
        other = dict(KEY, n=6)  # same algorithm, different threshold
        with pytest.raises(CheckpointMismatch):
            Checkpointer(tmp_path, resume=True).resume(other)

    def test_resume_skips_corrupted_newest(self, tmp_path):
        writer = Checkpointer(tmp_path)
        writer.mark(KEY, {"k": 1})
        writer.mark(KEY, {"k": 2})
        newest = writer.store.snapshots()[-1][1]
        raw = bytearray(newest.read_bytes())
        raw[-1] ^= 0xFF
        newest.write_bytes(bytes(raw))
        assert Checkpointer(tmp_path, resume=True).resume(KEY) == {"k": 1}

    def test_validation(self, tmp_path):
        with pytest.raises(ValidationError):
            Checkpointer(tmp_path, every=0)


class TestWorstCase:
    """The disk at its most hostile: nothing valid left, heavy churn."""

    def test_resume_with_every_snapshot_corrupted_raises_cleanly(
        self, tmp_path
    ):
        """All snapshots trashed → CheckpointCorrupted, not a crash.

        The resume path must surface one well-typed error (so the
        supervisor/scheduler can classify it), never an unpickling
        traceback or a silent ``None`` that would restart from scratch
        and mask the data loss.
        """
        writer = Checkpointer(tmp_path)
        writer.mark(KEY, {"k": 1})
        writer.mark(KEY, {"k": 2})
        writer.mark(KEY, {"k": 3})
        for _, path in writer.store.snapshots():
            path.write_bytes(b"every byte is wrong")
        with pytest.raises(CheckpointCorrupted, match="all 3 snapshots"):
            Checkpointer(tmp_path, resume=True).resume(KEY)

    def test_rotation_keeps_exactly_n_across_interleaved_mark_flush(
        self, tmp_path
    ):
        """keep=N holds as an invariant, not just an end state.

        Interleaving ``every=2`` marks with off-beat flushes (the
        budget-exhaustion path) exercises persist from both call sites;
        at no point may more than ``keep`` snapshots exist, and the
        newest must always be the latest persisted state.
        """
        store = CheckpointStore(tmp_path, keep=3)
        ckpt = Checkpointer(store, every=2)
        for i in range(20):
            ckpt.mark(KEY, {"k": i})
            if i % 5 == 0:
                ckpt.flush()
            assert len(store.snapshots()) <= 3
        ckpt.flush()
        snapshots = store.snapshots()
        assert len(snapshots) == 3
        sequences = [seq for seq, _ in snapshots]
        assert sequences == sorted(sequences)
        assert store.load_latest()["state"] == {"k": 19}
        # Rotation unlinks cleanly: no temp halves left next to them.
        leftovers = [p for p in tmp_path.iterdir()
                     if p.suffix == ".tmp"]
        assert leftovers == []


class TestWriteFailureMidJob:
    """A checkpoint write failing mid-run must neither corrupt prior
    snapshots nor masquerade as an application error.

    ``CheckpointWriteError`` subclasses ``TransientFault``, so the
    default retry policy relaunches the attempt — the failure mode is
    a full disk or flaky device, both recoverable — while every
    snapshot persisted before the fault keeps verifying.
    """

    def test_flush_failure_is_transient_and_preserves_snapshots(
        self, tmp_path
    ):
        from repro.runtime.checkpoint import CheckpointWriteError
        from repro.runtime.faults import DiskGremlin, TransientFault
        from repro.runtime.fsio import injected

        store = CheckpointStore(tmp_path)
        ckpt = Checkpointer(store, every=1)
        ckpt.mark(KEY, {"pass": 1})
        ckpt.mark(KEY, {"pass": 2})
        with injected(DiskGremlin(op="write", after=0, burst=None)):
            with pytest.raises(CheckpointWriteError) as excinfo:
                ckpt.mark(KEY, {"pass": 3})
        assert isinstance(excinfo.value, TransientFault)
        # Prior snapshots still verify and resume from pass 2.
        resumed = Checkpointer(store, resume=True).resume(KEY)
        assert resumed == {"pass": 2}

    def test_retry_after_write_failure_lands_the_state(self, tmp_path):
        from repro.runtime.checkpoint import CheckpointWriteError
        from repro.runtime.faults import DiskGremlin
        from repro.runtime.fsio import injected
        from repro.runtime.retry import RetryPolicy

        store = CheckpointStore(tmp_path)
        ckpt = Checkpointer(store, every=1)
        ckpt.mark(KEY, {"pass": 1})
        with injected(DiskGremlin(op="write", after=0, burst=1)):
            with pytest.raises(CheckpointWriteError):
                ckpt.mark(KEY, {"pass": 2})
            # The dirty flag survives the failure: the retry policy can
            # re-drive the flush once the disk heals.
            RetryPolicy(max_retries=2, base_delay=0.0,
                        jitter=0.0).run(ckpt.flush)
        assert store.load_latest()["state"] == {"pass": 2}
