"""Kill-storm resume-identity under *real* process death.

``test_resume_equivalence.py`` proves the checkpoint contract against
cooperative kills (an injected exception at a budget checkpoint).  This
file proves the stronger, process-level claim: a child SIGKILLed by
:class:`~repro.runtime.faults.ChaosMonkey` at seeded points mid-run —
no exception handling, no ``finally`` blocks, the interpreter simply
ceases — and auto-resumed by the :class:`~repro.runtime.Supervisor`
returns results identical to an uninterrupted in-process run, for every
supervised algorithm family: levelwise miners (apriori, dhp), sequence
miners (gsp), and iterative clusterers (kmeans, clarans).

Each storm demands at least three landed kills.  The monkey's
checkpoint trigger fires only after the child persists new snapshots,
so every doomed attempt makes forward progress and the storm provably
terminates.  A short sleep after each persisted mark (via a wrapping
checkpointer) keeps the child inside the marked boundary long enough
for the monkey's poll loop to land the kill there — making the strike
schedule deterministic without touching the algorithms.
"""

import time

import numpy as np
import pytest

from repro.associations import apriori, dhp
from repro.clustering import CLARANS, KMeans
from repro.datasets import gaussian_blobs
from repro.runtime import ChaosMonkey, Checkpointer, RetryPolicy, Supervisor
from repro.sequences import gsp

MIN_KILLS = 3


class _SlowCheckpointer(Checkpointer):
    """Dwell inside each marked boundary so seeded strikes land there."""

    def mark(self, key, state):
        super().mark(key, state)
        time.sleep(0.01)


def _slowed(ctx):
    """Swap the supervisor-injected checkpointer for the dwelling one."""
    if ctx is None or ctx.checkpointer is None:
        return ctx
    checkpoint = ctx.checkpointer
    return ctx.replace(checkpointer=_SlowCheckpointer(
        checkpoint.store,
        every=checkpoint.every,
        resume=checkpoint.resume_requested,
    ))


def _storm(tmp_path, target, *args, after_checkpoints=(1, 1), seed=0):
    """Run ``target`` under a three-kill storm; return the outcome."""
    monkey = ChaosMonkey(
        kills=MIN_KILLS,
        after_checkpoints=after_checkpoints,
        random_state=seed,
        poll_interval=0.001,
    )
    supervisor = Supervisor(
        retry=RetryPolicy(
            max_retries=MIN_KILLS + 2, base_delay=0.0, jitter=0.0,
            sleep=lambda _s: None,
        ),
        checkpoint_dir=tmp_path / "storm",
        monkey=monkey,
    )
    outcome = supervisor.run(target, *args)
    assert len(monkey.strikes) >= MIN_KILLS, (
        f"storm landed only {len(monkey.strikes)} kills: {monkey.strikes}"
    )
    assert outcome.attempts == len(monkey.strikes) + 1
    assert [r.cause for r in outcome.reports] == ["killed"] * len(
        monkey.strikes
    )
    # Chaos hygiene: the survivor cleaned up its snapshots.
    assert not list((tmp_path / "storm").glob("*.ckpt"))
    return outcome


# ----------------------------------------------------------------------
# Child targets (forked, so the databases close over cheaply; only the
# returned results must pickle).
# ----------------------------------------------------------------------
def _mine_apriori(db, min_support, ctx=None):
    return apriori(db, min_support, ctx=_slowed(ctx))


def _mine_dhp(db, min_support, ctx=None):
    return dhp(db, min_support, ctx=_slowed(ctx))


def _mine_gsp(db, min_support, ctx=None):
    return gsp(db, min_support, ctx=_slowed(ctx))


def _fit_kmeans(X, ctx=None):
    model = KMeans(
        4, n_init=2, max_iter=50, random_state=0, ctx=_slowed(ctx),
    )
    model.fit(X)
    return (
        model.cluster_centers_, model.labels_, model.inertia_, model.n_iter_
    )


def _fit_clarans(X, ctx=None):
    model = CLARANS(
        3, num_local=2, max_neighbor=25, random_state=4, ctx=_slowed(ctx),
    )
    model.fit(X)
    return (model.medoid_indices_, model.labels_, model.cost_)


class TestKillStorm:
    def test_apriori(self, medium_db, tmp_path):
        clean = apriori(medium_db, 0.02)
        outcome = _storm(
            tmp_path, _mine_apriori, medium_db, 0.02,
            after_checkpoints=(1, 2), seed=11,
        )
        assert outcome.value.supports == clean.supports
        assert not outcome.value.truncated

    def test_dhp(self, medium_db, tmp_path):
        clean = dhp(medium_db, 0.03)
        outcome = _storm(
            tmp_path, _mine_dhp, medium_db, 0.03,
            after_checkpoints=(1, 1), seed=23,
        )
        assert outcome.value.supports == clean.supports

    def test_gsp(self, medium_seq_db, tmp_path):
        clean = gsp(medium_seq_db, 0.2)
        outcome = _storm(
            tmp_path, _mine_gsp, medium_seq_db, 0.2,
            after_checkpoints=(1, 1), seed=37,
        )
        assert outcome.value.supports == clean.supports

    @pytest.mark.filterwarnings(
        "ignore::repro.core.exceptions.ConvergenceWarning"
    )
    def test_kmeans(self, tmp_path):
        centers = np.array([[0.0, 0.0], [2.5, 0.0], [0.0, 2.5], [2.5, 2.5]])
        X, _ = gaussian_blobs(
            200, centers=centers, cluster_std=1.2, random_state=5
        )
        ref = _fit_kmeans(X)
        outcome = _storm(
            tmp_path, _fit_kmeans, X, after_checkpoints=(1, 3), seed=41,
        )
        got = outcome.value
        assert np.array_equal(got[0], ref[0])
        assert np.array_equal(got[1], ref[1])
        assert got[2] == ref[2]
        assert got[3] == ref[3]

    def test_clarans(self, tmp_path):
        X, _ = gaussian_blobs(
            90,
            centers=np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0]]),
            cluster_std=0.8,
            random_state=2,
        )
        ref = _fit_clarans(X)
        outcome = _storm(
            tmp_path, _fit_clarans, X, after_checkpoints=(2, 5), seed=53,
        )
        got = outcome.value
        assert np.array_equal(got[0], ref[0])
        assert np.array_equal(got[1], ref[1])
        assert got[2] == ref[2]
