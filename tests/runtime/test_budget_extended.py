"""Budget coverage for the miners and clusterers not swept by the core
budget tests — the miner lists derive from the registry's capability
table rather than a hand-maintained enumeration.

Each algorithm must (a) actually poll its budget — proven with an
injected fault on the first checkpoint; (b) degrade gracefully under
``truncate`` (miners) or built-in truncation (clusterers), returning a
subset of the unbudgeted answer with correct supports; (c) never swallow
cancellation; (d) behave identically with no budget and with a generous
one.
"""

import numpy as np
import pytest

from repro import registry
from repro.clustering import Agglomerative, Birch
from repro.datasets import gaussian_blobs
from repro.runtime import (
    Budget,
    BudgetExceeded,
    CancellationToken,
    OperationCancelled,
    TriggerAfter,
)


@pytest.fixture
def X():
    data, _ = gaussian_blobs(
        80,
        centers=np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0]]),
        cluster_std=0.7,
        random_state=7,
    )
    return data


def _first_check_fault():
    return Budget(check_interval=1).install_fault(TriggerAfter(1))


def _cancelled_budget():
    token = CancellationToken()
    token.cancel("user hit ctrl-c")
    return Budget(cancel_token=token, check_interval=1)


# Budget-capable miners already swept elsewhere (test_budget.py /
# test_fault_injection.py / test_resume_equivalence.py); every *other*
# candidate-budget miner the registry knows about lands in this sweep
# automatically, so a newly registered miner cannot dodge coverage.
_COVERED_ELSEWHERE = {"apriori", "apriori_tid", "dhp", "fp_growth"}
_SEQ_COVERED_ELSEWHERE = {"gsp"}
_MINER_PARAMS = {"partition": {"n_partitions": 2}}


def _miner_runner(spec):
    return lambda db, **kw: spec.factory(
        db, 0.3, **_MINER_PARAMS.get(spec.name, {}), **kw
    )


def _seq_runner(spec):
    return lambda db, s=0.4, **kw: spec.factory(db, s, **kw)


class TestMiners:
    """Registry-derived sweep: eclat / partition / apriori_all /
    prefixspan today, plus whatever gets registered next."""

    MINERS = {
        spec.name: _miner_runner(spec)
        for spec in registry.specs("associations")
        if spec.capabilities.budget_resource == "candidates"
        and spec.name not in _COVERED_ELSEWHERE
    }
    SEQ_MINERS = {
        spec.name: _seq_runner(spec)
        for spec in registry.specs("sequences")
        if spec.capabilities.budget_resource == "candidates"
        and spec.name not in _SEQ_COVERED_ELSEWHERE
    }

    @pytest.mark.parametrize("name", sorted(MINERS))
    def test_injected_fault_surfaces(self, name, small_db):
        with pytest.raises(BudgetExceeded):
            self.MINERS[name](small_db, budget=_first_check_fault())

    @pytest.mark.parametrize("name", sorted(SEQ_MINERS))
    def test_injected_fault_surfaces_sequences(self, name, small_seq_db):
        with pytest.raises(BudgetExceeded):
            self.SEQ_MINERS[name](small_seq_db, budget=_first_check_fault())

    @pytest.mark.parametrize("name", sorted(MINERS))
    def test_generous_budget_identical(self, name, medium_db):
        run = self.MINERS[name]
        full = run(medium_db)
        budgeted = run(
            medium_db, budget=Budget(max_candidates=10**9, check_interval=1)
        )
        assert budgeted.supports == full.supports
        assert not budgeted.truncated

    @pytest.mark.parametrize("name", sorted(SEQ_MINERS))
    def test_generous_budget_identical_sequences(self, name, medium_seq_db):
        full = self.SEQ_MINERS[name](medium_seq_db)
        budgeted = self.SEQ_MINERS[name](
            medium_seq_db,
            budget=Budget(max_candidates=10**9, check_interval=1),
        )
        assert budgeted.supports == full.supports

    @pytest.mark.parametrize("name", sorted(MINERS))
    def test_truncate_returns_exact_subset(self, name, medium_db):
        run = self.MINERS[name]
        full = run(medium_db)
        # Pick a cap that bites partway through the run.
        probe = Budget(check_interval=1)
        run(medium_db, budget=probe)
        cap = max(1, probe.candidates_used // 3)
        result = run(
            medium_db,
            budget=Budget(max_candidates=cap),
            on_exhausted="truncate",
        )
        assert result.truncated
        assert result.truncation_reason
        assert len(result.supports) <= len(full.supports)
        for itemset, count in result.supports.items():
            assert full.supports[itemset] == count

    @pytest.mark.parametrize("name", sorted(SEQ_MINERS))
    def test_truncate_returns_exact_subset_sequences(
        self, name, medium_seq_db
    ):
        # A lower support than the other tests so pattern growth goes
        # deep enough for a candidate cap to bite mid-run.
        run = self.SEQ_MINERS[name]
        full = run(medium_seq_db, s=0.15)
        probe = Budget(check_interval=1)
        run(medium_seq_db, s=0.15, budget=probe)
        assert probe.candidates_used >= 3
        cap = probe.candidates_used // 3
        result = run(
            medium_seq_db,
            s=0.15,
            budget=Budget(max_candidates=cap),
            on_exhausted="truncate",
        )
        assert result.truncated
        for pattern, count in result.supports.items():
            assert full.supports[pattern] == count

    @pytest.mark.parametrize("name", sorted(MINERS))
    def test_cancellation_propagates(self, name, small_db):
        with pytest.raises(OperationCancelled):
            self.MINERS[name](
                small_db, budget=_cancelled_budget(), on_exhausted="truncate"
            )

    @pytest.mark.parametrize("name", sorted(SEQ_MINERS))
    def test_cancellation_propagates_sequences(self, name, small_seq_db):
        with pytest.raises(OperationCancelled):
            self.SEQ_MINERS[name](
                small_seq_db,
                budget=_cancelled_budget(),
                on_exhausted="truncate",
            )


class TestAgglomerative:
    def test_injected_fault_truncates(self, X):
        model = Agglomerative(3, budget=_first_check_fault()).fit(X)
        assert model.truncated_
        assert model.truncation_reason_
        # Best-effort labels: everything is still labelled, at the
        # coarsest level reached (no merges happened -> singletons).
        assert model.labels_.shape == (len(X),)

    def test_partial_dendrogram_is_prefix(self, X):
        full = Agglomerative(3, linkage="average").fit(X)
        cut = Agglomerative(
            3, linkage="average", budget=Budget(max_expansions=20)
        ).fit(X)
        assert cut.truncated_
        assert len(cut.merges_) == 20
        assert np.allclose(cut.merges_, full.merges_[:20])

    def test_generous_budget_identical(self, X):
        full = Agglomerative(3, linkage="ward").fit(X)
        budgeted = Agglomerative(
            3, linkage="ward", budget=Budget(max_expansions=10**9)
        ).fit(X)
        assert not budgeted.truncated_
        assert np.array_equal(budgeted.labels_, full.labels_)
        assert np.allclose(budgeted.merges_, full.merges_)

    def test_cancellation_propagates(self, X):
        with pytest.raises(OperationCancelled):
            Agglomerative(3, budget=_cancelled_budget()).fit(X)


class TestBirch:
    def test_injected_fault_truncates(self, X):
        model = Birch(
            threshold=1.0, n_clusters=3, random_state=0,
            budget=_first_check_fault(),
        ).fit(X)
        assert model.truncated_
        assert model.truncation_reason_
        # The partial tree still summarises the points scanned so far
        # and every input row still gets a label.
        assert model.labels_.shape == (len(X),)
        assert len(model.subcluster_centers_) >= 1

    def test_scan_cap_bounds_tree(self, X):
        model = Birch(
            threshold=1.0, n_clusters=3, random_state=0,
            budget=Budget(max_nodes=25),
        ).fit(X)
        assert model.truncated_
        # The budget is charged after each insert, so the scan stops
        # with cap + 1 points in the tree — never an empty tree.
        leaf_mass = sum(cf.n for cf in model._leaf_entries())
        assert leaf_mass == 26

    def test_generous_budget_identical(self, X):
        full = Birch(threshold=1.0, n_clusters=3, random_state=0).fit(X)
        budgeted = Birch(
            threshold=1.0, n_clusters=3, random_state=0,
            budget=Budget(max_nodes=10**9, check_interval=1),
        ).fit(X)
        assert not budgeted.truncated_
        assert np.array_equal(budgeted.labels_, full.labels_)
        assert np.allclose(
            budgeted.subcluster_centers_, full.subcluster_centers_
        )

    def test_cancellation_propagates(self, X):
        with pytest.raises(OperationCancelled):
            Birch(
                threshold=1.0, n_clusters=3, budget=_cancelled_budget()
            ).fit(X)
