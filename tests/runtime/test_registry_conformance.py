"""Registry-conformance sweep over every registered algorithm.

Parametrization comes from :mod:`repro.registry` instead of hand-picked
algorithm lists: registering an algorithm automatically enrols it in
these contracts —

* **null-context identity**: passing ``ctx=ExecutionContext()`` is
  byte-identical to the bare call;
* **context cancellation**: a pre-cancelled
  :class:`~repro.runtime.CancellationToken` on the context surfaces as
  :class:`~repro.runtime.OperationCancelled` from every algorithm;
* **policy validation**: an ``on_exhausted`` value outside the declared
  ``degradation_policies`` is rejected, and the declared set stays
  inside the shared vocabulary;
* **deprecated kwargs**: the legacy ``budget=`` alias still works but
  emits a :class:`DeprecationWarning`, and mixing it with ``ctx=`` is
  an error.
"""

import numpy as np
import pytest

from repro import registry
from repro.core.exceptions import ValidationError
from repro.datasets import gaussian_blobs, play_tennis
from repro.runtime import Budget, CancellationToken, OperationCancelled
from repro.runtime.context import (
    BASIC_POLICIES,
    LEVELWISE_POLICIES,
    ExecutionContext,
)

registry.ensure_populated()
ALL_SPECS = registry.specs()


def _spec_id(spec):
    return f"{spec.family}:{spec.name}"


MINER_SPECS = [
    s for s in ALL_SPECS if s.family in ("associations", "sequences")
]
POLICY_SPECS = [s for s in ALL_SPECS if s.capabilities.degradation_policies]
TREE_SPECS = [
    s for s in ALL_SPECS
    if s.family == "classification" and s.capabilities.budget_resource
]


@pytest.fixture
def workloads(small_db, small_seq_db):
    X, _ = gaussian_blobs(
        60,
        centers=np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0]]),
        cluster_std=0.6,
        random_state=3,
    )
    return {
        "associations": small_db,
        "sequences": small_seq_db,
        "table": play_tennis(),
        "X": X,
    }


def _run(spec, w, ctx=None, **kwargs):
    """Invoke one registered algorithm on its family's toy workload and
    return a comparable result (supports dict / label tuple)."""
    if spec.family in ("associations", "sequences"):
        result = spec.factory(w[spec.family], 0.4, ctx=ctx, **kwargs)
        return dict(result.supports)
    if spec.family == "classification":
        model = spec.factory(ctx=ctx, **kwargs)
        model.fit(w["table"], "play")
        return tuple(model.predict(w["table"]))
    model = spec.make(ctx, k=3, eps=1.5, min_samples=3, seed=0, **kwargs)
    model.fit(w["X"])
    return tuple(np.asarray(model.labels_).tolist())


class TestRegistryTable:
    def test_every_family_is_populated(self):
        for family in registry.FAMILIES:
            assert registry.names(family), family

    def test_budget_resource_vocabulary(self):
        for spec in ALL_SPECS:
            assert spec.capabilities.budget_resource in (
                None, "candidates", "nodes", "expansions"
            ), _spec_id(spec)

    def test_declared_policies_stay_in_shared_vocabulary(self):
        for spec in POLICY_SPECS:
            declared = set(spec.capabilities.degradation_policies)
            assert declared <= set(LEVELWISE_POLICIES), _spec_id(spec)
            assert set(BASIC_POLICIES) <= declared, _spec_id(spec)

    def test_checkpointable_without_supervisable_is_impossible(self):
        # A checkpoint-resumable algorithm is by construction safe to
        # relaunch, so the capability pair must be consistent.
        for spec in ALL_SPECS:
            if spec.capabilities.checkpointable:
                assert spec.capabilities.supervisable, _spec_id(spec)

    def test_render_table_lists_every_algorithm(self):
        table = registry.render_table()
        for spec in ALL_SPECS:
            assert spec.name in table

    def test_reregistration_is_idempotent(self):
        spec = registry.get("associations", "apriori")
        assert registry.register(spec) is spec

    def test_conflicting_registration_is_rejected(self):
        spec = registry.get("associations", "apriori")
        clone = registry.AlgorithmSpec(
            spec.name, spec.family, lambda: None, spec.capabilities
        )
        with pytest.raises(ValidationError, match="different factory"):
            registry.register(clone)

    def test_unknown_algorithm_names_choices(self):
        with pytest.raises(ValidationError, match="apriori"):
            registry.get("associations", "nope")


@pytest.mark.parametrize("spec", ALL_SPECS, ids=_spec_id)
class TestEveryAlgorithm:
    def test_null_context_identity(self, spec, workloads):
        bare = _run(spec, workloads)
        ctxed = _run(spec, workloads, ctx=ExecutionContext())
        assert bare == ctxed

    def test_context_cancellation_honoured(self, spec, workloads):
        token = CancellationToken()
        token.cancel("conformance sweep")
        ctx = ExecutionContext(cancel_token=token)
        with pytest.raises(OperationCancelled):
            _run(spec, workloads, ctx=ctx)


@pytest.mark.parametrize("spec", POLICY_SPECS, ids=_spec_id)
def test_undeclared_policy_rejected(spec, workloads):
    with pytest.raises(ValidationError, match="on_exhausted"):
        _run(spec, workloads, on_exhausted="no-such-policy")


@pytest.mark.parametrize("spec", MINER_SPECS, ids=_spec_id)
class TestMinerDeprecatedKwargs:
    def test_budget_kwarg_warns_but_works(self, spec, workloads):
        db = workloads[spec.family]
        with pytest.warns(DeprecationWarning, match="deprecated"):
            result = spec.factory(db, 0.4, budget=Budget())
        assert dict(result.supports) == _run(spec, workloads)

    def test_ctx_plus_legacy_kwarg_is_an_error(self, spec, workloads):
        db = workloads[spec.family]
        with pytest.raises(ValidationError, match="deprecated"):
            spec.factory(db, 0.4, ctx=ExecutionContext(), budget=Budget())


@pytest.mark.parametrize("spec", TREE_SPECS, ids=_spec_id)
def test_tree_budget_kwarg_warns_but_works(spec, workloads):
    with pytest.warns(DeprecationWarning, match="deprecated"):
        model = spec.factory(budget=Budget())
    model.fit(workloads["table"], "play")
    assert tuple(model.predict(workloads["table"])) == _run(spec, workloads)


def test_clusterer_budget_kwarg_warns_but_works(workloads):
    from repro.clustering import KMeans

    with pytest.warns(DeprecationWarning, match="deprecated"):
        model = KMeans(3, random_state=0, budget=Budget())
    labels = tuple(model.fit_predict(workloads["X"]).tolist())
    spec = registry.get("clustering", "kmeans")
    assert labels == _run(spec, workloads)


# ----------------------------------------------------------------------
# --backend conformance: the CLI flag tracks Capabilities.vectorizable
# ----------------------------------------------------------------------
CLI_SPECS = [
    s for s in ALL_SPECS
    if s.family in ("associations", "classification", "clustering")
]

#: vectorized backend name of every vectorizable algorithm
VECTOR_BACKEND = {
    "eclat": "bitset",
    "partition": "bitset",
    "dhp": "bitmap",
    "gsp": "bitmap",
    "sliq": "columnar",
    "nb": "columnar",
    "knn": "columnar",
    "kmeans": "elkan",
}


def test_every_vectorizable_algorithm_names_a_vector_backend():
    for spec in ALL_SPECS:
        if spec.capabilities.vectorizable:
            assert spec.name in VECTOR_BACKEND, _spec_id(spec)


@pytest.fixture(scope="module")
def cli_data(tmp_path_factory):
    from repro.cli import main

    root = tmp_path_factory.mktemp("backend-sweep")
    paths = {
        "associations": root / "basket.dat",
        "classification": root / "credit.csv",
        "clustering": root / "blobs.csv",
    }
    assert main(["generate", "basket", str(paths["associations"]),
                 "--rows", "120", "--seed", "1"]) == 0
    assert main(["generate", "agrawal", str(paths["classification"]),
                 "--rows", "200", "--function", "2", "--seed", "2"]) == 0
    assert main(["generate", "blobs", str(paths["clustering"]),
                 "--rows", "90", "--centers", "3", "--seed", "3"]) == 0
    return paths


def _backend_argv(spec, data, backend):
    if spec.family == "associations":
        argv = ["mine", str(data["associations"]), "--miner", spec.name,
                "--min-support", "0.1"]
    elif spec.family == "classification":
        argv = ["classify", str(data["classification"]),
                "--target", "group", "--classifier", spec.name]
    else:
        argv = ["cluster", str(data["clustering"]),
                "--algorithm", spec.name, "--k", "3", "--eps", "1.5"]
    return argv + ["--backend", backend]


@pytest.mark.parametrize("spec", CLI_SPECS, ids=_spec_id)
def test_backend_flag_tracks_vectorizable_capability(spec, cli_data, capsys):
    from repro.cli import main

    if spec.capabilities.vectorizable:
        argv = _backend_argv(spec, cli_data, VECTOR_BACKEND[spec.name])
        assert main(argv) == 0
    else:
        argv = _backend_argv(spec, cli_data, "columnar")
        assert main(argv) == 2
        assert "does not support --backend" in capsys.readouterr().err


@pytest.mark.parametrize(
    "spec",
    [s for s in CLI_SPECS if s.capabilities.vectorizable],
    ids=_spec_id,
)
def test_unknown_backend_value_exits_2(spec, cli_data, capsys):
    from repro.cli import main

    assert main(_backend_argv(spec, cli_data, "warp-drive")) == 2
    assert "backend" in capsys.readouterr().err
