"""Process-level supervision: hard limits, crash containment, reports.

The kill-storm resume-identity contract lives in ``test_kill_storm.py``;
this file covers the supervisor mechanics — exit classification, limit
enforcement, report structure, retry/resume composition, and checkpoint
hygiene on success.
"""

import json
import os
import signal
import time

import pytest

from repro.associations import apriori
from repro.core.exceptions import ValidationError
from repro.runtime import (
    ChaosMonkey,
    CheckpointStore,
    HardLimits,
    RetryPolicy,
    SupervisedCrash,
    Supervisor,
    TransientFault,
)
from repro.runtime.supervisor import _peak_child_rss_mb

NO_SLEEP = dict(base_delay=0.0, jitter=0.0, sleep=lambda _s: None)


def _current_vsz_mb() -> float:
    with open("/proc/self/statm") as handle:
        pages = int(handle.read().split()[0])
    return pages * os.sysconf("SC_PAGE_SIZE") / (1024 * 1024)


# ----------------------------------------------------------------------
# Child targets (run under fork, so closures would work too; module
# level keeps tracebacks readable when a child prints one).
# ----------------------------------------------------------------------
def _add(a, b):
    return a + b


def _raise_value_error():
    raise ValueError("application-level failure")


def _raise_transient_once(flag_path):
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as handle:
            handle.write("seen")
        raise TransientFault("in-child transient blip")
    return "recovered"


def _exit_nonzero():
    os._exit(5)


def _kill_self():
    os.kill(os.getpid(), signal.SIGKILL)


def _kill_self_checkpointed(ctx=None):
    os.kill(os.getpid(), signal.SIGKILL)


def _exit_zero_without_result():
    os._exit(0)


def _sleep_forever():
    time.sleep(300)


def _ignore_sigterm_and_sleep():
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(300)


def _spin_cpu():
    while True:
        pass


def _allocate_mb(n_mb):
    block = bytearray(n_mb * 1024 * 1024)
    return len(block)


def _crash_until_resumable(value, ctx=None):
    """Die hard on the fresh attempt; succeed once resume is requested."""
    if ctx is None or not ctx.resume_requested:
        os.kill(os.getpid(), signal.SIGKILL)
    return value


class TestSuccessPath:
    def test_returns_value_and_attempt_count(self):
        outcome = Supervisor().run(_add, 2, b=3)
        assert outcome.value == 5
        assert outcome.attempts == 1
        assert outcome.reports == []

    def test_peak_rss_is_reported(self):
        outcome = Supervisor().run(_add, 1, 1)
        assert outcome.peak_rss_mb is not None
        assert outcome.peak_rss_mb > 0

    def test_app_error_reraises_not_crash(self):
        with pytest.raises(ValueError, match="application-level failure"):
            Supervisor().run(_raise_value_error)

    def test_in_child_transient_fault_is_retried_by_policy(self, tmp_path):
        flag = str(tmp_path / "flag")
        sup = Supervisor(retry=RetryPolicy(max_retries=2, **NO_SLEEP))
        outcome = sup.run(_raise_transient_once, flag)
        assert outcome.value == "recovered"
        assert outcome.attempts == 2
        # An app-level transient fault is not a process crash: no report.
        assert outcome.reports == []


class TestCrashClassification:
    def test_nonzero_exit_is_crashed(self):
        with pytest.raises(SupervisedCrash) as excinfo:
            Supervisor().run(_exit_nonzero)
        report = excinfo.value.report
        assert report.cause == "crashed"
        assert report.exit_code == 5
        assert report.signal is None

    def test_sigkill_is_killed(self):
        with pytest.raises(SupervisedCrash) as excinfo:
            Supervisor().run(_kill_self)
        report = excinfo.value.report
        assert report.cause == "killed"
        assert report.signal == signal.SIGKILL
        assert report.signal_name == "SIGKILL"

    def test_clean_exit_without_result_is_torn(self):
        with pytest.raises(SupervisedCrash) as excinfo:
            Supervisor().run(_exit_zero_without_result)
        assert excinfo.value.report.cause == "torn-result"
        assert excinfo.value.report.exit_code == 0

    def test_report_serialises_to_json(self):
        sup = Supervisor(limits=HardLimits(max_rss_mb=4096))
        with pytest.raises(SupervisedCrash) as excinfo:
            sup.run(_exit_nonzero)
        decoded = json.loads(excinfo.value.report.to_json())
        for key in ("cause", "message", "exit_code", "signal", "attempt",
                    "elapsed_seconds", "peak_rss_mb", "limits",
                    "last_checkpoint", "partial_result_available"):
            assert key in decoded
        assert decoded["cause"] == "crashed"
        assert decoded["limits"]["max_rss_mb"] == 4096


class TestHardLimits:
    def test_rss_limit_fires_as_memory_cause(self):
        cap = _current_vsz_mb() + 64
        sup = Supervisor(limits=HardLimits(max_rss_mb=cap))
        with pytest.raises(SupervisedCrash) as excinfo:
            sup.run(_allocate_mb, 512)
        report = excinfo.value.report
        assert report.cause == "rss-limit"
        assert "MB" in report.message

    def test_allocation_under_the_cap_succeeds(self):
        cap = _current_vsz_mb() + 256
        sup = Supervisor(limits=HardLimits(max_rss_mb=cap))
        assert sup.run(_allocate_mb, 16).value == 16 * 1024 * 1024

    def test_wall_limit_graceful_sigterm(self):
        sup = Supervisor(
            limits=HardLimits(wall_time_limit=0.3, grace_period=5.0)
        )
        started = time.monotonic()
        with pytest.raises(SupervisedCrash) as excinfo:
            sup.run(_sleep_forever)
        elapsed = time.monotonic() - started
        assert excinfo.value.report.cause == "wall-limit"
        # SIGTERM unwound the child well before the grace period ran out.
        assert elapsed < 4.0

    def test_wall_limit_escalates_to_sigkill(self):
        sup = Supervisor(
            limits=HardLimits(wall_time_limit=0.2, grace_period=0.3)
        )
        with pytest.raises(SupervisedCrash) as excinfo:
            sup.run(_ignore_sigterm_and_sleep)
        report = excinfo.value.report
        assert report.cause == "wall-limit"
        assert report.signal == signal.SIGKILL

    def test_cpu_limit_fires_sigxcpu(self):
        sup = Supervisor(limits=HardLimits(cpu_time_limit=1.0))
        with pytest.raises(SupervisedCrash) as excinfo:
            sup.run(_spin_cpu)
        assert excinfo.value.report.cause == "cpu-limit"
        assert excinfo.value.report.signal == signal.SIGXCPU

    def test_limit_validation(self):
        with pytest.raises(ValidationError, match="-1"):
            HardLimits(max_rss_mb=-1)
        with pytest.raises(ValidationError, match="0"):
            HardLimits(wall_time_limit=0)


class TestRetryAndResume:
    def test_crash_retried_then_resumed(self, tmp_path):
        sup = Supervisor(
            retry=RetryPolicy(max_retries=2, **NO_SLEEP),
            checkpoint_dir=tmp_path / "ckpt",
            keep_snapshots=True,
        )
        outcome = sup.run(_crash_until_resumable, "done")
        assert outcome.value == "done"
        assert outcome.attempts == 2
        assert [r.cause for r in outcome.reports] == ["killed"]
        assert outcome.reports[0].attempt == 1

    def test_exhausted_retries_raise_last_report(self):
        sup = Supervisor(retry=RetryPolicy(max_retries=2, **NO_SLEEP))
        with pytest.raises(SupervisedCrash) as excinfo:
            sup.run(_kill_self)
        assert excinfo.value.report.attempt == 3
        assert [r.attempt for r in sup.reports_] == [1, 2, 3]

    def test_no_retry_by_default(self):
        sup = Supervisor()
        with pytest.raises(SupervisedCrash):
            sup.run(_kill_self)
        assert len(sup.reports_) == 1

    def test_report_names_last_checkpoint(self, small_db, tmp_path):
        ckpt = tmp_path / "ckpt"
        # Seed the directory with a completed run's snapshots...
        Supervisor(checkpoint_dir=ckpt, keep_snapshots=True).run(
            apriori, small_db, 0.4
        )
        assert CheckpointStore(ckpt).latest_seq() is not None
        # ...then crash: the report must surface the resumable snapshot.
        with pytest.raises(SupervisedCrash) as excinfo:
            Supervisor(checkpoint_dir=ckpt, keep_snapshots=True).run(
                _kill_self_checkpointed
            )
        report = excinfo.value.report
        assert report.last_checkpoint is not None
        assert report.partial_result_available is True


class TestCheckpointHygiene:
    def test_snapshots_cleared_on_success(self, small_db, tmp_path):
        ckpt = tmp_path / "ckpt"
        outcome = Supervisor(checkpoint_dir=ckpt).run(apriori, small_db, 0.4)
        assert outcome.value.supports
        assert CheckpointStore(ckpt).snapshots() == []
        assert not list(ckpt.glob("*.ckpt"))

    def test_keep_snapshots_opts_out(self, small_db, tmp_path):
        ckpt = tmp_path / "ckpt"
        Supervisor(checkpoint_dir=ckpt, keep_snapshots=True).run(
            apriori, small_db, 0.4
        )
        assert CheckpointStore(ckpt).snapshots() != []

    def test_supervised_result_matches_unsupervised(self, small_db, tmp_path):
        plain = apriori(small_db, 0.4)
        supervised = Supervisor(checkpoint_dir=tmp_path / "ckpt").run(
            apriori, small_db, 0.4
        )
        assert supervised.value.supports == plain.supports


class TestChaosMonkeyUnit:
    def test_dormant_monkey_never_strikes(self):
        monkey = ChaosMonkey(kills=0)
        sup = Supervisor(monkey=monkey)
        assert sup.run(_add, 1, 2).value == 3
        assert monkey.strikes == []

    def test_delay_mode_kills_a_sleeping_child(self):
        monkey = ChaosMonkey(
            kills=1, delay_range=(0.01, 0.02), random_state=7
        )
        sup = Supervisor(monkey=monkey)
        with pytest.raises(SupervisedCrash) as excinfo:
            sup.run(_sleep_forever)
        assert excinfo.value.report.cause == "killed"
        assert len(monkey.strikes) == 1
        assert monkey.strikes[0]["mode"] == "delay"
        assert monkey.remaining == 0

    def test_monkey_allowance_spans_attempts(self):
        monkey = ChaosMonkey(
            kills=2, delay_range=(0.01, 0.02), random_state=3
        )
        sup = Supervisor(
            monkey=monkey, retry=RetryPolicy(max_retries=5, **NO_SLEEP)
        )
        outcome = sup.run(_add, 4, 4)
        assert outcome.value == 8
        # Dormant after two strikes, so the third-or-later attempt won.
        assert len(monkey.strikes) <= 2
        assert outcome.attempts == len(monkey.strikes) + 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            ChaosMonkey(kills=-1)
        with pytest.raises(ValidationError):
            ChaosMonkey(after_checkpoints=(0, 2))
        with pytest.raises(ValidationError):
            ChaosMonkey(delay_range=(0.5, 0.1))


def test_peak_child_rss_helper_is_positive():
    Supervisor().run(_add, 0, 0)
    assert _peak_child_rss_mb() > 0
