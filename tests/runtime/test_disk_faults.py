"""Disk-fault injection: the fsio seam, the DiskGremlin, and the
no-torn-record matrix.

The contract pinned here is the storage half of the robustness story:
whatever stage of the atomic-write protocol a fault hits — temp write,
fsync, rename, directory fsync — the *final* path never holds a torn
record.  Either the old bytes survive intact, or the new bytes landed
completely, or (for a fresh file) nothing is there at all.
"""

import errno

import pytest

from repro.core.exceptions import ReproError
from repro.runtime import fsio
from repro.runtime.checkpoint import CheckpointStore, CheckpointWriteError
from repro.runtime.faults import DISK_OPS, DiskGremlin, TransientFault
from repro.runtime.fsio import atomic_write_bytes, injected


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """A test that dies mid-``injected`` must not poison its neighbours."""
    yield
    fsio.clear_injector()


class TestDiskGremlinSchedule:
    def test_after_then_burst_then_heal(self):
        gremlin = DiskGremlin(op="write", after=2, burst=2)
        outcomes = []
        for _ in range(6):
            try:
                gremlin.on_op("write", "/store/x")
                outcomes.append("ok")
            except OSError:
                outcomes.append("fault")
        assert outcomes == ["ok", "ok", "fault", "fault", "ok", "ok"]
        assert len(gremlin.injected) == 2

    def test_burst_none_never_heals(self):
        gremlin = DiskGremlin(op="write", after=0, burst=None)
        for _ in range(5):
            with pytest.raises(OSError):
                gremlin.on_op("write", "/store/x")

    def test_errno_and_message(self):
        gremlin = DiskGremlin(op="fsync", errno_code=errno.EIO)
        with pytest.raises(OSError) as excinfo:
            gremlin.on_op("fsync", "/dev/sick")
        assert excinfo.value.errno == errno.EIO
        assert excinfo.value.filename == "/dev/sick"

    def test_op_and_match_filters(self):
        gremlin = DiskGremlin(op="replace", match="result.json")
        gremlin.on_op("write", "/store/job/result.json")     # wrong op
        gremlin.on_op("replace", "/store/job/job.json")      # wrong path
        with pytest.raises(OSError):
            gremlin.on_op("replace", "/store/job/result.json")

    def test_seeded_after_range_is_deterministic(self):
        draws = {DiskGremlin(after=(3, 9), random_state=7).after
                 for _ in range(5)}
        assert len(draws) == 1
        assert 3 <= draws.pop() <= 9

    def test_unknown_op_rejected(self):
        with pytest.raises(ReproError):
            DiskGremlin(op="defragment")

    def test_torn_marks_exception(self):
        gremlin = DiskGremlin(op="replace", torn=True)
        with pytest.raises(OSError) as excinfo:
            gremlin.on_op("replace", "/store/x")
        assert excinfo.value.repro_leave_tmp is True


class TestAtomicWriteMatrix:
    """No stage of the protocol, failing, may tear the final record."""

    @pytest.mark.parametrize("op", DISK_OPS)
    def test_fault_never_tears_existing_record(self, tmp_path, op):
        target = tmp_path / "record.json"
        atomic_write_bytes(target, b"old-and-complete")
        gremlin = DiskGremlin(op=op, after=0, burst=None)
        with injected(gremlin):
            if op == "append":
                # The append plane is a different protocol entirely: a
                # gremlin on it must not touch atomic writes at all.
                atomic_write_bytes(target, b"new-and-complete")
                assert target.read_bytes() == b"new-and-complete"
            elif op == "fsync-dir":
                # The rename already landed; only the durability of the
                # *directory entry* is at stake, and the error surfaces.
                with pytest.raises(OSError):
                    atomic_write_bytes(target, b"new-and-complete")
                assert target.read_bytes() == b"new-and-complete"
            else:
                with pytest.raises(OSError):
                    atomic_write_bytes(target, b"new-and-complete")
                assert target.read_bytes() == b"old-and-complete"
        # No stray temp halves either way.
        assert [p.name for p in tmp_path.iterdir()] == ["record.json"]

    @pytest.mark.parametrize("op", ("write", "fsync", "replace"))
    def test_fault_on_fresh_file_leaves_nothing(self, tmp_path, op):
        target = tmp_path / "record.json"
        with injected(DiskGremlin(op=op, after=0)):
            with pytest.raises(OSError):
                atomic_write_bytes(target, b"data")
        assert list(tmp_path.iterdir()) == []

    def test_append_fault_surfaces_and_preserves_prefix(self, tmp_path):
        from repro.runtime.fsio import append_bytes

        target = tmp_path / "events.jsonl"
        append_bytes(target, b"line-1\n")
        with injected(DiskGremlin(op="append", after=0, burst=1)):
            with pytest.raises(OSError):
                append_bytes(target, b"line-2\n")
            append_bytes(target, b"line-3\n")  # the disk healed
        assert target.read_bytes() == b"line-1\nline-3\n"

    def test_write_fault_does_not_touch_appends(self, tmp_path):
        from repro.runtime.fsio import append_bytes

        target = tmp_path / "events.jsonl"
        with injected(DiskGremlin(op="write", after=0, burst=None)):
            append_bytes(target, b"line-1\n")
        assert target.read_bytes() == b"line-1\n"

    def test_torn_rename_leaves_tmp_for_the_sweep(self, tmp_path):
        target = tmp_path / "record.json"
        with injected(DiskGremlin(op="replace", torn=True)):
            with pytest.raises(OSError):
                atomic_write_bytes(target, b"data")
        assert not target.exists()
        assert [p.name for p in tmp_path.iterdir()] == [".record.json.tmp"]

    def test_heal_after_burst_lets_writes_through(self, tmp_path):
        target = tmp_path / "record.json"
        gremlin = DiskGremlin(op="write", after=0, burst=2)
        with injected(gremlin):
            for _ in range(2):
                with pytest.raises(OSError):
                    atomic_write_bytes(target, b"blocked")
            atomic_write_bytes(target, b"landed")
        assert target.read_bytes() == b"landed"

    def test_injector_cleared_after_context(self, tmp_path):
        with injected(DiskGremlin(op="write", after=0)):
            pass
        assert fsio.current_injector() is None
        atomic_write_bytes(tmp_path / "x", b"fine")


class TestCheckpointStoreUnderFaults:
    def test_save_failure_is_retryable_and_keeps_prior_snapshots(
        self, tmp_path
    ):
        store = CheckpointStore(tmp_path)
        store.save({"state": 1})
        store.save({"state": 2})
        before = store.snapshots()
        with injected(DiskGremlin(op="write", after=0, burst=None)):
            with pytest.raises(CheckpointWriteError) as excinfo:
                store.save({"state": 3})
        # The classification the retry policy keys on.
        assert isinstance(excinfo.value, TransientFault)
        # Prior snapshots are untouched and still load.
        assert store.snapshots() == before
        assert store.load_latest() == {"state": 2}

    def test_store_full_then_healed_resumes_numbering(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=10)
        store.save({"state": 1})
        with injected(DiskGremlin(op="write", after=0, burst=1)):
            with pytest.raises(CheckpointWriteError):
                store.save({"state": 2})
            store.save({"state": 2})
        assert [seq for seq, _ in store.snapshots()] == [1, 2]
        assert store.load_latest() == {"state": 2}
