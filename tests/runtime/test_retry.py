"""Unit tests for RetryPolicy and its composition with miners.

Sleeps go through a VirtualClock so the backoff schedule is asserted
exactly without the suite ever sleeping.
"""

import pytest

from repro.associations import apriori, eclat
from repro.core.exceptions import ValidationError
from repro.runtime import (
    Budget,
    BudgetExceeded,
    Checkpointer,
    FlakyFault,
    RetryPolicy,
    TransientFault,
    TriggerAfter,
    VirtualClock,
)


def _policy(clock, **kw):
    kw.setdefault("base_delay", 1.0)
    kw.setdefault("jitter", 0.0)
    return RetryPolicy(sleep=clock.advance, **kw)


class TestBackoffSchedule:
    def test_success_first_try_never_sleeps(self):
        clock = VirtualClock()
        assert _policy(clock).run(lambda: "ok") == "ok"
        assert clock() == 0.0

    def test_exponential_schedule(self):
        clock = VirtualClock()
        policy = _policy(clock, max_retries=3, factor=2.0)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 4:
                raise TransientFault("blip")
            return "ok"

        assert policy.run(flaky) == "ok"
        assert clock() == pytest.approx(1.0 + 2.0 + 4.0)
        assert [round(d) for _, d in policy.retries_] == [1, 2, 4]

    def test_max_delay_caps_backoff(self):
        clock = VirtualClock()
        policy = _policy(clock, max_retries=5, factor=10.0, max_delay=3.0)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 6:
                raise TransientFault("blip")
            return "ok"

        policy.run(flaky)
        assert max(d for _, d in policy.retries_) == pytest.approx(3.0)

    def test_jitter_is_seeded_and_deterministic(self):
        schedules = []
        for _ in range(2):
            clock = VirtualClock()
            policy = RetryPolicy(
                max_retries=3, base_delay=1.0, jitter=0.5,
                random_state=7, sleep=clock.advance,
            )
            calls = []

            def flaky():
                calls.append(1)
                if len(calls) < 4:
                    raise TransientFault("blip")

            policy.run(flaky)
            schedules.append([d for _, d in policy.retries_])
        assert schedules[0] == schedules[1]
        # Jitter only ever lengthens the delay, by at most the fraction.
        for base, actual in zip((1.0, 2.0, 4.0), schedules[0]):
            assert base <= actual <= base * 1.5

    def test_exhaustion_reraises_last_transient(self):
        clock = VirtualClock()
        policy = _policy(clock, max_retries=2)
        with pytest.raises(TransientFault, match="always"):
            policy.run(lambda: (_ for _ in ()).throw(TransientFault("always")))
        assert len(policy.retries_) == 2  # three calls, two retries

    def test_zero_retries_means_single_attempt(self):
        clock = VirtualClock()
        calls = []

        def flaky():
            calls.append(1)
            raise TransientFault("blip")

        with pytest.raises(TransientFault):
            _policy(clock, max_retries=0).run(flaky)
        assert len(calls) == 1
        assert clock() == 0.0

    def test_non_transient_error_propagates_immediately(self):
        clock = VirtualClock()
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            _policy(clock, max_retries=5).run(broken)
        assert len(calls) == 1

    def test_budget_exhaustion_is_never_retried(self):
        # Budget exhaustion is deterministic: retrying would just burn
        # the same budget again.
        clock = VirtualClock()
        calls = []

        def exhausted():
            calls.append(1)
            Budget(max_candidates=1).charge_candidates(2)

        with pytest.raises(BudgetExceeded):
            _policy(clock, max_retries=5).run(exhausted)
        assert len(calls) == 1

    def test_custom_retry_on(self):
        clock = VirtualClock()
        policy = _policy(clock, max_retries=1, retry_on=(KeyError,))
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise KeyError("missing")
            return "ok"

        assert policy.run(flaky) == "ok"

    def test_on_retry_callback(self):
        clock = VirtualClock()
        seen = []
        policy = RetryPolicy(
            max_retries=2, base_delay=1.0, jitter=0.0, sleep=clock.advance,
            on_retry=lambda attempt, exc, pause: seen.append(
                (attempt, type(exc).__name__, pause)
            ),
        )
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientFault("blip")

        policy.run(flaky)
        assert seen == [(0, "TransientFault", 1.0), (1, "TransientFault", 2.0)]

    def test_args_passed_through(self):
        clock = VirtualClock()
        assert _policy(clock).run(lambda a, b=0: a + b, 2, b=3) == 5

    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValidationError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValidationError):
            RetryPolicy(jitter=-0.1)


class TestMinerComposition:
    """A flaky environment (transient faults at budget checkpoints) is
    survived by wrapping the mining call in a RetryPolicy."""

    def test_flaky_fault_then_success(self, small_db):
        expected = apriori(small_db, 0.3)
        budget = Budget(check_interval=1).install_fault(FlakyFault(2))
        clock = VirtualClock()
        policy = RetryPolicy(
            max_retries=3, base_delay=1.0, jitter=0.0, sleep=clock.advance
        )
        result = policy.run(lambda: apriori(small_db, 0.3, budget=budget))
        assert result.supports == expected.supports
        assert len(policy.retries_) == 2
        assert clock() == pytest.approx(1.0 + 2.0)

    def test_flaky_fault_exhausts_retries(self, small_db):
        budget = Budget(check_interval=1).install_fault(FlakyFault(100))
        policy = RetryPolicy(
            max_retries=2, base_delay=0.0, jitter=0.0,
            sleep=VirtualClock().advance,
        )
        with pytest.raises(TransientFault):
            policy.run(lambda: apriori(small_db, 0.3, budget=budget))

    def test_retry_composes_with_checkpointing(self, small_db, tmp_path):
        # The retried attempt resumes from the checkpoint the failing
        # attempt flushed, and the final result is still exact.
        expected = eclat(small_db, 0.3)
        budget = Budget(check_interval=1).install_fault(FlakyFault(3))
        ckpt = Checkpointer(tmp_path, resume=True)
        policy = RetryPolicy(
            max_retries=5, base_delay=0.0, jitter=0.0,
            sleep=VirtualClock().advance,
        )
        result = policy.run(
            lambda: eclat(small_db, 0.3, budget=budget, checkpoint=ckpt)
        )
        assert result.supports == expected.supports

    def test_injected_budget_fault_not_retried(self, small_db):
        budget = Budget(check_interval=1).install_fault(TriggerAfter(1))
        policy = RetryPolicy(
            max_retries=5, base_delay=0.0, sleep=VirtualClock().advance
        )
        with pytest.raises(BudgetExceeded):
            policy.run(lambda: apriori(small_db, 0.3, budget=budget))
        assert policy.retries_ == []
