"""WorkerPool lifecycle: reuse, crash recovery, cancellation, leaks.

The equivalence sweep proves the pool computes the right answers; this
file pins the *process* behaviour that makes the persistent pool safe
to keep alive across parallel regions — the same workers serve
successive maps, a crashed worker is classified and replaced exactly
once, cancellation leaves the pool reusable, and neither file
descriptors nor shared-memory segments outlive their owners.
"""

import os
import threading
import time

import pytest

from repro.runtime import (
    CancellationToken,
    ExecutionContext,
    OperationCancelled,
    PoolGremlin,
    WorkerCrashed,
    WorkerPool,
    clear_pool_gremlin,
    close_shared_pools,
    effective_n_jobs,
    install_pool_gremlin,
    shared_pool,
)
from repro.runtime.parallel import SMALL_TASK_SECONDS
from repro.runtime.transport import SEGMENT_PREFIX, SharedRegion, segment_dir


def _pid_task(task, _shard_ctx):
    return os.getpid()


def _echo_task(task, _shard_ctx):
    return task


def _slow_pid_task(task, _shard_ctx):
    # Slower than SMALL_TASK_SECONDS so a probe map does not gate the
    # remaining tasks back to the parent.
    time.sleep(SMALL_TASK_SECONDS * 3)
    return os.getpid()


def _big_task(nbytes, _shard_ctx):
    return b"x" * nbytes


def _sleep_task(seconds, _shard_ctx):
    time.sleep(seconds)
    return seconds


def _raise_or_sleep_task(task, _shard_ctx):
    action, seconds = task
    if action == "raise":
        raise ValueError("boom")
    time.sleep(seconds)
    return task


@pytest.fixture
def pool():
    with WorkerPool(n_jobs=2) as p:
        yield p


# ----------------------------------------------------------------------
# Worker reuse across parallel regions
# ----------------------------------------------------------------------
class TestWorkerReuse:
    def test_same_workers_serve_successive_maps(self, pool):
        first = set(pool.map(_pid_task, [0, 1, 2, 3]))
        second = set(pool.map(_pid_task, [0, 1, 2, 3]))
        assert first == second
        assert first == set(pool.worker_pids)
        assert os.getpid() not in first

    def test_map_after_close_is_rejected(self):
        pool = WorkerPool(n_jobs=2)
        pool.map(_pid_task, [0, 1])
        pool.close()
        from repro.core.exceptions import ValidationError

        with pytest.raises(ValidationError, match="closed"):
            pool.map(_pid_task, [0, 1])

    def test_close_reaps_workers_and_is_idempotent(self):
        pool = WorkerPool(n_jobs=2)
        pids = set(pool.map(_pid_task, [0, 1, 2, 3]))
        pool.close()
        pool.close()
        assert pool.worker_pids == []
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if not any(_alive(pid) for pid in pids):
                break
            time.sleep(0.02)
        assert not any(_alive(pid) for pid in pids)


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - different uid
        return True
    return True


# ----------------------------------------------------------------------
# Crash classification and respawn
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_gremlin_crash_is_classified_then_respawned(self, pool):
        install_pool_gremlin(PoolGremlin(kill_at_task=1, exit_code=9))
        try:
            # The workers fork at the first dispatch, inherit the armed
            # gremlin, and die on their first task without a result.
            with pytest.raises(WorkerCrashed) as info:
                pool.map(_sleep_task, [0.05, 0.05])
            assert info.value.exit_code == 9
            assert info.value.task_index is not None
        finally:
            clear_pool_gremlin()
        # The next dispatch replaces the dead slots with fresh workers
        # (forked after the clear, so unarmed) and the map succeeds.
        assert pool.map(_echo_task, [10, 11, 12, 13]) == [10, 11, 12, 13]
        assert len(pool.worker_pids) == 2

    def test_idle_workers_survive_a_failed_map(self, pool):
        # A shard error terminates only the *busy* workers: the worker
        # that already delivered (here, the raising one) is idle at
        # fan-out time and stays warm for the next map.
        with pytest.raises(ValueError, match="boom"):
            pool.map(_raise_or_sleep_task, [("raise", None), ("sleep", 5.0)])
        survivors = set(pool.worker_pids)
        assert len(survivors) == 1
        assert pool.map(_echo_task, [10, 11, 12, 13]) == [10, 11, 12, 13]
        assert survivors <= set(pool.worker_pids)


# ----------------------------------------------------------------------
# Cancellation leaves the pool reusable
# ----------------------------------------------------------------------
class TestCancellation:
    def test_cancelled_map_drains_then_pool_reusable(self, pool):
        token = CancellationToken()
        ctx = ExecutionContext(cancel_token=token)
        timer = threading.Timer(0.2, token.cancel)
        timer.start()
        try:
            with pytest.raises(OperationCancelled):
                pool.map(_sleep_task, [30.0, 30.0, 30.0], ctx=ctx)
        finally:
            timer.cancel()
        # The busy workers were SIGTERMed; the next map refills the
        # slots and completes.
        assert pool.map(_echo_task, [1, 2, 3, 4]) == [1, 2, 3, 4]
        assert len(pool.worker_pids) == 2


# ----------------------------------------------------------------------
# Leak checks: file descriptors and shared segments
# ----------------------------------------------------------------------
def _open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


class TestLeaks:
    def test_fd_count_returns_to_baseline_after_close(self):
        baseline = _open_fds()
        for _ in range(3):
            with WorkerPool(n_jobs=2) as pool:
                pool.map(_echo_task, [0, 1, 2, 3])
        assert _open_fds() <= baseline

    def test_region_close_unlinks_segments(self):
        region = SharedRegion()
        handle = region.put_object({"payload": list(range(64))})
        assert os.path.exists(handle.path)
        region.close()
        assert not os.path.exists(handle.path)

    def test_pool_and_region_leave_no_transport_litter(self):
        seg_root = segment_dir()
        before = {
            name for name in os.listdir(seg_root)
            if name.startswith(SEGMENT_PREFIX)
        }
        with WorkerPool(n_jobs=2) as pool, SharedRegion() as region:
            handle = region.put_object(list(range(100)))
            pool.map(_echo_task, [handle, handle])
        after = {
            name for name in os.listdir(seg_root)
            if name.startswith(SEGMENT_PREFIX)
        }
        assert after <= before


# ----------------------------------------------------------------------
# Oversized results fall back to the file transport
# ----------------------------------------------------------------------
class TestResultTransport:
    def test_oversized_result_roundtrips_via_file(self):
        with WorkerPool(n_jobs=2, inline_result_limit=64) as pool:
            out = pool.map(_big_task, [1024, 2048])
        assert out == [b"x" * 1024, b"x" * 2048]

    def test_small_results_stay_inline(self, pool):
        assert pool.map(_big_task, [4, 8]) == [b"x" * 4, b"x" * 8]


# ----------------------------------------------------------------------
# Process-global shared pools
# ----------------------------------------------------------------------
class TestSharedPool:
    def test_same_worker_count_reuses_the_instance(self):
        try:
            assert shared_pool(2) is shared_pool(2)
            assert shared_pool(2) is not shared_pool(3)
        finally:
            close_shared_pools()

    def test_closed_shared_pool_is_replaced(self):
        try:
            first = shared_pool(2)
            first.close()
            second = shared_pool(2)
            assert second is not first
            assert second.map(_echo_task, [1, 2]) == [1, 2]
        finally:
            close_shared_pools()


# ----------------------------------------------------------------------
# Small-task gating
# ----------------------------------------------------------------------
class TestSmallTaskGating:
    def test_effective_n_jobs_gates_fast_tasks(self):
        assert effective_n_jobs(4, task_seconds=SMALL_TASK_SECONDS / 10) == 1
        assert effective_n_jobs(4, task_seconds=SMALL_TASK_SECONDS * 10) == 4
        # Serial requests stay serial whatever the measurement says.
        assert effective_n_jobs(1, task_seconds=100.0) == 1

    def test_probe_map_runs_fast_tasks_without_forking(self):
        with WorkerPool(n_jobs=2) as pool:
            out = pool.map(_echo_task, [1, 2, 3, 4], probe=True)
            assert out == [1, 2, 3, 4]
            assert pool.worker_pids == []

    def test_probe_map_still_forks_slow_tasks(self):
        with WorkerPool(n_jobs=2) as pool:
            pids = pool.map(_slow_pid_task, [0, 1, 2, 3], probe=True)
            assert pids[0] == os.getpid()  # the probe runs inline
            assert set(pids[1:]) == set(pool.worker_pids)
