"""Parallel-equivalence sweep: ``n_jobs=k`` is byte-identical to serial.

The WorkerPool determinism contract — shard results merged in task
order, canonicalized candidate order, per-shard sub-budgets charged
back to the parent — means every parallel entry point must produce
output indistinguishable from the serial loop, down to pickle bytes.
This file sweeps ``n_jobs in {1, 2, 4}`` across every shard point
(partition, apriori with each counting backend, dhp, gsp, clara,
kmeans, crossval), then covers the pool mechanics: budget exhaustion
raised at the parent, cancellation fan-out mid-shard, crash
classification, and shard-bound geometry.
"""

import os
import pickle
import signal
import threading
import time

import pytest

from repro.associations import apriori, dhp, partition_miner
from repro.associations.bitmap import BitmapDatabase
from repro.classification import NaiveBayes
from repro.clustering import CLARA, KMeans
from repro.core.exceptions import ValidationError
from repro.datasets import (
    agrawal,
    gaussian_blobs,
    quest_basket,
    quest_sequences,
)
from repro.evaluation import cross_val_score
from repro.runtime import (
    Budget,
    CancellationToken,
    ExecutionContext,
    OperationCancelled,
    SpaceBudgetExceeded,
    WorkerCrashed,
    WorkerPool,
    effective_n_jobs,
    resolve_n_jobs,
    shard_bounds,
)
from repro.sequences import gsp

JOBS = [1, 2, 4]


def _fingerprint(itemsets) -> bytes:
    return pickle.dumps(sorted(itemsets.supports.items()))


@pytest.fixture(scope="module")
def basket():
    return quest_basket(250, random_state=42)


# ----------------------------------------------------------------------
# Equivalence sweep
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_jobs", JOBS)
def test_partition_equivalence(basket, n_jobs):
    serial = partition_miner(basket, 0.02, n_partitions=4)
    sharded = partition_miner(basket, 0.02, n_partitions=4, n_jobs=n_jobs)
    assert _fingerprint(sharded) == _fingerprint(serial)


@pytest.mark.parametrize("n_jobs", JOBS)
@pytest.mark.parametrize("store", ["hash_tree", "dict", "bitmap"])
def test_apriori_equivalence(basket, store, n_jobs):
    serial = apriori(basket, 0.02)
    other = apriori(basket, 0.02, candidate_store=store, n_jobs=n_jobs)
    assert _fingerprint(other) == _fingerprint(serial)


@pytest.mark.parametrize("n_jobs", JOBS)
def test_dhp_equivalence(basket, n_jobs):
    serial = dhp(basket, 0.02)
    sharded = dhp(basket, 0.02, n_jobs=n_jobs)
    assert _fingerprint(sharded) == _fingerprint(serial)


@pytest.mark.parametrize("n_jobs", JOBS)
def test_gsp_equivalence(n_jobs):
    db = quest_sequences(60, random_state=7)
    serial = gsp(db, 0.05)
    sharded = gsp(db, 0.05, n_jobs=n_jobs)
    assert pickle.dumps(sorted(sharded.supports.items())) == \
        pickle.dumps(sorted(serial.supports.items()))


@pytest.mark.parametrize("n_jobs", JOBS)
def test_clara_equivalence(n_jobs):
    X, _ = gaussian_blobs(240, centers=4, random_state=5)
    serial = CLARA(4, random_state=11).fit(X)
    sharded = CLARA(4, random_state=11, n_jobs=n_jobs).fit(X)
    assert sharded.cost_ == serial.cost_
    assert sharded.medoid_indices_.tobytes() == \
        serial.medoid_indices_.tobytes()
    assert sharded.labels_.tobytes() == serial.labels_.tobytes()


@pytest.mark.parametrize("n_jobs", JOBS)
def test_kmeans_equivalence(n_jobs):
    X, _ = gaussian_blobs(300, centers=5, random_state=9)
    serial = KMeans(5, n_init=6, random_state=3).fit(X)
    sharded = KMeans(5, n_init=6, random_state=3, n_jobs=n_jobs).fit(X)
    assert sharded.inertia_ == serial.inertia_
    assert sharded.cluster_centers_.tobytes() == \
        serial.cluster_centers_.tobytes()
    assert sharded.labels_.tobytes() == serial.labels_.tobytes()


@pytest.mark.parametrize("n_jobs", JOBS)
def test_crossval_equivalence(n_jobs):
    table = agrawal(250, function=1, noise=0.05, random_state=13)
    serial = cross_val_score(NaiveBayes, table, "group", n_folds=5,
                             random_state=0)
    sharded = cross_val_score(NaiveBayes, table, "group", n_folds=5,
                              random_state=0, n_jobs=n_jobs)
    assert sharded == serial


def test_bitmap_counts_match_reference(basket):
    bitmap = BitmapDatabase(basket)
    candidates = [(1, 2), (3,), (0, 1, 2)]
    expected = [
        sum(1 for txn in basket if set(cand) <= set(txn))
        for cand in candidates
    ]
    assert bitmap.count(candidates) == expected


# ----------------------------------------------------------------------
# Budget exhaustion across workers
# ----------------------------------------------------------------------
def _charge_some(task, ctx):
    ctx.budget.charge_candidates(task)
    return task


def test_pool_charges_child_usage_to_parent_budget():
    budget = Budget(max_candidates=1000)
    ctx = ExecutionContext(budget=budget)
    pool = WorkerPool(n_jobs=2)
    assert pool.map(_charge_some, [10, 20, 30], ctx=ctx) == [10, 20, 30]
    assert budget.candidates_used == 60


def test_pool_budget_exhaustion_raises_in_parent():
    budget = Budget(max_candidates=25)
    ctx = ExecutionContext(budget=budget)
    pool = WorkerPool(n_jobs=2)
    with pytest.raises(SpaceBudgetExceeded):
        pool.map(_charge_some, [10, 10, 10, 10], ctx=ctx)


def test_apriori_parallel_budget_truncates_like_serial(basket):
    def run(n_jobs):
        budget = Budget(max_candidates=40)
        ctx = ExecutionContext(budget=budget)
        return apriori(basket, 0.02, ctx=ctx, on_exhausted="truncate",
                       n_jobs=n_jobs)

    serial, sharded = run(1), run(4)
    assert sharded.truncated and serial.truncated
    assert _fingerprint(sharded) == _fingerprint(serial)


# ----------------------------------------------------------------------
# Cancellation fan-out mid-shard
# ----------------------------------------------------------------------
def _sleep_task(seconds, ctx):
    time.sleep(seconds)
    return seconds


def test_pool_cancellation_terminates_children_quickly():
    token = CancellationToken()
    ctx = ExecutionContext(cancel_token=token)
    timer = threading.Timer(0.2, token.cancel)
    timer.start()
    pool = WorkerPool(n_jobs=2)
    started = time.monotonic()
    try:
        with pytest.raises(OperationCancelled):
            pool.map(_sleep_task, [30.0, 30.0], ctx=ctx)
    finally:
        timer.cancel()
    assert time.monotonic() - started < 10.0


def _crash_task(code, ctx):
    os._exit(code)


def test_pool_classifies_child_crash():
    # two tasks: a single task runs inline and os._exit would take the
    # test process down instead of a forked worker
    pool = WorkerPool(n_jobs=2)
    with pytest.raises(WorkerCrashed) as info:
        pool.map(_crash_task, [7, 7], ctx=None)
    assert info.value.exit_code == 7


def _kill_self(sig, ctx):
    os.kill(os.getpid(), sig)


def test_pool_classifies_child_signal():
    pool = WorkerPool(n_jobs=2)
    with pytest.raises(WorkerCrashed) as info:
        pool.map(_kill_self, [signal.SIGKILL, signal.SIGKILL], ctx=None)
    assert info.value.signal_number == signal.SIGKILL


def _raise_task(message, ctx):
    raise ValueError(message)


def test_pool_propagates_child_exception():
    pool = WorkerPool(n_jobs=2)
    with pytest.raises(ValueError, match="boom"):
        pool.map(_raise_task, ["boom", "boom"], ctx=None)


# ----------------------------------------------------------------------
# Geometry and argument validation
# ----------------------------------------------------------------------
def test_shard_bounds_cover_range_without_overlap():
    for n, shards in [(10, 4), (3, 8), (1, 1), (100, 7)]:
        bounds = shard_bounds(n, shards)
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        assert all(b[1] == c[0] for b, c in zip(bounds, bounds[1:]))
        sizes = [stop - start for start, stop in bounds]
        assert max(sizes) - min(sizes) <= 1
        assert all(size > 0 for size in sizes)
    assert shard_bounds(0, 4) == []


def test_effective_n_jobs_resolution():
    assert effective_n_jobs(None) == 1
    assert effective_n_jobs(1) == 1
    assert effective_n_jobs(3) == 3
    assert effective_n_jobs(-1) == len(os.sched_getaffinity(0))


def test_resolve_n_jobs_rejects_invalid():
    with pytest.raises(ValidationError, match="apriori"):
        resolve_n_jobs(0, "apriori")
    with pytest.raises(ValidationError):
        resolve_n_jobs(-2, "partition")
