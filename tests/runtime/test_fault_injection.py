"""Fault injection across every guarded algorithm family.

Each test proves three things about its family:

1. the hot loop genuinely polls its budget (a deterministic fault
   injected at a checkpoint surfaces, so the loop cannot hang);
2. exhaustion either raises :class:`BudgetExceeded` (``raise`` mode) or
   yields a usable partial result flagged truncated;
3. cancellation always propagates — it is never swallowed by the
   graceful-degradation paths.

Deadlines are driven by :class:`VirtualClock` + :class:`SlowPass`, so
no test sleeps; one wall-clock test per kind of real workload keeps the
simulated story honest.
"""

import time
import warnings

import numpy as np
import pytest

from repro.associations.apriori import apriori
from repro.associations.apriori_tid import apriori_tid
from repro.associations.dhp import dhp
from repro.associations.fp_growth import fp_growth
from repro.classification import C45, CART, SLIQ
from repro.clustering import CLARANS, DBSCAN, PAM, KMeans
from repro.core.exceptions import ConvergenceWarning
from repro.datasets import gaussian_blobs, quest_basket
from repro.runtime import (
    Budget,
    BudgetExceeded,
    CancellationToken,
    OperationCancelled,
    SlowPass,
    TimeBudgetExceeded,
    TriggerAfter,
    VirtualClock,
)
from repro.sequences.gsp import gsp

LEVELWISE_MINERS = {
    "apriori": apriori,
    "apriori_tid": apriori_tid,
    "dhp": dhp,
}


def _fault_budget(n_checks: int = 2) -> Budget:
    """Budget that injects a failure on the n-th checkpoint."""
    return Budget(check_interval=1).install_fault(TriggerAfter(n_checks))


class TestLevelwiseMiners:
    @pytest.mark.parametrize("name", sorted(LEVELWISE_MINERS))
    def test_injected_fault_raises_in_raise_mode(self, medium_db, name):
        miner = LEVELWISE_MINERS[name]
        with pytest.raises(BudgetExceeded):
            miner(medium_db, 0.05, budget=_fault_budget(), on_exhausted="raise")

    @pytest.mark.parametrize("name", sorted(LEVELWISE_MINERS))
    def test_injected_fault_truncates(self, medium_db, name):
        miner = LEVELWISE_MINERS[name]
        result = miner(
            medium_db, 0.05, budget=_fault_budget(), on_exhausted="truncate"
        )
        assert result.truncated
        assert result.truncation_reason is not None
        full = miner(medium_db, 0.05)
        assert not full.truncated
        # Never fabricate: every reported itemset is genuinely frequent.
        assert set(result.supports) <= set(full.supports)

    @pytest.mark.parametrize("name", sorted(LEVELWISE_MINERS))
    def test_virtual_deadline(self, medium_db, name):
        miner = LEVELWISE_MINERS[name]
        clock = VirtualClock()
        budget = Budget(
            time_limit=1.0, clock=clock, check_interval=1
        ).install_fault(SlowPass(clock, delay=0.3))
        with pytest.raises(TimeBudgetExceeded):
            miner(medium_db, 0.05, budget=budget, on_exhausted="raise")

    @pytest.mark.parametrize("name", sorted(LEVELWISE_MINERS))
    def test_cancellation_not_swallowed_by_truncate(self, medium_db, name):
        miner = LEVELWISE_MINERS[name]
        token = CancellationToken()
        token.cancel("stop now")
        budget = Budget(cancel_token=token, check_interval=1)
        with pytest.raises(OperationCancelled):
            miner(medium_db, 0.05, budget=budget, on_exhausted="truncate")

    def test_real_deadline_finishes_promptly(self):
        # A dense low-support workload that would otherwise mine for a
        # long time must come back within a small multiple of the
        # deadline (the 2x-deadline liveness bound, with slack for slow
        # machines).
        db = quest_basket(400, random_state=42)
        deadline = 0.1
        start = time.monotonic()
        result = apriori(
            db, 0.001, budget=Budget(time_limit=deadline),
            on_exhausted="truncate",
        )
        elapsed = time.monotonic() - start
        assert result.truncated
        assert elapsed < 10 * deadline + 1.0


class TestFPGrowth:
    def test_injected_fault_truncates(self, medium_db):
        result = fp_growth(
            medium_db, 0.05, budget=_fault_budget(3), on_exhausted="truncate"
        )
        assert result.truncated
        full = fp_growth(medium_db, 0.05)
        assert set(result.supports) <= set(full.supports)

    def test_injected_fault_raises(self, medium_db):
        with pytest.raises(BudgetExceeded):
            fp_growth(medium_db, 0.05, budget=_fault_budget(3))

    def test_cancellation_propagates(self, medium_db):
        token = CancellationToken()
        token.cancel()
        budget = Budget(cancel_token=token, check_interval=1)
        with pytest.raises(OperationCancelled):
            fp_growth(medium_db, 0.05, budget=budget, on_exhausted="truncate")


class TestGSP:
    def test_injected_fault_truncates(self, medium_seq_db):
        result = gsp(
            medium_seq_db, 0.1, budget=_fault_budget(2), on_exhausted="truncate"
        )
        assert result.truncated
        full = gsp(medium_seq_db, 0.1)
        assert set(result.supports) <= set(full.supports)

    def test_injected_fault_raises(self, medium_seq_db):
        with pytest.raises(BudgetExceeded):
            gsp(medium_seq_db, 0.1, budget=_fault_budget(2))


class TestTreeGrowers:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda b: C45(prune=False, budget=b),
            lambda b: CART(budget=b),
            lambda b: SLIQ(budget=b),
        ],
        ids=["c45", "cart", "sliq"],
    )
    def test_node_budget_truncates_but_model_works(self, f2_train, factory):
        model = factory(Budget(max_nodes=2))
        model.fit(f2_train, "group")
        assert model.truncated_
        assert model.truncation_reason_ is not None
        predictions = model.predict(f2_train)
        assert len(predictions) == f2_train.n_rows
        # Truncated tree is no deeper than the unbudgeted one.
        full = factory(None)
        full.fit(f2_train, "group")
        assert not full.truncated_
        assert model.n_nodes() <= full.n_nodes()

    def test_c45_cancellation_propagates(self, f2_train):
        token = CancellationToken()
        token.cancel()
        model = C45(
            prune=False, budget=Budget(cancel_token=token, check_interval=1)
        )
        with pytest.raises(OperationCancelled):
            model.fit(f2_train, "group")


class TestClusterers:
    def test_kmeans_expansion_budget(self, blobs4):
        X, _ = blobs4
        model = KMeans(4, random_state=0, budget=Budget(max_expansions=2))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            model.fit(X)
        assert model.truncated_
        assert model.cluster_centers_.shape == (4, 2)
        assert len(model.labels_) == len(X)

    def test_pam_expansion_budget(self, blobs4):
        X, _ = blobs4
        model = PAM(4, budget=Budget(max_expansions=1)).fit(X)
        assert model.truncated_
        assert len(model.medoid_indices_) == 4

    def test_clarans_expansion_budget(self, blobs4):
        X, _ = blobs4
        model = CLARANS(
            4, random_state=0, budget=Budget(max_expansions=10)
        ).fit(X)
        assert model.truncated_
        assert len(model.medoid_indices_) == 4

    def test_dbscan_expansion_budget(self, blobs4):
        X, _ = blobs4
        model = DBSCAN(eps=1.0, min_samples=4, budget=Budget(max_expansions=5))
        with pytest.warns(ConvergenceWarning):
            model.fit(X)
        assert model.truncated_
        # Unreached points stay noise; discovered labels are contiguous.
        assert set(model.labels_) <= set(range(-1, model.n_clusters_))

    def test_kmeans_virtual_deadline(self, blobs4):
        X, _ = blobs4
        clock = VirtualClock()
        budget = Budget(
            time_limit=1.0, clock=clock, check_interval=1
        ).install_fault(SlowPass(clock, delay=0.6))
        model = KMeans(4, random_state=0, budget=budget)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            model.fit(X)
        assert model.truncated_
        assert "TimeBudgetExceeded" in model.truncation_reason_

    def test_dbscan_cancellation_propagates(self, blobs4):
        X, _ = blobs4
        token = CancellationToken()
        token.cancel()
        budget = Budget(cancel_token=token, check_interval=1)
        with pytest.raises(OperationCancelled):
            DBSCAN(eps=1.0, min_samples=4, budget=budget).fit(X)
