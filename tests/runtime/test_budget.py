"""Unit tests for the Budget / CancellationToken / fault primitives."""

import pytest

from repro.core.exceptions import ReproError, ValidationError
from repro.runtime import (
    Budget,
    BudgetExceeded,
    CancellationToken,
    IterationBudgetExceeded,
    OperationCancelled,
    ProgressEvent,
    SlowPass,
    SpaceBudgetExceeded,
    TimeBudgetExceeded,
    TriggerAfter,
    VirtualClock,
)
from repro.runtime.faults import InjectedFault


class TestCounterCaps:
    def test_exactly_limit_charges_allowed(self):
        budget = Budget(max_candidates=3)
        for _ in range(3):
            budget.charge_candidates()
        with pytest.raises(SpaceBudgetExceeded):
            budget.charge_candidates()

    def test_bulk_charge_crossing_the_cap(self):
        budget = Budget(max_candidates=10)
        with pytest.raises(SpaceBudgetExceeded) as excinfo:
            budget.charge_candidates(11)
        assert excinfo.value.limit == 10
        assert excinfo.value.used == 11
        assert excinfo.value.resource == "candidates"

    def test_resource_to_exception_mapping(self):
        with pytest.raises(SpaceBudgetExceeded):
            Budget(max_candidates=1).charge_candidates(2)
        with pytest.raises(SpaceBudgetExceeded):
            Budget(max_nodes=1).charge_nodes(2)
        with pytest.raises(IterationBudgetExceeded):
            Budget(max_expansions=1).charge_expansions(2)

    def test_counters_are_independent(self):
        budget = Budget(max_nodes=1)
        budget.charge_candidates(100)
        budget.charge_expansions(100)
        budget.charge_nodes()  # exactly at the cap
        with pytest.raises(SpaceBudgetExceeded):
            budget.charge_nodes()

    def test_unlimited_budget_never_raises(self):
        budget = Budget()
        for _ in range(1000):
            budget.charge_candidates()
            budget.charge_nodes()
            budget.charge_expansions()
            budget.check()

    def test_exceptions_are_repro_errors(self):
        for cls in (TimeBudgetExceeded, SpaceBudgetExceeded,
                    IterationBudgetExceeded):
            assert issubclass(cls, BudgetExceeded)
            assert issubclass(cls, ReproError)
            assert issubclass(cls, RuntimeError)

    def test_validation(self):
        with pytest.raises(ValidationError):
            Budget(max_candidates=0)
        with pytest.raises(ValidationError):
            Budget(time_limit=-1.0)
        with pytest.raises(ValidationError):
            Budget(check_interval=0)


class TestDeadline:
    def test_virtual_clock_deadline(self):
        clock = VirtualClock()
        budget = Budget(time_limit=1.0, clock=clock)
        budget.check()  # starts the clock at t=0
        clock.advance(0.5)
        budget.check()  # within the limit
        clock.advance(0.6)
        with pytest.raises(TimeBudgetExceeded) as excinfo:
            budget.check(phase="scan")
        assert excinfo.value.resource == "time"
        assert "scan" in str(excinfo.value)

    def test_clock_starts_lazily(self):
        clock = VirtualClock()
        clock.advance(100.0)  # time passing before the run starts
        budget = Budget(time_limit=1.0, clock=clock)
        assert budget.elapsed() == 0.0
        budget.check()  # stamps t=100 as the start; no raise
        clock.advance(0.5)
        assert budget.remaining_time() == pytest.approx(0.5)

    def test_periodic_check_via_charges(self):
        clock = VirtualClock()
        budget = Budget(time_limit=1.0, clock=clock, check_interval=4)
        budget.check()
        clock.advance(2.0)  # already past the deadline
        budget.charge_candidates()  # charges 1..3 skip the full check
        budget.charge_candidates()
        with pytest.raises(TimeBudgetExceeded):
            for _ in range(10):
                budget.charge_candidates()


class TestCancellation:
    def test_cancel_fires_at_checkpoint(self):
        token = CancellationToken()
        budget = Budget(cancel_token=token)
        budget.check()
        token.cancel("user hit ctrl-c")
        with pytest.raises(OperationCancelled) as excinfo:
            budget.check()
        assert excinfo.value.reason == "user hit ctrl-c"

    def test_cancellation_is_not_budget_exhaustion(self):
        # Degradation layers catch BudgetExceeded; cancellation must
        # never be swallowed by them.
        assert not issubclass(OperationCancelled, BudgetExceeded)
        assert issubclass(OperationCancelled, ReproError)

    def test_cancel_is_idempotent_first_reason_wins(self):
        token = CancellationToken()
        token.cancel("first")
        token.cancel("second")
        assert token.reason == "first"
        with pytest.raises(OperationCancelled):
            token.raise_if_cancelled()


class TestProgress:
    def test_progress_events_delivered(self):
        events = []
        clock = VirtualClock()
        budget = Budget(on_progress=events.append, clock=clock)
        budget.progress("pass-1", n_candidates=10)
        clock.advance(2.0)
        budget.progress("pass-2", n_candidates=3)
        assert [e.phase for e in events] == ["pass-1", "pass-2"]
        assert events[0].info == {"n_candidates": 10}
        assert events[1].elapsed == pytest.approx(2.0)
        assert isinstance(events[0], ProgressEvent)

    def test_no_callback_is_silent(self):
        Budget().progress("pass-1", anything=1)  # must not raise


class TestFaults:
    def test_trigger_after_fires_on_nth_check(self):
        budget = Budget().install_fault(TriggerAfter(3))
        budget.check()
        budget.check()
        with pytest.raises(InjectedFault):
            budget.check()

    def test_injected_fault_is_budget_exceeded(self):
        assert issubclass(InjectedFault, IterationBudgetExceeded)

    def test_trigger_after_fires_once(self):
        fault = TriggerAfter(1)
        budget = Budget().install_fault(fault)
        with pytest.raises(InjectedFault):
            budget.check()
        assert fault.fired
        budget.check()  # second check passes: the fault stays spent

    def test_custom_exception_factory(self):
        budget = Budget().install_fault(
            TriggerAfter(1, exc_factory=lambda: OperationCancelled("boom"))
        )
        with pytest.raises(OperationCancelled):
            budget.check()

    def test_slow_pass_drives_deadline(self):
        clock = VirtualClock()
        budget = Budget(time_limit=1.0, clock=clock).install_fault(
            SlowPass(clock, delay=0.4)
        )
        budget.check()  # t=0.4
        budget.check()  # t=0.8
        with pytest.raises(TimeBudgetExceeded):
            budget.check()  # t=1.2 > 1.0
