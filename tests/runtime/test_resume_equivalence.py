"""Kill-and-resume equivalence sweep.

The checkpoint contract: a run killed at an arbitrary budget checkpoint
and resumed from its newest snapshot returns results identical to an
uninterrupted run.  The sweep proves it empirically — for every
snapshottable algorithm it counts the budget checkpoints of a clean run,
then kills the run at (a spread of) every reachable checkpoint with a
deterministic injected fault, resumes from disk, and compares exactly.

Miners are killed through their ``on_exhausted="raise"`` path with the
default injected fault (a ``BudgetExceeded`` subclass).  Clusterers
absorb ``BudgetExceeded`` into graceful truncation, so they are killed
with an injected ``OperationCancelled`` — the one exception the
degradation layer is required to let through.
"""

import numpy as np
import pytest

from repro.associations import apriori, apriori_tid, dhp, eclat, partition_miner
from repro.clustering import CLARANS, KMeans, PAM
from repro.datasets import gaussian_blobs
from repro.runtime import (
    Budget,
    BudgetExceeded,
    CheckpointMismatch,
    Checkpointer,
    OperationCancelled,
    TriggerAfter,
)
from repro.sequences import gsp

MAX_KILL_POINTS = 20


def _kill_points(n_checks):
    """Every checkpoint when few, an even spread (ends included) when many."""
    if n_checks <= MAX_KILL_POINTS:
        return list(range(1, n_checks + 1))
    picks = np.linspace(1, n_checks, MAX_KILL_POINTS)
    return sorted({int(round(p)) for p in picks})


def _sweep_miner(run, tmp_path, expected_supports):
    """Kill ``run`` at every (sampled) checkpoint, resume, compare."""
    counting = Budget(check_interval=1)
    assert run(budget=counting, checkpoint=None).supports == expected_supports
    assert counting.n_checks > 0, "miner never polled its budget"

    for kp in _kill_points(counting.n_checks):
        ckdir = tmp_path / f"kill-{kp}"
        budget = Budget(check_interval=1).install_fault(TriggerAfter(kp))
        with pytest.raises(BudgetExceeded):
            run(budget=budget, checkpoint=Checkpointer(ckdir))
        resumed = run(
            budget=None, checkpoint=Checkpointer(ckdir, resume=True)
        )
        assert resumed.supports == expected_supports, f"kill point {kp}"
        assert not resumed.truncated


class TestMinerResume:
    def test_apriori(self, small_db, tmp_path):
        expected = apriori(small_db, 0.3)

        def run(budget, checkpoint):
            return apriori(small_db, 0.3, budget=budget, checkpoint=checkpoint)

        _sweep_miner(run, tmp_path, expected.supports)

    def test_apriori_tid(self, small_db, tmp_path):
        expected = apriori_tid(small_db, 0.3)

        def run(budget, checkpoint):
            return apriori_tid(
                small_db, 0.3, budget=budget, checkpoint=checkpoint
            )

        _sweep_miner(run, tmp_path, expected.supports)

    def test_dhp(self, small_db, tmp_path):
        expected = dhp(small_db, 0.3)

        def run(budget, checkpoint):
            return dhp(small_db, 0.3, budget=budget, checkpoint=checkpoint)

        _sweep_miner(run, tmp_path, expected.supports)

    def test_eclat(self, small_db, tmp_path):
        expected = eclat(small_db, 0.3)

        def run(budget, checkpoint):
            return eclat(small_db, 0.3, budget=budget, checkpoint=checkpoint)

        _sweep_miner(run, tmp_path, expected.supports)

    def test_partition(self, small_db, tmp_path):
        expected = partition_miner(small_db, 0.3, n_partitions=2)

        def run(budget, checkpoint):
            return partition_miner(
                small_db, 0.3, n_partitions=2,
                budget=budget, checkpoint=checkpoint,
            )

        _sweep_miner(run, tmp_path, expected.supports)

    def test_gsp(self, small_seq_db, tmp_path):
        expected = gsp(small_seq_db, 0.4)

        def run(budget, checkpoint):
            return gsp(
                small_seq_db, 0.4, budget=budget, checkpoint=checkpoint
            )

        _sweep_miner(run, tmp_path, expected.supports)

    def test_medium_workload_sampled_kills(self, medium_db, tmp_path):
        """A non-toy workload: checkpoints number in the hundreds, so
        kill points are sampled — including the very first and last."""
        expected = apriori(medium_db, 0.05)

        def run(budget, checkpoint):
            return apriori(
                medium_db, 0.05, budget=budget, checkpoint=checkpoint
            )

        _sweep_miner(run, tmp_path, expected.supports)


def _cancel_after(n):
    return Budget(check_interval=1).install_fault(
        TriggerAfter(n, exc_factory=lambda: OperationCancelled("killed"))
    )


def _sweep_clusterer(make_model, fit, compare, X, tmp_path):
    clean = fit(make_model(budget=None, checkpoint=None), X)
    counting = Budget(check_interval=1)
    compare(fit(make_model(budget=counting, checkpoint=None), X), clean)
    assert counting.n_checks > 0, "clusterer never polled its budget"

    for kp in _kill_points(counting.n_checks):
        ckdir = tmp_path / f"kill-{kp}"
        model = make_model(
            budget=_cancel_after(kp), checkpoint=Checkpointer(ckdir)
        )
        with pytest.raises(OperationCancelled):
            fit(model, X)
        resumed = fit(
            make_model(
                budget=None, checkpoint=Checkpointer(ckdir, resume=True)
            ),
            X,
        )
        compare(resumed, clean)


class TestClustererResume:
    @pytest.fixture
    def X(self):
        data, _ = gaussian_blobs(
            90,
            centers=np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0]]),
            cluster_std=0.8,
            random_state=2,
        )
        return data

    def test_kmeans(self, X, tmp_path):
        def make_model(budget, checkpoint):
            return KMeans(
                3, n_init=2, max_iter=60, random_state=0,
                budget=budget, checkpoint=checkpoint,
            )

        def compare(model, reference):
            assert np.array_equal(
                model.cluster_centers_, reference.cluster_centers_
            )
            assert model.inertia_ == reference.inertia_
            assert model.n_iter_ == reference.n_iter_
            assert np.array_equal(model.labels_, reference.labels_)

        _sweep_clusterer(
            make_model, lambda m, X: m.fit(X), compare, X, tmp_path
        )

    @pytest.mark.filterwarnings(
        "ignore::repro.core.exceptions.ConvergenceWarning"
    )
    def test_kmeans_macqueen(self, X, tmp_path):
        def make_model(budget, checkpoint):
            return KMeans(
                3, algorithm="macqueen", n_init=2, max_iter=40,
                random_state=1, budget=budget, checkpoint=checkpoint,
            )

        def compare(model, reference):
            assert np.array_equal(
                model.cluster_centers_, reference.cluster_centers_
            )
            assert model.inertia_ == reference.inertia_

        _sweep_clusterer(
            make_model, lambda m, X: m.fit(X), compare, X, tmp_path
        )

    def test_pam(self, X, tmp_path):
        def make_model(budget, checkpoint):
            return PAM(3, budget=budget, checkpoint=checkpoint)

        def compare(model, reference):
            assert np.array_equal(
                model.medoid_indices_, reference.medoid_indices_
            )
            assert model.cost_ == reference.cost_
            assert np.array_equal(model.labels_, reference.labels_)

        _sweep_clusterer(
            make_model, lambda m, X: m.fit(X), compare, X, tmp_path
        )

    def test_clarans(self, X, tmp_path):
        def make_model(budget, checkpoint):
            return CLARANS(
                3, num_local=2, max_neighbor=25, random_state=4,
                budget=budget, checkpoint=checkpoint,
            )

        def compare(model, reference):
            assert np.array_equal(
                model.medoid_indices_, reference.medoid_indices_
            )
            assert model.cost_ == reference.cost_

        _sweep_clusterer(
            make_model, lambda m, X: m.fit(X), compare, X, tmp_path
        )


class TestResumeSafety:
    def test_key_mismatch_rejected(self, small_db, tmp_path):
        budget = Budget(check_interval=1).install_fault(TriggerAfter(3))
        with pytest.raises(BudgetExceeded):
            apriori(
                small_db, 0.3, budget=budget,
                checkpoint=Checkpointer(tmp_path),
            )
        # Same miner, different threshold: refuses to blend the runs.
        with pytest.raises(CheckpointMismatch):
            apriori(
                small_db, 0.2,
                checkpoint=Checkpointer(tmp_path, resume=True),
            )
        # A different miner entirely is rejected too.
        with pytest.raises(CheckpointMismatch):
            eclat(
                small_db, 0.3,
                checkpoint=Checkpointer(tmp_path, resume=True),
            )

    def test_corrupted_newest_snapshot_falls_back(self, small_db, tmp_path):
        """End-to-end corruption drill: kill late (several snapshots on
        disk), corrupt the newest, resume — results are still exact."""
        expected = apriori(small_db, 0.3)
        counting = Budget(check_interval=1)
        apriori(small_db, 0.3, budget=counting)
        kp = counting.n_checks  # kill at the last checkpoint
        budget = Budget(check_interval=1).install_fault(TriggerAfter(kp))
        with pytest.raises(BudgetExceeded):
            apriori(
                small_db, 0.3, budget=budget,
                checkpoint=Checkpointer(tmp_path),
            )
        ckpt = Checkpointer(tmp_path, resume=True)
        snapshots = ckpt.store.snapshots()
        assert len(snapshots) >= 2, "need a fallback snapshot for the drill"
        newest = snapshots[-1][1]
        raw = bytearray(newest.read_bytes())
        raw[-1] ^= 0xFF
        newest.write_bytes(bytes(raw))
        resumed = apriori(small_db, 0.3, checkpoint=ckpt)
        assert resumed.supports == expected.supports

    def test_resume_after_completion_is_exact(self, small_db, tmp_path):
        """Resuming a run that already finished replays the final state
        and returns the same answer (idempotent restarts)."""
        expected = apriori(small_db, 0.3, checkpoint=Checkpointer(tmp_path))
        resumed = apriori(
            small_db, 0.3, checkpoint=Checkpointer(tmp_path, resume=True)
        )
        assert resumed.supports == expected.supports

    def test_budget_exhaustion_leaves_final_checkpoint(self, medium_db, tmp_path):
        """The composition the ISSUE describes: a run that exhausts its
        budget writes a final checkpoint; a fresh run with a fresh budget
        resumes it and completes exactly."""
        expected = apriori(medium_db, 0.05)
        budget = Budget(max_candidates=40)
        with pytest.raises(BudgetExceeded):
            apriori(
                medium_db, 0.05, budget=budget,
                checkpoint=Checkpointer(tmp_path),
            )
        assert Checkpointer(tmp_path, resume=False).store.snapshots()
        resumed = apriori(
            medium_db, 0.05,
            budget=Budget(max_candidates=100_000),
            checkpoint=Checkpointer(tmp_path, resume=True),
        )
        assert resumed.supports == expected.supports
