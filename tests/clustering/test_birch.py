"""Unit tests for BIRCH and its CF arithmetic."""

import numpy as np
import pytest

from repro.clustering import CF, Birch
from repro.core import ValidationError
from repro.datasets import gaussian_grid
from repro.evaluation import adjusted_rand_index


class TestCF:
    def test_of_point(self):
        cf = CF.of_point(np.array([1.0, 2.0]))
        assert cf.n == 1
        assert np.allclose(cf.centroid, [1.0, 2.0])
        assert cf.radius == pytest.approx(0.0)

    def test_additivity(self):
        a = CF.of_point(np.array([0.0, 0.0]))
        b = CF.of_point(np.array([2.0, 0.0]))
        merged = a.merged(b)
        assert merged.n == 2
        assert np.allclose(merged.centroid, [1.0, 0.0])
        assert merged.radius == pytest.approx(1.0)

    def test_merge_matches_direct_statistics(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(50, 3))
        total = CF.of_point(points[0])
        for p in points[1:]:
            total.add(CF.of_point(p))
        assert np.allclose(total.centroid, points.mean(axis=0))
        rms = np.sqrt(((points - points.mean(axis=0)) ** 2).sum(axis=1).mean())
        assert total.radius == pytest.approx(rms)


class TestBirch:
    def test_recovers_grid(self):
        X, y = gaussian_grid(600, grid_side=2, random_state=0)
        model = Birch(threshold=1.0, n_clusters=4, random_state=0).fit(X)
        assert adjusted_rand_index(model.labels_, y) > 0.95

    def test_compression_reduces_representation(self):
        X, _ = gaussian_grid(2000, grid_side=3, random_state=1)
        model = Birch(threshold=0.8, n_clusters=9, random_state=0).fit(X)
        assert len(model.subcluster_centers_) < len(X) / 4

    def test_tight_threshold_keeps_more_subclusters(self):
        X, _ = gaussian_grid(800, grid_side=2, random_state=2)
        loose = Birch(threshold=2.0, n_clusters=4, random_state=0).fit(X)
        tight = Birch(threshold=0.2, n_clusters=4, random_state=0).fit(X)
        assert len(tight.subcluster_centers_) > len(loose.subcluster_centers_)

    def test_cf_mass_is_conserved(self):
        X, _ = gaussian_grid(500, grid_side=2, random_state=3)
        model = Birch(threshold=0.7, n_clusters=4, random_state=0).fit(X)
        total = sum(cf.n for cf in model._leaf_entries())
        assert total == pytest.approx(len(X))

    def test_agglomerative_global_phase(self):
        X, y = gaussian_grid(600, grid_side=2, random_state=4)
        model = Birch(
            threshold=1.0, n_clusters=4,
            global_clusterer="agglomerative", random_state=0,
        ).fit(X)
        assert adjusted_rand_index(model.labels_, y) > 0.9

    def test_predict_new_points(self):
        X, _ = gaussian_grid(400, grid_side=2, random_state=5)
        model = Birch(threshold=1.0, n_clusters=4, random_state=0).fit(X)
        assert (model.predict(X) == model.labels_).all()

    def test_small_branching_factor_still_correct(self):
        X, y = gaussian_grid(400, grid_side=2, random_state=6)
        model = Birch(
            threshold=1.0, branching_factor=3, n_clusters=4, random_state=0
        ).fit(X)
        assert adjusted_rand_index(model.labels_, y) > 0.9

    def test_identical_points(self):
        X = np.zeros((40, 2))
        model = Birch(threshold=0.5, n_clusters=2, random_state=0).fit(X)
        assert len(set(model.labels_.tolist())) <= 2

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            Birch(threshold=0.0)
        with pytest.raises(ValidationError):
            Birch(branching_factor=1)
        with pytest.raises(ValidationError):
            Birch(global_clusterer="dbscan")
