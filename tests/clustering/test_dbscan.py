"""Unit tests for DBSCAN."""

import numpy as np
import pytest

from repro.clustering import DBSCAN, KMeans
from repro.core import ValidationError
from repro.datasets import gaussian_blobs, two_moons, two_rings
from repro.evaluation import adjusted_rand_index


class TestDBSCAN:
    def test_separates_rings_where_kmeans_fails(self):
        X, y = two_rings(400, noise=0.05, random_state=0)
        db = DBSCAN(eps=1.3, min_samples=5).fit(X)
        clustered = db.labels_ >= 0
        assert db.n_clusters_ == 2
        assert adjusted_rand_index(db.labels_[clustered], y[clustered]) > 0.95
        km = KMeans(2, random_state=0).fit(X)
        assert adjusted_rand_index(km.labels_, y) < 0.5

    def test_separates_moons(self):
        X, y = two_moons(400, noise=0.05, random_state=1)
        db = DBSCAN(eps=0.25, min_samples=5).fit(X)
        assert db.n_clusters_ == 2

    def test_marks_outliers_as_noise(self):
        X, _ = gaussian_blobs(
            200, centers=np.array([[0.0, 0.0]]), cluster_std=0.5,
            random_state=2,
        )
        X = np.concatenate([X, [[50.0, 50.0], [-50.0, 50.0]]])
        db = DBSCAN(eps=1.0, min_samples=5).fit(X)
        assert db.labels_[-1] == -1 and db.labels_[-2] == -1
        assert db.n_clusters_ == 1

    def test_all_noise_when_eps_tiny(self):
        X, _ = gaussian_blobs(100, centers=2, random_state=3)
        db = DBSCAN(eps=1e-9, min_samples=3).fit(X)
        assert db.n_clusters_ == 0
        assert (db.labels_ == -1).all()

    def test_single_cluster_when_eps_huge(self):
        X, _ = gaussian_blobs(100, centers=3, random_state=4)
        db = DBSCAN(eps=1e6, min_samples=3).fit(X)
        assert db.n_clusters_ == 1

    def test_core_points_have_dense_neighbourhoods(self):
        X, _ = two_moons(300, random_state=5)
        db = DBSCAN(eps=0.3, min_samples=6).fit(X)
        for idx in db.core_sample_indices_[:20]:
            d = np.sqrt(((X - X[idx]) ** 2).sum(axis=1))
            assert (d <= 0.3).sum() >= 6

    def test_grid_matches_brute_force(self):
        X, _ = two_moons(250, random_state=6)
        grid = DBSCAN(eps=0.3, min_samples=5).fit(X)
        brute = DBSCAN(eps=0.3, min_samples=5, max_grid_dimensions=0).fit(X)
        # Same core points and same partition (labels may permute).
        assert (grid.core_sample_indices_ == brute.core_sample_indices_).all()
        assert adjusted_rand_index(grid.labels_, brute.labels_) == pytest.approx(1.0)
        assert grid.n_clusters_ == brute.n_clusters_

    def test_min_samples_one_clusters_everything(self):
        X = np.array([[0.0, 0.0], [100.0, 0.0]])
        db = DBSCAN(eps=1.0, min_samples=1).fit(X)
        assert db.n_clusters_ == 2
        assert (db.labels_ >= 0).all()

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            DBSCAN(eps=0.0)
        with pytest.raises(ValidationError):
            DBSCAN(min_samples=0)
