"""Unit tests for PAM, CLARA and CLARANS."""

import numpy as np
import pytest

from repro.clustering import CLARA, CLARANS, PAM
from repro.clustering.distance import pairwise_distances
from repro.core import ValidationError
from repro.evaluation import adjusted_rand_index


class TestPAM:
    def test_recovers_blobs(self, blobs4):
        X, y = blobs4
        model = PAM(4).fit(X)
        assert adjusted_rand_index(model.labels_, y) > 0.95

    def test_medoids_are_data_points(self, blobs4):
        X, _ = blobs4
        model = PAM(4).fit(X)
        for idx, center in zip(model.medoid_indices_, model.cluster_centers_):
            assert np.allclose(X[idx], center)

    def test_cost_is_total_nearest_distance(self, blobs4):
        X, _ = blobs4
        model = PAM(4).fit(X)
        d = pairwise_distances(X, model.cluster_centers_)
        assert model.cost_ == pytest.approx(d.min(axis=1).sum())

    def test_swap_phase_cannot_worsen_build(self, blobs4):
        X, _ = blobs4
        built_only = PAM(4, max_swaps=0).fit(X)
        full = PAM(4).fit(X)
        assert full.cost_ <= built_only.cost_ + 1e-9

    def test_single_cluster(self):
        X = np.array([[0.0], [1.0], [10.0]])
        model = PAM(1).fit(X)
        # The 1-medoid of {0,1,10} is the point 1 (total distance 10).
        assert model.medoid_indices_.tolist() == [1]

    def test_outlier_gets_isolated_not_averaged(self):
        # With k=3 the optimal medoid set is one per cluster plus the
        # outlier itself; a centroid method would instead drag a mean
        # into empty space.  Medoids are always real data points.
        X = np.concatenate([
            np.random.default_rng(0).normal(0, 0.3, (30, 2)),
            np.random.default_rng(1).normal(6, 0.3, (30, 2)),
            np.array([[1000.0, 1000.0]]),  # one extreme outlier
        ])
        model = PAM(3).fit(X)
        centers = sorted(model.cluster_centers_.tolist())
        assert np.allclose(centers[-1], [1000.0, 1000.0])
        assert np.abs(centers[0]).max() < 2.0
        assert np.abs(np.asarray(centers[1]) - 6.0).max() < 2.0

    def test_k_exceeds_n(self):
        with pytest.raises(ValidationError):
            PAM(5).fit(np.zeros((3, 2)))


class TestCLARA:
    def test_recovers_blobs(self, blobs4):
        X, y = blobs4
        model = CLARA(4, random_state=0).fit(X)
        assert adjusted_rand_index(model.labels_, y) > 0.95

    def test_cost_close_to_pam(self, blobs4):
        X, _ = blobs4
        pam_cost = PAM(4).fit(X).cost_
        clara_cost = CLARA(4, random_state=0).fit(X).cost_
        assert clara_cost <= pam_cost * 1.25

    def test_custom_sample_size(self, blobs4):
        X, y = blobs4
        model = CLARA(4, sample_size=60, random_state=0).fit(X)
        assert adjusted_rand_index(model.labels_, y) > 0.9

    def test_sample_size_below_k_rejected(self):
        with pytest.raises(ValidationError):
            CLARA(5, sample_size=3)

    def test_reproducible(self, blobs4):
        X, _ = blobs4
        a = CLARA(4, random_state=3).fit(X).medoid_indices_
        b = CLARA(4, random_state=3).fit(X).medoid_indices_
        assert (a == b).all()

    def test_inner_pam_convergence_warning_surfaces(self, blobs4):
        # With a one-swap cap the inner PAM runs cannot reach a local
        # optimum; CLARA must not swallow their ConvergenceWarning but
        # re-emit it as a single attributable summary.
        import warnings

        from repro.core.exceptions import ConvergenceWarning

        X, _ = blobs4
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            CLARA(4, n_samples=3, random_state=0, max_swaps=1).fit(X)
        convergence = [
            w for w in caught
            if issubclass(w.category, ConvergenceWarning)
        ]
        assert len(convergence) == 1
        message = str(convergence[0].message)
        assert "inner PAM runs" in message
        assert "of 3" in message

    def test_no_warning_when_inner_runs_converge(self, blobs4):
        import warnings

        X, _ = blobs4
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning fails the test
            CLARA(4, random_state=0).fit(X)


class TestCLARANS:
    def test_recovers_blobs(self, blobs4):
        X, y = blobs4
        model = CLARANS(4, random_state=0).fit(X)
        assert adjusted_rand_index(model.labels_, y) > 0.95

    def test_cost_close_to_pam(self, blobs4):
        X, _ = blobs4
        pam_cost = PAM(4).fit(X).cost_
        clarans_cost = CLARANS(4, random_state=0).fit(X).cost_
        assert clarans_cost <= pam_cost * 1.25

    def test_more_descents_never_worse_in_expectation(self, blobs4):
        # With the same seed, num_local=4 explores a superset of starts.
        X, _ = blobs4
        one = CLARANS(4, num_local=1, random_state=5).fit(X).cost_
        four = CLARANS(4, num_local=4, random_state=5).fit(X).cost_
        assert four <= one * 1.2

    def test_k_exceeds_n(self):
        with pytest.raises(ValidationError):
            CLARANS(5).fit(np.zeros((3, 2)))

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            CLARANS(2, num_local=0)
        with pytest.raises(ValidationError):
            CLARANS(2, max_neighbor=0)
