"""Unit tests for agglomerative clustering."""

import numpy as np
import pytest

from repro.clustering import Agglomerative
from repro.core import ValidationError
from repro.datasets import two_rings
from repro.evaluation import adjusted_rand_index


class TestAgglomerative:
    @pytest.mark.parametrize("linkage", ["single", "complete", "average", "ward"])
    def test_recovers_blobs(self, linkage, blobs4):
        X, y = blobs4
        model = Agglomerative(4, linkage=linkage).fit(X)
        assert adjusted_rand_index(model.labels_, y) > 0.9

    def test_single_linkage_handles_rings(self):
        X, y = two_rings(240, noise=0.05, random_state=0)
        single = Agglomerative(2, linkage="single").fit(X)
        ward = Agglomerative(2, linkage="ward").fit(X)
        assert adjusted_rand_index(single.labels_, y) > 0.95
        # Ward cannot separate concentric rings.
        assert adjusted_rand_index(ward.labels_, y) < 0.5

    def test_merges_record_shape(self, blobs4):
        X, _ = blobs4
        model = Agglomerative(4).fit(X)
        assert model.merges_.shape == (len(X) - 1, 4)

    def test_merge_heights_monotone_for_complete(self, blobs4):
        # Complete/average/ward linkage cannot produce inversions on
        # Euclidean data.
        X, _ = blobs4
        model = Agglomerative(1, linkage="complete").fit(X)
        heights = model.merges_[:, 2]
        assert (np.diff(heights) >= -1e-9).all()

    def test_n_clusters_one_and_n(self):
        X = np.array([[0.0], [1.0], [5.0]])
        assert set(Agglomerative(1).fit(X).labels_.tolist()) == {0}
        assert len(set(Agglomerative(3).fit(X).labels_.tolist())) == 3

    def test_two_points(self):
        X = np.array([[0.0], [1.0]])
        model = Agglomerative(1).fit(X)
        assert model.merges_.shape == (1, 4)
        assert model.merges_[0, 3] == 2

    def test_invalid_linkage(self):
        with pytest.raises(ValidationError):
            Agglomerative(2, linkage="centroid")

    def test_k_exceeds_n(self):
        with pytest.raises(ValidationError):
            Agglomerative(5).fit(np.zeros((2, 2)))

    def test_obvious_pair_merges_first(self):
        X = np.array([[0.0, 0.0], [0.1, 0.0], [10.0, 0.0], [20.0, 0.0]])
        model = Agglomerative(1, linkage="single").fit(X)
        first = model.merges_[0]
        assert {int(first[0]), int(first[1])} == {0, 1}
