"""Unit tests for COBWEB conceptual clustering."""

import numpy as np
import pytest

from repro.clustering import Cobweb, CobwebNode, category_utility
from repro.core import Table, ValidationError, categorical, numeric
from repro.evaluation import adjusted_rand_index


def _profile_table(n_per=30, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    profiles = [
        ("small", "red", "light"),
        ("large", "blue", "heavy"),
        ("medium", "green", "mid"),
    ]
    rows, truth = [], []
    for k, profile in enumerate(profiles):
        for _ in range(n_per):
            size, color, weight = profile
            if noise and rng.random() < noise:
                color = ["red", "blue", "green"][int(rng.integers(3))]
            rows.append((size, color, weight))
            truth.append(k)
    order = rng.permutation(len(rows))
    rows = [rows[i] for i in order]
    truth = np.asarray(truth)[order]
    table = Table.from_rows(rows, [
        categorical("size", ["small", "medium", "large"]),
        categorical("color", ["red", "blue", "green"]),
        categorical("weight", ["light", "mid", "heavy"]),
    ])
    return table, truth


class TestCategoryUtility:
    def test_perfect_two_way_split(self):
        a = CobwebNode([2])
        a.add_counts(np.array([0]))
        b = CobwebNode([2])
        b.add_counts(np.array([1]))
        parent = CobwebNode([2])
        parent.add_counts(np.array([0]))
        parent.add_counts(np.array([1]))
        assert category_utility(parent, [a, b]) == pytest.approx(0.25)

    def test_uninformative_split_is_zero(self):
        parent = CobwebNode([2])
        children = []
        for _ in range(2):
            child = CobwebNode([2])
            child.add_counts(np.array([0]))
            child.add_counts(np.array([1]))
            children.append(child)
            parent.add_counts(np.array([0]))
            parent.add_counts(np.array([1]))
        assert category_utility(parent, children) == pytest.approx(0.0)

    def test_empty_partition(self):
        parent = CobwebNode([2])
        assert category_utility(parent, []) == 0.0


class TestCobweb:
    def test_recovers_clean_profiles(self):
        table, truth = _profile_table(noise=0.0, seed=1)
        model = Cobweb().fit(table)
        assert model.n_clusters_ == 3
        assert adjusted_rand_index(model.labels_, truth) == pytest.approx(1.0)

    def test_robust_to_attribute_noise(self):
        table, truth = _profile_table(noise=0.15, seed=2)
        model = Cobweb().fit(table)
        assert adjusted_rand_index(model.labels_, truth) > 0.8

    def test_every_row_assigned(self):
        table, _ = _profile_table(seed=3)
        labels = Cobweb().fit_predict(table)
        assert (labels >= 0).all()
        assert len(labels) == table.n_rows

    def test_root_counts_conserved(self):
        table, _ = _profile_table(seed=4)
        model = Cobweb().fit(table)
        assert model.root_.n == table.n_rows
        for counts in model.root_.value_counts:
            assert counts.sum() == table.n_rows

    def test_single_row(self):
        table = Table.from_rows(
            [("a",)], [categorical("f", ["a"])]
        )
        model = Cobweb().fit(table)
        assert model.labels_.tolist() == [0]
        assert model.n_clusters_ == 1

    def test_identical_rows_single_cluster_dominates(self):
        table = Table.from_rows(
            [("a", "x")] * 20,
            [categorical("f", ["a"]), categorical("g", ["x"])],
        )
        model = Cobweb().fit(table)
        # With zero attribute information no split earns utility, so
        # the flat reading keeps everything in very few clusters.
        assert model.n_clusters_ <= 2

    def test_rejects_numeric(self):
        table = Table.from_rows([(1.0,)], [numeric("x")])
        with pytest.raises(ValidationError):
            Cobweb().fit(table)

    def test_rejects_missing(self):
        table = Table.from_rows([(None,)], [categorical("f", ["a"])])
        with pytest.raises(ValidationError):
            Cobweb().fit(table)

    def test_order_insensitivity_on_clean_data(self):
        table, truth = _profile_table(seed=5)
        reversed_table = table.take(np.arange(table.n_rows)[::-1])
        a = Cobweb().fit(table)
        b = Cobweb().fit(reversed_table)
        # Merge/split make the flat partition agree across orders.
        assert adjusted_rand_index(
            a.labels_, b.labels_[::-1]
        ) == pytest.approx(1.0)

    def test_hierarchy_statistics(self):
        table, _ = _profile_table(seed=6)
        model = Cobweb().fit(table)
        assert model.root_.n_concepts() > 3
        assert model.root_.depth() >= 1
