"""Unit tests for KMeans."""

import numpy as np
import pytest

from repro.clustering import KMeans
from repro.core import NotFittedError, ValidationError
from repro.evaluation import adjusted_rand_index, sse


class TestKMeans:
    def test_recovers_separated_blobs(self, blobs4):
        X, y = blobs4
        model = KMeans(4, random_state=0).fit(X)
        assert adjusted_rand_index(model.labels_, y) == pytest.approx(1.0)

    def test_inertia_matches_sse(self, blobs4):
        X, _ = blobs4
        model = KMeans(4, random_state=0).fit(X)
        assert model.inertia_ == pytest.approx(
            sse(X, model.labels_, model.cluster_centers_)
        )

    def test_more_clusters_lower_inertia(self, blobs4):
        X, _ = blobs4
        i2 = KMeans(2, random_state=0).fit(X).inertia_
        i8 = KMeans(8, random_state=0).fit(X).inertia_
        assert i8 < i2

    def test_k_equals_n_gives_zero_inertia(self):
        X = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        model = KMeans(3, random_state=0).fit(X)
        assert model.inertia_ == pytest.approx(0.0)

    def test_reproducible_with_seed(self, blobs4):
        X, _ = blobs4
        a = KMeans(4, random_state=7).fit(X)
        b = KMeans(4, random_state=7).fit(X)
        assert (a.labels_ == b.labels_).all()

    def test_predict_assigns_nearest_center(self, blobs4):
        X, _ = blobs4
        model = KMeans(4, random_state=0).fit(X)
        assert (model.predict(X) == model.labels_).all()

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            KMeans(2).predict(np.zeros((2, 2)))

    def test_transform_shape(self, blobs4):
        X, _ = blobs4
        model = KMeans(4, random_state=0).fit(X)
        assert model.transform(X).shape == (len(X), 4)

    @pytest.mark.parametrize("init", ["kmeans++", "forgy", "random_partition"])
    def test_all_inits_work(self, init, blobs4):
        X, y = blobs4
        model = KMeans(4, init=init, n_init=8, random_state=1).fit(X)
        assert adjusted_rand_index(model.labels_, y) > 0.95

    def test_macqueen_matches_lloyd_on_easy_data(self, blobs4):
        X, y = blobs4
        model = KMeans(4, algorithm="macqueen", random_state=0).fit(X)
        assert adjusted_rand_index(model.labels_, y) > 0.95

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(ValidationError):
            KMeans(10).fit(np.zeros((3, 2)))

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            KMeans(0)
        with pytest.raises(ValidationError):
            KMeans(2, init="best")
        with pytest.raises(ValidationError):
            KMeans(2, algorithm="elkan")

    def test_duplicate_points_do_not_crash(self):
        X = np.zeros((20, 2))
        model = KMeans(3, random_state=0).fit(X)
        assert model.inertia_ == pytest.approx(0.0)

    def test_labels_cover_range(self, blobs4):
        X, _ = blobs4
        labels = KMeans(4, random_state=0).fit_predict(X)
        assert set(labels.tolist()) == {0, 1, 2, 3}
