"""Unit tests for the distance kernels."""

import numpy as np
import pytest

from repro.clustering import euclidean, nearest_center, pairwise_distances
from repro.core import ValidationError


class TestEuclidean:
    def test_pythagoras(self):
        assert euclidean(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_zero_distance(self):
        v = np.array([1.0, 2.0, 3.0])
        assert euclidean(v, v) == 0.0


class TestPairwise:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(20, 3))
        Y = rng.normal(size=(15, 3))
        d = pairwise_distances(X, Y)
        for i in range(20):
            for j in range(15):
                assert d[i, j] == pytest.approx(euclidean(X[i], Y[j]))

    def test_self_distances_zero_diagonal(self):
        X = np.random.default_rng(1).normal(size=(10, 2))
        d = pairwise_distances(X)
        # The expanded quadratic form carries ~1e-8 round-off.
        assert np.allclose(np.diag(d), 0.0, atol=1e-6)

    def test_symmetry(self):
        X = np.random.default_rng(2).normal(size=(12, 4))
        d = pairwise_distances(X)
        assert np.allclose(d, d.T)

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            pairwise_distances(np.zeros(3))


class TestNearestCenter:
    def test_assignment_and_squared_distance(self):
        X = np.array([[0.0], [9.0]])
        centers = np.array([[1.0], [10.0]])
        labels, sq = nearest_center(X, centers)
        assert labels.tolist() == [0, 1]
        assert sq.tolist() == [1.0, 1.0]
