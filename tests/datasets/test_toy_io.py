"""Unit tests for toy datasets and CSV I/O."""

import numpy as np
import pytest

from repro.core import TransactionDatabase, ValidationError
from repro.datasets import (
    iris,
    load_table,
    load_transactions,
    play_tennis,
    save_table,
    save_transactions,
    weather_numeric,
)


class TestToyTables:
    def test_play_tennis_shape(self):
        table = play_tennis()
        assert table.n_rows == 14
        assert table.attribute("play").values == ("no", "yes")
        assert table.class_codes("play").sum() == 9  # nine 'yes' days

    def test_weather_numeric_kinds(self):
        table = weather_numeric()
        assert table.attribute("temperature").is_numeric
        assert table.attribute("outlook").is_categorical

    def test_iris_shape_and_determinism(self):
        a, b = iris(), iris()
        assert a.n_rows == 150
        assert np.allclose(a.column("petal_length"), b.column("petal_length"))

    def test_iris_classes_balanced(self):
        from collections import Counter

        counts = Counter(iris().column("species").tolist())
        assert set(counts.values()) == {50}

    def test_iris_setosa_separable(self):
        # The defining property: setosa's petals are much shorter.
        table = iris()
        codes = table.class_codes("species")
        petal = table.column("petal_length")
        assert petal[codes == 0].max() < petal[codes != 0].min()


class TestTableCSV:
    def test_roundtrip_values(self, tmp_path):
        path = tmp_path / "tennis.csv"
        original = play_tennis()
        save_table(original, path)
        loaded = load_table(path)
        assert list(loaded.iter_rows()) == list(original.iter_rows())

    def test_roundtrip_missing_and_numeric(self, tmp_path):
        from repro.core import Table, categorical, numeric

        table = Table.from_rows(
            [(1.5, "a"), (None, None)],
            [numeric("x"), categorical("c", ["a"])],
        )
        path = tmp_path / "t.csv"
        save_table(table, path)
        loaded = load_table(path)
        assert loaded.value(1, "x") is None
        assert loaded.value(1, "c") is None
        assert loaded.value(0, "x") == 1.5

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("justaname\n1\n")
        with pytest.raises(ValidationError):
            load_table(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValidationError):
            load_table(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a:num,b:num\n1.0\n")
        with pytest.raises(ValidationError):
            load_table(path)


class TestTransactionsCSV:
    def test_roundtrip(self, tmp_path, small_db):
        path = tmp_path / "txns.dat"
        save_transactions(small_db, path)
        loaded = load_transactions(path)
        assert list(loaded) == list(small_db)

    def test_blank_line_rejected_with_location(self, tmp_path):
        path = tmp_path / "t.dat"
        path.write_text("1 2\n\n3\n")
        with pytest.raises(ValidationError, match=r"line 2.*blank"):
            load_transactions(path)

    def test_malformed_token_rejected_with_location(self, tmp_path):
        path = tmp_path / "t.dat"
        path.write_text("1 2\n3 oops 4\n")
        with pytest.raises(ValidationError, match=r"line 2.*malformed"):
            load_transactions(path)

    def test_save_rejects_empty_transaction(self, tmp_path):
        db = TransactionDatabase([(0, 1), ()])
        with pytest.raises(ValidationError, match="empty"):
            save_transactions(db, tmp_path / "t.dat")

    def test_non_numeric_cell_rejected_with_location(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a:num,b:cat\n1.0,x\noops,y\n")
        with pytest.raises(ValidationError, match=r"line 3.*non-numeric"):
            load_table(path)

    def test_ragged_row_error_names_line(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a:num,b:num\n1.0,2.0\n1.0\n")
        with pytest.raises(ValidationError, match=r"line 3"):
            load_table(path)
