"""Unit tests for the random taxonomy generator."""

import pytest

from repro.core import ValidationError
from repro.datasets import random_taxonomy


class TestRandomTaxonomy:
    def test_every_leaf_has_ancestors(self):
        tax, total = random_taxonomy(20, fanout=4, n_levels=2, random_state=0)
        for leaf in range(20):
            ancestors = tax.ancestors(leaf)
            assert len(ancestors) == 2  # one per level on a tree

    def test_total_id_space(self):
        tax, total = random_taxonomy(10, fanout=5, n_levels=1, random_state=1)
        # 10 leaves -> 2 categories.
        assert total == 12

    def test_categories_are_above_leaf_ids(self):
        tax, total = random_taxonomy(15, fanout=3, n_levels=2, random_state=2)
        for leaf in range(15):
            assert all(a >= 15 for a in tax.ancestors(leaf))

    def test_deterministic(self):
        a, _ = random_taxonomy(30, fanout=5, n_levels=2, random_state=7)
        b, _ = random_taxonomy(30, fanout=5, n_levels=2, random_state=7)
        for leaf in range(30):
            assert a.ancestors(leaf) == b.ancestors(leaf)

    def test_levels_collapse_when_one_category_remains(self):
        tax, total = random_taxonomy(3, fanout=5, n_levels=5, random_state=3)
        # Three leaves fit one category; deeper levels stop.
        assert total == 4

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            random_taxonomy(0)
        with pytest.raises(ValidationError):
            random_taxonomy(5, fanout=1)
