"""Unit tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.core import ValidationError
from repro.datasets import (
    FUNCTIONS,
    QuestBasketGenerator,
    QuestConfig,
    QuestSequenceConfig,
    QuestSequenceGenerator,
    agrawal,
    gaussian_blobs,
    gaussian_grid,
    quest_basket,
    quest_sequences,
    two_moons,
    two_rings,
)


class TestQuestBasket:
    def test_workload_name(self):
        assert QuestConfig(100_000, 10, 4).name() == "T10.I4.D100K"
        assert QuestConfig(500, 2.5, 1.25).name() == "T2.5.I1.25.D500"

    def test_shape_matches_config(self):
        db = quest_basket(400, 8, 3, n_items=200, n_patterns=40,
                          random_state=0)
        assert len(db) == 400
        assert db.n_items == 200
        # Average length lands near the Poisson mean.
        assert 5.0 < db.avg_transaction_length() < 12.0

    def test_reproducible(self):
        a = quest_basket(50, 5, 2, n_items=60, random_state=3)
        b = quest_basket(50, 5, 2, n_items=60, random_state=3)
        assert list(a) == list(b)

    def test_different_seeds_differ(self):
        a = quest_basket(50, 5, 2, n_items=60, random_state=1)
        b = quest_basket(50, 5, 2, n_items=60, random_state=2)
        assert list(a) != list(b)

    def test_no_empty_transactions(self):
        db = quest_basket(200, 3, 2, n_items=50, random_state=4)
        assert all(len(t) >= 1 for t in db)

    def test_patterns_create_frequent_itemsets(self):
        # Mining the generated data must recover multi-item patterns —
        # the whole point of the corrupted-pattern process.
        from repro.associations import apriori

        db = quest_basket(500, 8, 4, n_items=100, n_patterns=15,
                          random_state=5)
        result = apriori(db, min_support=0.03)
        assert result.max_size() >= 2

    def test_invalid_config(self):
        with pytest.raises(ValidationError):
            QuestBasketGenerator(QuestConfig(n_transactions=0))
        with pytest.raises(ValidationError):
            QuestBasketGenerator(QuestConfig(correlation=2.0))


class TestQuestSequences:
    def test_workload_name(self):
        cfg = QuestSequenceConfig(
            avg_elements=10, avg_items_per_element=2.5,
            avg_pattern_elements=4, avg_itemset_size=1.25,
        )
        assert cfg.name() == "C10.T2.5.S4.I1.25"

    def test_shape(self):
        db = quest_sequences(80, 6, 2, n_items=50, random_state=0)
        assert len(db) == 80
        assert 3.0 < db.avg_sequence_length() < 9.0

    def test_reproducible(self):
        a = quest_sequences(30, 4, 2, n_items=40, random_state=8)
        b = quest_sequences(30, 4, 2, n_items=40, random_state=8)
        assert list(a) == list(b)

    def test_sequential_patterns_recoverable(self):
        from repro.sequences import prefixspan

        db = quest_sequences(200, 6, 2, n_items=60, random_state=2)
        result = prefixspan(db, min_support=0.05, max_length=3)
        assert result.max_length() >= 2


class TestAgrawal:
    def test_schema(self):
        table = agrawal(50, function=1, random_state=0)
        assert table.attribute("salary").is_numeric
        assert table.attribute("elevel").is_categorical
        assert table.attribute("group").values == ("A", "B")

    @pytest.mark.parametrize("function", sorted(FUNCTIONS))
    def test_all_functions_produce_both_classes(self, function):
        table = agrawal(800, function=function, random_state=function)
        codes = set(table.class_codes("group").tolist())
        assert codes == {0, 1}

    def test_f1_matches_predicate(self):
        table = agrawal(300, function=1, random_state=1)
        ages = table.column("age")
        groups = table.class_codes("group")
        expected = ((ages < 40) | (ages >= 60)).astype(int)
        # group A == code 0.
        assert ((groups == 0) == (expected == 1)).all()

    def test_noise_flips_labels(self):
        clean = agrawal(500, function=1, noise=0.0, random_state=2)
        noisy = agrawal(500, function=1, noise=0.3, random_state=2)
        differ = (
            clean.class_codes("group") != noisy.class_codes("group")
        ).mean()
        assert 0.2 < differ < 0.4

    def test_commission_rule(self):
        table = agrawal(400, function=7, random_state=3)
        salary = table.column("salary")
        commission = table.column("commission")
        assert (commission[salary >= 75_000] == 0.0).all()
        assert (commission[salary < 75_000] > 0).all()

    def test_invalid_function(self):
        with pytest.raises(ValidationError):
            agrawal(10, function=11)


class TestGaussianAndShapes:
    def test_blobs_counts_and_labels(self):
        X, y = gaussian_blobs(100, centers=3, random_state=0)
        assert X.shape == (100, 2)
        assert set(y.tolist()) == {0, 1, 2}

    def test_blobs_explicit_centers(self):
        centers = np.array([[0.0, 0.0], [100.0, 0.0]])
        X, y = gaussian_blobs(60, centers=centers, cluster_std=0.5,
                              random_state=1)
        for label, center in enumerate(centers):
            member = X[y == label]
            assert np.abs(member.mean(axis=0) - center).max() < 1.0

    def test_grid_layout(self):
        X, y = gaussian_grid(400, grid_side=3, spacing=10.0,
                             cluster_std=0.3, random_state=2)
        assert len(set(y.tolist())) == 9

    def test_grid_noise_labelled_minus_one(self):
        X, y = gaussian_grid(300, grid_side=2, noise_fraction=0.1,
                             random_state=3)
        assert (y == -1).sum() == 30

    def test_rings_radii(self):
        X, y = two_rings(400, inner_radius=2.0, outer_radius=6.0,
                         noise=0.05, random_state=4)
        radii = np.sqrt((X**2).sum(axis=1))
        assert abs(radii[y == 0].mean() - 2.0) < 0.2
        assert abs(radii[y == 1].mean() - 6.0) < 0.2

    def test_moons_shape(self):
        X, y = two_moons(200, random_state=5)
        assert X.shape == (200, 2)
        assert set(y.tolist()) == {0, 1}

    def test_invalid_ring_radii(self):
        with pytest.raises(ValidationError):
            two_rings(100, inner_radius=5.0, outer_radius=3.0)
