"""Degenerate-input hardening sweep.

Every algorithm must reject pathological inputs — empty databases,
``k > n_points``, out-of-range support thresholds, single-row tables in
tree growers — with a typed error from :mod:`repro.core.exceptions`
carrying the offending value, never an ``IndexError`` or
``ZeroDivisionError`` from deep inside a pass.
"""

import numpy as np
import pytest

from repro.associations import (
    QuantitativeMiner,
    apriori,
    apriori_hybrid,
    apriori_tid,
    brute_force,
    cumulate,
    dhp,
    eclat,
    fp_growth,
    partition_miner,
    sampling_miner,
)
from repro.classification import C45, CART, ID3, KNN, SLIQ, NaiveBayes, OneR, ZeroR
from repro.clustering import CLARA, CLARANS, KMeans, PAM
from repro.core import (
    EmptyInputError,
    SequenceDatabase,
    TransactionDatabase,
    ValidationError,
)
from repro.core.taxonomy import Taxonomy
from repro.datasets import play_tennis
from repro.regression import RegressionTree
from repro.sequences import apriori_all, brute_force_sequences, gsp, prefixspan

ITEMSET_MINERS = {
    "apriori": apriori,
    "apriori_tid": apriori_tid,
    "apriori_hybrid": apriori_hybrid,
    "dhp": dhp,
    "eclat": eclat,
    "fp_growth": fp_growth,
    "partition": partition_miner,
    "sampling": sampling_miner,
    "brute_force": brute_force,
    "cumulate": lambda db, s: cumulate(db, Taxonomy({}), s),
}

SEQUENCE_MINERS = {
    "apriori_all": apriori_all,
    "gsp": gsp,
    "prefixspan": prefixspan,
    "brute_force_sequences": brute_force_sequences,
}


class TestEmptyDatabases:
    @pytest.mark.parametrize("name", sorted(ITEMSET_MINERS))
    def test_itemset_miner_rejects_empty_db(self, name):
        with pytest.raises(EmptyInputError, match="empty"):
            ITEMSET_MINERS[name](TransactionDatabase([]), 0.5)

    @pytest.mark.parametrize("name", sorted(SEQUENCE_MINERS))
    def test_sequence_miner_rejects_empty_db(self, name):
        with pytest.raises(EmptyInputError, match="empty"):
            SEQUENCE_MINERS[name](SequenceDatabase([]), 0.5)

    @pytest.mark.parametrize(
        "make", [C45, CART, SLIQ, ID3, NaiveBayes, KNN, OneR, ZeroR],
        ids=lambda cls: cls.__name__,
    )
    def test_classifier_rejects_empty_table(self, make):
        empty = play_tennis().take([])
        with pytest.raises(EmptyInputError, match="empty"):
            make().fit(empty, "play")

    def test_empty_input_error_is_a_validation_error(self):
        # Generic `except ValueError` / `except ValidationError` callers
        # keep working across the contract change.
        assert issubclass(EmptyInputError, ValidationError)
        assert issubclass(EmptyInputError, ValueError)


class TestSupportThresholds:
    @pytest.mark.parametrize("name", sorted(ITEMSET_MINERS))
    @pytest.mark.parametrize("min_support", [0.0, -0.25, 1.5])
    def test_itemset_miner_rejects_bad_support(self, name, min_support, small_db):
        with pytest.raises(ValidationError, match=str(min_support)):
            ITEMSET_MINERS[name](small_db, min_support)

    @pytest.mark.parametrize("name", sorted(SEQUENCE_MINERS))
    @pytest.mark.parametrize("min_support", [0.0, -0.25, 1.5])
    def test_sequence_miner_rejects_bad_support(
        self, name, min_support, small_seq_db
    ):
        with pytest.raises(ValidationError, match=str(min_support)):
            SEQUENCE_MINERS[name](small_seq_db, min_support)

    @pytest.mark.parametrize("min_support", [0.0, -0.25, 1.5])
    def test_quantitative_miner_rejects_bad_support(self, min_support):
        with pytest.raises(ValidationError, match=str(min_support)):
            QuantitativeMiner(min_support=min_support)


class TestTooManyClusters:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: KMeans(5, random_state=0),
            lambda: PAM(5),
            lambda: CLARANS(5, random_state=0),
            lambda: CLARA(5, random_state=0),
        ],
        ids=["kmeans", "pam", "clarans", "clara"],
    )
    def test_k_exceeding_n_points_rejected(self, make):
        X = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        with pytest.raises(ValidationError, match="5"):
            make().fit(X)


class TestSingleRowTrees:
    @pytest.mark.parametrize(
        "make", [C45, CART, SLIQ, ID3], ids=lambda cls: cls.__name__
    )
    def test_tree_grower_rejects_single_row(self, make):
        one_row = play_tennis().take([0])
        with pytest.raises(ValidationError, match="1"):
            make().fit(one_row, "play")

    def test_regression_tree_rejects_single_row(self, weather):
        one_row = weather.take([0])
        with pytest.raises(ValidationError, match="1"):
            RegressionTree().fit(one_row, "humidity")

    def test_regression_tree_rejects_empty_table(self, weather):
        with pytest.raises(EmptyInputError, match="empty"):
            RegressionTree().fit(weather.take([]), "humidity")
