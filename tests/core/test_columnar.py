"""Shared columnar data plane: packed views, kernels, and memoization."""

import gc

import numpy as np
import pytest

from repro.core import SequenceDatabase, TransactionDatabase
from repro.core.columnar import (
    PackedBitmap,
    PresortedColumns,
    SequenceBitmap,
    TableMatrix,
    clear_caches,
    pack_indices,
    popcount,
    presorted_columns,
    sequence_bitmap,
    table_matrix,
    transaction_bitmap,
    unpack_indices,
    window_mask,
)
from repro.datasets import play_tennis, quest_basket, weather_numeric


def _brute_count(db, cand, begin=0, stop=None):
    stop = len(db) if stop is None else stop
    return sum(
        1 for t in range(begin, stop) if set(cand) <= set(db[t])
    )


# ----------------------------------------------------------------------
# Bitset kernels
# ----------------------------------------------------------------------
def test_pack_unpack_roundtrip():
    for idx in ([], [0], [7], [8], [0, 3, 8, 12], list(range(13))):
        bits = pack_indices(idx, 13)
        assert unpack_indices(bits, 13).tolist() == sorted(idx)
        assert popcount(bits) == len(idx)


def test_window_mask_selects_exact_range():
    mask = window_mask(20, 3, 11)
    assert unpack_indices(mask, 20).tolist() == list(range(3, 11))


# ----------------------------------------------------------------------
# PackedBitmap
# ----------------------------------------------------------------------
def test_counts_match_brute_force(medium_db):
    bitmap = PackedBitmap(medium_db)
    candidates = [(0,), (1, 2), (3, 4, 5), (0, 1, 2, 3)]
    assert bitmap.count(candidates) == [
        _brute_count(medium_db, c) for c in candidates
    ]


def test_windowed_counts_sum_to_full(medium_db):
    bitmap = PackedBitmap(medium_db)
    candidates = [(0,), (1, 2), (2, 3)]
    full = bitmap.count(candidates)
    lo = bitmap.count(candidates, begin=0, stop=100)
    hi = bitmap.count(candidates, begin=100, stop=len(medium_db))
    assert [a + b for a, b in zip(lo, hi)] == full
    assert lo == [_brute_count(medium_db, c, 0, 100) for c in candidates]


def test_empty_itemset_counts_window_width(medium_db):
    bitmap = PackedBitmap(medium_db)
    assert bitmap.count([()]) == [len(medium_db)]
    assert bitmap.count([()], begin=10, stop=25) == [15]


def test_all_empty_transactions_database():
    db = TransactionDatabase([(), (), ()])
    bitmap = PackedBitmap(db)
    assert bitmap.count([]) == []
    assert bitmap.count([()]) == [3]
    assert bitmap.frequent([()], min_count=3) == {(): 3}


def test_item_supports_matches_per_item_counts(medium_db):
    bitmap = PackedBitmap(medium_db)
    supports = bitmap.item_supports()
    for item in range(medium_db.n_items):
        assert supports[item] == _brute_count(medium_db, (item,))


# ----------------------------------------------------------------------
# SequenceBitmap
# ----------------------------------------------------------------------
def test_candidate_sequences_is_exact_occurrence_superset(small_seq_db):
    bitmap = SequenceBitmap(small_seq_db)
    for items in ((3,), (3, 9), (4, 7), (1, 2, 3)):
        expected = [
            sid for sid in range(len(small_seq_db))
            if all(
                any(item in elem for elem in small_seq_db[sid])
                for item in items
            )
        ]
        assert bitmap.candidate_sequences(items).tolist() == expected


def test_candidate_sequences_window_and_empty_items(small_seq_db):
    bitmap = SequenceBitmap(small_seq_db)
    assert bitmap.candidate_sequences((), begin=1, stop=4).tolist() == [1, 2, 3]
    full = bitmap.candidate_sequences((3,)).tolist()
    windowed = bitmap.candidate_sequences((3,), begin=2, stop=5).tolist()
    assert windowed == [sid for sid in full if 2 <= sid < 5]


# ----------------------------------------------------------------------
# Table views
# ----------------------------------------------------------------------
def test_presorted_columns_are_stable_ascending():
    table = weather_numeric()
    view = PresortedColumns(table)
    for name, order in view.order.items():
        col = table.column(name)
        assert (np.diff(col[order]) >= 0).all()
        # stability: ties keep original row order
        assert order.tolist() == np.argsort(col, kind="mergesort").tolist()


def test_table_matrix_matches_columns():
    table = play_tennis()
    tm = TableMatrix(table)
    for slot, name in enumerate(tm.numeric_names):
        assert tm.numeric[:, slot].tolist() == table.column(name).tolist()
    for slot, name in enumerate(tm.categorical_names):
        assert tm.categorical[:, slot].tolist() == table.column(name).tolist()
    assert tm.nbytes > 0


# ----------------------------------------------------------------------
# Memoization contract
# ----------------------------------------------------------------------
def test_encodings_memoized_per_object(medium_db, small_seq_db):
    assert transaction_bitmap(medium_db) is transaction_bitmap(medium_db)
    assert sequence_bitmap(small_seq_db) is sequence_bitmap(small_seq_db)
    table = weather_numeric()
    assert presorted_columns(table) is presorted_columns(table)
    assert table_matrix(table) is table_matrix(table)


def test_distinct_datasets_get_distinct_encodings():
    a = quest_basket(50, random_state=0)
    b = quest_basket(50, random_state=0)  # equal content, distinct object
    assert transaction_bitmap(a) is not transaction_bitmap(b)
    sa = SequenceDatabase([[(0,), (1,)]])
    sb = SequenceDatabase([[(0,), (1,)]])
    assert sequence_bitmap(sa) is not sequence_bitmap(sb)


def test_encoding_dies_with_dataset():
    import weakref

    db = TransactionDatabase([(0, 1), (1, 2)])
    ref = weakref.ref(transaction_bitmap(db))
    del db
    gc.collect()
    assert ref() is None


def test_encoding_not_part_of_pickled_dataset():
    import pickle

    db = quest_basket(50, random_state=1)
    bare = len(pickle.dumps(db))
    transaction_bitmap(db)  # build + memoize the encoding
    assert len(pickle.dumps(db)) == bare


def test_clear_caches_drops_encodings(medium_db):
    first = transaction_bitmap(medium_db)
    clear_caches()
    assert transaction_bitmap(medium_db) is not first
