"""Unit tests for repro.core.itemsets."""

import pytest

from repro.core import ValidationError
from repro.core.itemsets import (
    FrequentItemsets,
    as_itemset,
    contains,
    is_canonical,
    proper_subsets,
    subsets_of_size,
)


class TestAsItemset:
    def test_sorts_input(self):
        assert as_itemset([3, 1, 2]) == (1, 2, 3)

    def test_empty_is_allowed(self):
        assert as_itemset([]) == ()

    def test_rejects_duplicates(self):
        with pytest.raises(ValidationError):
            as_itemset([1, 1, 2])

    def test_single_item(self):
        assert as_itemset([7]) == (7,)


class TestIsCanonical:
    def test_sorted_unique_is_canonical(self):
        assert is_canonical((1, 2, 9))

    def test_unsorted_is_not(self):
        assert not is_canonical((2, 1))

    def test_duplicates_are_not(self):
        assert not is_canonical((1, 1))

    def test_empty_and_singleton(self):
        assert is_canonical(())
        assert is_canonical((5,))


class TestSubsets:
    def test_subsets_of_size_two(self):
        assert list(subsets_of_size((1, 2, 3), 2)) == [(1, 2), (1, 3), (2, 3)]

    def test_subsets_of_full_size(self):
        assert list(subsets_of_size((1, 2), 2)) == [(1, 2)]

    def test_subsets_of_size_zero(self):
        assert list(subsets_of_size((1, 2), 0)) == [()]

    def test_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            list(subsets_of_size((1,), -1))

    def test_proper_subsets_exclude_self_and_empty(self):
        subs = list(proper_subsets((1, 2, 3)))
        assert () not in subs
        assert (1, 2, 3) not in subs
        assert len(subs) == 6


class TestContains:
    def test_positive(self):
        assert contains((1, 2, 5, 9), (2, 9))

    def test_negative(self):
        assert not contains((1, 2, 5), (2, 3))

    def test_empty_itemset_always_contained(self):
        assert contains((1, 2), ())

    def test_itemset_longer_than_transaction(self):
        assert not contains((1,), (1, 2))

    def test_exact_match(self):
        assert contains((4, 7), (4, 7))


class TestFrequentItemsets:
    def _make(self):
        return FrequentItemsets(
            {(0,): 4, (1,): 3, (0, 1): 3, (2,): 2, (0, 1, 2): 2, (0, 2): 2, (1, 2): 2},
            n_transactions=5,
            min_support=0.4,
        )

    def test_len_iter_contains(self):
        fi = self._make()
        assert len(fi) == 7
        assert (0, 1) in fi
        assert (9,) not in fi
        assert set(iter(fi)) == set(fi.supports)

    def test_support_and_count(self):
        fi = self._make()
        assert fi.count((0, 1)) == 3
        assert fi.support((0, 1)) == pytest.approx(0.6)

    def test_of_size(self):
        fi = self._make()
        assert set(fi.of_size(2)) == {(0, 1), (0, 2), (1, 2)}

    def test_max_size(self):
        assert self._make().max_size() == 3
        assert FrequentItemsets({}, 5, 0.1).max_size() == 0

    def test_maximal(self):
        fi = self._make()
        assert set(fi.maximal()) == {(0, 1, 2)}

    def test_closed_keeps_distinct_support_levels(self):
        fi = self._make()
        closed = fi.closed()
        # (0,) has support 4, no superset matches it -> closed.
        assert (0,) in closed
        # (0, 2) has support 2, superset (0,1,2) also 2 -> not closed.
        assert (0, 2) not in closed
        assert (0, 1, 2) in closed

    def test_sorted_by_support_is_descending(self):
        ordered = self._make().sorted_by_support()
        counts = [c for _, c in ordered]
        assert counts == sorted(counts, reverse=True)
