"""Unit tests for repro.core.table."""

import math

import numpy as np
import pytest

from repro.core import Attribute, Table, ValidationError, categorical, numeric


class TestAttribute:
    def test_numeric_shorthand(self):
        attr = numeric("age")
        assert attr.is_numeric and not attr.is_categorical

    def test_categorical_shorthand(self):
        attr = categorical("color", ["red", "blue"])
        assert attr.is_categorical
        assert attr.code_of("blue") == 1

    def test_rejects_bad_kind(self):
        with pytest.raises(ValidationError):
            Attribute("x", "text")

    def test_numeric_with_values_rejected(self):
        with pytest.raises(ValidationError):
            Attribute("x", "numeric", ("a",))

    def test_categorical_needs_values(self):
        with pytest.raises(ValidationError):
            Attribute("x", "categorical")

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValidationError):
            categorical("x", ["a", "a"])

    def test_code_of_unknown_value(self):
        with pytest.raises(ValidationError):
            categorical("x", ["a"]).code_of("b")


def _sample_table() -> Table:
    return Table.from_rows(
        [
            ("red", 1.5, "yes"),
            ("blue", None, "no"),
            (None, 3.0, "yes"),
        ],
        [
            categorical("color", ["red", "blue"]),
            numeric("value"),
            categorical("label", ["no", "yes"]),
        ],
    )


class TestConstruction:
    def test_from_rows_shapes(self):
        t = _sample_table()
        assert t.n_rows == 3
        assert t.attribute_names == ("color", "value", "label")

    def test_missing_encoding(self):
        t = _sample_table()
        assert t.value(1, "value") is None
        assert t.value(2, "color") is None
        assert t.column("color")[2] == -1
        assert math.isnan(t.column("value")[1])

    def test_row_length_mismatch(self):
        with pytest.raises(ValidationError):
            Table.from_rows([(1,)], [numeric("a"), numeric("b")])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            Table([numeric("a"), numeric("a")], {"a": np.zeros(1)})

    def test_column_schema_mismatch(self):
        with pytest.raises(ValidationError):
            Table([numeric("a")], {"b": np.zeros(1)})

    def test_differing_column_lengths(self):
        with pytest.raises(ValidationError):
            Table(
                [numeric("a"), numeric("b")],
                {"a": np.zeros(2), "b": np.zeros(3)},
            )

    def test_out_of_range_codes_rejected(self):
        with pytest.raises(ValidationError):
            Table(
                [categorical("c", ["x"])],
                {"c": np.array([2])},
            )

    def test_infer_from_rows(self):
        t = Table.infer_from_rows(
            [(1.0, "a"), (2.0, "b")], names=["num", "cat"]
        )
        assert t.attribute("num").is_numeric
        assert t.attribute("cat").is_categorical
        assert t.attribute("cat").values == ("a", "b")

    def test_infer_forced_numeric(self):
        t = Table.infer_from_rows(
            [(1, 2)], names=["a", "b"], numeric_columns=["a"]
        )
        assert t.attribute("a").is_numeric
        assert t.attribute("b").is_categorical


class TestSlicing:
    def test_take(self):
        t = _sample_table().take([2, 0])
        assert t.n_rows == 2
        assert t.value(0, "value") == 3.0

    def test_mask(self):
        t = _sample_table()
        sliced = t.mask(np.array([True, False, True]))
        assert sliced.n_rows == 2

    def test_mask_wrong_shape(self):
        with pytest.raises(ValidationError):
            _sample_table().mask(np.array([True]))

    def test_select_and_drop(self):
        t = _sample_table()
        assert t.select(["label"]).attribute_names == ("label",)
        assert t.drop(["label"]).attribute_names == ("color", "value")

    def test_drop_unknown_raises(self):
        with pytest.raises(ValidationError):
            _sample_table().drop(["nope"])

    def test_concat(self):
        t = _sample_table()
        combined = t.concat(t)
        assert combined.n_rows == 6

    def test_concat_schema_mismatch(self):
        t = _sample_table()
        with pytest.raises(ValidationError):
            t.concat(t.drop(["label"]))


class TestConversion:
    def test_to_matrix_defaults_to_numeric(self):
        t = _sample_table()
        m = t.to_matrix()
        assert m.shape == (3, 1)

    def test_to_matrix_rejects_categorical(self):
        with pytest.raises(ValidationError):
            _sample_table().to_matrix(["color"])

    def test_to_matrix_no_numeric_columns(self):
        t = Table.from_rows([("a",)], [categorical("c", ["a"])])
        assert t.to_matrix().shape == (1, 0)

    def test_class_codes(self):
        codes = _sample_table().class_codes("label")
        assert codes.tolist() == [1, 0, 1]

    def test_class_codes_rejects_numeric_target(self):
        with pytest.raises(ValidationError):
            _sample_table().class_codes("value")

    def test_class_codes_rejects_missing(self):
        t = Table.from_rows([(None,)], [categorical("c", ["a"])])
        with pytest.raises(ValidationError):
            t.class_codes("c")

    def test_replace_column(self):
        t = _sample_table()
        replaced = t.replace_column(
            "value", numeric("value"), np.array([1.0, 2.0, 3.0])
        )
        assert replaced.value(1, "value") == 2.0

    def test_replace_column_name_mismatch(self):
        with pytest.raises(ValidationError):
            _sample_table().replace_column(
                "value", numeric("other"), np.zeros(3)
            )

    def test_iter_rows_decodes(self):
        rows = list(_sample_table().iter_rows())
        assert rows[0] == ("red", 1.5, "yes")
        assert rows[1] == ("blue", None, "no")
