"""Unit tests for repro.core.random."""

import numpy as np
import pytest

from repro.core import ValidationError, check_random_state, spawn


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = check_random_state(42).integers(1000, size=5)
        b = check_random_state(42).integers(1000, size=5)
        assert (a == b).all()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert check_random_state(rng) is rng

    def test_numpy_integer_accepted(self):
        rng = check_random_state(np.int64(7))
        assert isinstance(rng, np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(ValidationError):
            check_random_state("seed")


class TestSpawn:
    def test_children_are_independent_and_reproducible(self):
        kids_a = spawn(check_random_state(1), 3)
        kids_b = spawn(check_random_state(1), 3)
        for a, b in zip(kids_a, kids_b):
            assert a.integers(100) == b.integers(100)

    def test_children_differ_from_each_other(self):
        kids = spawn(check_random_state(2), 2)
        draws = [k.integers(10**9) for k in kids]
        assert draws[0] != draws[1]

    def test_zero_children(self):
        assert spawn(check_random_state(0), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            spawn(check_random_state(0), -1)
