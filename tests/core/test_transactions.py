"""Unit tests for repro.core.transactions."""

import pytest

from repro.core import TransactionDatabase, ValidationError


class TestConstruction:
    def test_normalises_to_sorted_unique(self):
        db = TransactionDatabase([(3, 1, 3, 2)])
        assert db[0] == (1, 2, 3)

    def test_keeps_empty_transactions(self):
        db = TransactionDatabase([(), (1,)])
        assert len(db) == 2
        assert db[0] == ()

    def test_rejects_non_int_items(self):
        with pytest.raises(ValidationError):
            TransactionDatabase([("a",)])

    def test_rejects_bool_items(self):
        with pytest.raises(ValidationError):
            TransactionDatabase([(True,)])

    def test_rejects_negative_items(self):
        with pytest.raises(ValidationError):
            TransactionDatabase([(-1,)])

    def test_rejects_short_label_list(self):
        with pytest.raises(ValidationError):
            TransactionDatabase([(0, 5)], item_labels=["a", "b"])

    def test_from_iterable_encodes_labels(self):
        db = TransactionDatabase.from_iterable([["milk", "bread"], ["bread"]])
        assert db.n_items == 2
        assert db.decode(db[1]) == ("milk",) or db.decode(db[1]) == ("bread",)
        assert set(db.item_labels) == {"milk", "bread"}

    def test_from_iterable_roundtrip(self):
        db = TransactionDatabase.from_iterable([["x", "y", "z"], ["y"]])
        encoded = db.encode(["z", "x"])
        assert db.decode(encoded) == ("x", "z")

    def test_encode_unknown_label(self):
        db = TransactionDatabase.from_iterable([["a"]])
        with pytest.raises(ValidationError):
            db.encode(["nope"])


class TestQueries:
    def test_support_count_full_scan(self, small_db):
        assert small_db.support_count((1,)) == 4
        assert small_db.support_count((0, 1)) == 2
        assert small_db.support_count((0, 1, 3)) == 1
        assert small_db.support_count((4, 3)) == 0

    def test_support_relative(self, small_db):
        assert small_db.support((1,)) == pytest.approx(0.8)

    def test_support_on_empty_db(self):
        db = TransactionDatabase([])
        assert db.support((0,)) == 0.0

    def test_item_counts(self, small_db):
        counts = small_db.item_counts()
        assert counts[1] == 4
        assert counts[0] == 3
        assert counts[4] == 1

    def test_vertical_layout(self, small_db):
        vertical = small_db.vertical()
        assert vertical[1] == frozenset({0, 1, 2, 3})
        assert vertical[4] == frozenset({0})

    def test_avg_transaction_length(self, small_db):
        assert small_db.avg_transaction_length() == pytest.approx(12 / 5)

    def test_avg_length_empty_db(self):
        assert TransactionDatabase([]).avg_transaction_length() == 0.0

    def test_repr_mentions_sizes(self, small_db):
        assert "n_transactions=5" in repr(small_db)
