"""Unit tests for repro.core.taxonomy."""

import pytest

from repro.core import Taxonomy, ValidationError


@pytest.fixture
def clothes():
    # 0:jacket 1:ski_pants 2:outerwear 3:shirts 4:clothes 5:shoes
    # 6:hiking_boots 7:footwear
    return Taxonomy({0: [2], 1: [2], 2: [4], 3: [4], 5: [7], 6: [7]})


class TestTaxonomy:
    def test_ancestors_transitive(self, clothes):
        assert clothes.ancestors(0) == frozenset({2, 4})
        assert clothes.ancestors(2) == frozenset({4})
        assert clothes.ancestors(4) == frozenset()

    def test_parents_direct_only(self, clothes):
        assert clothes.parents(0) == (2,)
        assert clothes.parents(4) == ()

    def test_is_ancestor(self, clothes):
        assert clothes.is_ancestor(4, 0)
        assert clothes.is_ancestor(2, 1)
        assert not clothes.is_ancestor(0, 2)
        assert not clothes.is_ancestor(7, 0)

    def test_multiple_parents(self):
        tax = Taxonomy({0: [1, 2]})
        assert tax.ancestors(0) == frozenset({1, 2})

    def test_diamond(self):
        tax = Taxonomy({0: [1, 2], 1: [3], 2: [3]})
        assert tax.ancestors(0) == frozenset({1, 2, 3})

    def test_cycle_rejected(self):
        with pytest.raises(ValidationError):
            Taxonomy({0: [1], 1: [0]})

    def test_self_parent_rejected(self):
        with pytest.raises(ValidationError):
            Taxonomy({0: [0]})

    def test_extend_transaction(self, clothes):
        assert clothes.extend_transaction((0, 6)) == (0, 2, 4, 6, 7)

    def test_extend_empty(self, clothes):
        assert clothes.extend_transaction(()) == ()

    def test_close_under_ancestors(self, clothes):
        assert clothes.close_under_ancestors([1]) == frozenset({1, 2, 4})

    def test_all_category_items(self, clothes):
        assert clothes.all_category_items() == {2, 4, 7}

    def test_from_labels(self):
        vocab = {"jacket": 0, "outerwear": 1}
        tax = Taxonomy.from_labels({"jacket": ["outerwear"]}, vocab)
        assert tax.ancestors(0) == frozenset({1})

    def test_from_labels_missing_label(self):
        with pytest.raises(ValidationError):
            Taxonomy.from_labels({"jacket": ["nope"]}, {"jacket": 0})
