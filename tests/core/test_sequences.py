"""Unit tests for repro.core.sequences."""

import pytest

from repro.core import (
    SequenceDatabase,
    ValidationError,
    as_pattern,
    pattern_length,
    sequence_contains,
)


class TestAsPattern:
    def test_normalises_elements(self):
        assert as_pattern([[2, 1], [3]]) == ((1, 2), (3,))

    def test_deduplicates_within_element(self):
        assert as_pattern([[1, 1, 2]]) == ((1, 2),)

    def test_rejects_empty_element(self):
        with pytest.raises(ValidationError):
            as_pattern([[]])


class TestPatternLength:
    def test_counts_items_not_elements(self):
        assert pattern_length(((1, 2), (3,))) == 3

    def test_empty_pattern(self):
        assert pattern_length(()) == 0


class TestSequenceContains:
    def test_subset_elements_in_order(self):
        seq = ((1, 2), (3,), (4, 6, 7))
        assert sequence_contains(seq, ((1,), (4, 7)))

    def test_order_matters(self):
        seq = ((3,), (9,))
        assert not sequence_contains(seq, ((9,), (3,)))

    def test_same_element_cannot_match_twice(self):
        seq = ((1, 2),)
        assert not sequence_contains(seq, ((1,), (2,)))

    def test_empty_pattern_contained(self):
        assert sequence_contains(((1,),), ())

    def test_superset_element_required(self):
        assert not sequence_contains(((1,), (2,)), ((1, 2),))


class TestSequenceDatabase:
    def test_basic_protocol(self, small_seq_db):
        assert len(small_seq_db) == 5
        assert small_seq_db[0] == ((3,), (9,))
        assert small_seq_db.n_items == 10

    def test_drops_empty_elements(self):
        db = SequenceDatabase([[(1,), (), (2,)]])
        assert db[0] == ((1,), (2,))

    def test_rejects_negative_items(self):
        with pytest.raises(ValidationError):
            SequenceDatabase([[(-1,)]])

    def test_rejects_non_int(self):
        with pytest.raises(ValidationError):
            SequenceDatabase([[("a",)]])

    def test_support_count_worked_example(self, small_seq_db):
        # <(3)(9)> is contained in customers 1 and 4 only.
        assert small_seq_db.support_count(((3,), (9,))) == 2
        assert small_seq_db.support(((3,), (9,))) == pytest.approx(0.4)

    def test_support_single_element(self, small_seq_db):
        assert small_seq_db.support_count(((3,),)) == 4
        assert small_seq_db.support_count(((4, 7),)) == 2

    def test_from_iterable_and_decode(self):
        db = SequenceDatabase.from_iterable(
            [[["login"], ["buy", "pay"]], [["login"]]]
        )
        pattern = db[0]
        assert db.decode(pattern) == (("login",), ("buy", "pay"))

    def test_avg_sequence_length(self, small_seq_db):
        assert small_seq_db.avg_sequence_length() == pytest.approx(10 / 5)

    def test_rejects_short_label_list(self):
        with pytest.raises(ValidationError):
            SequenceDatabase([[(0, 3)]], item_labels=["a"])
