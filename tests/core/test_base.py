"""Unit tests for repro.core.base (estimator protocol and validation)."""

import numpy as np
import pytest

from repro.core import (
    Classifier,
    NotFittedError,
    Table,
    ValidationError,
    categorical,
    numeric,
)
from repro.core.base import check_in_range, check_matrix


class _ConstantClassifier(Classifier):
    """Minimal concrete classifier used to exercise the base protocol."""

    def _fit(self, features, y, target):
        self._code = int(np.bincount(y).argmax())

    def _predict_codes(self, features):
        return np.full(features.n_rows, self._code, dtype=np.int64)


def _table():
    return Table.from_rows(
        [(1.0, "a"), (2.0, "a"), (3.0, "b")],
        [numeric("x"), categorical("y", ["a", "b"])],
    )


class TestClassifierProtocol:
    def test_fit_returns_self(self):
        model = _ConstantClassifier()
        assert model.fit(_table(), "y") is model

    def test_predict_decodes_labels(self):
        model = _ConstantClassifier().fit(_table(), "y")
        assert model.predict(_table()) == ["a", "a", "a"]

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            _ConstantClassifier().predict(_table())

    def test_predict_ignores_target_column_presence(self):
        model = _ConstantClassifier().fit(_table(), "y")
        without = _table().drop(["y"])
        assert model.predict(without) == model.predict(_table())

    def test_default_proba_is_one_hot(self):
        model = _ConstantClassifier().fit(_table(), "y")
        proba = model.predict_proba(_table())
        assert proba.shape == (3, 2)
        assert (proba.sum(axis=1) == 1.0).all()

    def test_score(self):
        model = _ConstantClassifier().fit(_table(), "y")
        assert model.score(_table()) == pytest.approx(2 / 3)

    def test_fit_rejects_numeric_target(self):
        with pytest.raises(ValidationError):
            _ConstantClassifier().fit(_table(), "x")

    def test_fit_rejects_empty_table(self):
        empty = _table().take([])
        with pytest.raises(ValidationError):
            _ConstantClassifier().fit(empty, "y")


class TestValidators:
    def test_check_in_range_accepts_bounds(self):
        check_in_range("p", 0.0, 0.0, 1.0)
        check_in_range("p", 1.0, 0.0, 1.0)

    def test_check_in_range_exclusive(self):
        with pytest.raises(ValidationError):
            check_in_range("p", 0.0, 0.0, 1.0, low_inclusive=False)

    def test_check_in_range_high(self):
        with pytest.raises(ValidationError):
            check_in_range("p", 1.5, 0.0, 1.0)

    def test_check_matrix_promotes_1d(self):
        assert check_matrix([1.0, 2.0]).shape == (2, 1)

    def test_check_matrix_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_matrix(np.array([[np.nan]]))

    def test_check_matrix_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_matrix(np.empty((0, 2)))

    def test_check_matrix_allows_empty_when_asked(self):
        assert check_matrix(np.empty((0, 2)), allow_empty=True).shape == (0, 2)

    def test_check_matrix_rejects_3d(self):
        with pytest.raises(ValidationError):
            check_matrix(np.zeros((2, 2, 2)))
