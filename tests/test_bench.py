"""Benchmark harness: schema validation and payload shape.

The suite itself runs in CI's ``bench-smoke`` job (and ``repro bench``
locally); these tests cover the schema contract without paying for a
full run — one real smoke-sized benchmark plus synthetic payloads
through ``validate_payload``.
"""

import json

from repro import bench


def _valid_payload():
    return {
        "schema_version": bench.SCHEMA_VERSION,
        "suite": "parallel",
        "scale": "smoke",
        "n_jobs": 2,
        "repeat": 1,
        "n_cpus": 1,
        "python": "3.11.0",
        "warnings": [],
        "benchmarks": [
            {
                "name": "apriori",
                "params": {"rows": 10},
                "n_jobs": 2,
                "serial_seconds": 0.5,
                "parallel_seconds": 0.3,
                "speedup": 1.6667,
                "identical": True,
            }
        ],
    }


def test_validate_payload_accepts_valid():
    assert bench.validate_payload(_valid_payload()) == []


def test_validate_payload_reports_every_problem():
    payload = _valid_payload()
    del payload["n_cpus"]
    payload["benchmarks"][0]["identical"] = "yes"
    del payload["benchmarks"][0]["speedup"]
    problems = bench.validate_payload(payload)
    assert len(problems) == 3
    assert any("n_cpus" in p for p in problems)
    assert any("identical" in p for p in problems)
    assert any("speedup" in p for p in problems)


def test_validate_payload_handles_missing_benchmarks():
    problems = bench.validate_payload({})
    assert any("benchmarks" in p for p in problems)


def test_crossval_benchmark_entry_shape(tmp_path):
    entries = bench.bench_crossval(rows=120, n_jobs=2, repeat=1)
    payload = {**_valid_payload(), "benchmarks": entries}
    assert bench.validate_payload(payload) == []
    assert entries[0]["identical"] is True
    out = tmp_path / "bench.json"
    bench.write_payload(payload, str(out))
    assert json.loads(out.read_text())["benchmarks"][0]["name"] == "crossval"


def test_dispatch_benchmark_entry_shape():
    entries = bench.bench_dispatch(n_tasks=4, n_jobs=2, repeat=1)
    payload = {**_valid_payload(), "benchmarks": entries}
    assert bench.validate_payload(payload) == []
    entry = entries[0]
    assert entry["name"] == "dispatch"
    assert entry["identical"] is True
    assert entry["params"]["per_task_fork_us"] > 0
    assert entry["params"]["per_task_pool_us"] > 0


def test_run_suite_rejects_unknown_scale():
    import pytest

    from repro.core.exceptions import ValidationError

    with pytest.raises(ValidationError, match="scale"):
        bench.run_suite(scale="galactic")
