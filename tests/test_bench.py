"""Benchmark harness: schema validation and payload shape.

The suite itself runs in CI's ``bench-smoke`` job (and ``repro bench``
locally); these tests cover the schema contract without paying for a
full run — one real smoke-sized benchmark plus synthetic payloads
through ``validate_payload``.
"""

import json

from repro import bench


def _entry(name="apriori", **overrides):
    entry = {
        "name": name,
        "params": {"rows": 10},
        "n_jobs": 2,
        "serial_seconds": 0.5,
        "parallel_seconds": 0.3,
        "speedup": 1.6667,
        "identical": True,
    }
    entry.update(overrides)
    return entry


def _valid_payload():
    return {
        "schema_version": bench.SCHEMA_VERSION,
        "suite": "parallel",
        "scale": "smoke",
        "n_jobs": 2,
        "repeat": 1,
        "n_cpus": 1,
        "python": "3.11.0",
        "warnings": [],
        "benchmarks": [_entry()],
        "kernels": {
            "encodings": [
                {
                    "view": "transaction_bitmap",
                    "params": {"rows": 10},
                    "build_seconds": 0.01,
                    "nbytes": 128,
                }
            ],
            "benchmarks": [_entry("eclat_bitset", n_jobs=1)],
        },
    }


def test_validate_payload_accepts_valid():
    assert bench.validate_payload(_valid_payload()) == []


def test_validate_payload_reports_every_problem():
    payload = _valid_payload()
    del payload["n_cpus"]
    payload["benchmarks"][0]["identical"] = "yes"
    del payload["benchmarks"][0]["speedup"]
    problems = bench.validate_payload(payload)
    assert len(problems) == 3
    assert any("n_cpus" in p for p in problems)
    assert any("identical" in p for p in problems)
    assert any("speedup" in p for p in problems)


def test_validate_payload_handles_missing_benchmarks():
    problems = bench.validate_payload({})
    assert any("benchmarks" in p for p in problems)


def test_crossval_benchmark_entry_shape(tmp_path):
    entries = bench.bench_crossval(rows=120, n_jobs=2, repeat=1)
    payload = {**_valid_payload(), "benchmarks": entries}
    assert bench.validate_payload(payload) == []
    assert entries[0]["identical"] is True
    out = tmp_path / "bench.json"
    bench.write_payload(payload, str(out))
    assert json.loads(out.read_text())["benchmarks"][0]["name"] == "crossval"


def test_dispatch_benchmark_entry_shape():
    entries = bench.bench_dispatch(n_tasks=4, n_jobs=2, repeat=1)
    payload = {**_valid_payload(), "benchmarks": entries}
    assert bench.validate_payload(payload) == []
    entry = entries[0]
    assert entry["name"] == "dispatch"
    assert entry["identical"] is True
    assert entry["params"]["per_task_fork_us"] > 0
    assert entry["params"]["per_task_pool_us"] > 0


def test_run_suite_rejects_unknown_scale():
    import pytest

    from repro.core.exceptions import ValidationError

    with pytest.raises(ValidationError, match="scale"):
        bench.run_suite(scale="galactic")


# ----------------------------------------------------------------------
# Schema v3: the per-kernel suite
# ----------------------------------------------------------------------
def test_schema_version_is_3():
    assert bench.SCHEMA_VERSION == 3


def test_payload_without_kernels_is_invalid():
    payload = _valid_payload()
    del payload["kernels"]
    assert any("kernels" in p for p in bench.validate_payload(payload))


def test_kernels_block_fields_are_checked():
    payload = _valid_payload()
    del payload["kernels"]["encodings"][0]["nbytes"]
    payload["kernels"]["benchmarks"][0]["identical"] = "yes"
    problems = bench.validate_payload(payload)
    assert any("nbytes" in p for p in problems)
    assert any("kernels.benchmark[0]" in p and "identical" in p
               for p in problems)


def test_kernel_entries_share_the_benchmark_entry_shape():
    payload = _valid_payload()
    del payload["kernels"]["benchmarks"][0]["speedup"]
    assert any("speedup" in p for p in bench.validate_payload(payload))


def test_bench_encodings_measures_every_view():
    encodings = bench.bench_encodings(rows=60, n_sequences=20,
                                      table_rows=60)
    views = [e["view"] for e in encodings]
    assert views == ["transaction_bitmap", "sequence_bitmap",
                     "presorted_columns", "table_matrix"]
    for entry in encodings:
        assert entry["build_seconds"] >= 0.0
        assert entry["nbytes"] > 0
        assert isinstance(entry["params"], dict)


def test_render_report_shows_kernel_table():
    report = bench.render_report(_valid_payload())
    assert "columnar encodings" in report
    assert "eclat_bitset" in report
    assert "transaction_bitmap" in report
