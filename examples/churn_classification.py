#!/usr/bin/env python
"""Classifier study on the AIS synthetic credit data.

The workflow of the classic decision-tree papers: generate labelled
records from one of the published predicate functions, add label noise,
and compare the whole classifier shelf with proper train/test splits,
pruning ablation and cross-validation.

Run:  python examples/churn_classification.py
"""

import time

import numpy as np

from repro.classification import (
    C45,
    CART,
    KNN,
    SLIQ,
    NaiveBayes,
    OneR,
    ZeroR,
    render_tree,
)
from repro.datasets import agrawal
from repro.evaluation import classification_report, cross_val_score
from repro.preprocessing import scale_table, train_test_split

FUNCTION = 9          # disposable-income predicate (numeric + categorical)
NOISE = 0.05
N_ROWS = 6000


def classifier_shelf(train, test) -> None:
    print(f"train {train.n_rows} rows / test {test.n_rows} rows, "
          f"function F{FUNCTION}, {NOISE:.0%} label noise")
    print(f"{'classifier':<16} {'test acc':>9} {'fit[s]':>8}")
    shelf = [
        ("ZeroR", ZeroR()),
        ("OneR", OneR()),
        ("NaiveBayes", NaiveBayes()),
        ("KNN(9)", KNN(9)),
        ("C4.5", C45()),
        ("CART", CART(min_samples_leaf=5)),
        ("SLIQ", SLIQ(min_samples_leaf=5)),
    ]
    for name, model in shelf:
        started = time.perf_counter()
        model.fit(train, "group")
        fit_time = time.perf_counter() - started
        print(f"{name:<16} {model.score(test):>9.3f} {fit_time:>8.2f}")


def knn_needs_scaling(train, test) -> None:
    print()
    print("k-NN with and without feature scaling")
    raw = KNN(9).fit(train, "group").score(test)
    scaled = KNN(9).fit(
        scale_table(train, "standard"), "group"
    ).score(scale_table(test, "standard"))
    print(f"  raw features:    {raw:.3f}")
    print(f"  z-scored:        {scaled:.3f}")


def pruning_ablation(train, test) -> None:
    print()
    print("pruning ablation (C4.5 pessimistic pruning)")
    unpruned = C45(prune=False).fit(train, "group")
    pruned = C45(prune=True).fit(train, "group")
    print(f"  unpruned: {unpruned.n_nodes():>5} nodes, "
          f"test acc {unpruned.score(test):.3f}")
    print(f"  pruned:   {pruned.n_nodes():>5} nodes, "
          f"test acc {pruned.score(test):.3f}")


def inspect_model(train) -> None:
    print()
    print("top of the learned CART tree")
    model = CART(max_depth=3, min_samples_leaf=20).fit(train, "group")
    print(render_tree(model.tree_, train.attribute("group"), indent="  "))


def cross_validation(table) -> None:
    print()
    print("5-fold cross-validation (stratified)")
    for name, factory in [
        ("NaiveBayes", NaiveBayes),
        ("CART", lambda: CART(min_samples_leaf=5)),
    ]:
        scores = cross_val_score(factory, table, "group", random_state=0)
        print(f"  {name:<12} {np.mean(scores):.3f} +/- {np.std(scores):.3f}")


def per_class_report(train, test) -> None:
    print()
    print("per-class report (C4.5)")
    model = C45().fit(train, "group")
    y_true = [test.value(i, "group") for i in range(test.n_rows)]
    y_pred = model.predict(test)
    for label, entry in classification_report(y_true, y_pred).items():
        print(
            f"  class {label}: precision={entry.precision:.3f} "
            f"recall={entry.recall:.3f} f1={entry.f1:.3f} "
            f"(n={entry.support})"
        )


if __name__ == "__main__":
    data = agrawal(N_ROWS, function=FUNCTION, noise=NOISE, random_state=11)
    train_table, test_table = train_test_split(
        data, 0.3, stratify="group", random_state=0
    )
    classifier_shelf(train_table, test_table)
    knn_needs_scaling(train_table, test_table)
    pruning_ablation(train_table, test_table)
    inspect_model(train_table)
    cross_validation(data)
    per_class_report(train_table, test_table)
