#!/usr/bin/env python
"""Episode mining and deviation detection on a telecom-style alarm stream.

The WINEPI paper's motivating scenario: a long stream of alarm events in
which some alarm types systematically precede others.  We plant a causal
chain (link_flap -> packet_loss -> service_down), bury it in background
noise, recover it as frequent serial episodes, and finish by flagging
deviating measurement rows with the classic outlier detectors.

Run:  python examples/alarm_monitoring.py
"""

import numpy as np

from repro.outliers import distance_outliers, iqr_outliers, zscore_outliers
from repro.sequences import EventSequence, winepi

ALARMS = ["link_flap", "packet_loss", "service_down", "cpu_high", "fan_warn"]


def build_stream(n_incidents: int = 60, horizon: int = 2000, seed: int = 7):
    rng = np.random.default_rng(seed)
    events = []
    # Planted causal chain: 0 -> 1 (lag 1-2) -> 2 (lag 2-3).
    for _ in range(n_incidents):
        t0 = int(rng.integers(0, horizon - 10))
        t1 = t0 + int(rng.integers(1, 3))
        t2 = t1 + int(rng.integers(2, 4))
        events += [(t0, 0), (t1, 1), (t2, 2)]
    # Background noise: unrelated alarms at random times.
    for _ in range(400):
        events.append((int(rng.integers(horizon)), int(rng.integers(3, 5))))
    return EventSequence(events)


def mine_episodes(stream: EventSequence) -> None:
    print("=" * 64)
    print("1. WINEPI on the alarm stream")
    print("=" * 64)
    print(f"{len(stream)} events over span {stream.span()}")
    result = winepi(stream, window=8, min_frequency=0.02,
                    episode_type="serial", max_size=3)
    print(f"{len(result)} frequent serial episodes "
          f"(window=8, min freq 2% of {result.n_windows} windows)")
    print("strongest multi-event episodes:")
    shown = 0
    for episode, freq in result.sorted_by_frequency():
        if len(episode) < 2:
            continue
        chain = " -> ".join(ALARMS[e] for e in episode)
        print(f"  {chain:<46} freq={freq:.3f}")
        shown += 1
        if shown == 6:
            break
    planted = (0, 1, 2)
    if planted in result:
        chain = " -> ".join(ALARMS[e] for e in planted)
        print(f"planted chain recovered: {chain} "
              f"(freq {result.frequency(planted):.3f})")


def detect_deviations(seed: int = 8) -> None:
    print()
    print("=" * 64)
    print("2. Deviation detection on router health metrics")
    print("=" * 64)
    rng = np.random.default_rng(seed)
    healthy = rng.normal([40.0, 0.5], [5.0, 0.2], size=(300, 2))
    failing = np.array([[95.0, 6.0], [10.0, 8.5], [99.0, 0.4]])
    X = np.vstack([healthy, failing])
    truth = np.array([False] * 300 + [True] * 3)

    for name, flags in [
        ("z-score (|z| > 3.5)", zscore_outliers(X, 3.5)),
        ("Tukey IQR (k=3)", iqr_outliers(X, 3.0)),
        ("DB(0.95, 10)", distance_outliers(X, eps=10.0, fraction=0.95)),
    ]:
        hit = int(flags[truth].sum())
        false_alarms = int(flags[~truth].sum())
        print(f"  {name:<22} found {hit}/3 planted, "
              f"{false_alarms} false alarms")


if __name__ == "__main__":
    stream = build_stream()
    mine_episodes(stream)
    detect_deviations()
