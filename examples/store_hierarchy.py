#!/usr/bin/env python
"""Generalized and quantitative association rules.

Two extensions of plain market-basket mining, both from the 1995-96
papers the tutorial covers:

* **generalized rules** — with a product taxonomy, "outerwear -> hiking
  boots" can be strong even when every specific jacket rule is weak;
* **quantitative rules** — rules over numeric/categorical table columns,
  such as "age in [30..39] -> group B".

Run:  python examples/store_hierarchy.py
"""

from repro.associations import (
    QuantitativeMiner,
    cumulate,
    generate_rules,
    r_interesting_rules,
)
from repro.core import Table, Taxonomy, TransactionDatabase, categorical, numeric
from repro.datasets import agrawal


def generalized_rules_demo() -> None:
    print("=" * 64)
    print("1. Generalized rules over a product taxonomy")
    print("=" * 64)
    labels = [
        "jacket", "ski_pants", "hiking_boots", "dress_shoes",   # 0-3 leaves
        "outerwear", "footwear", "clothes",                     # 4-6 categories
    ]
    taxonomy = Taxonomy({0: [4], 1: [4], 4: [6], 2: [5], 3: [5]})
    baskets = [
        (0, 2), (1, 2), (3,), (0,), (1, 3), (0, 2), (1, 2), (3, 0),
    ]
    db = TransactionDatabase(baskets, item_labels=labels)

    itemsets = cumulate(db, taxonomy, min_support=0.4)
    print("frequent generalized itemsets at 40% support:")
    for itemset, count in itemsets.sorted_by_support()[:8]:
        names = {labels[i] for i in itemset}
        print(f"  {names}  ({count}/{len(db)})")

    rules = generate_rules(itemsets, min_confidence=0.6)
    interesting = r_interesting_rules(itemsets, taxonomy, 0.6, r=1.1)
    print(f"\nrules at 60% confidence: {len(rules)}  "
          f"-> R-interesting (R=1.1): {len(interesting)}")
    for rule in interesting[:6]:
        ante = {labels[i] for i in rule.antecedent}
        cons = {labels[i] for i in rule.consequent}
        print(f"  {ante} -> {cons}  conf={rule.confidence:.2f}")


def quantitative_rules_demo() -> None:
    print()
    print("=" * 64)
    print("2. Quantitative rules over a relational table")
    print("=" * 64)
    table = agrawal(1500, function=1, noise=0.0, random_state=3)
    # Keep the columns the F1 predicate actually involves, plus one
    # distractor, so the output stays readable.
    table = table.select(["age", "salary", "elevel", "group"])
    miner = QuantitativeMiner(
        n_base_intervals=8,
        min_support=0.1,
        max_support=0.5,
        min_confidence=0.85,
        max_size=2,
    )
    rules = miner.mine(table)
    print(f"{len(miner.items_)} boolean items, {len(rules)} rules "
          "(confidence >= 0.85); the strongest:")
    shown = 0
    for rule in rules:
        line = miner.render_rule(rule)
        if "group" in line:
            print(f"  {line}")
            shown += 1
        if shown == 8:
            break


if __name__ == "__main__":
    generalized_rules_demo()
    quantitative_rules_demo()
