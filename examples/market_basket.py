#!/usr/bin/env python
"""Market-basket analysis at workload scale.

Reproduces the workflow of the classic association-rule studies:

1. generate a Quest-style workload (the T?.I?.D? family),
2. sweep the minimum support and watch the itemset lattice grow,
3. race the five miners on the same workload,
4. generate and screen rules with multiple interestingness measures.

Run:  python examples/market_basket.py
"""

import time

from repro.associations import (
    apriori,
    apriori_hybrid,
    apriori_tid,
    eclat,
    filter_rules,
    fp_growth,
    generate_rules,
)
from repro.datasets import QuestBasketGenerator, QuestConfig


def build_workload():
    config = QuestConfig(
        n_transactions=4000,
        avg_transaction_length=10,
        avg_pattern_length=4,
        n_items=500,
        n_patterns=80,
    )
    print(f"workload {config.name()}  (N={config.n_items} items, "
          f"|L|={config.n_patterns} patterns)")
    db = QuestBasketGenerator(config, random_state=2024).generate()
    print(f"  {len(db)} transactions, average length "
          f"{db.avg_transaction_length():.1f}")
    return db


def support_sweep(db) -> None:
    print()
    print("minimum-support sweep (Apriori)")
    print(f"{'minsup':>8} {'itemsets':>9} {'largest':>8} {'passes':>7} "
          f"{'time[s]':>8}")
    for min_support in (0.05, 0.02, 0.01, 0.005):
        started = time.perf_counter()
        result = apriori(db, min_support)
        elapsed = time.perf_counter() - started
        print(
            f"{min_support:>8.3f} {len(result):>9} {result.max_size():>8} "
            f"{len(result.pass_stats):>7} {elapsed:>8.2f}"
        )


def miner_race(db, min_support: float = 0.01) -> None:
    print()
    print(f"miner race at minsup={min_support}")
    reference = None
    for name, miner in [
        ("Apriori", apriori),
        ("AprioriTid", apriori_tid),
        ("AprioriHybrid", apriori_hybrid),
        ("Eclat", eclat),
        ("FP-Growth", fp_growth),
    ]:
        started = time.perf_counter()
        result = miner(db, min_support)
        elapsed = time.perf_counter() - started
        if reference is None:
            reference = result.supports
        agreement = "ok" if result.supports == reference else "MISMATCH"
        print(f"  {name:<14} {elapsed:>7.2f}s  "
              f"{len(result):>6} itemsets  [{agreement}]")


def rule_screening(db) -> None:
    print()
    print("rule generation and screening")
    itemsets = apriori(db, 0.01)
    rules = generate_rules(itemsets, min_confidence=0.5)
    print(f"  {len(rules)} rules at confidence >= 0.5")
    interesting = filter_rules(rules, min_lift=2.0)
    print(f"  {len(interesting)} of them with lift >= 2.0")
    for rule in interesting[:8]:
        print(
            f"    {set(rule.antecedent)} -> {set(rule.consequent)}  "
            f"sup={rule.support:.3f} conf={rule.confidence:.2f} "
            f"lift={rule.lift:.1f} conv={rule.conviction:.2f}"
        )


if __name__ == "__main__":
    workload = build_workload()
    support_sweep(workload)
    miner_race(workload)
    rule_screening(workload)
