"""CI server chaos smoke: SIGKILL the job server mid-job, demand bytes.

The server-level twin of ``chaos_smoke.py``.  This script:

1. starts ``repro serve`` as a real subprocess on a durable store,
2. submits a checkpointed apriori job throttled to one pass boundary
   per second,
3. SIGKILLs the *server* once the job is running with at least one
   persisted snapshot — no shutdown hooks, no cleanup,
4. restarts the server against the same store,
5. asserts the job is recovered, finishes ``done``, and that its
   stored result bytes equal an uninterrupted in-process reference.

Exit code 0 means the fault-tolerance contract held; any other exit
fails CI.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.datasets import quest_basket, save_transactions
from repro.server import JobStore, canonical_result_bytes, execute_job

PARAMS = {
    "min_support": 0.02,
    "min_confidence": 0.6,
    "pass_delay": 1.0,
    "checkpoint_every": 1,
}


def start_server(store_root):
    """Launch ``repro serve`` and wait for its banner; returns (proc, port)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", str(store_root),
         "--port", "0", "--workers", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=dict(os.environ),
    )
    banner = []
    while True:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"server died during startup:\n{''.join(banner)}"
            )
        banner.append(line)
        print(f"  server: {line.rstrip()}")
        if line.startswith("repro-server listening"):
            return proc, int(line.split("port=")[1].split()[0]), banner


def request(port, method, path, body=None):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", method=method,
        data=json.dumps(body).encode() if body is not None else None,
    )
    with urllib.request.urlopen(req, timeout=30) as response:
        return json.loads(response.read())


def wait_for(predicate, timeout, message):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.1)
    raise SystemExit(f"timed out waiting for {message}")


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="repro-server-chaos-"))
    dataset = workdir / "basket.dat"
    save_transactions(quest_basket(150, random_state=0), str(dataset))
    store_root = workdir / "store"

    reference = canonical_result_bytes(
        execute_job("mine", str(dataset), "apriori", PARAMS)
    )
    print(f"reference result: {len(reference)} bytes")

    proc, port, _banner = start_server(store_root)
    store = JobStore(store_root)
    try:
        record = request(port, "POST", "/jobs", {
            "kind": "mine", "algorithm": "apriori",
            "dataset": str(dataset), "params": PARAMS,
        })
        job_id = record["job_id"]
        print(f"submitted job {job_id}")

        wait_for(
            lambda: (store.get(job_id).state == "running"
                     and list(store.checkpoint_dir(job_id)
                              .glob("snapshot-*"))),
            timeout=60,
            message="job running with a persisted checkpoint",
        )
        print("job is mid-run with a snapshot on disk -- SIGKILL the server")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
    except BaseException:
        if proc.poll() is None:
            proc.kill()
        raise

    state = store.get(job_id).state
    print(f"store after the kill: job is {state!r}")
    if state != "running":
        raise SystemExit(f"expected the dead server to leave the job "
                         f"running, found {state!r}")

    proc, port, banner = start_server(store_root)
    try:
        if not any(f"recovered job={job_id}" in line for line in banner):
            raise SystemExit("restarted server did not report the recovery")
        final = wait_for(
            lambda: (store.get(job_id)
                     if store.get(job_id).state in
                     ("done", "failed", "cancelled") else None),
            timeout=120,
            message="recovered job to finish",
        )
        if final.state != "done":
            raise SystemExit(f"recovered job ended {final.state!r}: "
                             f"{final.error}")
        result = store.read_result_bytes(job_id)
        if result != reference:
            raise SystemExit("recovered result differs from the "
                             "uninterrupted reference")
        print(f"recovered job finished done after {final.recoveries} "
              f"recovery, {final.attempts} attempts; result is "
              f"byte-identical ({len(result)} bytes)")
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)
    print("OK: the server-level fault-tolerance contract held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
