#!/usr/bin/env python
"""Quickstart tour of the repro library.

One small scene per technique family:

1. association rules on a toy basket,
2. sequential patterns on toy customer histories,
3. a decision tree with extracted rules,
4. clustering with quality metrics.

Run:  python examples/quickstart.py
"""

from repro.associations import apriori, generate_rules
from repro.classification import C45, extract_rules
from repro.clustering import KMeans
from repro.core import SequenceDatabase, TransactionDatabase
from repro.datasets import gaussian_blobs, play_tennis
from repro.evaluation import adjusted_rand_index, silhouette
from repro.sequences import gsp


def demo_association_rules() -> None:
    print("=" * 64)
    print("1. Association rules (Apriori)")
    print("=" * 64)
    baskets = [
        ["bread", "milk"],
        ["bread", "diapers", "beer", "eggs"],
        ["milk", "diapers", "beer", "cola"],
        ["bread", "milk", "diapers", "beer"],
        ["bread", "milk", "diapers", "cola"],
    ]
    db = TransactionDatabase.from_iterable(baskets)
    itemsets = apriori(db, min_support=0.4)
    print(f"frequent itemsets at 40% support: {len(itemsets)}")
    for itemset, count in itemsets.sorted_by_support()[:5]:
        labels = db.decode(itemset)
        print(f"  {set(labels)}  support={count}/{len(db)}")
    rules = generate_rules(itemsets, min_confidence=0.7)
    print(f"rules at 70% confidence: {len(rules)}")
    for rule in rules[:4]:
        ante = set(db.decode(rule.antecedent))
        cons = set(db.decode(rule.consequent))
        print(
            f"  {ante} -> {cons}  "
            f"conf={rule.confidence:.2f} lift={rule.lift:.2f}"
        )


def demo_sequences() -> None:
    print()
    print("=" * 64)
    print("2. Sequential patterns (GSP)")
    print("=" * 64)
    histories = [
        [["laptop"], ["mouse", "keyboard"], ["monitor"]],
        [["laptop"], ["mouse"], ["monitor"]],
        [["phone"], ["case"]],
        [["laptop"], ["keyboard", "mouse"]],
        [["phone"], ["case"], ["charger"]],
    ]
    db = SequenceDatabase.from_iterable(histories)
    patterns = gsp(db, min_support=0.4)
    print(f"frequent sequential patterns at 40% support: {len(patterns)}")
    for pattern, count in patterns.sorted_by_support():
        readable = " -> ".join(
            "{" + ", ".join(map(str, element)) + "}"
            for element in db.decode(pattern)
        )
        print(f"  {readable}  ({count}/{len(db)} customers)")


def demo_decision_tree() -> None:
    print()
    print("=" * 64)
    print("3. Decision tree (C4.5) with interpretable rules")
    print("=" * 64)
    table = play_tennis()
    model = C45(prune=False).fit(table, "play")
    print(f"training accuracy: {model.score(table):.2f}  "
          f"({model.n_leaves()} leaves, depth {model.depth()})")
    print("rules extracted from the tree:")
    for conditions, label in extract_rules(
        model.tree_, table.attribute("play")
    ):
        clause = " and ".join(conditions) if conditions else "always"
        print(f"  if {clause} then play = {label!r}")


def demo_clustering() -> None:
    print()
    print("=" * 64)
    print("4. Clustering (k-means) with quality metrics")
    print("=" * 64)
    X, truth = gaussian_blobs(300, centers=4, cluster_std=0.8, random_state=7)
    model = KMeans(n_clusters=4, random_state=0).fit(X)
    print(f"inertia (SSE):        {model.inertia_:.1f}")
    print(f"silhouette:           {silhouette(X, model.labels_):.3f}")
    print(f"ARI vs ground truth:  "
          f"{adjusted_rand_index(model.labels_, truth):.3f}")


if __name__ == "__main__":
    demo_association_rules()
    demo_sequences()
    demo_decision_tree()
    demo_clustering()
