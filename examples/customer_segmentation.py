#!/usr/bin/env python
"""Customer segmentation: a clustering method study.

Walks the classic clustering decision tree: pick k with internal
metrics, compare centroid / medoid / hierarchical / summary-tree /
density methods, and show where each breaks (outliers for k-means,
non-convex shapes for everything but density methods).

Run:  python examples/customer_segmentation.py
"""

import time

import numpy as np

from repro.clustering import (
    CLARA,
    CLARANS,
    DBSCAN,
    PAM,
    Agglomerative,
    Birch,
    KMeans,
)
from repro.datasets import gaussian_grid, two_moons
from repro.evaluation import adjusted_rand_index, silhouette, sse


def choose_k(X) -> int:
    print("choosing k by silhouette / SSE elbow")
    print(f"{'k':>4} {'SSE':>12} {'silhouette':>11}")
    best_k, best_sil = None, -1.0
    for k in (2, 4, 6, 9, 12, 16):
        model = KMeans(k, random_state=0).fit(X)
        sil = silhouette(X, model.labels_)
        print(f"{k:>4} {model.inertia_:>12.1f} {sil:>11.3f}")
        if sil > best_sil:
            best_k, best_sil = k, sil
    print(f"-> silhouette picks k={best_k}")
    return best_k


def method_study(X, truth, k: int) -> None:
    print()
    print(f"method comparison at k={k}")
    print(f"{'method':<16} {'ARI':>7} {'SSE':>12} {'time[s]':>8}")
    methods = [
        ("k-means", KMeans(k, random_state=0)),
        ("PAM", PAM(k)),
        ("CLARA", CLARA(k, random_state=0)),
        ("CLARANS", CLARANS(k, random_state=0)),
        ("Ward", Agglomerative(k, "ward")),
        ("BIRCH", Birch(threshold=1.0, n_clusters=k, random_state=0)),
    ]
    for name, model in methods:
        started = time.perf_counter()
        labels = model.fit_predict(X)
        elapsed = time.perf_counter() - started
        print(
            f"{name:<16} {adjusted_rand_index(labels, truth):>7.3f} "
            f"{sse(X, labels):>12.1f} {elapsed:>8.2f}"
        )


def shape_limits() -> None:
    print()
    print("non-convex shapes: two interleaved moons")
    X, truth = two_moons(600, noise=0.06, random_state=3)
    km = KMeans(2, random_state=0).fit_predict(X)
    db = DBSCAN(eps=0.2, min_samples=5).fit(X)
    clustered = db.labels_ >= 0
    print(f"  k-means ARI: {adjusted_rand_index(km, truth):.3f}"
          "   (centroids cannot bend)")
    print(
        f"  DBSCAN  ARI: "
        f"{adjusted_rand_index(db.labels_[clustered], truth[clustered]):.3f}"
        f"   ({db.n_clusters_} clusters, "
        f"{(~clustered).sum()} noise points)"
    )


def compression_demo(X) -> None:
    print()
    print("BIRCH single-scan compression")
    for threshold in (0.4, 0.8, 1.6):
        model = Birch(threshold=threshold, n_clusters=9, random_state=0).fit(X)
        print(
            f"  T={threshold:<4} -> {len(model.subcluster_centers_):>5} "
            f"CF entries for {len(X)} points"
        )


if __name__ == "__main__":
    X_grid, truth_grid = gaussian_grid(
        1200, grid_side=3, spacing=6.0, cluster_std=0.55, random_state=42
    )
    k = choose_k(X_grid)
    method_study(X_grid, truth_grid, k)
    shape_limits()
    compression_demo(X_grid)
