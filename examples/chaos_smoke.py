"""CI chaos smoke: kill a supervised mine twice, demand exact results.

Runs a supervised apriori mine on a generated basket while a seeded
:class:`~repro.runtime.ChaosMonkey` SIGKILLs the child after each newly
persisted checkpoint, then asserts the storm survivor's itemsets equal
an uninterrupted in-process reference — the chaos-proven resume
contract, exercised end to end in under a minute.

Exit code 0 means the contract held; any other exit fails CI.
"""

import sys
import tempfile
import time

from repro.associations import apriori
from repro.datasets import quest_basket
from repro.runtime import ChaosMonkey, Checkpointer, RetryPolicy, Supervisor

KILLS = 2


class SlowCheckpointer(Checkpointer):
    """Dwell briefly inside each marked boundary so the monkey's poll
    loop reliably lands its kill there (algorithms are untouched)."""

    def mark(self, key, state):
        super().mark(key, state)
        time.sleep(0.01)


def mine(db, min_support, ctx=None):
    if ctx is not None and ctx.checkpointer is not None:
        checkpoint = ctx.checkpointer
        ctx = ctx.replace(checkpointer=SlowCheckpointer(
            checkpoint.store,
            every=checkpoint.every,
            resume=checkpoint.resume_requested,
        ))
    return apriori(db, min_support, ctx=ctx)


def main() -> int:
    db = quest_basket(500, random_state=13)
    reference = apriori(db, 0.02)
    print(f"reference: {len(reference)} itemsets from {len(db)} transactions")

    monkey = ChaosMonkey(
        kills=KILLS, after_checkpoints=(1, 2), random_state=5,
        poll_interval=0.001,
    )
    supervisor = Supervisor(
        retry=RetryPolicy(max_retries=KILLS + 2, base_delay=0.0, jitter=0.0),
        checkpoint_dir=tempfile.mkdtemp(prefix="chaos-smoke-"),
        monkey=monkey,
    )
    outcome = supervisor.run(mine, db, 0.02)

    print(f"strikes landed: {len(monkey.strikes)} "
          f"(attempts: {outcome.attempts})")
    for report in outcome.reports:
        print(f"  attempt {report.attempt}: {report}")
    if len(monkey.strikes) < KILLS:
        print(f"FAIL: monkey landed {len(monkey.strikes)} < {KILLS} kills")
        return 1
    if outcome.value.supports != reference.supports:
        print("FAIL: storm survivor's itemsets differ from the reference")
        return 1
    print(f"OK: {len(outcome.value)} itemsets identical to the reference "
          f"after {len(monkey.strikes)} mid-run SIGKILLs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
