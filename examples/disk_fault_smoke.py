"""CI disk-fault smoke: seeded ENOSPC/EIO bursts against a live job run.

The storage-level twin of ``server_chaos_smoke.py``.  For every cell of
a small (fault-op x seed) matrix this script:

1. opens a fresh durable store and an in-process scheduler with a
   tight lease so a swallowed write failure can never wedge a job,
2. installs a seeded :class:`DiskGremlin` that injects a burst of
   ``ENOSPC`` (or ``EIO``) at one stage of the atomic-write protocol —
   temp write, fsync, rename, or directory fsync — at a seeded point
   in the run,
3. submits a checkpointed apriori job and waits for a terminal state,
4. asserts the robustness contract: the job either completes with
   result bytes identical to an uninterrupted reference, or fails with
   a structured ``store-full`` / ``disk-error`` cause — and whatever
   happened, every record left in the store parses (no torn JSON, no
   stranded temp files after recovery).

Exit code 0 means the contract held for every cell; any other exit
fails CI.
"""

import errno
import json
import tempfile
import time
from pathlib import Path

from repro.datasets import quest_basket, save_transactions
from repro.runtime import DiskGremlin, injected
from repro.server import JobStore, canonical_result_bytes, execute_job
from repro.server.scheduler import Scheduler

PARAMS = {
    "min_support": 0.02,
    "min_confidence": 0.6,
    "checkpoint_every": 1,
}
TERMINAL = ("done", "failed", "cancelled", "poisoned")
DEADLINE = 120.0

# One cell per protocol stage, each with its own seed and errno.  The
# seeded ``after`` draw decides whether the burst lands on the job's
# result write (→ structured failure) or misses it (→ clean run), so
# both arms of the contract get exercised across the matrix.  Faults
# are scoped to the durable job record: child-side checkpoint faults
# replay identically on every forked retry (the injector is copied at
# fork) and poison the job instead — that arm is pinned by the unit
# tests, not this smoke.
MATRIX = [
    # (op, errno, after, seed): after=0 pins a burst on the very first
    # result write; after=(0, 1) lets the seed decide.
    ("write", errno.ENOSPC, 0, 0),
    ("fsync", errno.EIO, 0, 1),
    ("replace", errno.ENOSPC, 0, 2),
    ("fsync-dir", errno.EIO, 0, 3),
    ("write", errno.ENOSPC, (0, 1), 4),
    ("replace", errno.ENOSPC, (0, 1), 5),
]


def wait_terminal(store, job_id):
    deadline = time.monotonic() + DEADLINE
    while time.monotonic() < deadline:
        record = store.get(job_id)
        if record.state in TERMINAL:
            return record
        time.sleep(0.1)
    raise SystemExit(
        f"WEDGED: job {job_id} still {store.get(job_id).state!r} "
        f"after {DEADLINE}s"
    )


def check_store_integrity(store_root: Path) -> int:
    """Every record on disk must parse — a torn file fails the smoke."""
    checked = 0
    for path in sorted(store_root.rglob("*.json")):
        try:
            json.loads(path.read_bytes())
        except ValueError:
            raise SystemExit(f"TORN RECORD: {path} does not parse")
        checked += 1
    return checked


def run_cell(dataset: str, reference: bytes, op: str, errno_code: int,
             after, seed: int) -> str:
    workdir = Path(tempfile.mkdtemp(prefix=f"repro-disk-fault-{seed}-"))
    store = JobStore(workdir / "store")
    scheduler = Scheduler(store, workers=1, lease_timeout=2.0,
                          reap_interval=0.25)
    gremlin = DiskGremlin(op=op, errno_code=errno_code, after=after,
                          burst=2, match="result.json", random_state=seed)
    scheduler.start()
    try:
        with injected(gremlin):
            record = scheduler.submit("t", "mine", "apriori", dataset,
                                      dict(PARAMS))
            final = wait_terminal(store, record.job_id)
    finally:
        scheduler.stop()

    if final.state == "done":
        result = store.read_result_bytes(record.job_id)
        if result != reference:
            raise SystemExit(
                f"TORN RESULT: seed {seed} op {op!r} completed but bytes "
                "differ from the uninterrupted reference"
            )
        outcome = "done, byte-identical"
    elif final.state == "failed":
        cause = (final.error or {}).get("cause")
        if cause not in ("store-full", "disk-error"):
            raise SystemExit(
                f"UNSTRUCTURED FAILURE: seed {seed} op {op!r} failed "
                f"with cause {cause!r}, error={final.error}"
            )
        outcome = f"failed, structured cause {cause!r}"
    else:
        raise SystemExit(
            f"UNEXPECTED STATE: seed {seed} op {op!r} ended "
            f"{final.state!r}: {final.error}"
        )

    # A fresh boot over the battered store must sweep temps and leave
    # only parseable records behind.
    recovered_store = JobStore(workdir / "store")
    recovered_store.recover()
    checked = check_store_integrity(workdir / "store")
    return f"{outcome}; {len(gremlin.injected)} faults; {checked} records ok"


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="repro-disk-fault-smoke-"))
    dataset = workdir / "basket.dat"
    save_transactions(quest_basket(150, random_state=0), str(dataset))

    reference = canonical_result_bytes(
        execute_job("mine", str(dataset), "apriori", PARAMS)
    )
    print(f"reference result: {len(reference)} bytes")

    for op, errno_code, after, seed in MATRIX:
        summary = run_cell(str(dataset), reference, op, errno_code, after,
                           seed)
        print(f"  op={op:<9} errno={errno.errorcode[errno_code]:<6} "
              f"after={after!s:<6} seed={seed}: {summary}")

    print("OK: no wedged job, no torn record, every failure structured")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
