"""CI cache chaos smoke: kill mid-job, restart, resubmit, demand a cache hit.

The client-edge twin of ``server_chaos_smoke.py``.  This script:

1. starts ``repro serve`` as a real subprocess on a durable store,
2. submits a checkpointed apriori job throttled to one pass boundary
   per second and polls ``GET /jobs/{id}/events`` while it runs,
3. SIGKILLs the *server* mid-job — no shutdown hooks, no cleanup,
4. restarts the server against the same store and resumes the event
   poll from the stored offset, asserting the log is gapless (seq is
   0..N-1 with no holes and no torn line) across the crash,
5. waits for the recovered job to finish, then POSTs the *identical*
   submission again and asserts it is served from the result cache:
   ``cache_hit`` true, state ``done`` immediately, result bytes equal
   to the recovered job's — byte-identical, without re-mining.

Exit code 0 means the client-edge robustness contract held; any other
exit fails CI.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.datasets import quest_basket, save_transactions
from repro.server import JobStore

PARAMS = {
    "min_support": 0.02,
    "min_confidence": 0.6,
    "pass_delay": 1.0,
    "checkpoint_every": 1,
}


def start_server(store_root):
    """Launch ``repro serve`` and wait for its banner; returns (proc, port)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", str(store_root),
         "--port", "0", "--workers", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=dict(os.environ),
    )
    banner = []
    while True:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"server died during startup:\n{''.join(banner)}"
            )
        banner.append(line)
        print(f"  server: {line.rstrip()}")
        if line.startswith("repro-server listening"):
            return proc, int(line.split("port=")[1].split()[0]), banner


def request(port, method, path, body=None):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", method=method,
        data=json.dumps(body).encode() if body is not None else None,
    )
    with urllib.request.urlopen(req, timeout=30) as response:
        return json.loads(response.read())


def wait_for(predicate, timeout, message):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.1)
    raise SystemExit(f"timed out waiting for {message}")


def assert_gapless(events):
    seqs = [event["seq"] for event in events]
    if seqs != list(range(len(seqs))):
        raise SystemExit(f"event log has gaps or disorder: {seqs}")


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="repro-cache-chaos-"))
    dataset = workdir / "basket.dat"
    save_transactions(quest_basket(150, random_state=0), str(dataset))
    store_root = workdir / "store"
    submission = {"kind": "mine", "algorithm": "apriori",
                  "dataset": str(dataset), "params": PARAMS}

    proc, port, _banner = start_server(store_root)
    store = JobStore(store_root)
    collected = []
    try:
        record = request(port, "POST", "/jobs", submission)
        job_id = record["job_id"]
        print(f"submitted job {job_id}")

        def poll_events():
            page = request(port, "GET",
                           f"/jobs/{job_id}/events"
                           f"?offset={len(collected)}")
            collected.extend(page["events"])
            return page

        wait_for(
            lambda: (poll_events()
                     and any(e["phase"].startswith("pass")
                             for e in collected)
                     and store.get(job_id).state == "running"),
            timeout=60,
            message="job running with progress events on disk",
        )
        print(f"job is mid-run with {len(collected)} events polled "
              f"-- SIGKILL the server")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
    except BaseException:
        if proc.poll() is None:
            proc.kill()
        raise

    proc, port, _banner = start_server(store_root)
    try:
        # Resume the event poll exactly where the dead server left it.
        resumed = request(port, "GET",
                          f"/jobs/{job_id}/events?offset={len(collected)}")
        collected.extend(resumed["events"])
        assert_gapless(collected)
        phases = [event["phase"] for event in collected]
        if "requeued" not in phases:
            raise SystemExit(f"no requeued event after recovery: {phases}")
        print(f"event log resumed across the crash: {len(collected)} "
              f"events, gapless, requeued marker present")

        final = wait_for(
            lambda: (store.get(job_id)
                     if store.get(job_id).state in
                     ("done", "failed", "cancelled") else None),
            timeout=120,
            message="recovered job to finish",
        )
        if final.state != "done":
            raise SystemExit(f"recovered job ended {final.state!r}: "
                             f"{final.error}")
        original = store.read_result_bytes(job_id)

        # The final poll must close the log with a done marker, still
        # gapless.
        tail = request(port, "GET",
                       f"/jobs/{job_id}/events?offset={len(collected)}")
        collected.extend(tail["events"])
        assert_gapless(collected)
        if collected[-1]["phase"] != "done":
            raise SystemExit(
                f"log does not end with done: {collected[-1]}"
            )

        # Identical resubmission: served from the cache, byte-identical.
        duplicate = request(port, "POST", "/jobs", submission)
        dup_id = duplicate["job_id"]
        dup = store.get(dup_id)
        if not dup.cache_hit or dup.state != "done":
            raise SystemExit(
                f"resubmission was not a cache hit: state={dup.state!r} "
                f"cache_hit={dup.cache_hit!r}"
            )
        if store.read_result_bytes(dup_id) != original:
            raise SystemExit("cache-served result is not byte-identical")
        health = request(port, "GET", "/healthz")
        if health["cache"]["hits"] < 1:
            raise SystemExit(f"healthz shows no cache hit: "
                             f"{health['cache']}")
        print(f"identical resubmission served from cache "
              f"(job {dup_id}): byte-identical "
              f"({len(original)} bytes), healthz {health['cache']}")
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)
    print("OK: the client-edge robustness contract held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
