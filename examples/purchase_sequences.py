#!/usr/bin/env python
"""Sequential pattern mining over customer purchase histories.

The GSP paper's workflow: generate a customer-sequence workload, mine it
with all three miners (they must agree), then show what the time
constraints — max-gap, min-gap, sliding window — do to the pattern set.

Run:  python examples/purchase_sequences.py
"""

import time

from repro.datasets import QuestSequenceConfig, QuestSequenceGenerator
from repro.sequences import apriori_all, gsp, prefixspan


def build_workload():
    config = QuestSequenceConfig(
        n_customers=800,
        avg_elements=8,
        avg_items_per_element=2.5,
        avg_pattern_elements=4,
        avg_itemset_size=1.25,
        n_items=400,
        n_sequence_patterns=50,
        n_itemset_patterns=100,
    )
    print(f"workload {config.name()}, {config.n_customers} customers")
    db = QuestSequenceGenerator(config, random_state=77).generate()
    print(f"  average sequence length: {db.avg_sequence_length():.1f} "
          "elements")
    return db


def miner_race(db, min_support: float = 0.05) -> None:
    print()
    print(f"miner race at minsup={min_support}")
    reference = None
    for name, miner in [
        ("AprioriAll", apriori_all),
        ("GSP", gsp),
        ("PrefixSpan", prefixspan),
    ]:
        started = time.perf_counter()
        result = miner(db, min_support)
        elapsed = time.perf_counter() - started
        if reference is None:
            reference = result.supports
        agreement = "ok" if result.supports == reference else "MISMATCH"
        print(f"  {name:<12} {elapsed:>7.2f}s  "
              f"{len(result):>6} patterns  [{agreement}]")


def show_top_patterns(db, min_support: float = 0.05) -> None:
    print()
    print("most frequent multi-element patterns")
    result = prefixspan(db, min_support)
    multi = [
        (pattern, count)
        for pattern, count in result.sorted_by_support()
        if len(pattern) >= 2
    ]
    for pattern, count in multi[:8]:
        readable = " -> ".join(
            "{" + ",".join(map(str, element)) + "}" for element in pattern
        )
        print(f"  {readable}   ({count}/{len(db)} customers)")


def constraint_study(db, min_support: float = 0.05) -> None:
    print()
    print("GSP time constraints (timestamps = element index)")
    free = gsp(db, min_support, max_length=3)
    print(f"  unconstrained:      {len(free):>6} patterns")
    for max_gap in (3.0, 1.0):
        constrained = gsp(db, min_support, max_length=3, max_gap=max_gap)
        print(f"  max_gap={max_gap:<4}        {len(constrained):>6} patterns")
    windowed = gsp(db, min_support, max_length=3, window=1.0)
    print(f"  window=1.0:         {len(windowed):>6} patterns "
          "(window merges neighbouring visits, so it can only add)")


if __name__ == "__main__":
    workload = build_workload()
    miner_race(workload)
    show_top_patterns(workload)
    constraint_study(workload)
