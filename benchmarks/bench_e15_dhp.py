"""E15 (extension) — DHP's pass-2 candidate reduction.

Provenance: the headline tables of the DHP paper (SIGMOD '95): |C2|
with and without the pass-1 hash filter, across filter sizes.  Expected
shape: the filtered C2 is a fraction of the unfiltered |F1 choose 2|,
the fraction shrinks as the hash table grows (fewer collisions), and
the mined result never changes (the filter is lossless).
"""

import pytest

from repro.associations import apriori, dhp

from _common import basket_t10_i4, write_rows

BUCKET_SIZES = (256, 4096, 65536)
MIN_SUPPORT = 0.01


@pytest.mark.parametrize("n_buckets", BUCKET_SIZES)
def test_e15_time(benchmark, n_buckets):
    db = basket_t10_i4()
    result = benchmark.pedantic(
        dhp, args=(db, MIN_SUPPORT, n_buckets), rounds=1, iterations=1
    )
    assert len(result) > 0


def test_e15_reduction_table(benchmark):
    db = basket_t10_i4()
    reference = apriori(db, MIN_SUPPORT).supports

    def run():
        rows = []
        stats = {}
        for n_buckets in BUCKET_SIZES:
            result = dhp(db, MIN_SUPPORT, n_buckets=n_buckets)
            assert result.supports == reference
            ratio = result.c2_filtered / max(result.c2_unfiltered, 1)
            stats[n_buckets] = (result.c2_unfiltered, result.c2_filtered, ratio)
            rows.append(
                (n_buckets, result.c2_unfiltered, result.c2_filtered,
                 round(ratio, 4))
            )
        return rows, stats

    rows, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    write_rows(
        "e15_dhp", ["buckets", "c2_unfiltered", "c2_filtered", "ratio"], rows
    )
    ratios = [stats[b][2] for b in BUCKET_SIZES]
    # Bigger tables filter at least as hard, and the largest filters
    # away most of C2 on this workload.
    assert ratios == sorted(ratios, reverse=True)
    assert ratios[-1] < 0.5
