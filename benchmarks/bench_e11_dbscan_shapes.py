"""E11 — density clustering on non-convex shapes.

Provenance: the DBSCAN paper's demonstration figures (KDD '96): cluster
shapes no centroid method can represent.  Expected shape: DBSCAN
recovers rings and moons with ARI near 1 and finds the cluster count by
itself; k-means scores poorly on the same data.
"""

import pytest

from repro.clustering import DBSCAN, KMeans
from repro.datasets import two_moons, two_rings
from repro.evaluation import adjusted_rand_index

from _common import timed, write_rows

WORKLOADS = {
    "rings": lambda: two_rings(600, noise=0.05, random_state=11),
    "moons": lambda: two_moons(600, noise=0.05, random_state=11),
}
PARAMS = {"rings": dict(eps=1.0, min_samples=5),
          "moons": dict(eps=0.2, min_samples=5)}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_e11_dbscan_time(benchmark, workload):
    X, _ = WORKLOADS[workload]()
    model = benchmark.pedantic(
        lambda: DBSCAN(**PARAMS[workload]).fit(X), rounds=1, iterations=1
    )
    assert model.n_clusters_ >= 2


def test_e11_shape(benchmark):
    def run():
        rows = []
        stats = {}
        for name, make in WORKLOADS.items():
            X, truth = make()
            _, db = timed(lambda: DBSCAN(**PARAMS[name]).fit(X))
            clustered = db.labels_ >= 0
            ari_db = adjusted_rand_index(
                db.labels_[clustered], truth[clustered]
            )
            km = KMeans(2, random_state=0).fit_predict(X)
            ari_km = adjusted_rand_index(km, truth)
            stats[name] = (db.n_clusters_, ari_db, ari_km)
            rows.append(
                (name, db.n_clusters_, round(ari_db, 4), round(ari_km, 4))
            )
        return rows, stats

    rows, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    write_rows(
        "e11_dbscan_shapes",
        ["workload", "dbscan_clusters", "dbscan_ARI", "kmeans_ARI"],
        rows,
    )
    for name, (n_clusters, ari_db, ari_km) in stats.items():
        assert n_clusters == 2, name
        assert ari_db > 0.9, name
        assert ari_km < 0.6, name
        assert ari_db > ari_km + 0.3, name
