"""E21 (extension) — WINEPI episode mining: window-width sweep.

Provenance: the frequent-episodes paper (Mannila et al., KDD '95): the
number of frequent episodes and the mining cost against the window
width on an alarm-like stream.  Expected shape: wider windows admit
more episodes — every individual episode's containing-window set (and
hence its frequency) grows monotonically with the width — at higher
recognition cost; the planted causal chain surfaces once the window
spans its lags.
"""

import numpy as np
import pytest

from repro.sequences import EventSequence, winepi

from _common import timed, write_rows

WINDOWS = (5, 10, 20)


def _stream(horizon=3000, seed=21):
    rng = np.random.default_rng(seed)
    events = []
    for _ in range(80):  # planted chain 0 -> 1 -> 2
        t0 = int(rng.integers(0, horizon - 10))
        events += [(t0, 0), (t0 + 1, 1), (t0 + 3, 2)]
    for _ in range(600):
        events.append((int(rng.integers(horizon)), int(rng.integers(3, 6))))
    return EventSequence(events)


@pytest.mark.parametrize("window", WINDOWS)
@pytest.mark.parametrize("episode_type", ["serial", "parallel"])
def test_e21_time(benchmark, episode_type, window):
    stream = _stream()
    result = benchmark.pedantic(
        lambda: winepi(stream, window=window, min_frequency=0.02,
                       episode_type=episode_type, max_size=3),
        rounds=1, iterations=1,
    )
    assert len(result) > 0


def test_e21_shape(benchmark):
    stream = _stream()

    def run():
        rows = []
        stats = {}
        for episode_type in ("serial", "parallel"):
            for window in WINDOWS:
                elapsed, result = timed(
                    winepi, stream, window, 0.02, episode_type, 3
                )
                stats[(episode_type, window)] = result
                rows.append(
                    (episode_type, window, len(result), elapsed)
                )
        return rows, stats

    rows, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    write_rows("e21_episodes", ["type", "window", "episodes", "seconds"], rows)
    for episode_type in ("serial", "parallel"):
        counts = [len(stats[(episode_type, w)]) for w in WINDOWS]
        assert counts == sorted(counts), episode_type
        # The planted chain is found once the window spans its lags.
        chain = (0, 1, 2) if episode_type == "serial" else (0, 1, 2)
        assert chain in stats[(episode_type, WINDOWS[-1])]
    # Per-episode frequency is monotone in window width.
    for window_a, window_b in zip(WINDOWS, WINDOWS[1:]):
        small = stats[("serial", window_a)]
        large = stats[("serial", window_b)]
        for episode in small:
            if episode in large:
                assert large.frequency(episode) >= small.frequency(episode) - 1e-12