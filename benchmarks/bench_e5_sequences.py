"""E5 — sequential miners: time vs minimum support.

Provenance: the GSP paper's comparison against AprioriAll (EDBT '96,
figures "GSP vs AprioriAll"): execution time on Quest sequence
workloads across falling support thresholds.  Expected shape: all
miners agree exactly; costs rise as support falls; GSP stays within a
small factor of AprioriAll (the paper reports 2-20x wins; our
transformed-database AprioriAll is a strong variant, so we assert
parity-or-better rather than the paper's margin); PrefixSpan, the
pattern-growth generation, is the fastest.
"""

import pytest

from repro.sequences import apriori_all, gsp, prefixspan

from _common import sequence_c8, timed, write_rows

MINERS = {
    "apriori_all": apriori_all,
    "gsp": gsp,
    "prefixspan": prefixspan,
}
SUPPORTS = (0.1, 0.06)


@pytest.mark.parametrize("min_support", SUPPORTS)
@pytest.mark.parametrize("miner", sorted(MINERS))
def test_e5_time(benchmark, miner, min_support):
    db = sequence_c8()
    result = benchmark.pedantic(
        MINERS[miner], args=(db, min_support), rounds=1, iterations=1
    )
    assert len(result) > 0


def test_e5_shape(benchmark):
    db = sequence_c8()

    def run():
        rows = []
        outputs = {}
        for name, miner in MINERS.items():
            for min_support in SUPPORTS:
                elapsed, result = timed(miner, db, min_support)
                outputs[(name, min_support)] = result.supports
                rows.append((name, min_support, len(result), elapsed))
        return rows, outputs

    rows, outputs = benchmark.pedantic(run, rounds=1, iterations=1)
    write_rows(
        "e5_sequence_sweep", ["miner", "minsup", "patterns", "seconds"], rows
    )
    for min_support in SUPPORTS:
        reference = outputs[("gsp", min_support)]
        for name in MINERS:
            assert outputs[(name, min_support)] == reference, name
    times = {(r[0], r[1]): r[3] for r in rows}
    # Cost rises as support falls, for every miner.
    for name in MINERS:
        assert times[(name, SUPPORTS[-1])] >= times[(name, SUPPORTS[0])] * 0.8
    # PrefixSpan's pattern growth beats both levelwise miners.
    assert times[("prefixspan", SUPPORTS[-1])] <= times[("gsp", SUPPORTS[-1])]
    assert (
        times[("prefixspan", SUPPORTS[-1])]
        <= times[("apriori_all", SUPPORTS[-1])]
    )
