"""E1 — miner execution time vs minimum support.

Provenance: the headline figure family of the Apriori paper (VLDB '94,
Fig. 3-5): per-workload curves of execution time against decreasing
minimum support, one curve per algorithm.  Expected shape: every curve
rises steeply as the support threshold falls; the candidate-free miners
(FP-Growth, Eclat) dominate the Apriori family at the lowest supports.
"""

import pytest

from repro.associations import apriori, apriori_hybrid, apriori_tid, eclat, fp_growth

from _common import basket_t5_i2, timed, write_rows

MINERS = {
    "apriori": apriori,
    "apriori_tid": apriori_tid,
    "apriori_hybrid": apriori_hybrid,
    "eclat": eclat,
    "fp_growth": fp_growth,
}
SUPPORTS = (0.02, 0.01, 0.005)


@pytest.mark.parametrize("min_support", SUPPORTS)
@pytest.mark.parametrize("miner", sorted(MINERS))
def test_e1_time(benchmark, miner, min_support):
    db = basket_t5_i2()
    result = benchmark.pedantic(
        MINERS[miner], args=(db, min_support), rounds=1, iterations=1
    )
    assert len(result) > 0


def test_e1_shape(benchmark):
    """Lower support => more itemsets and more time; miners agree."""
    db = basket_t5_i2()

    def run():
        rows = []
        outputs = {}
        for name, miner in MINERS.items():
            times = {}
            for min_support in SUPPORTS:
                elapsed, result = timed(miner, db, min_support)
                times[min_support] = elapsed
                outputs[(name, min_support)] = result.supports
                rows.append((name, min_support, len(result), elapsed))
        return rows, outputs

    rows, outputs = benchmark.pedantic(run, rounds=1, iterations=1)
    write_rows(
        "e1_minsup_sweep", ["miner", "minsup", "itemsets", "seconds"], rows
    )
    # All miners agree at every threshold.
    for min_support in SUPPORTS:
        reference = outputs[("apriori", min_support)]
        for name in MINERS:
            assert outputs[(name, min_support)] == reference, name
    # Itemset counts grow monotonically as support falls.
    counts = [len(outputs[("apriori", s)]) for s in SUPPORTS]
    assert counts == sorted(counts)
    # And Apriori's cost rises from the loosest to the tightest threshold.
    apriori_rows = {r[1]: r[3] for r in rows if r[0] == "apriori"}
    assert apriori_rows[SUPPORTS[-1]] >= apriori_rows[SUPPORTS[0]]
