"""E8 — pruning ablation: tree size and accuracy under label noise.

Provenance: the pruning chapters of C4.5 and CART: grow on noisy data,
compare the unpruned tree against error-based (C4.5) and
cost-complexity (CART) pruning.  Expected shape: pruning shrinks trees
by a large factor while test accuracy holds or improves — the noisier
the labels, the bigger the size win.
"""

import pytest

from repro.classification import C45, CART
from repro.datasets import agrawal

from _common import write_rows

NOISES = (0.05, 0.15)
FUNCTION = 5


def _split(noise):
    train = agrawal(2500, function=FUNCTION, noise=noise, random_state=8)
    test = agrawal(1200, function=FUNCTION, noise=0.0, random_state=9)
    return train, test


@pytest.mark.parametrize("noise", NOISES)
def test_e8_c45_pruned_fit_time(benchmark, noise):
    train, _ = _split(noise)

    def fit():
        return C45(prune=True).fit(train, "group")

    model = benchmark.pedantic(fit, rounds=1, iterations=1)
    assert model.n_nodes() >= 1


def test_e8_ablation(benchmark):
    def run():
        rows = []
        stats = {}
        for noise in NOISES:
            train, test = _split(noise)
            variants = {
                "c45_unpruned": C45(prune=False),
                "c45_pruned": C45(prune=True),
                "cart_unpruned": CART(),
                "cart_ccp": CART(ccp_alpha=0.005),
            }
            for name, model in variants.items():
                model.fit(train, "group")
                acc = model.score(test)
                stats[(noise, name)] = (model.n_nodes(), acc)
                rows.append((noise, name, model.n_nodes(), round(acc, 4)))
        return rows, stats

    rows, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    write_rows("e8_pruning", ["noise", "variant", "nodes", "test_acc"], rows)
    for noise in NOISES:
        for family, pruned in (("c45", "c45_pruned"), ("cart", "cart_ccp")):
            full_nodes, full_acc = stats[(noise, f"{family}_unpruned")]
            small_nodes, small_acc = stats[(noise, pruned)]
            assert small_nodes < full_nodes, (noise, family)
            # Accuracy must not collapse (and usually improves).
            assert small_acc >= full_acc - 0.03, (noise, family)
    # More noise -> bigger relative size reduction for C4.5 pruning.
    def reduction(noise):
        full, _ = stats[(noise, "c45_unpruned")]
        small, _ = stats[(noise, "c45_pruned")]
        return small / full

    assert reduction(NOISES[1]) <= reduction(NOISES[0]) + 0.1
