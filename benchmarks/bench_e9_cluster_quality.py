"""E9 — clustering quality across methods.

Provenance: the quality comparisons of the medoid/BIRCH era (CLARANS
vs PAM/CLARA in VLDB '94; BIRCH vs CLARANS in SIGMOD '96): cluster a
grid of Gaussians and score every method on the same data.  Expected
shape: all methods recover the well-separated grid (ARI near 1, similar
SSE); PAM pays far more time than k-means for that same quality, with
CLARA/CLARANS approximating PAM much faster — the motivation for both.
"""

import pytest

from repro.clustering import CLARA, CLARANS, PAM, Agglomerative, Birch, KMeans
from repro.evaluation import adjusted_rand_index, sse

from _common import cluster_grid, timed, write_rows

K = 9
METHODS = {
    "kmeans": lambda: KMeans(K, random_state=0),
    "pam": lambda: PAM(K),
    "clara": lambda: CLARA(K, random_state=0),
    "clarans": lambda: CLARANS(K, random_state=0),
    "ward": lambda: Agglomerative(K, "ward"),
    "birch": lambda: Birch(threshold=1.0, n_clusters=K, random_state=0),
}


@pytest.mark.parametrize("method", sorted(METHODS))
def test_e9_time(benchmark, method):
    X, _ = cluster_grid()

    def fit():
        return METHODS[method]().fit_predict(X)

    labels = benchmark.pedantic(fit, rounds=1, iterations=1)
    assert len(labels) == len(X)


def test_e9_quality_table(benchmark):
    X, truth = cluster_grid()

    def run():
        rows = []
        stats = {}
        for name, make in METHODS.items():
            elapsed, labels = timed(lambda: make().fit_predict(X))
            ari = adjusted_rand_index(labels, truth)
            total_sse = sse(X, labels)
            stats[name] = (ari, total_sse, elapsed)
            rows.append((name, round(ari, 4), round(total_sse, 1), elapsed))
        return rows, stats

    rows, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    write_rows("e9_cluster_quality", ["method", "ARI", "SSE", "seconds"], rows)
    for name, (ari, _, _) in stats.items():
        assert ari > 0.85, name
    # PAM quality ~ k-means quality, but PAM time >> k-means time.
    assert abs(stats["pam"][0] - stats["kmeans"][0]) < 0.1
    assert stats["pam"][2] > stats["kmeans"][2]
    # CLARA approximates PAM's cost at a fraction of the time.
    assert stats["clara"][2] < stats["pam"][2]
    assert stats["clara"][1] <= stats["pam"][1] * 1.3
