"""E20 (extension) — regression trees vs OLS on Friedman #1.

Provenance: the CART regression chapters and Friedman's 1991 benchmark
function, the era's standard prediction workload.  Expected shape: the
regression tree captures the nonlinear/interaction terms OLS cannot
(sin(x1 x2), the (x3-0.5)^2 bowl) while OLS nails the linear part, so
the tree wins overall; tree quality improves with depth until noise
takes over; both ignore the five planted noise features.
"""

import pytest

from repro.datasets import friedman1
from repro.preprocessing import train_test_split
from repro.regression import LinearRegression, RegressionTree

from _common import timed, write_rows

DEPTHS = (2, 5, 8, 12)


def _split():
    table = friedman1(3000, noise_sd=1.0, random_state=20)
    return train_test_split(table, 0.3, random_state=0)


@pytest.mark.parametrize("depth", DEPTHS)
def test_e20_tree_fit_time(benchmark, depth):
    train, _ = _split()
    model = benchmark.pedantic(
        lambda: RegressionTree(max_depth=depth, min_samples_leaf=5).fit(
            train, "y"
        ),
        rounds=1, iterations=1,
    )
    assert model.n_leaves() >= 1


def test_e20_shape(benchmark):
    train, test = _split()

    def run():
        rows = []
        scores = {}
        for depth in DEPTHS:
            elapsed, model = timed(
                lambda: RegressionTree(
                    max_depth=depth, min_samples_leaf=5
                ).fit(train, "y")
            )
            r2 = model.score(test)
            scores[f"tree_d{depth}"] = r2
            rows.append((f"tree(depth={depth})", model.n_leaves(),
                         round(r2, 4), elapsed))
        elapsed, ols = timed(lambda: LinearRegression().fit(train, "y"))
        scores["ols"] = ols.score(test)
        rows.append(("ols", "-", round(scores["ols"], 4), elapsed))
        return rows, scores

    rows, scores = benchmark.pedantic(run, rounds=1, iterations=1)
    write_rows("e20_regression", ["model", "leaves", "test_R2", "seconds"], rows)
    # Depth helps up to the signal's complexity.
    assert scores["tree_d8"] > scores["tree_d2"]
    # The full tree beats the linear yardstick on this nonlinear signal.
    assert scores["tree_d8"] > scores["ols"]
    # And everything is far above the mean predictor.
    assert scores["ols"] > 0.5
