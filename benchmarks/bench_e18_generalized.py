"""E18 (extension) — generalized rules: Cumulate vs the basic algorithm.

Provenance: "Mining Generalized Association Rules" (VLDB '95): mining
over a taxonomy via extended transactions, with Cumulate's three
optimizations against the naive extend-everything baseline, and the
R-interesting filter shrinking the rule flood.  Expected shape:
identical itemsets from both algorithms; Cumulate no slower (usually
faster — its pass-2+ extensions only carry candidate-relevant
ancestors); category-level itemsets strictly dominate their leaf
specialisations in support; R > 1 prunes rules.
"""

import pytest

from repro.associations import (
    basic_generalized,
    cumulate,
    generate_rules,
    r_interesting_rules,
)
from repro.core import TransactionDatabase
from repro.datasets import random_taxonomy

from _common import basket_t5_i2, timed, write_rows

MIN_SUPPORT = 0.05


def _workload():
    db = basket_t5_i2(2000)
    taxonomy, total = random_taxonomy(
        db.n_items, fanout=5, n_levels=2, random_state=1995
    )
    db = TransactionDatabase(list(db), item_labels=list(range(total)))
    return db, taxonomy


@pytest.mark.parametrize("algorithm", ["basic", "cumulate"])
def test_e18_time(benchmark, algorithm):
    db, taxonomy = _workload()
    miner = basic_generalized if algorithm == "basic" else cumulate
    result = benchmark.pedantic(
        miner, args=(db, taxonomy, MIN_SUPPORT), rounds=1, iterations=1
    )
    assert len(result) > 0


def test_e18_shape(benchmark):
    db, taxonomy = _workload()

    def run():
        rows = []
        t_basic, basic = timed(basic_generalized, db, taxonomy, MIN_SUPPORT)
        t_cumulate, cml = timed(cumulate, db, taxonomy, MIN_SUPPORT)
        rows.append(("basic", len(basic), t_basic))
        rows.append(("cumulate", len(cml), t_cumulate))
        # Rule statistics over the 2/3-item itemsets (rule generation on
        # the ancestor-inflated full lattice floods millions of
        # redundant specialisations — exactly what R-interestingness is
        # for, demonstrated here at a reportable size).
        small = cumulate(db, taxonomy, MIN_SUPPORT, max_size=3)
        rules = generate_rules(small, 0.6)
        interesting = r_interesting_rules(small, taxonomy, 0.6, r=1.3)
        rows.append(("rules(conf=0.6)", len(rules), "-"))
        rows.append(("r_interesting(R=1.3)", len(interesting), "-"))
        return rows, basic, cml, rules, interesting

    rows, basic, cml, rules, interesting = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    write_rows("e18_generalized", ["variant", "count", "seconds"], rows)
    assert cml.supports == basic.supports
    # Category items dominate their leaf children's support.
    for item in range(500):
        leaf = basic.supports.get((item,))
        if leaf is None:
            continue
        for ancestor in taxonomy.ancestors(item):
            anc_support = basic.supports.get((ancestor,))
            assert anc_support is not None and anc_support >= leaf
    # The interest filter prunes redundant specialisations.
    assert len(interesting) < len(rules)
    # Cumulate's optimizations pay: never slower than naive extension.
    times = {r[0]: r[2] for r in rows[:2]}
    assert times["cumulate"] <= times["basic"] * 1.1
