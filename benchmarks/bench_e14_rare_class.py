"""E14 — rare-class identification on unbalanced data.

Provenance: the standard unbalanced-data evaluation of the survey era:
a ~1.5% positive class, where accuracy is a useless score and the
per-class precision/recall/F1 columns are the real result.  Expected
shape: the majority-class baseline posts ~98.5% accuracy with zero
recall on the rare class; real learners trade a little accuracy for
non-trivial rare-class recall; F1 separates the methods accuracy can't.
"""

import numpy as np
import pytest

from repro.classification import CART, KNN, NaiveBayes, ZeroR
from repro.core import Table, categorical, numeric
from repro.evaluation import precision_recall_f1

from _common import write_rows

RARE_FRACTION = 0.015


def _make_unbalanced(n_rows: int, random_state: int) -> Table:
    """Two Gaussian features; the rare class sits in a shifted blob."""
    rng = np.random.default_rng(random_state)
    n_rare = max(4, int(n_rows * RARE_FRACTION))
    n_common = n_rows - n_rare
    common = rng.normal(0.0, 1.0, size=(n_common, 2))
    rare = rng.normal(2.5, 0.6, size=(n_rare, 2))
    X = np.concatenate([common, rare])
    labels = np.array([0] * n_common + [1] * n_rare)
    order = rng.permutation(n_rows)
    X, labels = X[order], labels[order]
    return Table(
        [numeric("x1"), numeric("x2"), categorical("target", ["common", "rare"])],
        {"x1": X[:, 0], "x2": X[:, 1], "target": labels},
    )


CLASSIFIERS = {
    "zeror": ZeroR,
    "nb": NaiveBayes,
    "cart": lambda: CART(min_samples_leaf=3),
    "knn": lambda: KNN(5),
}


@pytest.mark.parametrize("name", sorted(CLASSIFIERS))
def test_e14_fit_time(benchmark, name):
    train = _make_unbalanced(3000, random_state=1)
    model = benchmark.pedantic(
        lambda: CLASSIFIERS[name]().fit(train, "target"),
        rounds=1, iterations=1,
    )
    assert model.target_ is not None


def test_e14_rare_class_table(benchmark):
    train = _make_unbalanced(3000, random_state=1)
    test = _make_unbalanced(2000, random_state=2)
    y_true = [test.value(i, "target") for i in range(test.n_rows)]

    def run():
        rows = []
        stats = {}
        for name, make in CLASSIFIERS.items():
            model = make().fit(train, "target")
            y_pred = model.predict(test)
            acc = sum(t == p for t, p in zip(y_true, y_pred)) / len(y_true)
            precision, recall, f1 = precision_recall_f1(
                y_true, y_pred, positive="rare"
            )
            stats[name] = (acc, precision, recall, f1)
            rows.append(
                (name, round(acc, 4), round(precision, 4),
                 round(recall, 4), round(f1, 4))
            )
        return rows, stats

    rows, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    write_rows(
        "e14_rare_class",
        ["classifier", "accuracy", "precision", "recall", "f1"],
        rows,
    )
    # The baseline's accuracy is sky-high yet it finds nothing.
    zeror_acc, _, zeror_recall, zeror_f1 = stats["zeror"]
    assert zeror_acc > 0.97
    assert zeror_recall == 0.0 and zeror_f1 == 0.0
    # Real learners achieve non-trivial rare-class recall...
    for name in ("nb", "cart", "knn"):
        assert stats[name][2] > 0.3, name
        assert stats[name][3] > stats["zeror"][3], name
    # ...while accuracy barely separates anyone (the survey's point).
    accs = [stats[name][0] for name in CLASSIFIERS]
    assert max(accs) - min(accs) < 0.05
