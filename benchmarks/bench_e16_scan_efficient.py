"""E16 (extension) — the scan-efficient miners: Partition and Sampling.

Provenance: Savasere et al. (VLDB '95) and Toivonen (VLDB '96), whose
point is I/O: Partition reads the database exactly twice, Sampling
usually once (plus the in-memory sample).  A single-process Python
reproduction can't meter disk, so the benches validate correctness and
report times plus Sampling's miss counter — the quantity that certifies
the one-scan guarantee held.
"""

import pytest

from repro.associations import apriori, partition_miner, sampling_miner

from _common import basket_t5_i2, basket_t10_i4, timed, write_rows

MIN_SUPPORT = 0.01


@pytest.mark.parametrize("n_partitions", (2, 8))
def test_e16_partition_time(benchmark, n_partitions):
    db = basket_t10_i4()
    result = benchmark.pedantic(
        partition_miner, args=(db, MIN_SUPPORT, n_partitions),
        rounds=1, iterations=1,
    )
    assert len(result) > 0


@pytest.mark.parametrize("fraction", (0.1, 0.25))
def test_e16_sampling_time(benchmark, fraction):
    db = basket_t5_i2()
    result = benchmark.pedantic(
        lambda: sampling_miner(
            db, MIN_SUPPORT, sample_fraction=fraction, random_state=0
        ),
        rounds=1, iterations=1,
    )
    assert len(result) > 0


def test_e16_shape(benchmark):
    db = basket_t10_i4()
    light_db = basket_t5_i2()
    reference = apriori(db, MIN_SUPPORT).supports
    light_reference = apriori(light_db, MIN_SUPPORT).supports

    def run():
        rows = []
        for n_partitions in (2, 8):
            elapsed, result = timed(
                partition_miner, db, MIN_SUPPORT, n_partitions
            )
            assert result.supports == reference
            rows.append(
                (f"partition({n_partitions})", len(result), "-", elapsed)
            )
        misses_by_lowering = {}
        for lowering in (0.9, 0.6):
            total = 0
            for seed in range(4):
                elapsed, result = timed(
                    sampling_miner, light_db, MIN_SUPPORT, 0.25, lowering,
                    None, seed,
                )
                assert result.supports == light_reference
                total += result.misses
                rows.append(
                    (f"sampling(l={lowering},seed={seed})", len(result),
                     result.misses, elapsed)
                )
            misses_by_lowering[lowering] = total
        return rows, misses_by_lowering

    rows, misses_by_lowering = benchmark.pedantic(run, rounds=1, iterations=1)
    write_rows(
        "e16_scan_efficient", ["miner", "itemsets", "misses", "seconds"], rows
    )
    # Toivonen's knob works: lowering the sample threshold further cuts
    # the number of negative-border misses (and exactness always holds,
    # asserted above, because misses trigger the patch-up scans).
    assert misses_by_lowering[0.6] < misses_by_lowering[0.9]
