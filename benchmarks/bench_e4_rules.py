"""E4 — rule generation under a confidence sweep.

Provenance: the rule-generation section of the Apriori paper (the
*ap-genrules* fast algorithm).  Expected shape: the rule count shrinks
monotonically as the confidence threshold rises, and generation is much
cheaper than mining the itemsets that feed it.
"""

import pytest

from repro.associations import apriori, generate_rules

from _common import basket_t10_i4, timed, write_rows

CONFIDENCES = (0.5, 0.7, 0.9)


@pytest.fixture(scope="module")
def mined():
    return apriori(basket_t10_i4(), 0.01)


@pytest.mark.parametrize("min_confidence", CONFIDENCES)
def test_e4_time(benchmark, mined, min_confidence):
    rules = benchmark.pedantic(
        generate_rules, args=(mined, min_confidence), rounds=1, iterations=1
    )
    assert all(r.confidence >= min_confidence for r in rules)


def test_e4_shape(benchmark, mined):
    def run():
        rows = []
        for min_confidence in CONFIDENCES:
            elapsed, rules = timed(generate_rules, mined, min_confidence)
            rows.append((min_confidence, len(rules), elapsed))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_rows("e4_rules", ["min_confidence", "rules", "seconds"], rows)
    counts = [count for _, count, _ in rows]
    assert counts == sorted(counts, reverse=True)
    assert counts[0] > 0
