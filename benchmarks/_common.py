"""Shared workloads and result recording for the benchmark suite.

Workloads are cached per process so parametrized benchmarks reuse them;
result tables (the paper-style rows) are written under
``benchmarks/results/`` so a benchmark run leaves the regenerated tables
on disk next to the timing output.
"""

from __future__ import annotations

import json
import time
from functools import lru_cache
from pathlib import Path
from typing import Iterable, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def write_rows(name: str, header: Sequence[str], rows: Iterable[Sequence]) -> Path:
    """Write one experiment's table to benchmarks/results/<name>.txt.

    A machine-readable twin goes to ``<name>.json`` (one object per row,
    keyed by the header) so downstream tooling never parses the aligned
    text table.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    rows = [list(row) for row in rows]
    path = RESULTS_DIR / f"{name}.txt"
    widths = [max(len(str(h)), 12) for h in header]
    lines = ["  ".join(str(h).rjust(w) for h, w in zip(header, widths))]
    for row in rows:
        lines.append(
            "  ".join(
                (f"{cell:.4f}" if isinstance(cell, float) else str(cell)).rjust(w)
                for cell, w in zip(row, widths)
            )
        )
    path.write_text("\n".join(lines) + "\n")
    json_path = RESULTS_DIR / f"{name}.json"
    payload = {
        "experiment": name,
        "rows": [dict(zip(header, row)) for row in rows],
    }
    json_path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return path


def timed(fn, *args, **kwargs):
    """(wall-clock seconds, result) of one call."""
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - started, result


@lru_cache(maxsize=None)
def basket_t5_i2(n_transactions: int = 4000):
    """The T5.I2 workload family of the Apriori evaluation."""
    from repro.datasets import QuestBasketGenerator, QuestConfig

    config = QuestConfig(
        n_transactions=n_transactions,
        avg_transaction_length=5,
        avg_pattern_length=2,
        n_items=500,
        n_patterns=80,
    )
    return QuestBasketGenerator(config, random_state=1994).generate()


@lru_cache(maxsize=None)
def basket_t10_i4(n_transactions: int = 4000):
    """The heavier T10.I4 workload of the Apriori evaluation."""
    from repro.datasets import QuestBasketGenerator, QuestConfig

    config = QuestConfig(
        n_transactions=n_transactions,
        avg_transaction_length=10,
        avg_pattern_length=4,
        n_items=500,
        n_patterns=80,
    )
    return QuestBasketGenerator(config, random_state=1994).generate()


@lru_cache(maxsize=None)
def sequence_c8(n_customers: int = 600):
    """A C8.T2.5-style customer-sequence workload (GSP evaluation)."""
    from repro.datasets import QuestSequenceConfig, QuestSequenceGenerator

    config = QuestSequenceConfig(
        n_customers=n_customers,
        avg_elements=8,
        avg_items_per_element=2.5,
        avg_pattern_elements=4,
        avg_itemset_size=1.25,
        n_items=300,
        n_sequence_patterns=40,
        n_itemset_patterns=80,
    )
    return QuestSequenceGenerator(config, random_state=1996).generate()


@lru_cache(maxsize=None)
def agrawal_split(function: int, n_train: int = 2000, n_test: int = 1000,
                  noise: float = 0.05):
    """Train/test AIS tables (test set is noise-free, as in the papers)."""
    from repro.datasets import agrawal

    train = agrawal(n_train, function=function, noise=noise,
                    random_state=100 + function)
    test = agrawal(n_test, function=function, noise=0.0,
                   random_state=200 + function)
    return train, test


@lru_cache(maxsize=None)
def cluster_grid(n_samples: int = 900, grid_side: int = 3):
    """The BIRCH-style grid-of-Gaussians clustering workload."""
    from repro.datasets import gaussian_grid

    return gaussian_grid(
        n_samples, grid_side=grid_side, spacing=6.0, cluster_std=0.5,
        random_state=1996,
    )
