"""E19 (extension) — quantitative association rules.

Provenance: "Mining Quantitative Association Rules in Large Relational
Tables" (SIGMOD 1996 — the venue of the reproduced tutorial itself).
Expected shape: finer base-interval partitioning (the partial-
completeness knob) yields more items and more rules at higher cost; the
planted relationships (age bracket <-> group) surface as readable
interval rules at every granularity.
"""

import pytest

from repro.associations import QuantitativeMiner
from repro.datasets import agrawal

from _common import timed, write_rows

INTERVALS = (4, 8, 16)


def _table():
    # F1 plants "age < 40 or age >= 60 -> group A".
    return agrawal(2000, function=1, noise=0.0, random_state=1996)


@pytest.mark.parametrize("n_base_intervals", INTERVALS)
def test_e19_time(benchmark, n_base_intervals):
    table = _table()

    def run():
        miner = QuantitativeMiner(
            n_base_intervals=n_base_intervals,
            min_support=0.1,
            max_support=0.5,
            max_size=3,
        )
        return miner, miner.mine(table)

    miner, rules = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rules


def test_e19_shape(benchmark):
    table = _table()

    def run():
        rows = []
        stats = {}
        for n in INTERVALS:
            miner = QuantitativeMiner(
                n_base_intervals=n, min_support=0.1, max_support=0.5,
                max_size=3,
            )
            elapsed, rules = timed(miner.mine, table)
            stats[n] = (len(miner.items_), len(rules), elapsed, miner, rules)
            rows.append((n, len(miner.items_), len(rules), elapsed))
        return rows, stats

    rows, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    write_rows(
        "e19_quantitative",
        ["base_intervals", "items", "rules", "seconds"], rows,
    )
    item_counts = [stats[n][0] for n in INTERVALS]
    assert item_counts == sorted(item_counts)
    assert item_counts[-1] > item_counts[0]
    # The planted age <-> group relationship surfaces at every
    # granularity: some high-confidence rule ties an age interval to a
    # group value.
    for n in INTERVALS:
        miner, rules = stats[n][3], stats[n][4]
        rendered = [
            miner.render_rule(r) for r in rules if r.confidence >= 0.8
        ]
        assert any(
            "age" in line and "group" in line for line in rendered
        ), n
