"""E6 — classifier accuracy across the AIS functions.

Provenance: the accuracy tables of the IBM classifier studies
("Database Mining: A Performance Perspective" and the SLIQ evaluation):
one row per synthetic function F1..F10, one column per classifier,
train on noisy data, test on clean data.  Expected shape: the decision
trees sit at or near the top on these axis-parallel/linear predicates;
naive Bayes trails the trees; every method clears the ZeroR floor.
"""

import pytest

from repro.classification import C45, CART, NaiveBayes, SLIQ, ZeroR

from _common import agrawal_split, write_rows

CLASSIFIERS = {
    "c45": lambda: C45(),
    "cart": lambda: CART(min_samples_leaf=5),
    "sliq": lambda: SLIQ(min_samples_leaf=5),
    "nb": NaiveBayes,
    "zeror": ZeroR,
}
FUNCTIONS = tuple(range(1, 11))


@pytest.mark.parametrize("name", sorted(CLASSIFIERS))
def test_e6_fit_time(benchmark, name):
    train, _ = agrawal_split(2)

    def fit():
        return CLASSIFIERS[name]().fit(train, "group")

    model = benchmark.pedantic(fit, rounds=1, iterations=1)
    assert model.score(train) > 0.5


def test_e6_accuracy_table(benchmark):
    def run():
        rows = []
        scores = {}
        for function in FUNCTIONS:
            train, test = agrawal_split(function)
            row = [f"F{function}"]
            for name in ("c45", "cart", "sliq", "nb", "zeror"):
                model = CLASSIFIERS[name]().fit(train, "group")
                acc = model.score(test)
                scores[(function, name)] = acc
                row.append(round(acc, 4))
            rows.append(tuple(row))
        return rows, scores

    rows, scores = benchmark.pedantic(run, rounds=1, iterations=1)
    write_rows(
        "e6_accuracy", ["function", "c45", "cart", "sliq", "nb", "zeror"], rows
    )
    for function in FUNCTIONS:
        best_tree = max(
            scores[(function, t)] for t in ("c45", "cart", "sliq")
        )
        # Trees dominate these axis-parallel predicates...
        assert best_tree >= scores[(function, "nb")] - 0.02, function
        # ...and everything meaningful clears the majority-class floor.
        assert best_tree >= scores[(function, "zeror")], function
        assert best_tree > 0.85, function
