"""E12 — discretization ablation.

Provenance: the Fayyad–Irani evaluation (IJCAI '93) and the standard
discretization studies: classify numeric data after equal-width,
equal-frequency and entropy/MDL binning.  Expected shape, in two parts:

* on predicates whose class boundaries are visible in the *marginal*
  distribution of each attribute (F8: a near-linear disposable-income
  rule), supervised MDLP matches or beats the unsupervised bins;
* on pure interaction predicates (F2: salary ranges that depend on the
  age bracket) greedy per-attribute MDLP finds no marginal signal and
  *underperforms* blind binning — the classic failure mode, recorded
  here deliberately.
"""

import pytest

from repro.classification import ID3, NaiveBayes
from repro.datasets import agrawal
from repro.preprocessing import discretize_table, train_test_split

from _common import write_rows

METHODS = ("equal_width", "equal_frequency", "mdlp")
MARGINAL_FUNCTION = 8    # boundaries visible per attribute
INTERACTION_FUNCTION = 2  # boundaries only visible jointly


def _data(function):
    table = agrawal(2400, function=function, noise=0.05,
                    random_state=12 + function)
    return train_test_split(table, 0.3, stratify="group", random_state=0)


@pytest.mark.parametrize("method", METHODS)
def test_e12_discretize_time(benchmark, method):
    train, _ = _data(MARGINAL_FUNCTION)
    kwargs = {"target": "group"} if method == "mdlp" else {"n_bins": 8}
    out = benchmark.pedantic(
        lambda: discretize_table(train, method, **kwargs),
        rounds=1, iterations=1,
    )
    assert all(a.is_categorical for a in out.attributes)


def test_e12_ablation(benchmark):
    def run():
        rows = []
        scores = {}
        for function in (MARGINAL_FUNCTION, INTERACTION_FUNCTION):
            train, test = _data(function)
            for method in METHODS:
                kwargs = (
                    {"target": "group"} if method == "mdlp" else {"n_bins": 8}
                )
                d_train = discretize_table(train, method, **kwargs)
                d_test = _apply_same_schema(train, test, method, kwargs)
                for clf_name, clf in (("id3", ID3(max_depth=6)),
                                      ("nb", NaiveBayes())):
                    acc = clf.fit(d_train, "group").score(d_test)
                    scores[(function, method, clf_name)] = acc
                    rows.append(
                        (f"F{function}", method, clf_name, round(acc, 4))
                    )
        return rows, scores

    rows, scores = benchmark.pedantic(run, rounds=1, iterations=1)
    write_rows(
        "e12_discretization",
        ["function", "method", "classifier", "test_acc"],
        rows,
    )
    f = MARGINAL_FUNCTION
    for clf_name in ("id3", "nb"):
        best_unsupervised = max(
            scores[(f, "equal_width", clf_name)],
            scores[(f, "equal_frequency", clf_name)],
        )
        # Marginally-visible boundaries: MDLP competes with the best
        # unsupervised scheme.
        assert scores[(f, "mdlp", clf_name)] >= best_unsupervised - 0.03
    # Pure interactions: greedy marginal MDLP loses to blind binning on
    # the tree (it starves ID3 of usable splits) — the documented caveat.
    g = INTERACTION_FUNCTION
    assert scores[(g, "mdlp", "id3")] <= scores[(g, "equal_frequency", "id3")]


def _apply_same_schema(train, test, method, kwargs):
    """Discretize test data with cut points fitted on the training data."""
    from repro.core import categorical
    from repro.preprocessing import MDLP, EqualFrequency, EqualWidth

    makers = {
        "equal_width": lambda: EqualWidth(kwargs.get("n_bins", 8)),
        "equal_frequency": lambda: EqualFrequency(kwargs.get("n_bins", 8)),
        "mdlp": MDLP,
    }
    y = train.class_codes("group") if method == "mdlp" else None
    out = test
    for attr in train.attributes:
        if not attr.is_numeric:
            continue
        disc = makers[method]()
        disc.fit(train.column(attr.name), y)
        codes = disc.transform(test.column(attr.name))
        new_attr = categorical(
            attr.name, [f"bin{i}" for i in range(max(disc.n_bins_, 1))]
        )
        out = out.replace_column(attr.name, new_attr, codes)
    return out
