"""E10 — clustering scale-up.

Provenance: BIRCH's scalability tables (SIGMOD '96, Tables 3-4 shape):
running time against dataset size for the single-scan CF-tree method
versus the quadratic medoid method and iterative k-means.  Expected
shape: BIRCH and k-means grow near-linearly; PAM's O(k(n-k)^2) swap
scan grows much faster, which is why CLARA exists beyond small n.
"""

import pytest

from repro.clustering import PAM, Birch, KMeans
from repro.datasets import gaussian_grid

from _common import timed, write_rows

SIZES = (1000, 4000, 16000)
PAM_SIZES = (250, 500, 1000)
K = 9


def _data(n):
    return gaussian_grid(
        n, grid_side=3, spacing=6.0, cluster_std=0.5, random_state=10
    )


@pytest.mark.parametrize("n_samples", SIZES)
@pytest.mark.parametrize("method", ["kmeans", "birch"])
def test_e10_linear_methods(benchmark, method, n_samples):
    X, _ = _data(n_samples)
    make = (
        (lambda: KMeans(K, random_state=0))
        if method == "kmeans"
        else (lambda: Birch(threshold=1.0, n_clusters=K, random_state=0))
    )
    labels = benchmark.pedantic(
        lambda: make().fit_predict(X), rounds=1, iterations=1
    )
    assert len(labels) == n_samples


@pytest.mark.parametrize("n_samples", PAM_SIZES)
def test_e10_pam(benchmark, n_samples):
    X, _ = _data(n_samples)
    labels = benchmark.pedantic(
        lambda: PAM(K).fit_predict(X), rounds=1, iterations=1
    )
    assert len(labels) == n_samples


def test_e10_shape(benchmark):
    def run():
        rows = []
        times = {}
        for n in SIZES:
            X, _ = _data(n)
            for name, make in [
                ("kmeans", lambda: KMeans(K, random_state=0)),
                ("birch", lambda: Birch(threshold=1.0, n_clusters=K,
                                        random_state=0)),
            ]:
                elapsed, _ = timed(lambda: make().fit_predict(X))
                times[(name, n)] = elapsed
                rows.append((name, n, elapsed))
        for n in PAM_SIZES:
            X, _ = _data(n)
            elapsed, _ = timed(lambda: PAM(K).fit_predict(X))
            times[("pam", n)] = elapsed
            rows.append(("pam", n, elapsed))
        return rows, times

    rows, times = benchmark.pedantic(run, rounds=1, iterations=1)
    write_rows("e10_cluster_scaleup", ["method", "samples", "seconds"], rows)
    # Linear methods: 16x data well below quadratic cost growth.
    for name in ("kmeans", "birch"):
        growth = times[(name, 16000)] / max(times[(name, 1000)], 1e-3)
        assert growth < 64, (name, growth)
    # PAM grows super-linearly: 4x data costs more than ~6x time.
    pam_growth = times[("pam", 1000)] / max(times[("pam", 250)], 1e-3)
    assert pam_growth > 6, pam_growth
    # At the shared size 1000, PAM is the most expensive method.
    assert times[("pam", 1000)] > times[("kmeans", 1000)]
    assert times[("pam", 1000)] > times[("birch", 1000)]
