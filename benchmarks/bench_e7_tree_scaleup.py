"""E7 — decision-tree training-time scale-up.

Provenance: SLIQ's scalability experiments (EDBT '96): training time
against the number of records.  Expected shape: both the depth-first
re-sorting builder (CART) and the breadth-first presorted builder
(SLIQ) grow near-linearly in N at fixed depth; neither blows up
quadratically.  (SLIQ's original win was disk-resident data — beyond a
single-process Python reproduction — so the shape claim here is the
in-memory near-linearity of both, with the per-pass structure of SLIQ
visible in its flat per-level scans.)
"""

import pytest

from repro.classification import CART, SLIQ
from repro.datasets import agrawal

from _common import timed, write_rows

SIZES = (1000, 4000, 16000)
BUILDERS = {
    "cart": lambda: CART(max_depth=8, min_samples_leaf=5),
    "sliq": lambda: SLIQ(max_depth=8, min_samples_leaf=5),
}


def _table(n):
    return agrawal(n, function=2, noise=0.05, random_state=42)


@pytest.mark.parametrize("n_rows", SIZES)
@pytest.mark.parametrize("builder", sorted(BUILDERS))
def test_e7_time(benchmark, builder, n_rows):
    table = _table(n_rows)

    def fit():
        return BUILDERS[builder]().fit(table, "group")

    model = benchmark.pedantic(fit, rounds=1, iterations=1)
    assert model.score(table) > 0.8


def test_e7_shape(benchmark):
    def run():
        rows = []
        times = {}
        for name, make in BUILDERS.items():
            for n in SIZES:
                table = _table(n)
                elapsed, model = timed(lambda: make().fit(table, "group"))
                times[(name, n)] = elapsed
                rows.append((name, n, model.n_leaves(), elapsed))
        return rows, times

    rows, times = benchmark.pedantic(run, rounds=1, iterations=1)
    write_rows("e7_tree_scaleup", ["builder", "rows", "leaves", "seconds"], rows)
    for name in BUILDERS:
        growth = times[(name, 16000)] / max(times[(name, 1000)], 1e-3)
        # 16x the data must cost well under the quadratic 256x; allow
        # ~3x-linear slack for deeper trees on more data.
        assert growth < 48, (name, growth)
