"""E17 (extension) — ensemble ablation: bagging and boosting.

Provenance: Breiman's bagging experiments (1996) and Freund &
Schapire's boosting experiments: compare a single base learner against
its bagged and boosted ensembles on noisy data.  Expected shape:
bagging stabilises an unstable deep tree (never much worse, usually
better on noisy data); boosted stumps clearly beat one stump on an
additive predicate; ensembles cost roughly n_estimators times the base
fit.
"""

import pytest

from repro.classification import CART, AdaBoostM1, Bagging
from repro.datasets import agrawal
from repro.preprocessing import train_test_split

from _common import timed, write_rows


def _split(function, noise):
    data = agrawal(2400, function=function, noise=noise,
                   random_state=1000 + function)
    return train_test_split(data, 0.3, stratify="group", random_state=0)


MODELS = {
    "single_tree": lambda: CART(),
    "bagging_9": lambda: Bagging(CART, 9, random_state=0),
    "single_stump": lambda: CART(max_depth=1),
    "adaboost_30": lambda: AdaBoostM1(
        lambda: CART(max_depth=1), 30, random_state=0
    ),
}


@pytest.mark.parametrize("name", sorted(MODELS))
def test_e17_fit_time(benchmark, name):
    train, _ = _split(9, 0.1)
    model = benchmark.pedantic(
        lambda: MODELS[name]().fit(train, "group"), rounds=1, iterations=1
    )
    assert model.target_ is not None


def test_e17_ablation(benchmark):
    def run():
        rows = []
        scores = {}
        train, test = _split(9, 0.1)
        for name, make in MODELS.items():
            elapsed, model = timed(lambda: make().fit(train, "group"))
            acc = model.score(test)
            scores[name] = (acc, elapsed)
            rows.append((name, round(acc, 4), elapsed))
        return rows, scores

    rows, scores = benchmark.pedantic(run, rounds=1, iterations=1)
    write_rows("e17_ensembles", ["model", "test_acc", "fit_seconds"], rows)
    # Bagging stabilises the deep tree on noisy data.
    assert scores["bagging_9"][0] >= scores["single_tree"][0] - 0.01
    # Boosting lifts the weak learner decisively.
    assert scores["adaboost_30"][0] > scores["single_stump"][0] + 0.02
    # Ensembles pay roughly linear cost in ensemble size.
    assert scores["bagging_9"][1] > scores["single_tree"][1]
