"""E2 — transaction scale-up.

Provenance: the scale-up experiment of the Apriori paper (VLDB '94,
Fig. 6): execution time against the number of transactions at fixed
support.  Expected shape: near-linear growth (each pass is one scan).
"""

import pytest

from repro.associations import apriori

from _common import basket_t5_i2, timed, write_rows

SIZES = (1000, 2000, 4000, 8000)
MIN_SUPPORT = 0.01


@pytest.mark.parametrize("n_transactions", SIZES)
def test_e2_time(benchmark, n_transactions):
    db = basket_t5_i2(n_transactions)
    result = benchmark.pedantic(
        apriori, args=(db, MIN_SUPPORT), rounds=1, iterations=1
    )
    assert len(result) > 0


def test_e2_shape(benchmark):
    def run():
        rows = []
        for n in SIZES:
            db = basket_t5_i2(n)
            elapsed, result = timed(apriori, db, MIN_SUPPORT)
            rows.append((n, len(result), elapsed))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_rows("e2_scaleup", ["transactions", "itemsets", "seconds"], rows)
    times = {n: t for n, _, t in rows}
    # Near-linear scale-up: 8x the data should cost clearly less than
    # the quadratic 64x (allow generous slack over the linear 8x).
    assert times[8000] <= 24 * max(times[1000], 1e-3)
    # And more data should not be faster than much less data.
    assert times[8000] >= times[1000] * 0.8
