"""E13 — accuracy vs training volume.

Provenance: the learning-curve tables of the classic classifier
studies: test accuracy as the training set grows.  Expected shape:
accuracy improves (with diminishing returns) for every learner, and the
ranking between learners is stable once the curves flatten.
"""

import pytest

from repro.classification import CART, KNN, NaiveBayes
from repro.datasets import agrawal
from repro.preprocessing import scale_table

from _common import write_rows

SIZES = (250, 1000, 4000)
FUNCTION = 7


def _train(n):
    return agrawal(n, function=FUNCTION, noise=0.05, random_state=13)


def _test():
    return agrawal(1500, function=FUNCTION, noise=0.0, random_state=14)


CLASSIFIERS = {
    "cart": lambda: CART(min_samples_leaf=5),
    "nb": NaiveBayes,
    "knn": lambda: KNN(9),
}


@pytest.mark.parametrize("n_rows", SIZES)
@pytest.mark.parametrize("name", sorted(CLASSIFIERS))
def test_e13_fit_time(benchmark, name, n_rows):
    train = _train(n_rows)
    if name == "knn":
        train = scale_table(train, "standard")
    model = benchmark.pedantic(
        lambda: CLASSIFIERS[name]().fit(train, "group"),
        rounds=1, iterations=1,
    )
    assert model.target_ is not None


def test_e13_learning_curves(benchmark):
    test = _test()
    test_scaled = scale_table(test, "standard")

    def run():
        rows = []
        scores = {}
        for n in SIZES:
            train = _train(n)
            train_scaled = scale_table(train, "standard")
            for name, make in CLASSIFIERS.items():
                fit_on = train_scaled if name == "knn" else train
                score_on = test_scaled if name == "knn" else test
                acc = make().fit(fit_on, "group").score(score_on)
                scores[(name, n)] = acc
                rows.append((name, n, round(acc, 4)))
        return rows, scores

    rows, scores = benchmark.pedantic(run, rounds=1, iterations=1)
    write_rows("e13_volume", ["classifier", "train_rows", "test_acc"], rows)
    for name in CLASSIFIERS:
        # Largest training set beats the smallest (allowing jitter).
        assert scores[(name, SIZES[-1])] >= scores[(name, SIZES[0])] - 0.02
    # CART visibly improves with volume on this nonlinear predicate.
    assert scores[("cart", 4000)] > scores[("cart", 250)]
