"""E3 — candidates and frequent itemsets per pass.

Provenance: the per-pass tables of the Apriori paper: for one workload
and threshold, the number of candidates generated and of candidates that
turn out frequent at each level k.  Expected shape: both counts peak at
small k (2 or 3) and decay to zero; frequent <= candidates everywhere —
the downward-closure pruning story in numbers.
"""

from repro.associations import apriori

from _common import basket_t10_i4, write_rows

MIN_SUPPORT = 0.01


def test_e3_pass_table(benchmark):
    db = basket_t10_i4()
    result = benchmark.pedantic(
        apriori, args=(db, MIN_SUPPORT), rounds=1, iterations=1
    )
    rows = [
        (s.k, s.n_candidates, s.n_frequent, s.elapsed)
        for s in result.pass_stats
    ]
    write_rows(
        "e3_pass_stats", ["k", "candidates", "frequent", "seconds"], rows
    )
    for s in result.pass_stats:
        assert s.n_frequent <= s.n_candidates
    # The lattice tails off: the last pass finds (almost) nothing.
    assert result.pass_stats[-1].n_frequent <= result.pass_stats[1].n_frequent
    # Counts rise to an early peak then decay.
    frequents = [s.n_frequent for s in result.pass_stats]
    peak = frequents.index(max(frequents))
    assert peak <= 2
    assert frequents[peak:] == sorted(frequents[peak:], reverse=True)
