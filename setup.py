"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs fail with ``invalid command 'bdist_wheel'``.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` fall back to
``setup.py develop``, which needs no wheel building.  All real metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
