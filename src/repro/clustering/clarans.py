"""CLARANS — Clustering Large Applications based on RANdomized Search
(Ng & Han, VLDB 1994).

CLARANS views k-medoid clustering as a search over a graph whose nodes
are medoid sets and whose edges connect sets differing in one medoid.
From a random node it examines up to ``max_neighbor`` random neighbours,
moving whenever one improves the cost; a node none of the sampled
neighbours improves is a *local minimum*.  ``num_local`` such descents
are run and the best local minimum wins — trading PAM's exhaustive swap
scan for randomized sampling.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.base import Clusterer, check_in_range
from ..core.exceptions import ValidationError
from ..core.random import RandomState, check_random_state
from .distance import pairwise_distances


class CLARANS(Clusterer):
    """Randomized-search k-medoids.

    Parameters
    ----------
    n_clusters:
        Number of medoids (k).
    num_local:
        Number of independent descents (paper default 2).
    max_neighbor:
        Neighbours sampled before declaring a local minimum; the paper
        recommends ``max(250, 1.25% of k(n-k))``, applied when ``None``.

    Attributes
    ----------
    medoid_indices_, cluster_centers_, labels_, cost_:
        As in :class:`~repro.clustering.kmedoids.PAM`.

    Examples
    --------
    >>> from repro.datasets import gaussian_blobs
    >>> X, _ = gaussian_blobs(200, centers=4, random_state=5)
    >>> model = CLARANS(4, random_state=0).fit(X)
    >>> len(model.medoid_indices_)
    4
    """

    def __init__(
        self,
        n_clusters: int = 8,
        num_local: int = 2,
        max_neighbor: Optional[int] = None,
        random_state: RandomState = None,
    ):
        check_in_range("n_clusters", n_clusters, 1, None)
        check_in_range("num_local", num_local, 1, None)
        if max_neighbor is not None:
            check_in_range("max_neighbor", max_neighbor, 1, None)
        self.n_clusters = int(n_clusters)
        self.num_local = int(num_local)
        self.max_neighbor = max_neighbor
        self.random_state = random_state
        self.medoid_indices_: Optional[np.ndarray] = None
        self.cluster_centers_: Optional[np.ndarray] = None
        self.cost_: Optional[float] = None

    def _fit(self, X: np.ndarray) -> None:
        n = len(X)
        k = self.n_clusters
        if k > n:
            raise ValidationError(f"n_clusters={k} exceeds {n} samples")
        rng = check_random_state(self.random_state)
        d = pairwise_distances(X)
        max_neighbor = self.max_neighbor or max(
            250, int(0.0125 * k * (n - k))
        )

        best_cost = np.inf
        best_medoids = None
        for _ in range(self.num_local):
            current = list(rng.choice(n, size=k, replace=False))
            current_cost = self._cost(d, current)
            examined = 0
            while examined < max_neighbor:
                m_pos = int(rng.integers(k))
                h = int(rng.integers(n))
                if h in current:
                    examined += 1
                    continue
                neighbour = list(current)
                neighbour[m_pos] = h
                neighbour_cost = self._cost(d, neighbour)
                if neighbour_cost < current_cost - 1e-12:
                    current, current_cost = neighbour, neighbour_cost
                    examined = 0  # restart the neighbour counter
                else:
                    examined += 1
            if current_cost < best_cost:
                best_cost = current_cost
                best_medoids = current

        self.medoid_indices_ = np.array(sorted(best_medoids))
        self.cluster_centers_ = X[self.medoid_indices_]
        self.labels_ = d[:, self.medoid_indices_].argmin(axis=1)
        self.cost_ = best_cost

    @staticmethod
    def _cost(d: np.ndarray, medoids: list) -> float:
        return float(d[:, medoids].min(axis=1).sum())


__all__ = ["CLARANS"]
