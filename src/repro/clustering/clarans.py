"""CLARANS — Clustering Large Applications based on RANdomized Search
(Ng & Han, VLDB 1994).

CLARANS views k-medoid clustering as a search over a graph whose nodes
are medoid sets and whose edges connect sets differing in one medoid.
From a random node it examines up to ``max_neighbor`` random neighbours,
moving whenever one improves the cost; a node none of the sampled
neighbours improves is a *local minimum*.  ``num_local`` such descents
are run and the best local minimum wins — trading PAM's exhaustive swap
scan for randomized sampling.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from ..core.base import Clusterer, check_in_range
from ..core.exceptions import ConvergenceWarning, ValidationError
from ..core.random import RandomState, check_random_state
from ..runtime import Budget, BudgetExceeded, Checkpointer
from ..runtime.context import ExecutionContext
from .distance import pairwise_distances


class CLARANS(Clusterer):
    """Randomized-search k-medoids.

    Parameters
    ----------
    n_clusters:
        Number of medoids (k).
    num_local:
        Number of independent descents (paper default 2).
    max_neighbor:
        Neighbours sampled before declaring a local minimum; the paper
        recommends ``max(250, 1.25% of k(n-k))``, applied when ``None``.
    max_steps:
        Cap on *accepted* moves per descent.  Each accepted move resets
        the neighbour counter, so on adversarial data a descent could
        otherwise wander indefinitely; hitting the cap ends the descent
        with a :class:`ConvergenceWarning`.
    budget:
        Deprecated alias for ``ctx=ExecutionContext(budget=...)``:
        optional :class:`~repro.runtime.Budget`, charged one expansion
        per neighbour evaluation.  On exhaustion the best medoid set
        found so far is kept and ``truncated_`` is set.
    checkpoint:
        Deprecated alias for ``ctx=ExecutionContext(checkpointer=...)``:
        optional :class:`~repro.runtime.Checkpointer`.  Every neighbour
        evaluation and every completed descent is a resumable boundary;
        snapshots capture the generator state
        (``rng.bit_generator.state``), so a resumed search draws exactly
        the neighbours the uninterrupted one would have drawn.

    Attributes
    ----------
    medoid_indices_, cluster_centers_, labels_, cost_:
        As in :class:`~repro.clustering.kmedoids.PAM`.
    truncated_:
        True when a budget ended the search early.

    Examples
    --------
    >>> from repro.datasets import gaussian_blobs
    >>> X, _ = gaussian_blobs(200, centers=4, random_state=5)
    >>> model = CLARANS(4, random_state=0).fit(X)
    >>> len(model.medoid_indices_)
    4
    """

    def __init__(
        self,
        n_clusters: int = 8,
        num_local: int = 2,
        max_neighbor: Optional[int] = None,
        random_state: RandomState = None,
        max_steps: int = 10_000,
        budget: Optional[Budget] = None,
        checkpoint: Optional[Checkpointer] = None,
        ctx: Optional[ExecutionContext] = None,
    ):
        check_in_range("n_clusters", n_clusters, 1, None)
        check_in_range("num_local", num_local, 1, None)
        if max_neighbor is not None:
            check_in_range("max_neighbor", max_neighbor, 1, None)
        check_in_range("max_steps", max_steps, 1, None)
        self.n_clusters = int(n_clusters)
        self.num_local = int(num_local)
        self.max_neighbor = max_neighbor
        self.random_state = random_state
        self.max_steps = int(max_steps)
        self._init_context(ctx, budget=budget, checkpoint=checkpoint)
        self.medoid_indices_: Optional[np.ndarray] = None
        self.cluster_centers_: Optional[np.ndarray] = None
        self.cost_: Optional[float] = None
        self.truncated_ = False
        self.truncation_reason_: Optional[str] = None

    def _fit(self, X: np.ndarray) -> None:
        n = len(X)
        k = self.n_clusters
        if k > n:
            raise ValidationError(f"n_clusters={k} exceeds {n} samples")
        rng = check_random_state(self.random_state)
        d = pairwise_distances(X)
        max_neighbor = self.max_neighbor or max(
            250, int(0.0125 * k * (n - k))
        )

        self.truncated_ = False
        self.truncation_reason_ = None
        resumed = self.ctx.resume(lambda: {
            "algorithm": "clarans",
            "n_samples": int(n),
            "n_features": int(X.shape[1]),
            "n_clusters": k,
            "num_local": self.num_local,
            "max_neighbor": max_neighbor,
            "max_steps": self.max_steps,
        })
        best_cost = np.inf
        best_medoids = None
        start_descent = 0
        mid = None
        if resumed is not None:
            best_cost = resumed["best_cost"]
            best_medoids = resumed["best_medoids"]
            start_descent = resumed["descent"]
            mid = resumed["current"]
            rng.bit_generator.state = resumed["rng_state"]

        def mark(descent, current_state):
            self.ctx.mark({
                "descent": descent,
                "best_cost": best_cost,
                "best_medoids": None if best_medoids is None else list(best_medoids),
                "current": current_state,
                "rng_state": rng.bit_generator.state,
            })

        try:
            for descent in range(start_descent, self.num_local):
                if self.truncated_:
                    break  # budget exhausted: no further descents
                if mid is not None:
                    current = list(mid["medoids"])
                    current_cost = mid["cost"]
                    examined = mid["examined"]
                    accepted = mid["accepted"]
                    mid = None
                else:
                    current = list(rng.choice(n, size=k, replace=False))
                    current_cost = self._cost(d, current)
                    examined = 0
                    accepted = 0
                while examined < max_neighbor:
                    if self.budget is not None:
                        try:
                            self.budget.charge_expansions(phase="clarans-descent")
                            self.budget.check(phase="clarans-descent")
                        except BudgetExceeded as exc:
                            self.truncated_ = True
                            self.truncation_reason_ = f"{type(exc).__name__}: {exc}"
                            break
                    m_pos = int(rng.integers(k))
                    h = int(rng.integers(n))
                    if h in current:
                        examined += 1
                    else:
                        neighbour = list(current)
                        neighbour[m_pos] = h
                        neighbour_cost = self._cost(d, neighbour)
                        if neighbour_cost < current_cost - 1e-12:
                            current, current_cost = neighbour, neighbour_cost
                            examined = 0  # restart the neighbour counter
                            accepted += 1
                            if accepted >= self.max_steps:
                                warnings.warn(
                                    f"CLARANS descent did not reach a local "
                                    f"minimum within {self.max_steps} accepted "
                                    f"moves",
                                    ConvergenceWarning,
                                    stacklevel=2,
                                )
                                break
                        else:
                            examined += 1
                    if self.checkpoint is not None:
                        mark(descent, {
                            "medoids": list(current),
                            "cost": current_cost,
                            "examined": examined,
                            "accepted": accepted,
                        })
                if current_cost < best_cost:
                    best_cost = current_cost
                    best_medoids = current
                if self.checkpoint is not None:
                    mark(descent + 1, None)
        finally:
            self.ctx.flush()

        self.medoid_indices_ = np.array(sorted(best_medoids))
        self.cluster_centers_ = X[self.medoid_indices_]
        self.labels_ = d[:, self.medoid_indices_].argmin(axis=1)
        self.cost_ = best_cost

    @staticmethod
    def _cost(d: np.ndarray, medoids: list) -> float:
        return float(d[:, medoids].min(axis=1).sum())


__all__ = ["CLARANS"]
