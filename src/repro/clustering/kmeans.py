"""k-means clustering: Lloyd's batch algorithm and MacQueen's online
variant, with Forgy/random-partition/k-means++ initialisation.

The classic centroid method of every clustering survey.  ``n_init``
restarts keep the well-known local-minimum sensitivity in check; the
``inertia_`` attribute (within-cluster sum of squared distances, SSE) is
the quality number the clustering benchmarks report.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from ..core.base import Clusterer, check_in_range
from ..core.exceptions import ConvergenceWarning, ValidationError
from ..core.random import RandomState, check_random_state, spawn
from ..runtime import Budget, BudgetExceeded, Checkpointer
from ..runtime.context import ExecutionContext
from ..runtime.parallel import resolve_n_jobs, shared_pool
from ..runtime.transport import SegmentHandle, SharedRegion, get_array
from .distance import nearest_center, pairwise_distances

_INITS = ("kmeans++", "forgy", "random_partition")
_ALGORITHMS = ("lloyd", "macqueen")

#: assignment backends accepted by :class:`KMeans` (Lloyd iterations)
ASSIGN_BACKENDS = ("full", "elkan")


def _kmeans_trial_task(args, _shard_ctx):
    """Pool task: one independent k-means restart.

    ``X`` arrives as a shared-segment handle (zero-copy mmap view in
    the worker); the trial rebuilds a bare single-run model from the
    pickled hyperparameters, so nothing heavier than a few scalars and
    the child RNG crosses the pipe.
    """
    X_handle, n_clusters, init, algorithm, max_iter, tol, child, backend \
        = args
    X = get_array(X_handle) if isinstance(X_handle, SegmentHandle) \
        else X_handle
    model = KMeans(n_clusters, init=init, algorithm=algorithm, n_init=1,
                   max_iter=max_iter, tol=tol, backend=backend)
    centers = model._init_centers(X, child)
    if algorithm == "lloyd":
        return model._lloyd(X, centers, child)
    return model._macqueen(X, centers)


class KMeans(Clusterer):
    """k-means clusterer.

    Parameters
    ----------
    n_clusters:
        Number of centroids (k).
    init:
        ``"kmeans++"`` (spread seeding), ``"forgy"`` (random data points)
        or ``"random_partition"`` (centroids of a random labelling).
    algorithm:
        ``"lloyd"`` batch updates (default) or ``"macqueen"`` online
        updates (one pass per iteration, centroid moves per point).
    n_init:
        Independent restarts; the run with the lowest inertia wins.
    max_iter, tol:
        Per-run iteration cap and centroid-shift convergence threshold.
    max_restarts:
        Extra reseeded runs granted when none of the first ``n_init``
        runs converges; a :class:`ConvergenceWarning` is issued only
        after the retry allowance is exhausted.
    budget:
        Deprecated alias for ``ctx=ExecutionContext(budget=...)``:
        optional :class:`~repro.runtime.Budget`, charged one expansion
        per optimisation iteration.  On exhaustion the current run keeps
        its best-so-far centroids, no further runs launch, and
        ``truncated_`` is set.
    checkpoint:
        Deprecated alias for ``ctx=ExecutionContext(checkpointer=...)``:
        optional :class:`~repro.runtime.Checkpointer`.  Every completed
        optimisation iteration and every completed restart is a
        resumable boundary; a resumed fit reproduces the uninterrupted
        centroids, labels, inertia, and iteration count exactly
        (iterations are deterministic given the boundary centroids, and
        restart seeds are re-derived from ``random_state``).
    ctx:
        Optional :class:`~repro.runtime.ExecutionContext` bundling
        budget, checkpointer, cancellation and progress hooks.
    n_jobs:
        With ``n_jobs > 1`` the ``n_init`` restarts run as parallel
        trials in forked workers, merged in restart order with the same
        strict-less-than inertia comparison, so the winning run is
        identical to the serial loop (the ``max_restarts`` retry
        allowance stays serial — it stops at the first convergence, an
        inherently sequential rule).  Parallel trials engage only for
        bare runs: a budget or checkpointer forces the serial loop,
        whose truncation and resume semantics are order-dependent.
        ``-1`` uses all cores.
    backend:
        Assignment kernel for the Lloyd algorithm.  ``"full"`` (default)
        recomputes every point-to-centre distance each iteration;
        ``"elkan"`` keeps per-point distance upper bounds and skips
        points the triangle inequality proves cannot switch clusters,
        recomputing only the stale remainder.  Outputs are byte-for-byte
        identical (the final labels and inertia always come from one
        full assignment).  Ignored by ``algorithm="macqueen"``, whose
        per-point sequential updates have no batch assignment to skip.

    Attributes
    ----------
    cluster_centers_:
        (k, d) centroid matrix of the best run.
    labels_:
        Assignment of each training row.
    inertia_:
        Within-cluster sum of squared distances.
    n_iter_:
        Iterations used by the winning run.
    truncated_:
        True when a budget stopped optimisation early.

    Examples
    --------
    >>> from repro.datasets import gaussian_blobs
    >>> X, _ = gaussian_blobs(120, centers=3, random_state=0)
    >>> model = KMeans(3, random_state=0).fit(X)
    >>> sorted(set(model.labels_.tolist()))
    [0, 1, 2]
    """

    def __init__(
        self,
        n_clusters: int = 8,
        init: str = "kmeans++",
        algorithm: str = "lloyd",
        n_init: int = 5,
        max_iter: int = 300,
        tol: float = 1e-6,
        random_state: RandomState = None,
        max_restarts: int = 0,
        budget: Optional[Budget] = None,
        checkpoint: Optional[Checkpointer] = None,
        ctx: Optional[ExecutionContext] = None,
        n_jobs: Optional[int] = None,
        backend: str = "full",
    ):
        check_in_range("n_clusters", n_clusters, 1, None)
        check_in_range("n_init", n_init, 1, None)
        check_in_range("max_iter", max_iter, 1, None)
        check_in_range("tol", tol, 0.0, None)
        check_in_range("max_restarts", max_restarts, 0, None)
        if init not in _INITS:
            raise ValidationError(f"init must be one of {_INITS}, got {init!r}")
        if algorithm not in _ALGORITHMS:
            raise ValidationError(
                f"algorithm must be one of {_ALGORITHMS}, got {algorithm!r}"
            )
        if backend not in ASSIGN_BACKENDS:
            raise ValidationError(
                f"backend must be one of {ASSIGN_BACKENDS}, got {backend!r}"
            )
        self.backend = backend
        self.n_clusters = int(n_clusters)
        self.init = init
        self.algorithm = algorithm
        self.n_init = int(n_init)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.random_state = random_state
        self.max_restarts = int(max_restarts)
        self.n_jobs = resolve_n_jobs(n_jobs, "KMeans")
        self._init_context(ctx, budget=budget, checkpoint=checkpoint)
        self.cluster_centers_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None
        self.n_iter_: Optional[int] = None
        self.truncated_ = False
        self.truncation_reason_: Optional[str] = None

    def _fit(self, X: np.ndarray) -> None:
        if self.n_clusters > len(X):
            raise ValidationError(
                f"n_clusters={self.n_clusters} exceeds {len(X)} samples"
            )
        rng = check_random_state(self.random_state)
        self.truncated_ = False
        self.truncation_reason_ = None
        if (
            self.n_jobs > 1
            and self.ctx.budget is None
            and self.ctx.checkpointer is None
        ):
            # Bare runs have no order-dependent budget truncation or
            # per-iteration snapshots, so the restarts are pure trials.
            self._fit_parallel(X, rng)
            return
        resumed = self.ctx.resume(lambda: self._checkpoint_key(X))
        best = None
        any_converged = False
        completed = 0  # fully finished restarts
        run_state = None  # mid-run boundary of restart `completed`, if any
        if resumed is not None:
            best = resumed["best"]
            any_converged = resumed["any_converged"]
            completed = resumed["completed"]
            run_state = resumed["run"]
        launched = completed
        try:
            # Restart seeds are re-derived from random_state, so skipping
            # the first `completed` children replays the original schedule.
            for run_idx, child in enumerate(spawn(rng, self.n_init + self.max_restarts)):
                if run_idx < completed:
                    continue
                if run_idx >= self.n_init and any_converged:
                    break  # the retry allowance only serves non-converged fits
                if self.truncated_:
                    break  # budget exhausted: no further runs
                launched += 1
                if run_idx == completed and run_state is not None:
                    centers = run_state["centers"]
                    start_iter = run_state["iteration"]
                    counts = run_state.get("counts")
                else:
                    centers = self._init_centers(X, child)
                    start_iter = 0
                    counts = None

                on_iter = None
                if self.checkpoint is not None:
                    def on_iter(iteration, centers_now, counts_now):
                        run = {"iteration": iteration, "centers": centers_now.copy()}
                        if counts_now is not None:
                            run["counts"] = counts_now.copy()
                        self.ctx.mark({
                            "completed": completed,
                            "any_converged": any_converged,
                            "best": best,
                            "run": run,
                        })

                if self.algorithm == "lloyd":
                    centers, labels, inertia, n_iter, converged = self._lloyd(
                        X, centers, child, start_iter=start_iter, on_iter=on_iter
                    )
                else:
                    centers, labels, inertia, n_iter, converged = self._macqueen(
                        X, centers, start_iter=start_iter, counts=counts,
                        on_iter=on_iter,
                    )
                any_converged = any_converged or converged
                if best is None or inertia < best[2]:
                    best = (centers, labels, inertia, n_iter)
                completed = run_idx + 1
                run_state = None
                if self.checkpoint is not None:
                    self.ctx.mark({
                        "completed": completed,
                        "any_converged": any_converged,
                        "best": best,
                        "run": None,
                    })
        finally:
            self.ctx.flush()
        self.cluster_centers_, self.labels_, self.inertia_, self.n_iter_ = best
        if not any_converged and not self.truncated_:
            warnings.warn(
                f"k-means did not converge in {self.max_iter} iterations "
                f"in any of {launched} runs",
                ConvergenceWarning,
                stacklevel=2,
            )

    def _fit_parallel(self, X: np.ndarray, rng) -> None:
        """The restart loop as parallel trials (bare runs only).

        The first ``n_init`` restarts always all run in the serial loop
        (its early exits need a budget, or apply only to the retry
        allowance), so they fan out as independent trials and merge in
        restart order.  The ``max_restarts`` extras keep the serial
        stop-at-first-convergence rule.
        """
        children = list(spawn(rng, self.n_init + self.max_restarts))

        with SharedRegion() as region:
            X_handle = region.put_array(X)
            tasks = [
                (X_handle, self.n_clusters, self.init, self.algorithm,
                 self.max_iter, self.tol, child, self.backend)
                for child in children[:self.n_init]
            ]
            # probe=True: a restart on small data converges in well
            # under dispatch cost, in which case the whole map gates
            # back to the serial loop — the pre-pool 0.29× shape.
            outcomes = shared_pool(self.n_jobs).map(
                _kmeans_trial_task, tasks, ctx=self.ctx,
                phase="kmeans-restart", probe=True,
            )
        best = None
        any_converged = False
        launched = self.n_init
        for centers, labels, inertia, n_iter, converged in outcomes:
            any_converged = any_converged or converged
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia, n_iter)
        for child in children[self.n_init:]:
            if any_converged:
                break
            launched += 1
            centers = self._init_centers(X, child)
            if self.algorithm == "lloyd":
                centers, labels, inertia, n_iter, converged = self._lloyd(
                    X, centers, child
                )
            else:
                centers, labels, inertia, n_iter, converged = self._macqueen(
                    X, centers
                )
            any_converged = any_converged or converged
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia, n_iter)
        self.cluster_centers_, self.labels_, self.inertia_, self.n_iter_ = best
        if not any_converged:
            warnings.warn(
                f"k-means did not converge in {self.max_iter} iterations "
                f"in any of {launched} runs",
                ConvergenceWarning,
                stacklevel=3,
            )

    def _checkpoint_key(self, X: np.ndarray) -> dict:
        return {
            "algorithm": "kmeans",
            "variant": self.algorithm,
            "n_samples": int(len(X)),
            "n_features": int(X.shape[1]),
            "n_clusters": self.n_clusters,
            "init": self.init,
            "n_init": self.n_init,
            "max_iter": self.max_iter,
            "tol": self.tol,
        }

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------
    def _init_centers(self, X: np.ndarray, rng) -> np.ndarray:
        k = self.n_clusters
        if self.init == "forgy":
            return X[rng.choice(len(X), size=k, replace=False)].copy()
        if self.init == "random_partition":
            labels = rng.integers(k, size=len(X))
            # Guarantee every cluster is non-empty.
            labels[rng.choice(len(X), size=k, replace=False)] = np.arange(k)
            return np.stack([X[labels == c].mean(axis=0) for c in range(k)])
        # k-means++: iteratively sample proportional to squared distance.
        centers = np.empty((k, X.shape[1]))
        centers[0] = X[rng.integers(len(X))]
        closest_sq = ((X - centers[0]) ** 2).sum(axis=1)
        for c in range(1, k):
            total = closest_sq.sum()
            if total <= 0:
                centers[c:] = X[rng.choice(len(X), size=k - c)]
                break
            probs = closest_sq / total
            centers[c] = X[rng.choice(len(X), p=probs)]
            closest_sq = np.minimum(
                closest_sq, ((X - centers[c]) ** 2).sum(axis=1)
            )
        return centers

    # ------------------------------------------------------------------
    # Optimisation
    # ------------------------------------------------------------------
    def _charge_iteration(self, phase: str) -> bool:
        """Charge one optimisation iteration; True when budget survives."""
        if self.budget is None:
            return True
        try:
            self.budget.charge_expansions(phase=phase)
            self.budget.check(phase=phase)
        except BudgetExceeded as exc:
            self.truncated_ = True
            self.truncation_reason_ = f"{type(exc).__name__}: {exc}"
            return False
        return True

    def _lloyd(self, X, centers, rng, start_iter=0, on_iter=None):
        if self.backend == "elkan":
            return self._lloyd_elkan(
                X, centers, start_iter=start_iter, on_iter=on_iter
            )
        labels = None
        converged = False
        iteration = start_iter
        for iteration in range(start_iter + 1, self.max_iter + 1):
            if not self._charge_iteration("kmeans-lloyd"):
                break
            labels, sq = nearest_center(X, centers)
            new_centers = centers.copy()
            for c in range(self.n_clusters):
                member = labels == c
                if member.any():
                    new_centers[c] = X[member].mean(axis=0)
                else:
                    # Re-seed an empty cluster at the farthest point.
                    new_centers[c] = X[int(np.argmax(sq))]
            shift = float(np.sqrt(((new_centers - centers) ** 2).sum(axis=1)).max())
            centers = new_centers
            if shift <= self.tol:
                converged = True
                break
            if on_iter is not None:
                on_iter(iteration, centers, None)
        labels, sq = nearest_center(X, centers)
        return centers, labels, float(sq.sum()), iteration, converged

    def _lloyd_elkan(self, X, centers, start_iter=0, on_iter=None):
        """Lloyd with a triangle-inequality assignment skip (Elkan 2003).

        A point whose distance upper bound stays within half the gap
        between its centre and the nearest other centre provably cannot
        change assignment, so only the remaining "stale" points pay for
        a distance computation.  Budget charges, the empty-cluster
        re-seed rule, and the final full assignment are identical to the
        plain backend, so outputs are byte-for-byte the same.
        """
        labels = None
        ub = None
        converged = False
        iteration = start_iter
        for iteration in range(start_iter + 1, self.max_iter + 1):
            if not self._charge_iteration("kmeans-lloyd"):
                break
            if labels is None:
                labels, sq = nearest_center(X, centers)
                ub = np.sqrt(sq)
            else:
                cc = pairwise_distances(centers, centers)
                np.fill_diagonal(cc, np.inf)
                half_min = 0.5 * cc.min(axis=1)
                stale = ub > half_min[labels]
                if stale.any():
                    sub_labels, sub_sq = nearest_center(X[stale], centers)
                    labels[stale] = sub_labels
                    ub[stale] = np.sqrt(sub_sq)
            new_centers = centers.copy()
            sq_exact = None
            for c in range(self.n_clusters):
                member = labels == c
                if member.any():
                    new_centers[c] = X[member].mean(axis=0)
                else:
                    # Re-seed an empty cluster at the farthest point,
                    # measured exactly so the choice matches the plain
                    # backend (bounds are not tight enough to rank).
                    if sq_exact is None:
                        _, sq_exact = nearest_center(X, centers)
                    new_centers[c] = X[int(np.argmax(sq_exact))]
            drift = np.sqrt(((new_centers - centers) ** 2).sum(axis=1))
            shift = float(drift.max())
            centers = new_centers
            ub = ub + drift[labels]
            if shift <= self.tol:
                converged = True
                break
            if on_iter is not None:
                on_iter(iteration, centers, None)
        labels, sq = nearest_center(X, centers)
        return centers, labels, float(sq.sum()), iteration, converged

    def _macqueen(self, X, centers, start_iter=0, counts=None, on_iter=None):
        """MacQueen's online update: each point moves its centroid at once."""
        if counts is None:
            counts = np.ones(self.n_clusters)
        converged = False
        iteration = start_iter
        for iteration in range(start_iter + 1, self.max_iter + 1):
            if not self._charge_iteration("kmeans-macqueen"):
                break
            moved = 0.0
            for x in X:
                d = ((centers - x) ** 2).sum(axis=1)
                c = int(np.argmin(d))
                counts[c] += 1
                step = (x - centers[c]) / counts[c]
                centers[c] = centers[c] + step
                moved = max(moved, float(np.sqrt((step**2).sum())))
            if moved <= self.tol:
                converged = True
                break
            if on_iter is not None:
                on_iter(iteration, centers, counts)
        labels, sq = nearest_center(X, centers)
        return centers, labels, float(sq.sum()), iteration, converged

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        """Assign new points to the nearest fitted centroid."""
        from ..core.base import check_fitted, check_matrix

        check_fitted(self, "cluster_centers_")
        X = check_matrix(X)
        labels, _ = nearest_center(X, self.cluster_centers_)
        return labels

    def transform(self, X) -> np.ndarray:
        """Distances from each point to every centroid."""
        from ..core.base import check_fitted, check_matrix

        check_fitted(self, "cluster_centers_")
        return pairwise_distances(check_matrix(X), self.cluster_centers_)


__all__ = ["KMeans"]
