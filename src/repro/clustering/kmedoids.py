"""PAM — Partitioning Around Medoids (Kaufman & Rousseeuw, 1990).

k-medoids restricted to actual data points: a BUILD phase greedily seeds
the medoids, then a SWAP phase repeatedly exchanges a medoid with the
non-medoid that most reduces the total distance cost.  Quality is
comparable to k-means but robust to outliers; the price is the O(k(n-k)²)
swap scan that motivated CLARA and CLARANS — exactly the trade-off the
E9/E10 benchmarks exhibit.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from ..core.base import Clusterer, check_in_range
from ..core.exceptions import ConvergenceWarning, ValidationError
from ..core.random import RandomState
from ..runtime import Budget, BudgetExceeded, Checkpointer
from ..runtime.context import ExecutionContext
from .distance import pairwise_distances


class PAM(Clusterer):
    """Partitioning Around Medoids.

    Parameters
    ----------
    n_clusters:
        Number of medoids (k).
    max_swaps:
        Upper bound on accepted swaps (each is a full O(k(n-k)²) scan).
        Exhausting it without reaching a local optimum raises a
        :class:`ConvergenceWarning` (``max_swaps=0`` requests the BUILD
        phase only and never warns).
    budget:
        Deprecated alias for ``ctx=ExecutionContext(budget=...)``:
        optional :class:`~repro.runtime.Budget`, charged one expansion
        per swap scan.  On exhaustion the best medoids found so far are
        kept and ``truncated_`` is set.
    checkpoint:
        Deprecated alias for ``ctx=ExecutionContext(checkpointer=...)``:
        optional :class:`~repro.runtime.Checkpointer`.  The BUILD result
        and every accepted swap are resumable boundaries; the swap phase
        is a deterministic steepest descent, so a resumed fit reproduces
        the uninterrupted medoids and cost exactly.

    Attributes
    ----------
    medoid_indices_:
        Row indices of the chosen medoids.
    cluster_centers_:
        The medoid points themselves.
    labels_:
        Assignment of each row to its nearest medoid.
    cost_:
        Total distance of points to their medoid (the PAM objective).

    Examples
    --------
    >>> from repro.datasets import gaussian_blobs
    >>> X, _ = gaussian_blobs(60, centers=3, random_state=2)
    >>> model = PAM(3).fit(X)
    >>> len(model.medoid_indices_)
    3
    """

    def __init__(
        self,
        n_clusters: int = 8,
        max_swaps: int = 200,
        budget: Optional[Budget] = None,
        checkpoint: Optional[Checkpointer] = None,
        ctx: Optional[ExecutionContext] = None,
    ):
        check_in_range("n_clusters", n_clusters, 1, None)
        check_in_range("max_swaps", max_swaps, 0, None)
        self.n_clusters = int(n_clusters)
        self.max_swaps = int(max_swaps)
        self._init_context(ctx, budget=budget, checkpoint=checkpoint)
        self.medoid_indices_: Optional[np.ndarray] = None
        self.cluster_centers_: Optional[np.ndarray] = None
        self.cost_: Optional[float] = None
        self.truncated_ = False
        self.truncation_reason_: Optional[str] = None

    def _fit(self, X: np.ndarray) -> None:
        n = len(X)
        if self.n_clusters > n:
            raise ValidationError(
                f"n_clusters={self.n_clusters} exceeds {n} samples"
            )
        self.truncated_ = False
        self.truncation_reason_ = None
        resumed = self.ctx.resume(lambda: {
            "algorithm": "pam",
            "n_samples": int(n),
            "n_features": int(X.shape[1]),
            "n_clusters": self.n_clusters,
            "max_swaps": self.max_swaps,
        })
        d = pairwise_distances(X)
        try:
            if resumed is not None:
                medoids = list(resumed["medoids"])
                start = resumed["swaps_done"]
            else:
                medoids = self._build(d)
                start = 0
                self.ctx.mark(
                    lambda: {"medoids": list(medoids), "swaps_done": 0}
                )
            medoids, cost = self._swap(d, medoids, start=start)
        finally:
            self.ctx.flush()
        self.medoid_indices_ = np.array(sorted(medoids))
        self.cluster_centers_ = X[self.medoid_indices_]
        self.labels_ = d[:, self.medoid_indices_].argmin(axis=1)
        self.cost_ = cost

    # ------------------------------------------------------------------
    # BUILD: greedy seeding
    # ------------------------------------------------------------------
    def _build(self, d: np.ndarray) -> list:
        n = len(d)
        # First medoid: the point minimising total distance (the 1-medoid).
        first = int(d.sum(axis=1).argmin())
        medoids = [first]
        nearest = d[:, first].copy()
        while len(medoids) < self.n_clusters:
            # Gain of adding candidate c: sum over points of the distance
            # reduction max(nearest - d(., c), 0).
            reduction = np.maximum(nearest[None, :] - d, 0.0).sum(axis=1)
            reduction[medoids] = -np.inf
            chosen = int(reduction.argmax())
            medoids.append(chosen)
            nearest = np.minimum(nearest, d[:, chosen])
        return medoids

    # ------------------------------------------------------------------
    # SWAP: steepest-descent medoid exchange
    # ------------------------------------------------------------------
    def _swap(self, d: np.ndarray, medoids: list, start: int = 0):
        n = len(d)
        medoids = list(medoids)
        for swaps_done in range(start, self.max_swaps):
            if self.budget is not None:
                try:
                    self.budget.charge_expansions(phase="pam-swap")
                    self.budget.check(phase="pam-swap")
                except BudgetExceeded as exc:
                    self.truncated_ = True
                    self.truncation_reason_ = f"{type(exc).__name__}: {exc}"
                    break
            med = np.array(medoids)
            dist_to_meds = d[:, med]
            order = np.argsort(dist_to_meds, axis=1)
            nearest = dist_to_meds[np.arange(n), order[:, 0]]
            if len(medoids) > 1:
                second = dist_to_meds[np.arange(n), order[:, 1]]
            else:
                second = np.full(n, np.inf)
            nearest_med = med[order[:, 0]]
            current_cost = float(nearest.sum())

            best_delta = -1e-12
            best_swap = None
            non_medoids = [i for i in range(n) if i not in set(medoids)]
            for m_pos, m in enumerate(medoids):
                is_mine = nearest_med == m
                for h in non_medoids:
                    d_h = d[:, h]
                    # Points owned by m: go to min(second-nearest, h).
                    delta = np.where(
                        is_mine,
                        np.minimum(second, d_h) - nearest,
                        np.minimum(d_h - nearest, 0.0),
                    ).sum()
                    if delta < best_delta:
                        best_delta = float(delta)
                        best_swap = (m_pos, h)
            if best_swap is None:
                return medoids, current_cost
            medoids[best_swap[0]] = best_swap[1]
            self.ctx.mark(
                lambda: {"medoids": list(medoids), "swaps_done": swaps_done + 1}
            )
        else:
            if self.max_swaps > 0:
                warnings.warn(
                    f"PAM swap phase did not reach a local optimum within "
                    f"{self.max_swaps} swaps",
                    ConvergenceWarning,
                    stacklevel=3,
                )
        med = np.array(medoids)
        cost = float(d[:, med].min(axis=1).sum())
        return medoids, cost


__all__ = ["PAM"]
