"""Clustering: centroid, medoid, hierarchical, summary-tree and density
methods.

* :class:`KMeans` — Lloyd/MacQueen with k-means++ seeding.
* :class:`PAM` — exact k-medoids (BUILD + SWAP).
* :class:`CLARA` — PAM on samples, for large n.
* :class:`CLARANS` — randomized-search k-medoids.
* :class:`Agglomerative` — single/complete/average/ward linkage.
* :class:`Birch` — single-scan CF-tree compression + global phase.
* :class:`DBSCAN` — density-based clusters of arbitrary shape.
* :class:`Cobweb` — incremental conceptual clustering of nominal data.
"""

from .birch import CF, Birch
from .cobweb import Cobweb, CobwebNode, category_utility
from .clara import CLARA
from .clarans import CLARANS
from .dbscan import DBSCAN, NOISE
from .distance import euclidean, nearest_center, pairwise_distances
from .hierarchical import Agglomerative
from .kmeans import KMeans
from .kmedoids import PAM

from ..registry import (
    AlgorithmSpec as _Spec,
    Capabilities as _Caps,
    register as _register,
)


# CLI adapters: clustering constructors take per-algorithm
# hyper-parameters, so each spec carries a ``make(ctx, **params)``
# mapping the shared CLI surface (k / eps / min-samples / seed) onto
# the estimator.  Extra params are accepted and ignored so the CLI can
# pass its full flag set uniformly.
def _make_kmeans(ctx, k=3, seed=0, n_jobs=None, backend="full", **_):
    return KMeans(k, random_state=seed, ctx=ctx, n_jobs=n_jobs,
                  backend=backend)


def _make_pam(ctx, k=3, **_):
    return PAM(k, ctx=ctx)


def _make_clarans(ctx, k=3, seed=0, **_):
    return CLARANS(k, random_state=seed, ctx=ctx)


def _make_birch(ctx, k=3, eps=0.5, seed=0, **_):
    return Birch(threshold=eps, n_clusters=k, random_state=seed, ctx=ctx)


def _make_dbscan(ctx, eps=0.5, min_samples=5, **_):
    return DBSCAN(eps=eps, min_samples=min_samples, ctx=ctx)


def _make_agglomerative(ctx, k=3, **_):
    return Agglomerative(k, ctx=ctx)


# Capability declarations (see repro.registry).  The iterative
# optimisers snapshot pass boundaries and so are checkpointable and
# supervisable; the single-shot methods are not.  Birch charges the
# ``nodes`` axis (one unit per point inserted into the CF-tree), unlike
# the other clusterers' ``expansions``.  The order fixes the CLI
# ``--algorithm`` choices.
_ITERATIVE_CAPS = _Caps(
    checkpointable=True, supervisable=True, budget_resource="expansions"
)
_KMEANS_CAPS = _Caps(
    checkpointable=True, supervisable=True, budget_resource="expansions",
    parallelizable=True, vectorizable=True,
)
for _spec in (
    _Spec("kmeans", "clustering", KMeans, _KMEANS_CAPS,
          summary="Lloyd/MacQueen with k-means++ seeding",
          make=_make_kmeans),
    _Spec("pam", "clustering", PAM, _ITERATIVE_CAPS,
          summary="exact k-medoids (BUILD + SWAP)", make=_make_pam),
    _Spec("clarans", "clustering", CLARANS, _ITERATIVE_CAPS,
          summary="randomized-search k-medoids", make=_make_clarans),
    _Spec("birch", "clustering", Birch,
          _Caps(budget_resource="nodes"),
          summary="single-scan CF-tree compression", make=_make_birch),
    _Spec("dbscan", "clustering", DBSCAN,
          _Caps(budget_resource="expansions"),
          summary="density-based clusters of arbitrary shape",
          make=_make_dbscan),
    _Spec("agglomerative", "clustering", Agglomerative,
          _Caps(budget_resource="expansions"),
          summary="single/complete/average/ward linkage",
          make=_make_agglomerative),
):
    _register(_spec)

__all__ = [
    "KMeans",
    "PAM",
    "CLARA",
    "CLARANS",
    "Agglomerative",
    "Birch",
    "CF",
    "DBSCAN",
    "NOISE",
    "Cobweb",
    "CobwebNode",
    "category_utility",
    "euclidean",
    "pairwise_distances",
    "nearest_center",
]
