"""Clustering: centroid, medoid, hierarchical, summary-tree and density
methods.

* :class:`KMeans` — Lloyd/MacQueen with k-means++ seeding.
* :class:`PAM` — exact k-medoids (BUILD + SWAP).
* :class:`CLARA` — PAM on samples, for large n.
* :class:`CLARANS` — randomized-search k-medoids.
* :class:`Agglomerative` — single/complete/average/ward linkage.
* :class:`Birch` — single-scan CF-tree compression + global phase.
* :class:`DBSCAN` — density-based clusters of arbitrary shape.
* :class:`Cobweb` — incremental conceptual clustering of nominal data.
"""

from .birch import CF, Birch
from .cobweb import Cobweb, CobwebNode, category_utility
from .clara import CLARA
from .clarans import CLARANS
from .dbscan import DBSCAN, NOISE
from .distance import euclidean, nearest_center, pairwise_distances
from .hierarchical import Agglomerative
from .kmeans import KMeans
from .kmedoids import PAM

__all__ = [
    "KMeans",
    "PAM",
    "CLARA",
    "CLARANS",
    "Agglomerative",
    "Birch",
    "CF",
    "DBSCAN",
    "NOISE",
    "Cobweb",
    "CobwebNode",
    "category_utility",
    "euclidean",
    "pairwise_distances",
    "nearest_center",
]
