"""Distance kernels shared by the clustering algorithms.

Everything is numpy-vectorised; the pairwise helpers are the hot path of
PAM/CLARA/CLARANS and the silhouette computation.
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import ValidationError


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two vectors.

    >>> euclidean(np.array([0.0, 0.0]), np.array([3.0, 4.0]))
    5.0
    """
    return float(np.sqrt(((a - b) ** 2).sum()))


def pairwise_distances(
    X: np.ndarray, Y: np.ndarray = None, squared: bool = False
) -> np.ndarray:
    """Dense Euclidean distance matrix between rows of X and Y (or X, X).

    Uses the expanded quadratic form with a clamp against tiny negative
    round-off.  ``squared=True`` skips the square root — squared
    distances order identically to true ones, so argmin-style consumers
    (the k-means assignment step) can avoid the round-trip entirely.
    """
    X = np.asarray(X, dtype=np.float64)
    Y = X if Y is None else np.asarray(Y, dtype=np.float64)
    if X.ndim != 2 or Y.ndim != 2:
        raise ValidationError("pairwise_distances expects 2-D inputs")
    sq = (
        (X**2).sum(axis=1)[:, None]
        - 2.0 * X @ Y.T
        + (Y**2).sum(axis=1)[None, :]
    )
    sq = np.maximum(sq, 0.0)
    return sq if squared else np.sqrt(sq)


def nearest_center(X: np.ndarray, centers: np.ndarray):
    """(assignment, squared distance to the assigned center) per row."""
    d2 = pairwise_distances(X, centers, squared=True)
    labels = d2.argmin(axis=1)
    return labels, d2[np.arange(len(X)), labels]


__all__ = ["euclidean", "pairwise_distances", "nearest_center"]
