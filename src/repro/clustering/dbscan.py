"""DBSCAN — density-based clustering (Ester, Kriegel, Sander & Xu, KDD
1996).

A point with at least ``min_samples`` neighbours within ``eps`` is a
*core* point; clusters are the transitive closure of core points over
the eps-neighbourhood relation, plus the border points they reach.
Everything else is noise (label ``-1``).  DBSCAN therefore discovers
clusters of arbitrary shape and a data-determined cluster count — the
property benchmark E11 contrasts with k-means on rings and moons.

Region queries use a uniform grid of cell side ``eps`` (the role the
paper's R*-tree plays): a point's neighbours can only live in the 3^d
adjacent cells, making queries near-constant-time on bounded-density
data of low dimension.
"""

from __future__ import annotations

import warnings
from collections import deque
from itertools import product
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.base import Clusterer, check_in_range
from ..core.exceptions import ConvergenceWarning, ValidationError
from ..runtime import Budget, BudgetExceeded
from ..runtime.context import ExecutionContext

NOISE = -1


class _GridIndex:
    """Uniform-grid spatial index answering eps-neighbourhood queries."""

    def __init__(self, X: np.ndarray, eps: float):
        self._X = X
        self._eps = eps
        self._cells: Dict[Tuple[int, ...], List[int]] = {}
        self._keys = np.floor(X / eps).astype(np.int64)
        for idx, key in enumerate(map(tuple, self._keys)):
            self._cells.setdefault(key, []).append(idx)
        self._offsets = list(product((-1, 0, 1), repeat=X.shape[1]))

    def neighbours(self, idx: int) -> np.ndarray:
        """Indices of points within eps of point ``idx`` (inclusive)."""
        key = tuple(self._keys[idx])
        candidates: List[int] = []
        for offset in self._offsets:
            cell = tuple(k + o for k, o in zip(key, offset))
            candidates.extend(self._cells.get(cell, ()))
        candidates = np.asarray(candidates)
        diffs = self._X[candidates] - self._X[idx]
        within = (diffs**2).sum(axis=1) <= self._eps**2
        return candidates[within]


class DBSCAN(Clusterer):
    """Density-based clusterer.

    Parameters
    ----------
    eps:
        Neighbourhood radius.
    min_samples:
        Minimum neighbourhood size (including the point itself) for a
        core point — the paper's MinPts.
    max_grid_dimensions:
        The grid index is used up to this dimensionality; beyond it the
        3^d cell fan-out loses to a plain O(n²) scan, which is used
        instead.
    budget:
        Optional :class:`~repro.runtime.Budget`, charged one expansion
        per region query.  On exhaustion the scan stops: clusters found
        so far are kept, every unreached point stays noise (``-1``),
        and ``truncated_`` is set.

    Attributes
    ----------
    labels_:
        Cluster id per row; ``-1`` marks noise.
    core_sample_indices_:
        Indices of the core points.
    n_clusters_:
        Number of discovered clusters.
    truncated_:
        True when a budget stopped the density scan early.

    Examples
    --------
    >>> from repro.datasets import two_rings
    >>> X, _ = two_rings(300, random_state=0)
    >>> model = DBSCAN(eps=1.2, min_samples=5).fit(X)
    >>> model.n_clusters_
    2
    """

    def __init__(
        self,
        eps: float = 0.5,
        min_samples: int = 5,
        max_grid_dimensions: int = 6,
        budget: Optional[Budget] = None,
        ctx: Optional[ExecutionContext] = None,
    ):
        check_in_range("eps", eps, 0.0, None, low_inclusive=False)
        check_in_range("min_samples", min_samples, 1, None)
        self.eps = float(eps)
        self.min_samples = int(min_samples)
        self.max_grid_dimensions = int(max_grid_dimensions)
        self._init_context(ctx, budget=budget)
        self.core_sample_indices_: Optional[np.ndarray] = None
        self.n_clusters_: Optional[int] = None
        self.truncated_ = False
        self.truncation_reason_: Optional[str] = None

    def _fit(self, X: np.ndarray) -> None:
        n = len(X)
        if X.shape[1] <= self.max_grid_dimensions:
            index = _GridIndex(X, self.eps)
            region_query = index.neighbours
        else:
            region_query = self._brute_neighbours_fn(X)

        def neighbours(idx: int) -> np.ndarray:
            if self.budget is not None:
                self.budget.charge_expansions(phase="dbscan-region-query")
            return region_query(idx)

        self.truncated_ = False
        self.truncation_reason_ = None
        labels = np.full(n, NOISE, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        core: List[int] = []
        cluster = 0
        try:
            for start in range(n):
                if visited[start]:
                    continue
                visited[start] = True
                seed_neighbours = neighbours(start)
                if len(seed_neighbours) < self.min_samples:
                    continue  # noise for now; may become a border point later
                core.append(start)
                labels[start] = cluster
                queue = deque(int(i) for i in seed_neighbours if i != start)
                while queue:
                    point = queue.popleft()
                    if labels[point] == NOISE:
                        labels[point] = cluster  # border or newly reached
                    if visited[point]:
                        continue
                    visited[point] = True
                    point_neighbours = neighbours(point)
                    if len(point_neighbours) >= self.min_samples:
                        core.append(point)
                        for other in point_neighbours:
                            other = int(other)
                            if not visited[other] or labels[other] == NOISE:
                                queue.append(other)
                cluster += 1
        except BudgetExceeded as exc:
            # Every cluster discovered so far is genuine; unreached
            # points simply stay noise.
            self.truncated_ = True
            self.truncation_reason_ = f"{type(exc).__name__}: {exc}"
            warnings.warn(
                f"DBSCAN stopped before visiting every point: {exc}",
                ConvergenceWarning,
                stacklevel=2,
            )

        self.labels_ = labels
        self.core_sample_indices_ = np.asarray(sorted(core), dtype=np.int64)
        # labels.max() counts the partially-expanded cluster a budget
        # interruption may leave behind; -1-only data yields 0.
        self.n_clusters_ = int(labels.max()) + 1

    def _brute_neighbours_fn(self, X: np.ndarray):
        eps_sq = self.eps**2

        def neighbours(idx: int) -> np.ndarray:
            d = ((X - X[idx]) ** 2).sum(axis=1)
            return np.flatnonzero(d <= eps_sq)

        return neighbours


__all__ = ["DBSCAN", "NOISE"]
