"""COBWEB — incremental conceptual clustering (Fisher, 1987).

COBWEB clusters *nominal* instances into a concept hierarchy, guided by
**category utility**:

``CU = (1/K) * sum_k P(C_k) * [ sum_ij P(A_i = V_ij | C_k)^2
                                - sum_ij P(A_i = V_ij)^2 ]``

— the expected gain in attribute-value predictability from knowing an
instance's cluster.  Instances are inserted one at a time; at each node
the operator that maximises CU is applied: place into the best child,
create a new singleton child, *merge* the two best children, or *split*
the best child into its own children.  Merge and split give the
hill-climbing search its undo ability, making the result far less
order-sensitive than plain incremental sorting.

The fitted object exposes the root-level partition as ``labels_`` (the
conventional flat reading) and the full hierarchy for inspection.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.base import check_in_range
from ..core.exceptions import NotFittedError, ValidationError
from ..core.table import Table


class CobwebNode:
    """One concept: attribute-value counts over the instances below it."""

    __slots__ = ("n", "value_counts", "children", "instances")

    def __init__(self, n_values: List[int]):
        self.n = 0
        self.value_counts = [np.zeros(v) for v in n_values]
        self.children: List["CobwebNode"] = []
        self.instances: List[int] = []  # row ids (leaves of the hierarchy)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def add_counts(self, row: np.ndarray) -> None:
        self.n += 1
        for attr_idx, code in enumerate(row):
            self.value_counts[attr_idx][code] += 1

    def expected_correct(self) -> float:
        """sum_ij P(A_i = V_ij | this concept)^2."""
        if self.n == 0:
            return 0.0
        total = 0.0
        for counts in self.value_counts:
            p = counts / self.n
            total += float((p * p).sum())
        return total

    def copy_stats(self) -> "CobwebNode":
        clone = CobwebNode([len(c) for c in self.value_counts])
        clone.n = self.n
        clone.value_counts = [c.copy() for c in self.value_counts]
        clone.instances = list(self.instances)
        clone.children = list(self.children)
        return clone

    def depth(self) -> int:
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def n_concepts(self) -> int:
        return 1 + sum(child.n_concepts() for child in self.children)


def category_utility(parent: CobwebNode, children: List[CobwebNode]) -> float:
    """CU of partitioning ``parent`` into ``children``.

    >>> a = CobwebNode([2]); a.add_counts(np.array([0]))
    >>> b = CobwebNode([2]); b.add_counts(np.array([1]))
    >>> p = CobwebNode([2]); p.add_counts(np.array([0])); p.add_counts(np.array([1]))
    >>> category_utility(p, [a, b])
    0.25
    """
    if not children or parent.n == 0:
        return 0.0
    base = parent.expected_correct()
    total = 0.0
    for child in children:
        if child.n == 0:
            continue
        total += (child.n / parent.n) * (child.expected_correct() - base)
    return total / len(children)


class Cobweb:
    """COBWEB clusterer over categorical tables.

    Parameters
    ----------
    max_children:
        Soft cap on a node's fan-out; above it, merges are strongly
        preferred (keeps the tree readable on large data).

    Attributes
    ----------
    root_:
        The concept hierarchy.
    labels_:
        Flat assignment: index of the root child each row descends into.

    Examples
    --------
    >>> from repro.core import Table, categorical
    >>> rows = [("small", "red")] * 5 + [("large", "blue")] * 5
    >>> table = Table.from_rows(rows, [
    ...     categorical("size", ["small", "large"]),
    ...     categorical("color", ["red", "blue"])])
    >>> model = Cobweb().fit(table)
    >>> len(set(model.labels_.tolist()))
    2
    """

    def __init__(self, max_children: int = 12):
        check_in_range("max_children", max_children, 2, None)
        self.max_children = int(max_children)
        self.root_: Optional[CobwebNode] = None
        self.labels_: Optional[np.ndarray] = None

    def fit(self, table: Table) -> "Cobweb":
        """Build the concept hierarchy incrementally over ``table``."""
        rows, n_values = self._encode(table)
        self._n_values = n_values
        self.root_ = CobwebNode(n_values)
        for row_id, row in enumerate(rows):
            self._insert(self.root_, row, row_id)
        self.labels_ = self._flat_labels(len(rows))
        return self

    def fit_predict(self, table: Table) -> np.ndarray:
        """Fit and return the root-level assignment."""
        self.fit(table)
        return self.labels_

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _encode(self, table: Table):
        rows = []
        n_values = []
        for attr in table.attributes:
            if not attr.is_categorical:
                raise ValidationError(
                    f"COBWEB handles categorical attributes only; "
                    f"{attr.name!r} is numeric (discretize it first)"
                )
            col = table.column(attr.name)
            if (col < 0).any():
                raise ValidationError(
                    f"COBWEB does not handle missing values ({attr.name!r})"
                )
            n_values.append(len(attr.values))
        matrix = np.column_stack(
            [table.column(a.name) for a in table.attributes]
        ).astype(np.int64)
        if matrix.shape[0] == 0:
            raise ValidationError("cannot fit COBWEB on an empty table")
        rows = [matrix[i] for i in range(matrix.shape[0])]
        return rows, n_values

    # ------------------------------------------------------------------
    # Insertion with the four operators
    # ------------------------------------------------------------------
    def _insert(self, node: CobwebNode, row: np.ndarray, row_id: int) -> None:
        node.add_counts(row)
        if not node.children:
            if node.n == 1:
                node.instances.append(row_id)
                return
            # First branching: the old occupant and the new instance
            # become two singleton children.
            old_child = CobwebNode(self._n_values)
            for counts, node_counts in zip(
                old_child.value_counts, node.value_counts
            ):
                counts += node_counts
            # Subtract the incoming row: old_child holds prior contents.
            for attr_idx, code in enumerate(row):
                old_child.value_counts[attr_idx][code] -= 1
            old_child.n = node.n - 1
            old_child.instances = list(node.instances)
            new_child = CobwebNode(self._n_values)
            new_child.add_counts(row)
            new_child.instances = [row_id]
            node.children = [old_child, new_child]
            node.instances = []
            return

        scores = [
            self._cu_with_addition(node, idx, row)
            for idx in range(len(node.children))
        ]
        order = np.argsort(scores)[::-1]
        best_idx = int(order[0])
        best_cu = scores[best_idx]
        new_cu = self._cu_with_new_singleton(node, row)

        merge_cu = -np.inf
        if len(node.children) >= 3 or len(node.children) > self.max_children:
            second_idx = int(order[1]) if len(order) > 1 else None
            if second_idx is not None:
                merge_cu = self._cu_with_merge(node, best_idx, second_idx, row)
        split_cu = -np.inf
        if node.children[best_idx].children:
            split_cu = self._cu_with_split(node, best_idx, row)

        # Ties favour placing into the best existing child — the
        # structurally simplest operator — so identical instances pile
        # into one concept instead of spawning singleton children.
        eps = 1e-12
        if (
            new_cu > best_cu + eps
            and new_cu > merge_cu + eps
            and new_cu > split_cu + eps
            and len(node.children) <= self.max_children
        ):
            child = CobwebNode(self._n_values)
            child.add_counts(row)
            child.instances = [row_id]
            node.children.append(child)
        elif merge_cu > best_cu + eps and merge_cu >= split_cu:
            second_idx = int(order[1])
            merged = self._merge_children(node, best_idx, second_idx)
            self._insert(merged, row, row_id)
        elif split_cu > best_cu + eps:
            self._split_child(node, best_idx)
            # Re-place among the promoted children.
            node.n -= 1  # undo the pre-added counts before recursing
            for attr_idx, code in enumerate(row):
                node.value_counts[attr_idx][code] -= 1
            self._insert(node, row, row_id)
        else:
            self._insert(node.children[best_idx], row, row_id)

    # ------------------------------------------------------------------
    # Operator evaluation (on stat copies; the tree is not mutated)
    # ------------------------------------------------------------------
    def _cu_with_addition(self, node, child_idx, row) -> float:
        children = list(node.children)
        grown = children[child_idx].copy_stats()
        grown.add_counts(row)
        children[child_idx] = grown
        return category_utility(node, children)

    def _cu_with_new_singleton(self, node, row) -> float:
        singleton = CobwebNode(self._n_values)
        singleton.add_counts(row)
        return category_utility(node, list(node.children) + [singleton])

    def _cu_with_merge(self, node, idx_a, idx_b, row) -> float:
        merged = node.children[idx_a].copy_stats()
        other = node.children[idx_b]
        merged.n += other.n
        for counts, other_counts in zip(merged.value_counts, other.value_counts):
            counts += other_counts
        merged.add_counts(row)
        children = [
            c for i, c in enumerate(node.children) if i not in (idx_a, idx_b)
        ] + [merged]
        return category_utility(node, children)

    def _cu_with_split(self, node, child_idx, row) -> float:
        children = [
            c for i, c in enumerate(node.children) if i != child_idx
        ] + list(node.children[child_idx].children)
        return category_utility(node, children)

    # ------------------------------------------------------------------
    # Operator application
    # ------------------------------------------------------------------
    def _merge_children(self, node, idx_a, idx_b) -> CobwebNode:
        a, b = node.children[idx_a], node.children[idx_b]
        merged = CobwebNode(self._n_values)
        merged.n = a.n + b.n
        for counts, ca, cb in zip(
            merged.value_counts, a.value_counts, b.value_counts
        ):
            counts += ca + cb
        merged.children = [a, b]
        node.children = [
            c for i, c in enumerate(node.children) if i not in (idx_a, idx_b)
        ]
        node.children.append(merged)
        return merged

    def _split_child(self, node, child_idx) -> None:
        child = node.children.pop(child_idx)
        node.children.extend(child.children)

    # ------------------------------------------------------------------
    # Flat reading
    # ------------------------------------------------------------------
    def _flat_labels(self, n_rows: int) -> np.ndarray:
        labels = np.full(n_rows, -1, dtype=np.int64)
        for cluster_idx, child in enumerate(self.root_.children):
            for row_id in self._collect_instances(child):
                labels[row_id] = cluster_idx
        if not self.root_.children:
            labels[:] = 0
        return labels

    def _collect_instances(self, node: CobwebNode) -> List[int]:
        out = list(node.instances)
        for child in node.children:
            out.extend(self._collect_instances(child))
        return out

    @property
    def n_clusters_(self) -> int:
        """Number of root-level concepts."""
        if self.root_ is None:
            raise NotFittedError(self)
        return max(1, len(self.root_.children))


__all__ = ["Cobweb", "CobwebNode", "category_utility"]
