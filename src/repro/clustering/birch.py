"""BIRCH — Balanced Iterative Reducing and Clustering using Hierarchies
(Zhang, Ramakrishnan & Livny, SIGMOD 1996).

BIRCH compresses the dataset in a single scan into a height-balanced
*CF-tree* whose leaf entries are clustering features — (N, LS, SS)
triples that additively summarise subclusters — and then runs a global
clustering over the (few) leaf centroids.  The CF additivity theorem
means centroids, radii and diameters of merged subclusters come straight
from the triples, so the scan never revisits points: that single-scan
property is what benchmark E10 demonstrates against PAM/k-means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.base import Clusterer, check_in_range
from ..core.exceptions import ValidationError
from ..core.random import RandomState
from ..runtime import Budget, BudgetExceeded
from ..runtime.context import ExecutionContext
from .distance import nearest_center


@dataclass
class CF:
    """Clustering feature: (N, linear sum, square sum) of a subcluster."""

    n: float
    ls: np.ndarray
    ss: float

    @classmethod
    def of_point(cls, x: np.ndarray) -> "CF":
        return cls(1.0, x.copy(), float((x**2).sum()))

    def merged(self, other: "CF") -> "CF":
        """CF of the union (the additivity theorem)."""
        return CF(self.n + other.n, self.ls + other.ls, self.ss + other.ss)

    def add(self, other: "CF") -> None:
        self.n += other.n
        self.ls = self.ls + other.ls
        self.ss += other.ss

    @property
    def centroid(self) -> np.ndarray:
        return self.ls / self.n

    @property
    def radius(self) -> float:
        """RMS distance of the subcluster's points to its centroid."""
        sq = self.ss / self.n - (self.centroid**2).sum()
        return float(np.sqrt(max(sq, 0.0)))


class _Node:
    """CF-tree node; holds child entries (subtree CF + child node) for an
    internal node, or plain CF entries for a leaf."""

    __slots__ = ("is_leaf", "entries", "children", "next_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.entries: List[CF] = []
        self.children: List["_Node"] = []
        self.next_leaf: Optional["_Node"] = None


class Birch(Clusterer):
    """BIRCH clusterer (phases 1 and 3 of the paper).

    Parameters
    ----------
    threshold:
        Radius bound T for absorbing a point into a leaf entry.  The
        paper's dynamic threshold-rebuilding (phase 2) is not
        implemented; choose T to fit the data scale (see DESIGN.md).
    branching_factor:
        Maximum entries per node (B and L of the paper, taken equal).
    n_clusters:
        Number of clusters for the global phase over leaf centroids.
    global_clusterer:
        ``"kmeans"`` (weighted, default) or ``"agglomerative"`` over the
        leaf-entry centroids.
    budget:
        Optional :class:`~repro.runtime.Budget`, charged one node per
        point inserted into the CF-tree.  On exhaustion the scan stops,
        the global phase runs over the partial tree (every point seen so
        far is summarised), and ``truncated_`` is set; labels are still
        produced for all rows.

    Attributes
    ----------
    labels_:
        Assignment of the training rows to global clusters.
    subcluster_centers_:
        Centroids of the CF-tree leaf entries (the compressed dataset).
    cluster_centers_:
        Global cluster centroids.
    truncated_:
        True when a budget stopped the insertion scan early.

    Examples
    --------
    >>> from repro.datasets import gaussian_grid
    >>> X, _ = gaussian_grid(400, grid_side=2, random_state=0)
    >>> model = Birch(threshold=1.0, n_clusters=4, random_state=0).fit(X)
    >>> len(set(model.labels_.tolist()))
    4
    """

    def __init__(
        self,
        threshold: float = 0.5,
        branching_factor: int = 50,
        n_clusters: int = 3,
        global_clusterer: str = "kmeans",
        random_state: RandomState = None,
        budget: Optional[Budget] = None,
        ctx: Optional[ExecutionContext] = None,
    ):
        check_in_range("threshold", threshold, 0.0, None, low_inclusive=False)
        check_in_range("branching_factor", branching_factor, 2, None)
        check_in_range("n_clusters", n_clusters, 1, None)
        if global_clusterer not in ("kmeans", "agglomerative"):
            raise ValidationError(
                "global_clusterer must be 'kmeans' or 'agglomerative', "
                f"got {global_clusterer!r}"
            )
        self.threshold = float(threshold)
        self.branching_factor = int(branching_factor)
        self.n_clusters = int(n_clusters)
        self.global_clusterer = global_clusterer
        self.random_state = random_state
        self._init_context(ctx, budget=budget)
        self.subcluster_centers_: Optional[np.ndarray] = None
        self.cluster_centers_: Optional[np.ndarray] = None
        self.truncated_ = False
        self.truncation_reason_: Optional[str] = None

    def _fit(self, X: np.ndarray) -> None:
        self._root = _Node(is_leaf=True)
        self.truncated_ = False
        self.truncation_reason_ = None
        for x in X:
            self._insert(CF.of_point(np.asarray(x, dtype=np.float64)))
            if self.budget is not None:
                # Charge after inserting, so a truncated tree always
                # summarises at least the points already scanned.
                try:
                    self.budget.charge_nodes(phase="birch-insert")
                    self.budget.check(phase="birch-insert")
                except BudgetExceeded as exc:
                    self.truncated_ = True
                    self.truncation_reason_ = f"{type(exc).__name__}: {exc}"
                    break

        leaf_cfs = self._leaf_entries()
        centroids = np.stack([cf.centroid for cf in leaf_cfs])
        weights = np.array([cf.n for cf in leaf_cfs])
        self.subcluster_centers_ = centroids

        k = min(self.n_clusters, len(centroids))
        if self.global_clusterer == "kmeans":
            centers = _weighted_kmeans(
                centroids, weights, k, self.random_state
            )
        else:
            from .hierarchical import Agglomerative

            agg = Agglomerative(k, linkage="average").fit(centroids)
            centers = np.stack(
                [
                    np.average(
                        centroids[agg.labels_ == c],
                        axis=0,
                        weights=weights[agg.labels_ == c],
                    )
                    for c in range(k)
                ]
            )
        self.cluster_centers_ = centers
        self.labels_, _ = nearest_center(X, centers)

    # ------------------------------------------------------------------
    # CF-tree maintenance
    # ------------------------------------------------------------------
    def _insert(self, cf: CF) -> None:
        split = self._insert_into(self._root, cf)
        if split is not None:
            # Root split: grow the tree by one level.
            left, right = split
            new_root = _Node(is_leaf=False)
            for child in (left, right):
                new_root.children.append(child)
                new_root.entries.append(_subtree_cf(child))
            self._root = new_root

    def _insert_into(self, node: _Node, cf: CF):
        """Insert; returns (left, right) replacement nodes if split."""
        if node.is_leaf:
            if node.entries:
                idx = _closest(node.entries, cf.centroid)
                merged = node.entries[idx].merged(cf)
                if merged.radius <= self.threshold:
                    node.entries[idx] = merged
                    return None
            node.entries.append(cf)
            if len(node.entries) > self.branching_factor:
                return self._split(node)
            return None

        idx = _closest(node.entries, cf.centroid)
        split = self._insert_into(node.children[idx], cf)
        if split is None:
            node.entries[idx] = _subtree_cf(node.children[idx])
            return None
        left, right = split
        node.children[idx] = left
        node.entries[idx] = _subtree_cf(left)
        node.children.append(right)
        node.entries.append(_subtree_cf(right))
        if len(node.children) > self.branching_factor:
            return self._split(node)
        return None

    def _split(self, node: _Node):
        """Split an overflowing node around its two farthest entries."""
        centroids = np.stack([e.centroid for e in node.entries])
        d = (
            (centroids[:, None, :] - centroids[None, :, :]) ** 2
        ).sum(axis=2)
        seed_a, seed_b = np.unravel_index(int(np.argmax(d)), d.shape)
        left = _Node(node.is_leaf)
        right = _Node(node.is_leaf)
        for idx, entry in enumerate(node.entries):
            target = left if d[idx, seed_a] <= d[idx, seed_b] else right
            target.entries.append(entry)
            if not node.is_leaf:
                target.children.append(node.children[idx])
        # A degenerate split (all entries identical) still must divide.
        if not left.entries or not right.entries:
            donor, receiver = (
                (left, right) if len(left.entries) > 1 else (right, left)
            )
            receiver.entries.append(donor.entries.pop())
            if not node.is_leaf:
                receiver.children.append(donor.children.pop())
        return left, right

    def _leaf_entries(self) -> List[CF]:
        out: List[CF] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.extend(node.entries)
            else:
                stack.extend(node.children)
        return out

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        """Assign new points to the nearest global cluster center."""
        from ..core.base import check_fitted, check_matrix

        check_fitted(self, "cluster_centers_")
        labels, _ = nearest_center(check_matrix(X), self.cluster_centers_)
        return labels


def _closest(entries: List[CF], point: np.ndarray) -> int:
    centroids = np.stack([e.centroid for e in entries])
    return int(((centroids - point) ** 2).sum(axis=1).argmin())


def _subtree_cf(node: _Node) -> CF:
    total = None
    for entry in node.entries:
        total = entry if total is None else total.merged(entry)
    return total


def _weighted_kmeans(points, weights, k, random_state, n_init: int = 5):
    """Weighted Lloyd loop with weighted k-means++ seeding and restarts,
    used for BIRCH's global phase over leaf centroids."""
    from ..core.random import check_random_state, spawn

    rng = check_random_state(random_state)
    if k >= len(points):
        return points.copy()
    best_centers = None
    best_cost = np.inf
    for child in spawn(rng, n_init):
        centers = _weighted_pp_seed(points, weights, k, child)
        for _ in range(100):
            d = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            labels = d.argmin(axis=1)
            new_centers = centers.copy()
            for c in range(k):
                member = labels == c
                if member.any():
                    new_centers[c] = np.average(
                        points[member], axis=0, weights=weights[member]
                    )
            if np.allclose(new_centers, centers):
                break
            centers = new_centers
        d = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        cost = float((d.min(axis=1) * weights).sum())
        if cost < best_cost:
            best_cost = cost
            best_centers = centers
    return best_centers


def _weighted_pp_seed(points, weights, k, rng):
    """k-means++ seeding with mass-weighted selection probabilities."""
    centers = np.empty((k, points.shape[1]))
    probs = weights / weights.sum()
    centers[0] = points[rng.choice(len(points), p=probs)]
    closest_sq = ((points - centers[0]) ** 2).sum(axis=1)
    for c in range(1, k):
        scores = closest_sq * weights
        total = scores.sum()
        if total <= 0:
            centers[c:] = points[rng.choice(len(points), size=k - c)]
            break
        centers[c] = points[rng.choice(len(points), p=scores / total)]
        closest_sq = np.minimum(
            closest_sq, ((points - centers[c]) ** 2).sum(axis=1)
        )
    return centers


__all__ = ["CF", "Birch"]
