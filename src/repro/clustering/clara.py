"""CLARA — Clustering LARge Applications (Kaufman & Rousseeuw, 1990).

CLARA makes PAM affordable on large data: run PAM on several random
samples, extend each sample's medoids to the full dataset, and keep the
medoid set with the lowest total cost.  The paper's sample size of
``40 + 2k`` is the default.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from ..core.base import Clusterer, check_in_range
from ..core.exceptions import ConvergenceWarning, ValidationError
from ..core.random import RandomState, check_random_state, spawn
from ..runtime.parallel import resolve_n_jobs, shared_pool
from ..runtime.transport import SegmentHandle, SharedRegion, get_array
from .distance import pairwise_distances
from .kmedoids import PAM


def _clara_sample_task(args, _shard_ctx):
    """Pool task: one CLARA sample — PAM on the sample, cost on full X.

    ``X`` arrives as a shared-segment handle (zero-copy mmap view in
    the worker); the child RNG travels in the task, so the sample drawn
    is identical to the serial loop's.  Warnings raised by the inner
    PAM run are captured and returned for the parent to re-emit — a
    worker's ``warnings`` state dies with the task otherwise.
    """
    X_handle, n_clusters, max_swaps, size, child = args
    X = get_array(X_handle) if isinstance(X_handle, SegmentHandle) \
        else X_handle
    n = len(X)
    sample_idx = child.choice(n, size=min(size, n), replace=False)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        pam = PAM(n_clusters, max_swaps=max_swaps).fit(X[sample_idx])
    medoids = sample_idx[pam.medoid_indices_]
    d = pairwise_distances(X, X[medoids])
    cost = float(d.min(axis=1).sum())
    sample_unconverged = 0
    foreign = []
    for w in caught:
        if issubclass(w.category, ConvergenceWarning):
            sample_unconverged += 1
        else:
            foreign.append((w.message, w.category, w.filename, w.lineno))
    return cost, medoids, sample_unconverged, foreign


class CLARA(Clusterer):
    """Sampling-based k-medoids.

    Parameters
    ----------
    n_clusters:
        Number of medoids (k).
    n_samples:
        How many random samples to try (the paper uses 5).
    sample_size:
        Rows per sample; ``None`` = the paper's ``40 + 2k``.
    max_swaps:
        Swap cap handed to each inner :class:`PAM` run.  When any inner
        run exhausts it without reaching a local optimum, CLARA re-emits
        a single summary :class:`ConvergenceWarning` (instead of one
        warning per sample, attributed to PAM internals).
    n_jobs:
        Samples are independent trials, so with ``n_jobs > 1`` they run
        in forked workers; outcomes merge in sample order with the same
        strict-less-than cost comparison, so the chosen medoid set is
        identical to the serial loop.  ``-1`` uses all cores.

    Attributes
    ----------
    medoid_indices_, cluster_centers_, labels_, cost_:
        As in :class:`~repro.clustering.kmedoids.PAM`, with cost measured
        over the *full* dataset.

    Examples
    --------
    >>> from repro.datasets import gaussian_blobs
    >>> X, _ = gaussian_blobs(300, centers=4, random_state=3)
    >>> model = CLARA(4, random_state=0).fit(X)
    >>> len(set(model.labels_.tolist()))
    4
    """

    def __init__(
        self,
        n_clusters: int = 8,
        n_samples: int = 5,
        sample_size: Optional[int] = None,
        random_state: RandomState = None,
        max_swaps: int = 200,
        n_jobs: Optional[int] = None,
    ):
        check_in_range("n_clusters", n_clusters, 1, None)
        check_in_range("n_samples", n_samples, 1, None)
        if sample_size is not None:
            check_in_range("sample_size", sample_size, n_clusters, None)
        check_in_range("max_swaps", max_swaps, 0, None)
        self.n_clusters = int(n_clusters)
        self.n_samples = int(n_samples)
        self.sample_size = sample_size
        self.random_state = random_state
        self.max_swaps = int(max_swaps)
        self.n_jobs = resolve_n_jobs(n_jobs, "CLARA")
        self.medoid_indices_: Optional[np.ndarray] = None
        self.cluster_centers_: Optional[np.ndarray] = None
        self.cost_: Optional[float] = None

    def _fit(self, X: np.ndarray) -> None:
        n = len(X)
        if self.n_clusters > n:
            raise ValidationError(
                f"n_clusters={self.n_clusters} exceeds {n} samples"
            )
        size = self.sample_size or min(n, 40 + 2 * self.n_clusters)
        size = max(size, self.n_clusters)
        rng = check_random_state(self.random_state)

        best_cost = np.inf
        best_medoids = None
        unconverged = 0

        children = list(spawn(rng, self.n_samples))
        if self.n_jobs > 1 and self.n_samples > 1:
            with SharedRegion() as region:
                X_handle = region.put_array(X)
                tasks = [
                    (X_handle, self.n_clusters, self.max_swaps, size, child)
                    for child in children
                ]
                # probe=True: a sample on small data can run in well
                # under dispatch cost, in which case the whole map gates
                # back to the serial loop.
                outcomes = shared_pool(self.n_jobs).map(
                    _clara_sample_task, tasks, ctx=self.ctx,
                    phase="clara-sample", probe=True,
                )
        else:
            outcomes = [
                _clara_sample_task(
                    (X, self.n_clusters, self.max_swaps, size, child), None
                )
                for child in children
            ]
        for cost, medoids, sample_unconverged, foreign in outcomes:
            for message, category, filename, lineno in foreign:
                warnings.warn_explicit(message, category, filename, lineno)
            unconverged += sample_unconverged
            if cost < best_cost:
                best_cost = cost
                best_medoids = medoids
        if unconverged:
            warnings.warn(
                f"{unconverged} of {self.n_samples} inner PAM runs did not "
                f"reach a local optimum within {self.max_swaps} swaps",
                ConvergenceWarning,
                stacklevel=2,
            )
        self.medoid_indices_ = np.array(sorted(best_medoids))
        self.cluster_centers_ = X[self.medoid_indices_]
        d = pairwise_distances(X, self.cluster_centers_)
        self.labels_ = d.argmin(axis=1)
        self.cost_ = float(d.min(axis=1).sum())


__all__ = ["CLARA"]
