"""Agglomerative hierarchical clustering with Lance–Williams updates.

Starts from singleton clusters and repeatedly merges the closest pair;
the inter-cluster distance after each merge is maintained with the
Lance–Williams recurrence, which covers all four classic linkages:

========  =====================================================
linkage    distance between clusters
========  =====================================================
single     minimum pairwise distance (chains, handles shapes)
complete   maximum pairwise distance (compact, ball-shaped)
average    unweighted mean pairwise distance (UPGMA)
ward       merge cost in within-cluster variance
========  =====================================================

The merge history is exposed in the ``merges_`` attribute (a scipy-style
linkage record) so dendrograms/ablation benches can inspect it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.base import Clusterer, check_in_range
from ..core.exceptions import ValidationError
from ..runtime import Budget, BudgetExceeded
from ..runtime.context import ExecutionContext
from .distance import pairwise_distances

_LINKAGES = ("single", "complete", "average", "ward")


class Agglomerative(Clusterer):
    """Bottom-up hierarchical clusterer.

    Parameters
    ----------
    n_clusters:
        Number of clusters to cut the dendrogram at.
    linkage:
        One of ``single``, ``complete``, ``average``, ``ward``.
    budget:
        Optional :class:`~repro.runtime.Budget`, charged one expansion
        per merge.  On exhaustion the dendrogram stops where it is: the
        merge history so far is kept, best-effort labels are cut at the
        current (coarsest reached) number of clusters, and
        ``truncated_`` is set.

    Attributes
    ----------
    labels_:
        Flat assignment after cutting at ``n_clusters``.
    merges_:
        (n-1, 4) array; row i = (cluster_a, cluster_b, distance, size)
        for the i-th merge, clusters >= n denoting merge products —
        the scipy ``linkage`` convention.
    truncated_:
        True when a budget stopped merging early.

    Examples
    --------
    >>> from repro.datasets import gaussian_blobs
    >>> X, _ = gaussian_blobs(60, centers=3, random_state=4)
    >>> model = Agglomerative(3, linkage="ward").fit(X)
    >>> len(set(model.labels_.tolist()))
    3
    """

    def __init__(
        self,
        n_clusters: int = 2,
        linkage: str = "ward",
        budget: Optional[Budget] = None,
        ctx: Optional[ExecutionContext] = None,
    ):
        check_in_range("n_clusters", n_clusters, 1, None)
        if linkage not in _LINKAGES:
            raise ValidationError(
                f"linkage must be one of {_LINKAGES}, got {linkage!r}"
            )
        self.n_clusters = int(n_clusters)
        self.linkage = linkage
        self._init_context(ctx, budget=budget)
        self.merges_: Optional[np.ndarray] = None
        self.truncated_ = False
        self.truncation_reason_: Optional[str] = None

    def _fit(self, X: np.ndarray) -> None:
        n = len(X)
        if self.n_clusters > n:
            raise ValidationError(
                f"n_clusters={self.n_clusters} exceeds {n} samples"
            )
        self.truncated_ = False
        self.truncation_reason_ = None
        d = pairwise_distances(X)
        if self.linkage == "ward":
            # Ward works on squared Euclidean merge costs; seed with
            # the pairwise squared distances halved (cost of merging two
            # singletons is ||a-b||^2 / 2).
            d = d**2 / 2.0
        np.fill_diagonal(d, np.inf)

        sizes = np.ones(n)
        active = list(range(n))
        cluster_id = np.arange(n)  # current dendrogram id of each slot
        next_id = n
        merges: List[Tuple[int, int, float, int]] = []
        members: List[List[int]] = [[i] for i in range(n)]

        while len(active) > 1:
            if self.budget is not None:
                try:
                    self.budget.charge_expansions(phase="agglomerative-merge")
                    self.budget.check(phase="agglomerative-merge")
                except BudgetExceeded as exc:
                    self.truncated_ = True
                    self.truncation_reason_ = f"{type(exc).__name__}: {exc}"
                    break
            # Closest active pair.
            sub = d[np.ix_(active, active)]
            flat = int(np.argmin(sub))
            ai, bi = divmod(flat, len(active))
            if ai == bi:
                raise AssertionError("degenerate merge")
            a, b = active[ai], active[bi]
            if a > b:
                a, b = b, a
            dist = float(d[a, b])
            merged_size = int(sizes[a] + sizes[b])
            merges.append(
                (int(cluster_id[a]), int(cluster_id[b]), dist, merged_size)
            )
            # Lance-Williams update of distances from the merged cluster
            # (stored in slot a) to every other active cluster.
            for other in active:
                if other in (a, b):
                    continue
                d_ao, d_bo = d[a, other], d[b, other]
                if self.linkage == "single":
                    new = min(d_ao, d_bo)
                elif self.linkage == "complete":
                    new = max(d_ao, d_bo)
                elif self.linkage == "average":
                    new = (
                        sizes[a] * d_ao + sizes[b] * d_bo
                    ) / (sizes[a] + sizes[b])
                else:  # ward (on squared costs)
                    total = sizes[a] + sizes[b] + sizes[other]
                    new = (
                        (sizes[a] + sizes[other]) * d_ao
                        + (sizes[b] + sizes[other]) * d_bo
                        - sizes[other] * dist
                    ) / total
                d[a, other] = d[other, a] = new
            sizes[a] = merged_size
            members[a] = members[a] + members[b]
            cluster_id[a] = next_id
            next_id += 1
            active.remove(b)
            d[b, :] = np.inf
            d[:, b] = np.inf

            if len(active) == self.n_clusters:
                labels = np.empty(n, dtype=np.int64)
                for idx, slot in enumerate(sorted(active)):
                    labels[members[slot]] = idx
                self.labels_ = labels

        if self.n_clusters == n:
            self.labels_ = np.arange(n)
        if self.n_clusters == 1 and not self.truncated_:
            self.labels_ = np.zeros(n, dtype=np.int64)
        if self.truncated_ and len(active) > self.n_clusters:
            # Best-effort cut at the coarsest level reached.
            labels = np.empty(n, dtype=np.int64)
            for idx, slot in enumerate(sorted(active)):
                labels[members[slot]] = idx
            self.labels_ = labels
        merge_array = np.array(merges, dtype=np.float64)
        if self.linkage == "ward" and len(merge_array):
            # Report conventional Ward heights (sqrt of twice the cost).
            merge_array[:, 2] = np.sqrt(2.0 * merge_array[:, 2])
        self.merges_ = merge_array


__all__ = ["Agglomerative"]
