"""``python -m repro`` — delegates to the CLI.

``faulthandler`` is enabled so that a hard crash of the *parent*
process (the supervised path already contains child crashes) dumps a
Python traceback instead of dying silently — the last rung of the
failure-handling ladder documented in the README.
"""

import faulthandler

from .cli import main

if __name__ == "__main__":
    faulthandler.enable()
    raise SystemExit(main())
