"""repro — classic data mining techniques, implemented from scratch.

The library reproduces the technique canon of the SIGMOD 1996 "Data
Mining Techniques" tutorial: association-rule mining, sequential pattern
mining, classification, and clustering, plus the synthetic data
generators, preprocessing, and evaluation harnesses the classic
experiments rely on.

Subpackages
-----------
core
    Dataset substrates (transactions, sequences, typed tables), result
    types, estimator bases, errors.
associations
    Apriori family, Eclat, FP-Growth; rule generation and measures.
sequences
    AprioriAll, GSP (with time constraints), PrefixSpan.
classification
    ID3, C4.5, CART, SLIQ-style trees; naive Bayes; k-NN; baselines.
clustering
    k-means, PAM/CLARA/CLARANS, hierarchical, BIRCH, DBSCAN.
preprocessing
    Discretization, scaling, splitting, encoding.
evaluation
    Classification metrics and cross-validation; clustering metrics.
datasets
    Quest-style basket/sequence generators, Agrawal functions, Gaussian
    mixtures, shape data, toy tables, CSV I/O.
runtime
    Execution budgets, cooperative cancellation, fault injection.
"""

__version__ = "1.0.0"

from . import (
    associations,
    classification,
    clustering,
    core,
    datasets,
    evaluation,
    preprocessing,
    regression,
    runtime,
    sequences,
)
from . import outliers

__all__ = [
    "core",
    "associations",
    "sequences",
    "classification",
    "clustering",
    "preprocessing",
    "regression",
    "outliers",
    "evaluation",
    "datasets",
    "runtime",
    "__version__",
]
