"""Cross-validation over tables.

Index generators (:func:`kfold_indices`, :func:`stratified_kfold_indices`)
plus :func:`cross_val_score`, which drives any
:class:`~repro.core.base.Classifier` factory through the folds and
returns the per-fold accuracies.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

import numpy as np

from ..core.base import Classifier, check_in_range
from ..core.exceptions import ValidationError
from ..core.random import RandomState, check_random_state
from ..core.table import Table
from ..runtime.context import ExecutionContext
from ..runtime.parallel import resolve_n_jobs, shared_pool
from ..runtime.transport import SegmentHandle, SharedRegion, get_object


def kfold_indices(
    n_rows: int,
    n_folds: int = 5,
    shuffle: bool = True,
    random_state: RandomState = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, test_idx) pairs for plain k-fold CV.

    Fold sizes differ by at most one row.

    >>> folds = list(kfold_indices(10, 5, shuffle=False))
    >>> [len(test) for _, test in folds]
    [2, 2, 2, 2, 2]
    """
    check_in_range("n_folds", n_folds, 2, None)
    if n_folds > n_rows:
        raise ValidationError(
            f"n_folds={n_folds} exceeds the {n_rows} available rows"
        )
    order = np.arange(n_rows)
    if shuffle:
        order = check_random_state(random_state).permutation(n_rows)
    sizes = np.full(n_folds, n_rows // n_folds)
    sizes[: n_rows % n_folds] += 1
    start = 0
    for size in sizes:
        test = order[start:start + size]
        train = np.concatenate([order[:start], order[start + size:]])
        yield train, test
        start += size


def stratified_kfold_indices(
    y: np.ndarray,
    n_folds: int = 5,
    random_state: RandomState = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """k-fold CV preserving the class proportions of ``y`` in every fold.

    Classes are dealt round-robin into folds after shuffling, so classes
    with fewer rows than folds still appear in as many folds as they can.
    """
    check_in_range("n_folds", n_folds, 2, None)
    y = np.asarray(y)
    if n_folds > len(y):
        raise ValidationError(
            f"n_folds={n_folds} exceeds the {len(y)} available rows"
        )
    rng = check_random_state(random_state)
    fold_of = np.empty(len(y), dtype=np.int64)
    offset = 0
    for label in np.unique(y):
        member = np.flatnonzero(y == label)
        member = member[rng.permutation(len(member))]
        # Continue dealing where the previous class left off, keeping
        # overall fold sizes balanced.
        fold_of[member] = (np.arange(len(member)) + offset) % n_folds
        offset = (offset + len(member)) % n_folds
    for fold in range(n_folds):
        test = np.flatnonzero(fold_of == fold)
        train = np.flatnonzero(fold_of != fold)
        yield train, test


def _fold_task(args, _shard_ctx):
    """Pool task: fit a fresh classifier on one fold and score it.

    The table travels as a shared-segment handle (placed once per
    cross-validation run); the factory and fold indices ride in the
    task tuple.  Factories that do not pickle (e.g. lambdas wrapping a
    configured model) make the map fall back to fork-per-task, where
    closures survive the fork, so both styles keep working.
    """
    table_handle, make_classifier, target, train_idx, test_idx = args
    table = get_object(table_handle) \
        if isinstance(table_handle, SegmentHandle) else table_handle
    model = make_classifier()
    model.fit(table.take(train_idx), target)
    return model.score(table.take(test_idx))


def cross_val_score(
    make_classifier: Callable[[], Classifier],
    table: Table,
    target: str,
    n_folds: int = 5,
    stratified: bool = True,
    random_state: RandomState = None,
    n_jobs: int = None,
    ctx: ExecutionContext = None,
) -> List[float]:
    """Accuracy of a classifier under k-fold cross-validation.

    Parameters
    ----------
    make_classifier:
        Zero-argument factory producing a *fresh* classifier per fold
        (e.g. ``lambda: C45()``) so folds never share state.
    n_jobs:
        Folds are independent, so with ``n_jobs > 1`` they fit and score
        in forked workers; scores are merged in fold order and each fold
        still gets a fresh classifier, so the result list is identical
        to the serial loop.  ``-1`` uses all cores.
    ctx:
        Optional :class:`~repro.runtime.ExecutionContext`; its budget
        deadline and cancellation token govern the parallel fold run
        (each fold gets a derived sub-budget).

    Returns
    -------
    list of float
        One accuracy per fold.

    Examples
    --------
    >>> from repro.datasets import iris
    >>> from repro.classification import NaiveBayes
    >>> scores = cross_val_score(NaiveBayes, iris(), "species",
    ...                          random_state=0)
    >>> len(scores), all(s > 0.8 for s in scores)
    (5, True)
    """
    n_jobs = resolve_n_jobs(n_jobs, "cross_val_score")
    y = table.class_codes(target)
    if stratified:
        folds = stratified_kfold_indices(y, n_folds, random_state)
    else:
        folds = kfold_indices(table.n_rows, n_folds, True, random_state)

    folds = list(folds)
    if n_jobs == 1 or len(folds) == 1:
        return [
            _fold_task((table, make_classifier, target, train, test), None)
            for train, test in folds
        ]
    with SharedRegion() as region:
        table_handle = region.put_object(table)
        tasks = [
            (table_handle, make_classifier, target, train, test)
            for train, test in folds
        ]
        # probe=True: folds over small tables finish in well under
        # dispatch cost, in which case the map gates back to serial.
        return shared_pool(n_jobs).map(
            _fold_task, tasks, ctx=ctx, phase="fold", probe=True,
        )


__all__ = ["kfold_indices", "stratified_kfold_indices", "cross_val_score"]
