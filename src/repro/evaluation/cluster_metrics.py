"""Clustering quality metrics.

Internal measures (no ground truth): :func:`sse`, :func:`silhouette`.
External measures (against true labels): :func:`purity`,
:func:`rand_index`, :func:`adjusted_rand_index`,
:func:`normalized_mutual_info`.

Noise labels (``-1``, DBSCAN's convention) are treated as singleton
"clusters" by the external measures unless dropped by the caller.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..core.base import check_matrix
from ..core.exceptions import ValidationError
from ..clustering.distance import pairwise_distances


def _check_labels(a, b) -> Tuple[np.ndarray, np.ndarray]:
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape or a.ndim != 1:
        raise ValidationError(
            f"label arrays must be 1-D and equal length, got {a.shape} "
            f"and {b.shape}"
        )
    if len(a) == 0:
        raise ValidationError("cannot score empty label arrays")
    return a, b


def sse(X, labels, centers=None) -> float:
    """Within-cluster sum of squared distances (k-means inertia).

    With explicit ``centers`` the distance is to the given center of each
    label; otherwise each cluster's own centroid is used.  Noise points
    (label ``-1``) are skipped.

    >>> sse(np.array([[0.0], [2.0]]), np.array([0, 0]))
    2.0
    """
    X = check_matrix(X)
    labels = np.asarray(labels)
    total = 0.0
    for label in np.unique(labels):
        if label < 0:
            continue
        member = X[labels == label]
        center = (
            centers[label] if centers is not None else member.mean(axis=0)
        )
        total += float(((member - center) ** 2).sum())
    return total


def purity(labels_pred, labels_true) -> float:
    """Fraction of points in their cluster's majority true class.

    >>> purity([0, 0, 1, 1], ["a", "a", "b", "a"])
    0.75
    """
    labels_pred, labels_true = _check_labels(
        np.asarray(labels_pred), np.asarray(labels_true)
    )
    total = 0
    for cluster in np.unique(labels_pred):
        member_true = labels_true[labels_pred == cluster]
        _, counts = np.unique(member_true, return_counts=True)
        total += int(counts.max())
    return total / len(labels_pred)


def _pair_counts(a: np.ndarray, b: np.ndarray):
    """Contingency-based pair counts used by Rand/ARI."""
    _, a_codes = np.unique(a, return_inverse=True)
    _, b_codes = np.unique(b, return_inverse=True)
    contingency = np.zeros((a_codes.max() + 1, b_codes.max() + 1))
    np.add.at(contingency, (a_codes, b_codes), 1.0)
    comb2 = lambda x: x * (x - 1) / 2.0
    same_both = comb2(contingency).sum()
    same_a = comb2(contingency.sum(axis=1)).sum()
    same_b = comb2(contingency.sum(axis=0)).sum()
    all_pairs = comb2(np.array([len(a)], dtype=float))[0]
    return same_both, same_a, same_b, all_pairs


def rand_index(labels_a, labels_b) -> float:
    """Fraction of point pairs on which two labelings agree.

    >>> rand_index([0, 0, 1, 1], [1, 1, 0, 0])
    1.0
    """
    a, b = _check_labels(labels_a, labels_b)
    same_both, same_a, same_b, all_pairs = _pair_counts(a, b)
    if all_pairs == 0:
        return 1.0
    agreements = same_both + (all_pairs - same_a - same_b + same_both)
    return float(agreements / all_pairs)


def adjusted_rand_index(labels_a, labels_b) -> float:
    """Rand index corrected for chance (1 = identical, ~0 = random).

    >>> adjusted_rand_index([0, 0, 1, 1], [0, 0, 1, 1])
    1.0
    """
    a, b = _check_labels(labels_a, labels_b)
    same_both, same_a, same_b, all_pairs = _pair_counts(a, b)
    if all_pairs == 0:
        return 1.0
    expected = same_a * same_b / all_pairs
    maximum = (same_a + same_b) / 2.0
    if maximum == expected:
        return 1.0
    return float((same_both - expected) / (maximum - expected))


def normalized_mutual_info(labels_a, labels_b) -> float:
    """NMI with arithmetic-mean normalisation, in [0, 1].

    >>> normalized_mutual_info([0, 0, 1, 1], [1, 1, 0, 0])
    1.0
    """
    a, b = _check_labels(labels_a, labels_b)
    n = len(a)
    _, a_codes = np.unique(a, return_inverse=True)
    _, b_codes = np.unique(b, return_inverse=True)
    contingency = np.zeros((a_codes.max() + 1, b_codes.max() + 1))
    np.add.at(contingency, (a_codes, b_codes), 1.0)
    pa = contingency.sum(axis=1) / n
    pb = contingency.sum(axis=0) / n
    joint = contingency / n
    mutual = 0.0
    for i in range(joint.shape[0]):
        for j in range(joint.shape[1]):
            pij = joint[i, j]
            if pij > 0:
                mutual += pij * math.log(pij / (pa[i] * pb[j]))
    ha = -sum(p * math.log(p) for p in pa if p > 0)
    hb = -sum(p * math.log(p) for p in pb if p > 0)
    denom = (ha + hb) / 2.0
    if denom == 0:
        return 1.0
    return float(max(0.0, min(1.0, mutual / denom)))


def silhouette(X, labels) -> float:
    """Mean silhouette coefficient over all clustered points.

    Noise points (label ``-1``) are excluded; a labeling with fewer than
    two clusters scores 0 by convention.

    >>> X = np.array([[0.0], [0.1], [10.0], [10.1]])
    >>> silhouette(X, np.array([0, 0, 1, 1])) > 0.9
    True
    """
    X = check_matrix(X)
    labels = np.asarray(labels)
    keep = labels >= 0
    X, labels = X[keep], labels[keep]
    clusters = np.unique(labels)
    if len(clusters) < 2:
        return 0.0
    d = pairwise_distances(X)
    scores = np.zeros(len(X))
    for i in range(len(X)):
        own = labels[i]
        own_mask = labels == own
        n_own = own_mask.sum()
        if n_own <= 1:
            scores[i] = 0.0
            continue
        a = d[i, own_mask].sum() / (n_own - 1)
        b = min(
            d[i, labels == other].mean()
            for other in clusters
            if other != own
        )
        scores[i] = (b - a) / max(a, b)
    return float(scores.mean())


__all__ = [
    "sse",
    "purity",
    "rand_index",
    "adjusted_rand_index",
    "normalized_mutual_info",
    "silhouette",
]
