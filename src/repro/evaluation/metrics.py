"""Classification metrics.

All functions accept label sequences of any hashable type (decoded
labels or integer codes alike) and are exact count-based computations —
no estimation.  Per-class metrics use the convention that an undefined
ratio (no predicted/actual positives) is 0.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from ..core.exceptions import ValidationError


def _check_pair(y_true: Sequence, y_pred: Sequence) -> Tuple[list, list]:
    y_true, y_pred = list(y_true), list(y_pred)
    if len(y_true) != len(y_pred):
        raise ValidationError(
            f"y_true has {len(y_true)} labels, y_pred has {len(y_pred)}"
        )
    if not y_true:
        raise ValidationError("cannot compute metrics on empty label lists")
    return y_true, y_pred


def accuracy(y_true: Sequence, y_pred: Sequence) -> float:
    """Fraction of exact matches.

    >>> accuracy(["a", "b", "b"], ["a", "b", "a"])
    0.6666666666666666
    """
    y_true, y_pred = _check_pair(y_true, y_pred)
    return sum(t == p for t, p in zip(y_true, y_pred)) / len(y_true)


def error_rate(y_true: Sequence, y_pred: Sequence) -> float:
    """1 - accuracy."""
    return 1.0 - accuracy(y_true, y_pred)


def confusion_matrix(
    y_true: Sequence, y_pred: Sequence, labels: Sequence[Hashable] = None
) -> Tuple[np.ndarray, List[Hashable]]:
    """Counts[i, j] = rows with true label i predicted as label j.

    Returns the matrix together with the label order used (given order,
    or sorted-by-string of the union of observed labels).
    """
    y_true, y_pred = _check_pair(y_true, y_pred)
    if labels is None:
        labels = sorted(set(y_true) | set(y_pred), key=repr)
    labels = list(labels)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        if t not in index or p not in index:
            raise ValidationError(
                f"label {t if t not in index else p!r} missing from `labels`"
            )
        matrix[index[t], index[p]] += 1
    return matrix, labels


def precision_recall_f1(
    y_true: Sequence, y_pred: Sequence, positive: Hashable
) -> Tuple[float, float, float]:
    """Binary precision, recall and F1 for the ``positive`` label.

    >>> precision_recall_f1([1, 1, 0, 0], [1, 0, 1, 0], positive=1)
    (0.5, 0.5, 0.5)
    """
    y_true, y_pred = _check_pair(y_true, y_pred)
    tp = sum(1 for t, p in zip(y_true, y_pred) if t == positive and p == positive)
    fp = sum(1 for t, p in zip(y_true, y_pred) if t != positive and p == positive)
    fn = sum(1 for t, p in zip(y_true, y_pred) if t == positive and p != positive)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return precision, recall, f1


@dataclass(frozen=True)
class ClassReport:
    """Per-class precision/recall/F1 with its support count."""

    label: Hashable
    precision: float
    recall: float
    f1: float
    support: int


def classification_report(
    y_true: Sequence, y_pred: Sequence
) -> Dict[Hashable, ClassReport]:
    """Per-class metrics for every observed true label.

    >>> rep = classification_report(["a", "a", "b"], ["a", "b", "b"])
    >>> rep["b"].recall
    1.0
    """
    y_true, y_pred = _check_pair(y_true, y_pred)
    report = {}
    for label in sorted(set(y_true), key=repr):
        precision, recall, f1 = precision_recall_f1(y_true, y_pred, label)
        report[label] = ClassReport(
            label, precision, recall, f1, y_true.count(label)
        )
    return report


def macro_f1(y_true: Sequence, y_pred: Sequence) -> float:
    """Unweighted mean of per-class F1 scores."""
    report = classification_report(y_true, y_pred)
    return sum(r.f1 for r in report.values()) / len(report)


__all__ = [
    "accuracy",
    "error_rate",
    "confusion_matrix",
    "precision_recall_f1",
    "ClassReport",
    "classification_report",
    "macro_f1",
]
