"""Evaluation: classification metrics, cross-validation, cluster quality."""

from .cluster_metrics import (
    adjusted_rand_index,
    normalized_mutual_info,
    purity,
    rand_index,
    silhouette,
    sse,
)
from .crossval import cross_val_score, kfold_indices, stratified_kfold_indices
from .metrics import (
    ClassReport,
    accuracy,
    classification_report,
    confusion_matrix,
    error_rate,
    macro_f1,
    precision_recall_f1,
)

__all__ = [
    "accuracy",
    "error_rate",
    "confusion_matrix",
    "precision_recall_f1",
    "ClassReport",
    "classification_report",
    "macro_f1",
    "kfold_indices",
    "stratified_kfold_indices",
    "cross_val_score",
    "sse",
    "purity",
    "rand_index",
    "adjusted_rand_index",
    "normalized_mutual_info",
    "silhouette",
]
