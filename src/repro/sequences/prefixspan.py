"""PrefixSpan: sequential pattern mining by pattern growth (pseudo-projection).

PrefixSpan grows patterns depth-first.  For the current pattern it keeps,
per supporting sequence, the position where the pattern's earliest match
ends (a *pseudo-projection* — no physical suffix copies).  From those
positions it gathers the two kinds of extensions:

* **sequence extension** — append a new single-item element ``(x,)``;
  any item occurring in an element strictly after the match end works.
* **itemset extension** — add ``x`` to the pattern's last element, with
  ``x`` greater than every item already in it (canonical growth order);
  valid when ``x`` follows the match end inside the same element, or a
  later element contains (last element ∪ {x}).

Each extension with enough supporting sequences is emitted and recursed
into.  The output is exactly the frequent patterns of AprioriAll/GSP
(without time constraints); PrefixSpan is the pattern-growth baseline in
the E5 benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.base import check_nonempty
from ..core.exceptions import ValidationError
from ..core.sequences import SequenceDatabase, SequencePattern, pattern_length
from ..associations.apriori import min_count_from_support
from ..runtime import Budget, BudgetExceeded
from ..runtime.context import (
    BASIC_POLICIES,
    ExecutionContext,
    check_degradation_policy,
    resolve_context,
)
from .result import FrequentSequences

# A pseudo-projection entry: the pattern's earliest match in sequence
# ``sid`` ends at element ``eid``, item index ``iid`` within that element.
_Entry = Tuple[int, int, int]


def prefixspan(
    db: SequenceDatabase,
    min_support: float = 0.05,
    max_length: Optional[int] = None,
    budget: Optional[Budget] = None,
    on_exhausted: str = "raise",
    ctx: Optional[ExecutionContext] = None,
) -> FrequentSequences:
    """Mine frequent sequential patterns with PrefixSpan.

    Parameters
    ----------
    db:
        The customer-sequence database.
    min_support:
        Relative minimum support in [0, 1].
    max_length:
        Stop after patterns with this many *items* in total (matching
        GSP's notion of length).
    budget:
        Deprecated alias for ``ctx=ExecutionContext(budget=...)``:
        optional :class:`~repro.runtime.Budget`, checked at every
        pattern-growth step and charged one candidate per attempted
        extension.  ``None`` (the default) skips every check.
    on_exhausted:
        ``"raise"`` propagates :class:`~repro.runtime.BudgetExceeded`;
        ``"truncate"`` returns the patterns emitted so far flagged
        ``truncated=True`` (every emitted pattern is genuinely frequent,
        so truncation can only lose patterns).

    Returns
    -------
    FrequentSequences
        Identical patterns and supports to unconstrained GSP.

    Examples
    --------
    >>> db = SequenceDatabase([[(1,), (2,)], [(1,), (2,)], [(2,), (1,)]])
    >>> prefixspan(db, min_support=0.6).supports[((1,), (2,))]
    2
    """
    if max_length is not None and max_length < 1:
        raise ValidationError(f"max_length must be >= 1, got {max_length}")
    ctx = resolve_context(ctx, budget=budget, owner="prefixspan")
    check_degradation_policy(on_exhausted, BASIC_POLICIES, "prefixspan")
    ctx.raise_if_cancelled()
    budget = ctx.budget
    n = len(db)
    check_nonempty("sequence database", n, "sequences")
    min_count = min_count_from_support(n, min_support)
    sequences = list(db)

    out: Dict[SequencePattern, int] = {}

    # Frequent single items with their earliest occurrence per sequence.
    first_occurrence: Dict[int, List[_Entry]] = {}
    for sid, seq in enumerate(sequences):
        seen_here: Set[int] = set()
        for eid, element in enumerate(seq):
            for iid, item in enumerate(element):
                if item not in seen_here:
                    seen_here.add(item)
                    first_occurrence.setdefault(item, []).append((sid, eid, iid))
    try:
        for item in sorted(first_occurrence):
            entries = first_occurrence[item]
            if len(entries) < min_count:
                continue
            pattern: SequencePattern = ((item,),)
            out[pattern] = len(entries)
            _grow(sequences, pattern, entries, min_count, max_length, out, budget)
    except BudgetExceeded as exc:
        if on_exhausted == "raise":
            raise
        return FrequentSequences(
            out,
            n,
            min_support,
            truncated=True,
            truncation_reason=f"{type(exc).__name__}: {exc}",
        )

    return FrequentSequences(out, n, min_support)


def _grow(
    sequences: List[SequencePattern],
    pattern: SequencePattern,
    entries: List[_Entry],
    min_count: int,
    max_length: Optional[int],
    out: Dict[SequencePattern, int],
    budget: Optional[Budget] = None,
) -> None:
    if budget is not None:
        budget.check(phase="prefixspan-grow")
    if max_length is not None and pattern_length(pattern) >= max_length:
        return
    last_element = set(pattern[-1])
    max_last_item = pattern[-1][-1]

    seq_candidates: Dict[int, int] = {}
    set_candidates: Dict[int, int] = {}
    for sid, eid, iid in entries:
        seq = sequences[sid]
        seen_seq: Set[int] = set()
        for later_eid in range(eid + 1, len(seq)):
            seen_seq.update(seq[later_eid])
        for item in seen_seq:
            seq_candidates[item] = seq_candidates.get(item, 0) + 1
        seen_set: Set[int] = set(
            item for item in seq[eid][iid + 1:] if item > max_last_item
        )
        for later_eid in range(eid + 1, len(seq)):
            element_set = set(seq[later_eid])
            if last_element.issubset(element_set):
                seen_set.update(
                    item for item in element_set
                    if item > max_last_item and item not in last_element
                )
        for item in seen_set:
            set_candidates[item] = set_candidates.get(item, 0) + 1

    # Sequence extensions: pattern + new element (x,).
    for item in sorted(seq_candidates):
        if seq_candidates[item] < min_count:
            continue
        if budget is not None:
            budget.charge_candidates(phase="prefixspan-seq-ext")
        new_pattern = pattern + ((item,),)
        new_entries = _project_sequence_ext(sequences, entries, item)
        out[new_pattern] = len(new_entries)
        _grow(sequences, new_pattern, new_entries, min_count, max_length, out, budget)

    # Itemset extensions: x joins the last element (x > current max item).
    for item in sorted(set_candidates):
        if set_candidates[item] < min_count:
            continue
        if budget is not None:
            budget.charge_candidates(phase="prefixspan-set-ext")
        new_last = tuple(sorted(last_element | {item}))
        new_pattern = pattern[:-1] + (new_last,)
        new_entries = _project_itemset_ext(
            sequences, entries, last_element, item
        )
        out[new_pattern] = len(new_entries)
        _grow(sequences, new_pattern, new_entries, min_count, max_length, out, budget)


def _project_sequence_ext(
    sequences: List[SequencePattern],
    entries: List[_Entry],
    item: int,
) -> List[_Entry]:
    """Earliest end of ``pattern + ((item,),)`` per supporting sequence."""
    new_entries = []
    for sid, eid, iid in entries:
        seq = sequences[sid]
        for later_eid in range(eid + 1, len(seq)):
            element = seq[later_eid]
            pos = _index_of(element, item)
            if pos >= 0:
                new_entries.append((sid, later_eid, pos))
                break
    return new_entries


def _project_itemset_ext(
    sequences: List[SequencePattern],
    entries: List[_Entry],
    last_element: Set[int],
    item: int,
) -> List[_Entry]:
    """Earliest end after adding ``item`` to the pattern's last element.

    The new match either stays in the entry's element (item occurs after
    the current end) or moves to the first later element containing the
    whole extended element.
    """
    wanted = last_element | {item}
    new_entries = []
    for sid, eid, iid in entries:
        seq = sequences[sid]
        pos = _index_of(seq[eid], item)
        if pos > iid:
            new_entries.append((sid, eid, pos))
            continue
        for later_eid in range(eid + 1, len(seq)):
            element_set = set(seq[later_eid])
            if wanted.issubset(element_set):
                new_entries.append(
                    (sid, later_eid, _index_of(seq[later_eid], item))
                )
                break
    return new_entries


def _index_of(element: Tuple[int, ...], item: int) -> int:
    """Index of ``item`` in a sorted element tuple, or -1."""
    import bisect

    pos = bisect.bisect_left(element, item)
    if pos < len(element) and element[pos] == item:
        return pos
    return -1


__all__ = ["prefixspan"]
