"""WINEPI — frequent episodes in an event sequence (Mannila, Toivonen &
Verkamo, KDD 1995).

Unlike basket/sequence mining, the input is **one** long event stream —
(timestamp, event-type) pairs, the telecom-alarm setting of the paper.
An episode is frequent when it occurs in at least ``min_frequency`` of
all width-``window`` sliding windows:

* a **parallel** episode is a set of event types, all present in the
  window (order-free);
* a **serial** episode is a tuple of event types occurring in strictly
  increasing time order inside the window.

Mining is levelwise: candidate episodes are generated Apriori-style
(sub-episode frequency is anti-monotone over windows) and recognised
window-by-window.  Timestamps must be integers; windows slide by one
time unit, and the window count follows the paper: every window
overlapping the sequence counts, i.e. starts in
``[t_first - window + 1, t_last]``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.base import check_in_range
from ..core.exceptions import ValidationError

Event = Tuple[int, int]  # (timestamp, event type)
Episode = Tuple[int, ...]


class EventSequence:
    """A time-stamped event stream.

    Parameters
    ----------
    events:
        Iterable of ``(timestamp, event_type)`` pairs; timestamps are
        integers (simultaneous events allowed), event types are
        non-negative ints.

    Examples
    --------
    >>> seq = EventSequence([(1, 0), (2, 1), (5, 0)])
    >>> seq.span()
    (1, 5)
    >>> seq.occurrences(0)
    [1, 5]
    """

    def __init__(self, events):
        cleaned: List[Event] = []
        for time, event in events:
            if not isinstance(time, (int, np.integer)) or isinstance(time, bool):
                raise ValidationError(
                    f"timestamps must be ints, got {time!r}"
                )
            if not isinstance(event, (int, np.integer)) or isinstance(event, bool):
                raise ValidationError(
                    f"event types must be ints, got {event!r}"
                )
            if event < 0:
                raise ValidationError(f"event types must be >= 0, got {event}")
            cleaned.append((int(time), int(event)))
        cleaned.sort()
        self._events: Tuple[Event, ...] = tuple(cleaned)
        self._by_type: Dict[int, List[int]] = {}
        for time, event in self._events:
            self._by_type.setdefault(event, []).append(time)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def event_types(self) -> List[int]:
        """Distinct event types, ascending."""
        return sorted(self._by_type)

    def occurrences(self, event_type: int) -> List[int]:
        """Sorted timestamps at which ``event_type`` occurs."""
        return self._by_type.get(event_type, [])

    def span(self) -> Tuple[int, int]:
        """(first, last) timestamp; ValidationError when empty."""
        if not self._events:
            raise ValidationError("event sequence is empty")
        return self._events[0][0], self._events[-1][0]


@dataclass
class FrequentEpisodes:
    """Result of a WINEPI run."""

    frequencies: Dict[Episode, float]
    n_windows: int
    window: int
    min_frequency: float
    episode_type: str
    pass_stats: List = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.frequencies)

    def __iter__(self) -> Iterator[Episode]:
        return iter(self.frequencies)

    def __contains__(self, episode: object) -> bool:
        return episode in self.frequencies

    def frequency(self, episode: Episode) -> float:
        """Fraction of windows containing ``episode``."""
        return self.frequencies[episode]

    def of_size(self, size: int) -> Dict[Episode, float]:
        """Episodes with exactly ``size`` events."""
        return {e: f for e, f in self.frequencies.items() if len(e) == size}

    def sorted_by_frequency(self) -> List[Tuple[Episode, float]]:
        return sorted(
            self.frequencies.items(), key=lambda kv: (-kv[1], kv[0])
        )


def winepi(
    sequence: EventSequence,
    window: int,
    min_frequency: float = 0.1,
    episode_type: str = "serial",
    max_size: Optional[int] = None,
) -> FrequentEpisodes:
    """Mine frequent episodes with sliding-window counting.

    Parameters
    ----------
    sequence:
        The event stream.
    window:
        Window width in time units (> 0).
    min_frequency:
        Minimum fraction of windows containing the episode, in [0, 1].
    episode_type:
        ``"serial"`` (ordered) or ``"parallel"`` (order-free).
    max_size:
        Cap on episode length.

    Examples
    --------
    >>> seq = EventSequence([(t, 0) for t in range(0, 40, 4)]
    ...                     + [(t + 1, 1) for t in range(0, 40, 4)])
    >>> result = winepi(seq, window=3, min_frequency=0.4,
    ...                 episode_type="serial")
    >>> (0, 1) in result
    True
    >>> (1, 0) in result
    False
    """
    check_in_range("window", window, 1, None)
    check_in_range("min_frequency", min_frequency, 0.0, 1.0)
    if episode_type not in ("serial", "parallel"):
        raise ValidationError(
            f"episode_type must be 'serial' or 'parallel', got {episode_type!r}"
        )
    if max_size is not None and max_size < 1:
        raise ValidationError(f"max_size must be >= 1, got {max_size}")
    if len(sequence) == 0:
        return FrequentEpisodes({}, 0, window, min_frequency, episode_type)

    first, last = sequence.span()
    start_lo = first - window + 1
    start_hi = last  # inclusive
    n_windows = start_hi - start_lo + 1
    min_windows = max(1, int(np.ceil(min_frequency * n_windows)))

    # Per-type window-membership bitmaps: windows[s - start_lo] is True
    # when the window starting at s contains an occurrence of the type.
    type_masks: Dict[int, np.ndarray] = {}
    for event_type in sequence.event_types:
        mask = np.zeros(n_windows, dtype=bool)
        for t in sequence.occurrences(event_type):
            lo = max(t - window + 1, start_lo) - start_lo
            hi = min(t, start_hi) - start_lo
            mask[lo:hi + 1] = True
        type_masks[event_type] = mask

    frequencies: Dict[Episode, float] = {}
    frequent: List[Episode] = []
    for event_type, mask in sorted(type_masks.items()):
        count = int(mask.sum())
        if count >= min_windows:
            episode = (event_type,)
            frequencies[episode] = count / n_windows
            frequent.append(episode)

    size = 2
    while frequent and (max_size is None or size <= max_size):
        if episode_type == "parallel":
            candidates = _parallel_candidates(frequent)
        else:
            candidates = _serial_candidates(frequent)
        if not candidates:
            break
        next_frequent: List[Episode] = []
        for candidate in candidates:
            if episode_type == "parallel":
                count = _count_parallel(candidate, type_masks)
            else:
                count = _count_serial(
                    candidate, sequence, window, start_lo, n_windows
                )
            if count >= min_windows:
                frequencies[candidate] = count / n_windows
                next_frequent.append(candidate)
        frequent = next_frequent
        size += 1

    return FrequentEpisodes(
        frequencies, n_windows, window, min_frequency, episode_type
    )


# ----------------------------------------------------------------------
# Candidate generation
# ----------------------------------------------------------------------
def _parallel_candidates(frequent: List[Episode]) -> List[Episode]:
    """Itemset-style join (parallel episodes are sets, kept sorted)."""
    from ..associations.candidates import apriori_gen

    return apriori_gen(sorted(frequent))


def _serial_candidates(frequent: List[Episode]) -> List[Episode]:
    """Sequence-style join: s1[1:] == s2[:-1]; repeats allowed."""
    frequent_set = set(frequent)
    by_prefix: Dict[Episode, List[Episode]] = {}
    for episode in frequent:
        by_prefix.setdefault(episode[:-1], []).append(episode)
    candidates = []
    for s1 in frequent:
        for s2 in by_prefix.get(s1[1:], ()):
            candidate = s1 + (s2[-1],)
            if all(
                candidate[:i] + candidate[i + 1:] in frequent_set
                for i in range(len(candidate))
            ):
                candidates.append(candidate)
    return sorted(set(candidates))


# ----------------------------------------------------------------------
# Recognition
# ----------------------------------------------------------------------
def _count_parallel(candidate: Episode, type_masks) -> int:
    mask = type_masks[candidate[0]].copy()
    for event_type in candidate[1:]:
        mask &= type_masks[event_type]
    return int(mask.sum())


def _count_serial(candidate, sequence, window, start_lo, n_windows) -> int:
    """Windows whose span holds a strictly time-ordered occurrence.

    For each window start s, greedily chain the earliest occurrences:
    t1 = first occurrence of e1 at time >= s, t2 = first occurrence of
    e2 at time > t1, ...; the window contains the episode iff the chain
    ends before s + window.  The greedy chain end is monotone in s, so
    a window is counted when chain_end(s) - s < window.
    """
    occurrence_lists = [sequence.occurrences(e) for e in candidate]
    if any(not occ for occ in occurrence_lists):
        return 0
    count = 0
    for offset in range(n_windows):
        s = start_lo + offset
        t_prev = s - 1
        ok = True
        for occ in occurrence_lists:
            idx = bisect.bisect_right(occ, t_prev)
            if idx == len(occ):
                ok = False
                break
            t_prev = occ[idx]
            if t_prev >= s + window:
                ok = False
                break
        if ok:
            count += 1
    return count


__all__ = ["EventSequence", "FrequentEpisodes", "winepi"]
