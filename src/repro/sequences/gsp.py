"""GSP — Generalized Sequential Patterns (Srikant & Agrawal, EDBT 1996).

GSP mines item-level sequential patterns levelwise, where the length of a
pattern is its total number of items.  Compared with AprioriAll it
generates far fewer candidates (the k=2 join is item-level) and supports
time constraints:

* ``window`` — items of one pattern element may be collected from several
  database elements whose timestamps span at most ``window``;
* ``min_gap`` — consecutive pattern elements must satisfy
  ``start_time(i) - end_time(i-1) > min_gap``;
* ``max_gap`` — consecutive pattern elements must satisfy
  ``end_time(i) - start_time(i-1) <= max_gap``.

Timestamps default to the element index within each sequence, so without
constraints GSP reduces to plain subsequence containment.
"""

from __future__ import annotations

import time as _time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.base import check_nonempty
from ..core.columnar import sequence_bitmap
from ..core.exceptions import ValidationError
from ..core.itemsets import PassStats
from ..core.sequences import SequenceDatabase, SequencePattern, pattern_length
from ..associations.apriori import (
    checkpoint_key,
    levelwise_state,
    min_count_from_support,
)
from ..runtime import Budget, BudgetExceeded, Checkpointer
from ..runtime.context import (
    BASIC_POLICIES,
    ExecutionContext,
    check_degradation_policy,
    resolve_context,
)
from ..runtime.parallel import resolve_n_jobs, shard_bounds, shared_pool
from ..runtime.transport import SharedRegion, get_object
from .result import FrequentSequences

#: counting backends accepted by :func:`gsp`
COUNT_BACKENDS = ("scan", "bitmap")


def gsp(
    db: SequenceDatabase,
    min_support: float = 0.05,
    max_length: Optional[int] = None,
    min_gap: Optional[float] = None,
    max_gap: Optional[float] = None,
    window: float = 0.0,
    times: Optional[Sequence[Sequence[float]]] = None,
    budget: Optional[Budget] = None,
    on_exhausted: str = "raise",
    checkpoint: Optional[Checkpointer] = None,
    ctx: Optional[ExecutionContext] = None,
    n_jobs: Optional[int] = None,
    backend: str = "scan",
) -> FrequentSequences:
    """Mine frequent sequential patterns with GSP.

    Parameters
    ----------
    db:
        The customer-sequence database.
    min_support:
        Relative minimum support in [0, 1].
    max_length:
        Stop after patterns with this many *items* in total.
    min_gap, max_gap, window:
        Time constraints as defined in the module docstring; ``None``
        disables a gap constraint, ``window=0`` forbids assembling a
        pattern element from multiple database elements.
    times:
        Optional per-sequence timestamp lists, aligned with the elements
        of each sequence and strictly increasing.  Defaults to element
        indices 0, 1, 2, ...
    budget:
        Deprecated alias for ``ctx=ExecutionContext(budget=...)``:
        optional :class:`~repro.runtime.Budget` checked once per pass,
        charged per generated candidate, and checked periodically in the
        counting scan.
    on_exhausted:
        ``"raise"`` propagates :class:`~repro.runtime.BudgetExceeded`;
        ``"truncate"`` returns the completed passes flagged
        ``truncated=True``.
    checkpoint:
        Deprecated alias for ``ctx=ExecutionContext(checkpointer=...)``:
        optional :class:`~repro.runtime.Checkpointer`; every completed
        level is a resumable boundary, exactly as in the levelwise
        itemset miners.
    ctx:
        Optional :class:`~repro.runtime.ExecutionContext` bundling
        budget, checkpointer, cancellation and progress hooks.
    n_jobs:
        With ``n_jobs > 1`` each pass's counting scan shards the
        sequence database across forked workers and sums the per-shard
        candidate counts; results are byte-identical to the serial
        scan.  ``-1`` uses all cores.
    backend:
        ``"scan"`` (the default) prefilters each (sequence, candidate)
        pair with a per-sequence item frozenset; ``"bitmap"`` builds
        the database's memoized per-item occurrence bitmaps
        (:mod:`repro.core.columnar`) and ANDs the candidate's item rows
        to select only the sequences that can possibly contain it
        before running the ordered subsequence check — the same
        prefilter predicate evaluated as one vectorized reduction per
        candidate instead of per (sequence, candidate) pair.  Supports
        are byte-identical.

    Returns
    -------
    FrequentSequences

    Examples
    --------
    >>> db = SequenceDatabase([[(1,), (2,)], [(1,), (2,)], [(2,), (1,)]])
    >>> gsp(db, min_support=0.6).supports[((1,), (2,))]
    2
    """
    if backend not in COUNT_BACKENDS:
        raise ValidationError(
            f"backend must be one of {COUNT_BACKENDS}, got {backend!r}"
        )
    ctx = resolve_context(ctx, budget=budget, checkpoint=checkpoint,
                          owner="gsp")
    check_degradation_policy(on_exhausted, BASIC_POLICIES, "gsp")
    n_jobs = resolve_n_jobs(n_jobs, "gsp")
    ctx.raise_if_cancelled()
    budget = ctx.budget
    if max_length is not None and max_length < 1:
        raise ValidationError(f"max_length must be >= 1, got {max_length}")
    if window < 0:
        raise ValidationError(f"window must be >= 0, got {window}")
    if min_gap is not None and min_gap < 0:
        raise ValidationError(f"min_gap must be >= 0, got {min_gap}")
    if max_gap is not None and max_gap <= 0:
        raise ValidationError(f"max_gap must be > 0, got {max_gap}")
    n = len(db)
    check_nonempty("sequence database", n, "sequences")
    if times is None:
        times = [list(range(len(seq))) for seq in db]
    else:
        times = [list(t) for t in times]
        for idx, (seq, t) in enumerate(zip(db, times)):
            if len(t) != len(seq):
                raise ValidationError(
                    f"times[{idx}] has {len(t)} stamps for {len(seq)} elements"
                )
            if any(b <= a for a, b in zip(t, t[1:])):
                raise ValidationError(
                    f"times[{idx}] must be strictly increasing"
                )
    min_count = min_count_from_support(n, min_support)
    checker = _ContainsChecker(min_gap, max_gap, window)

    resumed = ctx.resume(lambda: checkpoint_key(
        "gsp", db, min_support,
        max_length=max_length, min_gap=min_gap, max_gap=max_gap,
        window=window,
    ))
    if resumed is not None:
        k = resumed["k"]
        frequent: Dict[SequencePattern, int] = resumed["frequent"]
        all_frequent: Dict[SequencePattern, int] = resumed["all_frequent"]
        stats: List[PassStats] = resumed["stats"]
    else:
        stats = []
        started = _time.perf_counter()
        item_counts: Dict[int, int] = {}
        for seq in db:
            seen: Set[int] = set()
            for element in seq:
                seen.update(element)
            for item in seen:
                item_counts[item] = item_counts.get(item, 0) + 1
        frequent = {
            ((item,),): cnt
            for item, cnt in sorted(item_counts.items())
            if cnt >= min_count
        }
        stats.append(
            PassStats(1, db.n_items, len(frequent), _time.perf_counter() - started)
        )
        all_frequent = dict(frequent)
        k = 2
        ctx.mark(lambda: levelwise_state(k, frequent, all_frequent, stats))

    if backend == "bitmap":
        # Build the memoized occurrence bitmaps in the parent before any
        # worker forks so they are inherited copy-on-write.
        sequence_bitmap(db)
    # Run-scoped shared segment: the sequence database and its
    # timestamps are placed once; every pass's counting shards resolve
    # the same handle instead of re-pickling the database per task.
    region = SharedRegion() if n_jobs > 1 and n > 1 else None
    db_handle = (
        region.put_object((db, times)) if region is not None else None
    )
    try:
        while frequent and (max_length is None or k <= max_length):
            ctx.step(f"pass-{k}", n_frequent_prev=len(frequent))
            started = _time.perf_counter()
            if k == 2:
                candidates = _candidates_len2(frequent)
            else:
                candidates = _candidates_join(frequent, max_gap is not None)
            if budget is not None:
                budget.charge_candidates(len(candidates), phase=f"pass-{k}")
            if not candidates:
                stats.append(PassStats(k, 0, 0, _time.perf_counter() - started))
                break
            candidate_items = [
                (cand, frozenset(i for e in cand for i in e))
                for cand in candidates
            ]
            if n_jobs > 1 and n > 1:
                cands_handle = region.put_object(candidate_items)
                try:
                    tasks = [
                        (db_handle, cands_handle, k, checker, begin, stop,
                         backend)
                        for begin, stop in shard_bounds(n, n_jobs)
                    ]
                    vectors = shared_pool(n_jobs).map(
                        _count_shard_task, tasks, ctx=ctx,
                        phase=f"count-{k}",
                    )
                finally:
                    region.release(cands_handle)
                totals = [sum(column) for column in zip(*vectors)]
            else:
                totals = _count_range(
                    db, times, candidate_items, k, checker, 0, n, budget,
                    backend,
                )
            frequent = {
                cand: cnt
                for cand, cnt in zip(candidates, totals)
                if cnt >= min_count
            }
            stats.append(
                PassStats(k, len(candidates), len(frequent), _time.perf_counter() - started)
            )
            all_frequent.update(frequent)
            k += 1
            ctx.mark(lambda: levelwise_state(k, frequent, all_frequent, stats))
    except BudgetExceeded as exc:
        if on_exhausted == "raise":
            raise
        result = FrequentSequences(
            all_frequent,
            n,
            min_support,
            truncated=True,
            truncation_reason=f"{type(exc).__name__}: {exc}",
        )
        result.pass_stats = stats
        return result
    finally:
        if region is not None:
            region.close()
        ctx.flush()

    result = FrequentSequences(all_frequent, n, min_support)
    result.pass_stats = stats
    return result


def _count_shard_task(args, shard_ctx):
    """Pool task: one shard's candidate counts, inputs via handles."""
    db_handle, cands_handle, k, checker, begin, stop, backend = args
    db, times = get_object(db_handle)
    budget = None if shard_ctx is None else shard_ctx.budget
    return _count_range(
        db, times, get_object(cands_handle), k, checker, begin, stop,
        budget, backend,
    )


def _count_range(
    db: SequenceDatabase,
    times: List[List[float]],
    candidate_items: List[Tuple[SequencePattern, frozenset]],
    k: int,
    checker: "_ContainsChecker",
    begin: int,
    stop: int,
    budget: Optional[Budget],
    backend: str = "scan",
) -> List[int]:
    """Candidate counts over sequences ``[begin, stop)``.

    Returns a vector aligned with ``candidate_items`` — the merge unit
    of the map-reduce counting path; per-shard vectors sum to the
    full-scan counts.
    """
    if backend == "bitmap":
        return _count_range_bitmap(
            db, times, candidate_items, k, checker, begin, stop, budget
        )
    counts = [0] * len(candidate_items)
    for i in range(begin, stop):
        if budget is not None and i % 64 == 0:
            budget.check(phase=f"count-{k}")
        seq, t = db[i], times[i]
        if sum(len(e) for e in seq) < k:
            continue
        # Cheap prefilter: a pattern's items must all occur somewhere in
        # the sequence before the (expensive) ordered check runs.
        seq_items = frozenset(item for e in seq for item in e)
        for j, (cand, items) in enumerate(candidate_items):
            if items <= seq_items and checker.contains(seq, t, cand):
                counts[j] += 1
    return counts


def _count_range_bitmap(
    db: SequenceDatabase,
    times: List[List[float]],
    candidate_items: List[Tuple[SequencePattern, frozenset]],
    k: int,
    checker: "_ContainsChecker",
    begin: int,
    stop: int,
    budget: Optional[Budget],
) -> List[int]:
    """Bitmap-prefiltered counts: same predicate, candidate-major order.

    ANDing the occurrence rows of a candidate's items yields exactly the
    sequences whose item sets are supersets of the candidate's — the
    scalar path's frozenset prefilter as one vectorized reduction — so
    the ordered :meth:`_ContainsChecker.contains` check runs on the same
    (sequence, candidate) pairs and the counts are byte-identical.
    """
    bitmap = sequence_bitmap(db)
    total_items = [
        sum(len(e) for e in db[i]) for i in range(begin, stop)
    ]
    counts = [0] * len(candidate_items)
    for j, (cand, items) in enumerate(candidate_items):
        if budget is not None and j % 16 == 0:
            budget.check(phase=f"count-{k}")
        for i in bitmap.candidate_sequences(items, begin, stop):
            i = int(i)
            if total_items[i - begin] < k:
                continue
            if checker.contains(db[i], times[i], cand):
                counts[j] += 1
    return counts


# ----------------------------------------------------------------------
# Candidate generation
# ----------------------------------------------------------------------
def _candidates_len2(frequent_1: Dict[SequencePattern, int]) -> List[SequencePattern]:
    """All 2-item candidates from frequent items: <(x)(y)> and <(x y)>."""
    items = sorted(p[0][0] for p in frequent_1)
    candidates: List[SequencePattern] = []
    for x in items:
        for y in items:
            candidates.append(((x,), (y,)))  # two elements, any order/repeat
    for i, x in enumerate(items):
        for y in items[i + 1:]:
            candidates.append(((x, y),))  # one element, x < y
    return candidates


def _drop_first_item(pattern: SequencePattern) -> SequencePattern:
    """Pattern minus the first item of its first element."""
    head = pattern[0][1:]
    if head:
        return (head,) + pattern[1:]
    return pattern[1:]


def _drop_last_item(pattern: SequencePattern) -> SequencePattern:
    """Pattern minus the last item of its last element."""
    tail = pattern[-1][:-1]
    if tail:
        return pattern[:-1] + (tail,)
    return pattern[:-1]


def _candidates_join(
    frequent_prev: Dict[SequencePattern, int], contiguous_prune: bool
) -> List[SequencePattern]:
    """GSP join + prune for k >= 3.

    s1 joins s2 when dropping s1's first item equals dropping s2's last
    item.  The candidate extends s1 with s2's last item — as a new
    element if it formed a singleton element in s2, otherwise merged into
    s1's last element.

    With a ``max_gap`` in force, anti-monotonicity only holds for
    *contiguous* subsequences, so the prune step weakens accordingly.
    """
    prev = list(frequent_prev)
    prev_set = set(prev)
    by_dropped_last: Dict[SequencePattern, List[SequencePattern]] = {}
    for s2 in prev:
        by_dropped_last.setdefault(_drop_last_item(s2), []).append(s2)
    candidates: Set[SequencePattern] = set()
    for s1 in prev:
        key = _drop_first_item(s1)
        for s2 in by_dropped_last.get(key, ()):
            last_item = s2[-1][-1]
            if len(s2[-1]) == 1:
                candidate = s1 + ((last_item,),)
            else:
                merged = tuple(sorted(s1[-1] + (last_item,)))
                if len(set(merged)) != len(merged):
                    continue  # would duplicate an item within the element
                candidate = s1[:-1] + (merged,)
            if _prune_ok(candidate, prev_set, contiguous_prune):
                candidates.add(candidate)
    return sorted(candidates)


def _prune_ok(
    candidate: SequencePattern,
    prev_set: Set[SequencePattern],
    contiguous_only: bool,
) -> bool:
    """Check that the relevant (k-1)-subsequences are frequent.

    Without max-gap, every one-item-deleted subsequence must be frequent.
    With max-gap, only *contiguous* subsequences (item deleted from the
    first element, the last element, or an element of size > 1) must be.
    """
    n_elements = len(candidate)
    for e_idx, element in enumerate(candidate):
        interior_singleton = (
            len(element) == 1 and 0 < e_idx < n_elements - 1
        )
        if contiguous_only and interior_singleton:
            continue  # deleting it would not be a contiguous subsequence
        for i_idx in range(len(element)):
            reduced_element = element[:i_idx] + element[i_idx + 1:]
            if reduced_element:
                sub = (
                    candidate[:e_idx]
                    + (reduced_element,)
                    + candidate[e_idx + 1:]
                )
            else:
                sub = candidate[:e_idx] + candidate[e_idx + 1:]
            if sub not in prev_set:
                return False
    return True


# ----------------------------------------------------------------------
# Containment with time constraints
# ----------------------------------------------------------------------
class _ContainsChecker:
    """Pattern containment under window / min-gap / max-gap constraints.

    Implemented as a depth-first search over feasible element matches.
    A match of a pattern element is a pair of element indices (a, b) with
    ``t[b] - t[a] <= window`` whose union of items covers the pattern
    element; its start time is t[a] and end time t[b].
    """

    def __init__(
        self,
        min_gap: Optional[float],
        max_gap: Optional[float],
        window: float,
    ):
        self.min_gap = min_gap
        self.max_gap = max_gap
        self.window = window

    def contains(
        self,
        seq: SequencePattern,
        t: Sequence[float],
        pattern: SequencePattern,
    ) -> bool:
        if not pattern:
            return True
        if self.min_gap is None and self.max_gap is None and self.window == 0.0:
            return self._plain_contains(seq, pattern)
        matches_per_element = [
            self._element_matches(seq, t, element) for element in pattern
        ]
        if any(not m for m in matches_per_element):
            return False
        return self._search(matches_per_element, t, 0, None, None)

    @staticmethod
    def _plain_contains(seq: SequencePattern, pattern: SequencePattern) -> bool:
        pos = 0
        for wanted in pattern:
            wanted_set = set(wanted)
            while pos < len(seq):
                if wanted_set.issubset(seq[pos]):
                    pos += 1
                    break
                pos += 1
            else:
                return False
        return True

    def _element_matches(
        self,
        seq: SequencePattern,
        t: Sequence[float],
        element: Tuple[int, ...],
    ) -> List[Tuple[int, int]]:
        """All (a, b) windows whose item union covers ``element``."""
        wanted = set(element)
        matches = []
        for a in range(len(seq)):
            collected: Set[int] = set()
            for b in range(a, len(seq)):
                if t[b] - t[a] > self.window:
                    break
                collected.update(seq[b])
                if wanted.issubset(collected):
                    # Minimal right end for this left end: extending b
                    # further only widens the window without need.
                    matches.append((a, b))
                    break
        return matches

    def _search(
        self,
        matches_per_element: List[List[Tuple[int, int]]],
        t: Sequence[float],
        depth: int,
        prev_start: Optional[float],
        prev_end: Optional[float],
    ) -> bool:
        if depth == len(matches_per_element):
            return True
        for a, b in matches_per_element[depth]:
            start, end = t[a], t[b]
            if prev_end is not None:
                if start <= prev_end and self.min_gap is None:
                    # Without explicit gaps, elements must still occur in
                    # order: strictly later start than the previous end.
                    continue
                if self.min_gap is not None and start - prev_end <= self.min_gap:
                    continue
                if self.max_gap is not None and end - prev_start > self.max_gap:
                    continue
            if self._search(matches_per_element, t, depth + 1, start, end):
                return True
        return False


__all__ = ["gsp"]
