"""Result container shared by all sequential-pattern miners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..core.sequences import SequencePattern, pattern_length, sequence_contains


@dataclass
class FrequentSequences:
    """Frequent sequential patterns with their support counts.

    Attributes
    ----------
    supports:
        Mapping from canonical pattern (tuple of sorted item tuples) to
        the number of sequences containing it.
    n_sequences:
        Number of sequences in the mined database.
    min_support:
        The relative threshold used.
    pass_stats:
        Per-level statistics for levelwise miners (AprioriAll, GSP).
    truncated:
        True when the run hit an execution budget and returned a partial
        answer (see :mod:`repro.runtime`); every pattern present is
        still genuinely frequent.
    truncation_reason:
        Which budget fired (``None`` for a complete run).
    """

    supports: Dict[SequencePattern, int]
    n_sequences: int
    min_support: float
    pass_stats: List = field(default_factory=list)
    truncated: bool = False
    truncation_reason: Optional[str] = None

    def __len__(self) -> int:
        return len(self.supports)

    def __iter__(self) -> Iterator[SequencePattern]:
        return iter(self.supports)

    def __contains__(self, pattern: object) -> bool:
        return pattern in self.supports

    def count(self, pattern: SequencePattern) -> int:
        """Absolute support count (KeyError if infrequent)."""
        return self.supports[pattern]

    def support(self, pattern: SequencePattern) -> float:
        """Relative support of ``pattern``."""
        return self.supports[pattern] / self.n_sequences

    def of_length(self, length: int) -> Dict[SequencePattern, int]:
        """Patterns with exactly ``length`` items in total."""
        return {
            p: c for p, c in self.supports.items() if pattern_length(p) == length
        }

    def max_length(self) -> int:
        """Longest pattern length present (0 when empty)."""
        return max((pattern_length(p) for p in self.supports), default=0)

    def maximal(self) -> Dict[SequencePattern, int]:
        """Patterns not contained in any other frequent pattern.

        This is AprioriAll's "maximal phase" as a post-filter.
        """
        patterns = list(self.supports)
        result = {}
        for pattern in patterns:
            if not any(
                other != pattern and sequence_contains(other, pattern)
                for other in patterns
            ):
                result[pattern] = self.supports[pattern]
        return result

    def sorted_by_support(self) -> List:
        """(pattern, count) pairs, highest support first."""
        return sorted(self.supports.items(), key=lambda kv: (-kv[1], kv[0]))


__all__ = ["FrequentSequences"]
