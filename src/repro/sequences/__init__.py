"""Sequential pattern mining.

Miners (all return :class:`FrequentSequences`; without time constraints
they agree exactly on their output):

* :func:`apriori_all` — the original three-phase litemset algorithm
  (length counted in elements).
* :func:`gsp` — Generalized Sequential Patterns, with window / min-gap /
  max-gap time constraints (length counted in items).
* :func:`prefixspan` — pattern growth with pseudo-projection.
* :func:`brute_force_sequences` — exhaustive oracle for tests.
"""

from .apriori_all import apriori_all
from .episodes import EventSequence, FrequentEpisodes, winepi
from .gsp import gsp
from .prefixspan import prefixspan
from .reference import brute_force_sequences
from .result import FrequentSequences

__all__ = [
    "apriori_all",
    "gsp",
    "prefixspan",
    "brute_force_sequences",
    "FrequentSequences",
    "EventSequence",
    "FrequentEpisodes",
    "winepi",
]
