"""Sequential pattern mining.

Miners (all return :class:`FrequentSequences`; without time constraints
they agree exactly on their output):

* :func:`apriori_all` — the original three-phase litemset algorithm
  (length counted in elements).
* :func:`gsp` — Generalized Sequential Patterns, with window / min-gap /
  max-gap time constraints (length counted in items).
* :func:`prefixspan` — pattern growth with pseudo-projection.
* :func:`brute_force_sequences` — exhaustive oracle for tests.
"""

from .apriori_all import apriori_all
from .episodes import EventSequence, FrequentEpisodes, winepi
from .gsp import gsp
from .prefixspan import prefixspan
from .reference import brute_force_sequences
from .result import FrequentSequences

from ..registry import (
    AlgorithmSpec as _Spec,
    Capabilities as _Caps,
    register as _register,
)
from ..runtime.context import BASIC_POLICIES as _BASIC

# Capability declarations (see repro.registry); the conformance sweep
# picks these up even though sequences have no CLI subcommand yet.
for _spec in (
    _Spec("apriori_all", "sequences", apriori_all,
          _Caps(budget_resource="candidates", degradation_policies=_BASIC),
          summary="three-phase litemset sequence mining"),
    _Spec("gsp", "sequences", gsp,
          _Caps(checkpointable=True, supervisable=True,
                budget_resource="candidates", degradation_policies=_BASIC,
                parallelizable=True, vectorizable=True),
          summary="generalized sequential patterns with time constraints"),
    _Spec("prefixspan", "sequences", prefixspan,
          _Caps(budget_resource="candidates", degradation_policies=_BASIC),
          summary="pattern growth with pseudo-projection"),
):
    _register(_spec)

__all__ = [
    "apriori_all",
    "gsp",
    "prefixspan",
    "brute_force_sequences",
    "FrequentSequences",
    "EventSequence",
    "FrequentEpisodes",
    "winepi",
]
