"""AprioriAll sequential pattern mining (Agrawal & Srikant, ICDE 1995).

The algorithm runs in phases:

1. **Litemset phase** — find the frequent itemsets (*litemsets*), where
   the support of an itemset is the fraction of *customers* whose
   sequence has an element containing it (counted once per customer).
2. **Transformation phase** — replace each element of each sequence by
   the set of litemset ids it contains; drop empty elements/sequences.
3. **Sequence phase** — levelwise mining over sequences *of litemsets*:
   candidates of length k join frequent (k-1)-sequences that overlap on
   k-2 litemsets, prune by subsequence anti-monotonicity, count by
   subsequence containment over the transformed database.
4. **Maximal phase** — available as a post-filter via
   :meth:`FrequentSequences.maximal`.

Patterns whose elements are single litemsets cover *all* frequent
sequential patterns, because every element of a frequent pattern is
itself a litemset.
"""

from __future__ import annotations

import time
from itertools import combinations
from math import comb
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.base import check_nonempty
from ..core.exceptions import ValidationError
from ..core.itemsets import Itemset
from ..core.itemsets import PassStats
from ..core.sequences import SequenceDatabase, SequencePattern
from ..associations.apriori import min_count_from_support
from ..associations.candidates import apriori_gen
from ..runtime import Budget, BudgetExceeded
from ..runtime.context import (
    BASIC_POLICIES,
    ExecutionContext,
    check_degradation_policy,
    resolve_context,
)
from .result import FrequentSequences

LitemsetSeq = Tuple[int, ...]  # sequence of litemset ids


def apriori_all(
    db: SequenceDatabase,
    min_support: float = 0.05,
    max_length: Optional[int] = None,
    budget: Optional[Budget] = None,
    on_exhausted: str = "raise",
    ctx: Optional[ExecutionContext] = None,
) -> FrequentSequences:
    """Mine all frequent sequential patterns with AprioriAll.

    Parameters
    ----------
    db:
        The customer-sequence database.
    min_support:
        Relative minimum support (fraction of sequences) in [0, 1].
    max_length:
        Stop after patterns of this many *elements* (``None`` = mine to
        exhaustion).
    budget:
        Deprecated alias for ``ctx=ExecutionContext(budget=...)``:
        optional :class:`~repro.runtime.Budget` checked once per pass of
        every phase, charged per generated candidate, and polled
        periodically in the counting and transformation scans.  ``None``
        (the default) skips every check.
    on_exhausted:
        ``"raise"`` propagates :class:`~repro.runtime.BudgetExceeded`;
        ``"truncate"`` returns the patterns completed so far (decoded
        from whatever phase was reached) flagged ``truncated=True``.

    Returns
    -------
    FrequentSequences
        All frequent patterns, decoded back to item-level form.

    Examples
    --------
    >>> db = SequenceDatabase([[(1,), (2,)], [(1,), (2,)], [(2,), (1,)]])
    >>> result = apriori_all(db, min_support=0.6)
    >>> result.supports[((1,), (2,))]
    2
    """
    if max_length is not None and max_length < 1:
        raise ValidationError(f"max_length must be >= 1, got {max_length}")
    ctx = resolve_context(ctx, budget=budget, owner="apriori_all")
    check_degradation_policy(on_exhausted, BASIC_POLICIES, "apriori_all")
    ctx.raise_if_cancelled()
    budget = ctx.budget
    n = len(db)
    check_nonempty("sequence database", n, "sequences")
    min_count = min_count_from_support(n, min_support)
    stats: List[PassStats] = []
    id_to_litemset: Dict[int, Itemset] = {}
    all_frequent: Dict[LitemsetSeq, int] = {}

    try:
        _mine_phases(
            db, min_count, max_length, budget, stats, id_to_litemset,
            all_frequent,
        )
    except BudgetExceeded as exc:
        if on_exhausted == "raise":
            raise
        result = FrequentSequences(
            _decode(all_frequent, id_to_litemset),
            n,
            min_support,
            truncated=True,
            truncation_reason=f"{type(exc).__name__}: {exc}",
        )
        result.pass_stats = stats
        return result

    result = FrequentSequences(_decode(all_frequent, id_to_litemset), n, min_support)
    result.pass_stats = stats
    return result


def _decode(
    all_frequent: Dict[LitemsetSeq, int], id_to_litemset: Dict[int, Itemset]
) -> Dict[SequencePattern, int]:
    """Decode litemset-id sequences back to item-level patterns."""
    return {
        tuple(id_to_litemset[idx] for idx in seq): cnt
        for seq, cnt in all_frequent.items()
    }


def _mine_phases(
    db: SequenceDatabase,
    min_count: int,
    max_length: Optional[int],
    budget: Optional[Budget],
    stats: List[PassStats],
    id_to_litemset: Dict[int, Itemset],
    all_frequent: Dict[LitemsetSeq, int],
) -> None:
    """Run phases 1-3, mutating the caller's accumulators in place.

    In-place mutation (rather than return values) keeps the partial
    state visible to the ``on_exhausted="truncate"`` handler when a
    budget fires mid-phase.
    """
    # ------------------------------------------------------------------
    # Phase 1: litemsets (customer-level frequent itemsets).
    # ------------------------------------------------------------------
    started = time.perf_counter()
    litemsets = _mine_litemsets(db, min_count, budget)
    litemset_ids: Dict[Itemset, int] = {
        its: idx for idx, its in enumerate(sorted(litemsets))
    }
    id_to_litemset.update({idx: its for its, idx in litemset_ids.items()})
    stats.append(
        PassStats(1, db.n_items, len(litemsets), time.perf_counter() - started)
    )
    all_frequent.update(
        {(litemset_ids[its],): cnt for its, cnt in litemsets.items()}
    )

    # ------------------------------------------------------------------
    # Phase 2: transform sequences into litemset-id element sets.
    # ------------------------------------------------------------------
    transformed: List[List[Set[int]]] = []
    for i, seq in enumerate(db):
        if budget is not None and i % 64 == 0:
            budget.check(phase="aprioriall-transform")
        t_seq = []
        for element in seq:
            element_set = set(element)
            present = {
                idx
                for its, idx in litemset_ids.items()
                if element_set.issuperset(its)
            }
            if present:
                t_seq.append(present)
        if t_seq:
            transformed.append(t_seq)

    # ------------------------------------------------------------------
    # Phase 3: levelwise sequence mining over litemset ids.
    # ------------------------------------------------------------------
    frequent: Dict[LitemsetSeq, int] = {
        (litemset_ids[its],): cnt for its, cnt in litemsets.items()
    }
    k = 2
    while frequent and (max_length is None or k <= max_length):
        if budget is not None:
            budget.check(phase=f"seq-pass-{k}")
            budget.progress(f"seq-pass-{k}", n_frequent_prev=len(frequent))
        started = time.perf_counter()
        candidates = _sequence_candidates(list(frequent))
        if budget is not None:
            budget.charge_candidates(len(candidates), phase=f"seq-pass-{k}")
        if not candidates:
            stats.append(PassStats(k, 0, 0, time.perf_counter() - started))
            break
        counts = dict.fromkeys(candidates, 0)
        candidate_ids = [(cand, frozenset(cand)) for cand in candidates]
        for i, t_seq in enumerate(transformed):
            if budget is not None and i % 64 == 0:
                budget.check(phase=f"seq-count-{k}")
            if len(t_seq) < k:
                continue
            # Prefilter on the union of litemset ids in the sequence.
            present: Set[int] = set()
            for element in t_seq:
                present.update(element)
            for cand, ids in candidate_ids:
                if ids <= present and _contains_litemset_seq(t_seq, cand):
                    counts[cand] += 1
        frequent = {c: cnt for c, cnt in counts.items() if cnt >= min_count}
        stats.append(
            PassStats(k, len(candidates), len(frequent), time.perf_counter() - started)
        )
        all_frequent.update(frequent)
        k += 1


def _mine_litemsets(
    db: SequenceDatabase, min_count: int, budget: Optional[Budget] = None
) -> Dict[Itemset, int]:
    """Levelwise customer-support itemset mining within elements."""
    # Pass 1: single items, counted once per customer.
    counts: Dict[Itemset, int] = {}
    for seq in db:
        seen: Set[int] = set()
        for element in seq:
            seen.update(element)
        for item in seen:
            counts[(item,)] = counts.get((item,), 0) + 1
    frequent = {its: c for its, c in counts.items() if c >= min_count}
    all_frequent = dict(frequent)
    k = 2
    while frequent:
        if budget is not None:
            budget.check(phase=f"litemset-pass-{k}")
        candidates = apriori_gen(sorted(frequent), budget)
        if not candidates:
            break
        candidate_set = set(candidates)
        counts = dict.fromkeys(candidates, 0)
        for i, seq in enumerate(db):
            if budget is not None and i % 64 == 0:
                budget.check(phase=f"litemset-count-{k}")
            supported: Set[Itemset] = set()
            for element in seq:
                if len(element) < k:
                    continue
                if comb(len(element), k) <= len(candidate_set):
                    for subset in combinations(element, k):
                        if subset in candidate_set:
                            supported.add(subset)
                else:
                    element_set = set(element)
                    for cand in candidates:
                        if element_set.issuperset(cand):
                            supported.add(cand)
            for cand in supported:
                counts[cand] += 1
        frequent = {c: cnt for c, cnt in counts.items() if cnt >= min_count}
        all_frequent.update(frequent)
        k += 1
    return all_frequent


def _sequence_candidates(frequent_prev: List[LitemsetSeq]) -> List[LitemsetSeq]:
    """Join + prune for sequences of litemset ids.

    Two (k-1)-sequences join when s1 minus its first litemset equals s2
    minus its last; the candidate appends s2's last litemset to s1.
    Unlike itemsets, order matters and repeats are allowed, so s1 may
    equal s2.
    """
    prev_set = set(frequent_prev)
    by_prefix: Dict[LitemsetSeq, List[LitemsetSeq]] = {}
    for seq in frequent_prev:
        by_prefix.setdefault(seq[:-1], []).append(seq)
    candidates = []
    for s1 in frequent_prev:
        for s2 in by_prefix.get(s1[1:], ()):
            candidate = s1 + (s2[-1],)
            if _all_subseqs_frequent(candidate, prev_set):
                candidates.append(candidate)
    candidates.sort()
    return candidates


def _all_subseqs_frequent(candidate: LitemsetSeq, prev_set: Set[LitemsetSeq]) -> bool:
    for drop in range(len(candidate)):
        sub = candidate[:drop] + candidate[drop + 1:]
        if sub not in prev_set:
            return False
    return True


def _contains_litemset_seq(
    t_seq: Sequence[Set[int]], pattern: LitemsetSeq
) -> bool:
    pos = 0
    for litemset_id in pattern:
        while pos < len(t_seq):
            if litemset_id in t_seq[pos]:
                pos += 1
                break
            pos += 1
        else:
            return False
    return True


__all__ = ["apriori_all"]
