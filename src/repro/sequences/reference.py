"""Brute-force sequential-pattern oracle for tests.

Enumerates, per sequence, every sub-pattern (a subsequence of elements
with a non-empty subset chosen from each) up to a length cap, de-duplicates
within the sequence, and counts across sequences.  Doubly exponential, so
guarded to tiny inputs — its role is to certify the real miners on small
randomised cases.
"""

from __future__ import annotations

from itertools import combinations
from typing import Counter as CounterType, Dict, Optional, Set

from collections import Counter

from ..core.base import check_nonempty
from ..core.exceptions import ValidationError
from ..core.sequences import SequenceDatabase, SequencePattern, pattern_length
from ..associations.apriori import min_count_from_support
from .result import FrequentSequences


def brute_force_sequences(
    db: SequenceDatabase,
    min_support: float = 0.05,
    max_length: int = 5,
) -> FrequentSequences:
    """Mine frequent sequential patterns by exhaustive enumeration.

    Parameters
    ----------
    db:
        A *small* sequence database (≤ 12 elements per sequence, ≤ 6
        items per element — enforced).
    min_support:
        Relative minimum support in [0, 1].
    max_length:
        Upper bound on total pattern items (mandatory; the enumeration is
        exponential in it).
    """
    if max_length < 1:
        raise ValidationError(f"max_length must be >= 1, got {max_length}")
    for seq in db:
        if len(seq) > 12 or any(len(e) > 6 for e in seq):
            raise ValidationError(
                "brute_force_sequences is an oracle for tiny inputs only "
                "(<= 12 elements, <= 6 items each)"
            )
    n = len(db)
    check_nonempty("sequence database", n, "sequences")
    min_count = min_count_from_support(n, min_support)

    counts: CounterType[SequencePattern] = Counter()
    for seq in db:
        counts.update(_subpatterns(seq, max_length))
    supports = {p: c for p, c in counts.items() if c >= min_count}
    return FrequentSequences(supports, n, min_support)


def _subpatterns(seq: SequencePattern, max_length: int) -> Set[SequencePattern]:
    """All distinct sub-patterns of one sequence, capped at max_length items."""
    found: Set[SequencePattern] = set()

    def extend(start: int, prefix: SequencePattern, used: int) -> None:
        if prefix:
            found.add(prefix)
        if used >= max_length:
            return
        for eid in range(start, len(seq)):
            element = seq[eid]
            budget = max_length - used
            for size in range(1, min(len(element), budget) + 1):
                for subset in combinations(element, size):
                    extend(eid + 1, prefix + (subset,), used + size)

    extend(0, (), 0)
    return found


__all__ = ["brute_force_sequences"]
