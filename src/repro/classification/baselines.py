"""Trivial baseline classifiers: ZeroR and OneR.

Every serious evaluation needs a floor.  ZeroR predicts the majority
class; OneR (Holte, 1993) picks the single attribute whose one-level
rules misclassify least — famously hard to beat on easy datasets, and a
sanity check on every accuracy table (E6, E13).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.base import Classifier, check_in_range
from ..core.table import Attribute, Table


class ZeroR(Classifier):
    """Majority-class predictor.

    Examples
    --------
    >>> from repro.datasets import play_tennis
    >>> ZeroR().fit(play_tennis(), "play").predict(play_tennis())[0]
    'yes'
    """

    def __init__(self, ctx=None):
        self._init_context(ctx)

    def _fit(self, features: Table, y: np.ndarray, target: Attribute) -> None:
        counts = np.bincount(y, minlength=len(target.values))
        self._majority = int(np.argmax(counts))
        self._proba = counts / counts.sum()

    def _predict_codes(self, features: Table) -> np.ndarray:
        return np.full(features.n_rows, self._majority, dtype=np.int64)

    def _predict_proba(self, features: Table) -> np.ndarray:
        return np.tile(self._proba, (features.n_rows, 1))


class OneR(Classifier):
    """One-rule classifier: the best single-attribute rule set.

    Numeric attributes are discretised into ``n_bins`` equal-frequency
    intervals before rule construction (Holte's "small disjuncts" guard
    is approximated by the binning itself).  Each attribute value maps to
    its majority class; the attribute with the fewest training errors
    wins.

    Parameters
    ----------
    n_bins:
        Bins used for numeric attributes.
    """

    def __init__(self, n_bins: int = 6, ctx=None):
        check_in_range("n_bins", n_bins, 2, None)
        self.n_bins = int(n_bins)
        self._init_context(ctx)
        self.rule_attribute_: Optional[str] = None

    def _fit(self, features: Table, y: np.ndarray, target: Attribute) -> None:
        n_classes = len(target.values)
        overall = np.bincount(y, minlength=n_classes)
        self._default = int(np.argmax(overall))
        best_errors = None
        for attr in features.attributes:
            codes, edges = self._codes_for(features, attr)
            known = codes >= 0
            if not known.any():
                continue
            n_values = codes[known].max() + 1
            table = np.zeros((n_values, n_classes))
            np.add.at(table, (codes[known], y[known]), 1.0)
            rule = table.argmax(axis=1)
            errors = int(table.sum() - table.max(axis=1).sum()) + int(
                (~known).sum()
            )
            if best_errors is None or errors < best_errors:
                best_errors = errors
                self.rule_attribute_ = attr.name
                self._rule = rule
                self._edges = edges
        if self.rule_attribute_ is None:
            self.rule_attribute_ = ""
            self._rule = np.array([self._default])
            self._edges = None

    def _codes_for(self, table: Table, attr: Attribute):
        col = table.column(attr.name)
        if attr.is_categorical:
            return col.astype(np.int64), None
        known = ~np.isnan(col)
        if not known.any():
            return np.full(len(col), -1, dtype=np.int64), np.array([])
        qs = np.linspace(0, 1, self.n_bins + 1)[1:-1]
        edges = np.unique(np.quantile(col[known], qs))
        codes = np.full(len(col), -1, dtype=np.int64)
        codes[known] = np.searchsorted(edges, col[known], side="right")
        return codes, edges

    def _apply_codes(self, table: Table) -> np.ndarray:
        if not self.rule_attribute_ or self.rule_attribute_ not in table.attribute_names:
            return np.full(table.n_rows, -1, dtype=np.int64)
        attr = table.attribute(self.rule_attribute_)
        col = table.column(self.rule_attribute_)
        if attr.is_categorical:
            return col.astype(np.int64)
        codes = np.full(table.n_rows, -1, dtype=np.int64)
        known = ~np.isnan(col)
        codes[known] = np.searchsorted(self._edges, col[known], side="right")
        return codes

    def _predict_codes(self, features: Table) -> np.ndarray:
        codes = self._apply_codes(features)
        out = np.full(features.n_rows, self._default, dtype=np.int64)
        valid = (codes >= 0) & (codes < len(self._rule))
        out[valid] = self._rule[codes[valid]]
        return out


__all__ = ["ZeroR", "OneR"]
