"""Naive Bayes over mixed attribute types.

Assuming conditional independence of attributes given the class, the
posterior factorises into per-attribute likelihoods:

* categorical attributes use Laplace-smoothed frequency estimates;
* numeric attributes use a per-class Gaussian (the "Gaussian naive
  Bayes" of the classic literature).

Missing values are simply skipped in both training statistics and
prediction — the factorised form makes that exact marginalisation.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from ..core.base import Classifier, check_in_range
from ..core.columnar import table_matrix
from ..core.exceptions import ValidationError
from ..core.table import Attribute, Table

_LOG_2PI = math.log(2.0 * math.pi)

#: Likelihood-evaluation backends.  ``"loop"`` extracts one column per
#: attribute per call; ``"columnar"`` reads the memoized dense matrices
#: from :mod:`repro.core.columnar` and evaluates every Gaussian
#: attribute in one broadcast.  Outputs are byte-for-byte identical —
#: the per-attribute accumulation order into the joint log-likelihood
#: is preserved exactly.
LIKELIHOOD_BACKENDS = ("loop", "columnar")


class NaiveBayes(Classifier):
    """Naive Bayes classifier for tables with numeric and/or categorical
    attributes.

    Parameters
    ----------
    laplace:
        Additive smoothing for categorical likelihoods (> 0 guards the
        zero-frequency problem).
    var_floor:
        Minimum per-class variance used for numeric attributes, as a
        fraction of the attribute's global variance; prevents degenerate
        spikes when a class shows a constant value.
    backend:
        ``"loop"`` (default) evaluates attribute likelihoods one column
        at a time; ``"columnar"`` evaluates all Gaussian attributes in
        a single broadcast over the table's memoized dense matrix
        (:mod:`repro.core.columnar`) and falls back to the loop when
        the predict-time table's schema diverges from training.
        Predictions and probabilities are byte-for-byte identical.

    Examples
    --------
    >>> from repro.datasets import play_tennis
    >>> model = NaiveBayes().fit(play_tennis(), "play")
    >>> model.predict(play_tennis())[0] in ("yes", "no")
    True
    """

    def __init__(self, laplace: float = 1.0, var_floor: float = 1e-9,
                 ctx=None, backend: str = "loop"):
        check_in_range("laplace", laplace, 0.0, None, low_inclusive=False)
        check_in_range("var_floor", var_floor, 0.0, None, low_inclusive=False)
        if backend not in LIKELIHOOD_BACKENDS:
            raise ValidationError(
                f"backend must be one of {LIKELIHOOD_BACKENDS}, "
                f"got {backend!r}"
            )
        self.backend = backend
        self.laplace = laplace
        self.var_floor = var_floor
        self._init_context(ctx)
        self.class_log_prior_: Optional[np.ndarray] = None

    def _fit(self, features: Table, y: np.ndarray, target: Attribute) -> None:
        n_classes = len(target.values)
        class_counts = np.bincount(y, minlength=n_classes).astype(np.float64)
        self.class_log_prior_ = np.log(
            (class_counts + self.laplace)
            / (class_counts.sum() + self.laplace * n_classes)
        )
        self._n_classes = n_classes
        self._categorical_log_likelihood: Dict[str, np.ndarray] = {}
        self._gaussian_params: Dict[str, tuple] = {}
        self._attributes = features.attributes

        for attr in features.attributes:
            col = features.column(attr.name)
            if attr.is_categorical:
                n_values = len(attr.values)
                counts = np.zeros((n_classes, n_values))
                known = col >= 0
                np.add.at(counts, (y[known], col[known]), 1.0)
                smoothed = counts + self.laplace
                self._categorical_log_likelihood[attr.name] = np.log(
                    smoothed / smoothed.sum(axis=1, keepdims=True)
                )
            else:
                known = ~np.isnan(col)
                global_var = float(np.var(col[known])) if known.any() else 1.0
                floor = max(self.var_floor * max(global_var, 1e-12), 1e-12)
                means = np.zeros(n_classes)
                variances = np.full(n_classes, max(global_var, floor))
                for c in range(n_classes):
                    member = known & (y == c)
                    if member.sum() >= 1:
                        means[c] = float(col[member].mean())
                    if member.sum() >= 2:
                        variances[c] = max(float(col[member].var()), floor)
                self._gaussian_params[attr.name] = (means, variances)

    def _joint_log_likelihood(self, features: Table) -> np.ndarray:
        if self.backend == "columnar":
            jll = self._joint_log_likelihood_columnar(features)
            if jll is not None:
                return jll
        return self._joint_log_likelihood_loop(features)

    def _joint_log_likelihood_columnar(
        self, features: Table
    ) -> Optional[np.ndarray]:
        """Batched likelihoods off the memoized dense matrices.

        All Gaussian log-pdfs are evaluated in one ``(rows, attrs,
        classes)`` broadcast, but each attribute's contribution is still
        added into ``jll`` in training-attribute order, so the floating
        point accumulation — and therefore every output bit — matches
        the loop backend.  Returns ``None`` (caller falls back) when the
        predict-time table disagrees with training about an attribute's
        type.
        """
        tm = table_matrix(features)
        num_idx = {name: j for j, name in enumerate(tm.numeric_names)}
        cat_idx = {name: j for j, name in enumerate(tm.categorical_names)}
        plan = []  # (attr, column index into the matching matrix)
        numeric_cols = []
        for attr in self._attributes:
            if attr.name not in features.attribute_names:
                continue  # absent at predict time: marginalised
            lookup = cat_idx if attr.is_categorical else num_idx
            if attr.name not in lookup:
                return None  # type changed between fit and predict
            plan.append((attr, lookup[attr.name]))
            if not attr.is_categorical:
                numeric_cols.append((len(numeric_cols), attr.name,
                                     lookup[attr.name]))
        log_pdf_all = known_all = None
        if numeric_cols:
            x = tm.numeric[:, [j for _, _, j in numeric_cols]]
            means = np.stack(
                [self._gaussian_params[name][0] for _, name, _ in numeric_cols]
            )
            variances = np.stack(
                [self._gaussian_params[name][1] for _, name, _ in numeric_cols]
            )
            known_all = ~np.isnan(x)
            log_pdf_all = -0.5 * (
                _LOG_2PI
                + np.log(variances)[None, :, :]
                + (x[:, :, None] - means[None, :, :]) ** 2
                / variances[None, :, :]
            )
        jll = np.tile(self.class_log_prior_, (features.n_rows, 1))
        slot = 0
        for attr, j in plan:
            if attr.is_categorical:
                table = self._categorical_log_likelihood[attr.name]
                col = tm.categorical[:, j]
                known = col >= 0
                jll[known] += table[:, col[known]].T
            else:
                known = known_all[:, slot]
                jll[known] += log_pdf_all[known, slot, :]
                slot += 1
        return jll

    def _joint_log_likelihood_loop(self, features: Table) -> np.ndarray:
        n = features.n_rows
        jll = np.tile(self.class_log_prior_, (n, 1))
        for attr in self._attributes:
            if attr.name not in features.attribute_names:
                continue  # attribute absent at predict time: marginalised
            col = features.column(attr.name)
            if attr.is_categorical:
                table = self._categorical_log_likelihood[attr.name]
                known = col >= 0
                jll[known] += table[:, col[known]].T
            else:
                means, variances = self._gaussian_params[attr.name]
                known = ~np.isnan(col)
                x = col[known, None]
                log_pdf = -0.5 * (
                    _LOG_2PI
                    + np.log(variances)[None, :]
                    + (x - means[None, :]) ** 2 / variances[None, :]
                )
                jll[known] += log_pdf
        return jll

    def _predict_codes(self, features: Table) -> np.ndarray:
        return self._joint_log_likelihood(features).argmax(axis=1)

    def _predict_proba(self, features: Table) -> np.ndarray:
        jll = self._joint_log_likelihood(features)
        jll -= jll.max(axis=1, keepdims=True)
        proba = np.exp(jll)
        proba /= proba.sum(axis=1, keepdims=True)
        return proba


__all__ = ["NaiveBayes", "LIKELIHOOD_BACKENDS"]
