"""Decision-tree pruning strategies.

Three classic methods, applied to the shared node structures of
:mod:`repro.classification.tree_model`:

* :func:`pessimistic_prune` — C4.5's error-based pruning: estimate each
  leaf's true error by the upper confidence limit of the binomial
  observed-error rate and collapse subtrees that do not beat a leaf.
* :func:`reduced_error_prune` — collapse subtrees that do not help on a
  held-out validation set.
* :func:`cost_complexity_path` / :func:`prune_to_alpha` — CART's
  weakest-link pruning, producing a nested family of subtrees indexed by
  the complexity parameter alpha.

All functions return new trees; the input tree is never mutated.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from ..core.exceptions import ValidationError
from ..core.table import Table
from .tree_model import (
    BinaryCategoricalSplit,
    CategoricalSplit,
    Leaf,
    NumericSplit,
    TreeNode,
    _rows_as_dicts,
)


# ----------------------------------------------------------------------
# Tree rebuilding helper
# ----------------------------------------------------------------------
def _rebuild(node: TreeNode, new_children) -> TreeNode:
    """Copy a split node with replaced children."""
    if isinstance(node, CategoricalSplit):
        return CategoricalSplit(node.attribute, new_children, node.class_counts)
    if isinstance(node, NumericSplit):
        left, right = new_children
        return NumericSplit(
            node.attribute, node.threshold, left, right, node.class_counts
        )
    if isinstance(node, BinaryCategoricalSplit):
        left, right = new_children
        return BinaryCategoricalSplit(
            node.attribute, node.left_codes, left, right, node.class_counts
        )
    raise ValidationError(f"unknown node type: {type(node).__name__}")


def _children(node: TreeNode):
    if isinstance(node, CategoricalSplit):
        return list(node.children.values())
    if isinstance(node, (NumericSplit, BinaryCategoricalSplit)):
        return [node.left, node.right]
    return []


# ----------------------------------------------------------------------
# Pessimistic (error-based) pruning
# ----------------------------------------------------------------------
def binomial_upper_limit(errors: float, n: float, confidence: float) -> float:
    """Upper confidence limit of an error *rate* from (errors, n).

    Clopper-Pearson style bound: the largest p with
    ``P(X <= errors | n, p) >= confidence``; Quinlan's U_CF.  Fractional
    inputs (from weighted instances) are accepted.
    """
    if n <= 0:
        return 1.0
    if confidence >= 1.0:
        return errors / n
    from scipy.special import betaincinv

    if errors >= n:
        return 1.0
    # Upper limit of the Clopper-Pearson interval at level `confidence`.
    return float(betaincinv(errors + 1.0, max(n - errors, 1e-9), 1.0 - confidence))


def _estimated_errors(node: TreeNode, confidence: float) -> float:
    """Pessimistic error count of a subtree (sum over its leaves)."""
    if isinstance(node, Leaf):
        n = node.training_mass
        return n * binomial_upper_limit(node.training_errors(), n, confidence)
    return sum(_estimated_errors(c, confidence) for c in _children(node))


def pessimistic_prune(node: TreeNode, confidence: float = 0.25) -> TreeNode:
    """C4.5 error-based pruning, applied bottom-up.

    A subtree collapses to a leaf when the leaf's pessimistic error
    estimate does not exceed the subtree's.  (C4.5's further option of
    replacing a node by its largest branch is not implemented; it rarely
    changes the headline accuracy/size trade-off.)
    """
    if isinstance(node, Leaf):
        return node
    if isinstance(node, CategoricalSplit):
        pruned = _rebuild(
            node,
            {
                code: pessimistic_prune(child, confidence)
                for code, child in node.children.items()
            },
        )
    else:
        pruned = _rebuild(
            node,
            [pessimistic_prune(c, confidence) for c in _children(node)],
        )
    as_leaf = Leaf(node.class_counts)
    leaf_estimate = as_leaf.training_mass * binomial_upper_limit(
        as_leaf.training_errors(), as_leaf.training_mass, confidence
    )
    subtree_estimate = _estimated_errors(pruned, confidence)
    if leaf_estimate <= subtree_estimate + 1e-9:
        return as_leaf
    return pruned


# ----------------------------------------------------------------------
# Reduced-error pruning
# ----------------------------------------------------------------------
def reduced_error_prune(
    node: TreeNode, validation: Table, y: np.ndarray
) -> TreeNode:
    """Prune using a held-out validation set.

    Bottom-up: a subtree collapses to a leaf whenever the leaf's
    validation errors do not exceed the subtree's on the rows routed to
    it.  Rows with a missing split value follow the branch with the
    largest training mass (deterministic routing keeps error counts
    decomposable).
    """
    rows = _rows_as_dicts(validation)
    labels = np.asarray(y)
    if len(rows) != len(labels):
        raise ValidationError(
            f"validation table has {len(rows)} rows but y has {len(labels)}"
        )
    pruned, _ = _rep(node, rows, labels)
    return pruned


def _rep(node: TreeNode, rows, labels) -> Tuple[TreeNode, int]:
    leaf_errors = int(
        sum(1 for lab in labels if lab != node.majority_class)
    )
    if isinstance(node, Leaf):
        return node, leaf_errors
    routed = _route(node, rows, labels)
    subtree_errors = 0
    if isinstance(node, CategoricalSplit):
        new_children = {}
        for code, child in node.children.items():
            child_rows, child_labels = routed.get(code, ([], np.array([], dtype=int)))
            new_child, errs = _rep(child, child_rows, child_labels)
            new_children[code] = new_child
            subtree_errors += errs
        pruned = _rebuild(node, new_children)
    else:
        (l_rows, l_labels), (r_rows, r_labels) = routed
        new_left, left_errs = _rep(node.left, l_rows, l_labels)
        new_right, right_errs = _rep(node.right, r_rows, r_labels)
        subtree_errors = left_errs + right_errs
        pruned = _rebuild(node, [new_left, new_right])
    if leaf_errors <= subtree_errors:
        return Leaf(node.class_counts), leaf_errors
    return pruned, subtree_errors


def _route(node: TreeNode, rows, labels):
    """Partition validation rows among a split node's children."""
    if isinstance(node, CategoricalSplit):
        heaviest = max(
            node.children, key=lambda c: node.children[c].training_mass
        )
        buckets: Dict[int, Tuple[list, list]] = {
            code: ([], []) for code in node.children
        }
        for row, lab in zip(rows, labels):
            code = row.get(node.attribute.name)
            if code is None or code not in node.children:
                code = heaviest
            buckets[code][0].append(row)
            buckets[code][1].append(lab)
        return {
            code: (rs, np.asarray(ls, dtype=int))
            for code, (rs, ls) in buckets.items()
        }
    left_rows, left_labels, right_rows, right_labels = [], [], [], []
    bigger_left = node.left.training_mass >= node.right.training_mass
    for row, lab in zip(rows, labels):
        value = row.get(node.attribute.name)
        if isinstance(node, NumericSplit):
            if value is None or (isinstance(value, float) and math.isnan(value)):
                go_left = bigger_left
            else:
                go_left = value <= node.threshold
        else:  # BinaryCategoricalSplit
            if value is None:
                go_left = bigger_left
            else:
                go_left = value in node.left_codes
        if go_left:
            left_rows.append(row)
            left_labels.append(lab)
        else:
            right_rows.append(row)
            right_labels.append(lab)
    return (
        (left_rows, np.asarray(left_labels, dtype=int)),
        (right_rows, np.asarray(right_labels, dtype=int)),
    )


# ----------------------------------------------------------------------
# Cost-complexity (weakest-link) pruning
# ----------------------------------------------------------------------
def _subtree_risk_and_leaves(node: TreeNode) -> Tuple[float, int]:
    """(training errors of the subtree's leaves, number of leaves)."""
    if isinstance(node, Leaf):
        return node.training_errors(), 1
    risk, leaves = 0.0, 0
    for child in _children(node):
        r, l = _subtree_risk_and_leaves(child)
        risk += r
        leaves += l
    return risk, leaves


def prune_to_alpha(node: TreeNode, alpha: float, n_total: float) -> TreeNode:
    """Smallest subtree optimal at complexity parameter ``alpha``.

    Collapses, bottom-up, every internal node whose link strength
    ``g = (R(leaf) - R(subtree)) / (n_leaves - 1)`` is ``<= alpha``,
    where risks are normalised by ``n_total`` training rows.
    """
    if alpha < 0:
        raise ValidationError(f"alpha must be >= 0, got {alpha}")
    if n_total <= 0:
        raise ValidationError(f"n_total must be > 0, got {n_total}")
    if isinstance(node, Leaf):
        return node
    if isinstance(node, CategoricalSplit):
        pruned = _rebuild(
            node,
            {
                code: prune_to_alpha(child, alpha, n_total)
                for code, child in node.children.items()
            },
        )
    else:
        pruned = _rebuild(
            node, [prune_to_alpha(c, alpha, n_total) for c in _children(node)]
        )
    subtree_risk, leaves = _subtree_risk_and_leaves(pruned)
    if leaves <= 1:
        return Leaf(node.class_counts)
    g = (node.training_errors() - subtree_risk) / (n_total * (leaves - 1))
    if g <= alpha + 1e-12:
        return Leaf(node.class_counts)
    return pruned


def cost_complexity_path(node: TreeNode) -> List[float]:
    """Ascending list of alpha values at which the optimal subtree shrinks.

    Computed by repeated weakest-link pruning; prepends 0.0 so iterating
    the list with :func:`prune_to_alpha` sweeps the full family from the
    unpruned tree to the root leaf.
    """
    n_total = node.training_mass
    alphas = [0.0]
    current = node
    while not isinstance(current, Leaf):
        weakest = _weakest_link(current, n_total)
        if weakest is None or not math.isfinite(weakest):
            break
        alphas.append(weakest)
        current = prune_to_alpha(current, weakest, n_total)
    return alphas


def _weakest_link(node: TreeNode, n_total: float) -> float:
    best = math.inf
    for sub in node.iter_nodes():
        if isinstance(sub, Leaf):
            continue
        risk, leaves = _subtree_risk_and_leaves(sub)
        if leaves <= 1:
            continue
        g = (sub.training_errors() - risk) / (n_total * (leaves - 1))
        best = min(best, g)
    return best


__all__ = [
    "binomial_upper_limit",
    "pessimistic_prune",
    "reduced_error_prune",
    "cost_complexity_path",
    "prune_to_alpha",
]
