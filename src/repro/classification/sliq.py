"""SLIQ-style scalable decision tree (Mehta, Agrawal & Rissanen, EDBT 1996).

SLIQ's contribution is not a new split criterion (it uses Gini, like
CART) but a *scalable growth procedure*:

* every numeric attribute is **pre-sorted exactly once**; tree growth
  never re-sorts node subsets;
* the tree grows **breadth-first**: one scan of each attribute list per
  level evaluates the best split of *every* active leaf simultaneously,
  coordinated through a *class list* that maps each row to its current
  leaf.

The naive depth-first builder (our CART) re-sorts each node's rows at
each level — O(N log N) per node — so SLIQ's one-time sort wins on deep
trees over large data: that asymmetry is benchmark E7.

The pre-sorted attribute lists come from the shared columnar data plane
(:func:`repro.core.columnar.presorted_columns`): the argsort index per
numeric column is memoized on the table object, so repeated fits over
the same table (cross-validation restarts, ensembles) sort zero times
after the first.  ``backend="columnar"`` additionally vectorizes the
per-level attribute scans (cumulative class histograms instead of
per-row Python bookkeeping) while feeding the exact same split
arithmetic, so the grown tree is byte-identical.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.base import Classifier, check_in_range
from ..core.columnar import presorted_columns
from ..core.exceptions import ValidationError
from ..core.table import Attribute, Table
from ..runtime import Budget, BudgetExceeded
from ..runtime.context import ExecutionContext
from .criteria import gini
from .pruning import pessimistic_prune
from .tree_model import (
    BinaryCategoricalSplit,
    Leaf,
    NumericSplit,
    TreeNode,
    predict_distributions,
    safe_threshold,
)

#: attribute-scan backends accepted by :class:`SLIQ`
SCAN_BACKENDS = ("scan", "columnar")


class _Growing:
    """Bookkeeping for one still-growing leaf during breadth-first growth."""

    __slots__ = (
        "counts",
        "n_rows",
        "best_decrease",
        "best_split",
        "below",
        "last_value",
    )

    def __init__(self, counts: np.ndarray, n_rows: int):
        self.counts = counts
        self.n_rows = n_rows
        self.best_decrease = 0.0
        self.best_split: Optional[dict] = None
        # scratch used during a numeric-attribute scan
        self.below: Optional[np.ndarray] = None
        self.last_value: Optional[float] = None


class SLIQ(Classifier):
    """Breadth-first Gini tree with pre-sorted attribute lists.

    Parameters
    ----------
    max_depth, min_samples_split, min_samples_leaf:
        Growth limits, as in :class:`~repro.classification.cart.CART`.
    min_gini_decrease:
        A split must reduce node Gini by at least this to be applied.
    prune:
        Apply pessimistic pruning after growth (stand-in for SLIQ's MDL
        pruning — both collapse statistically unjustified subtrees; the
        substitution is recorded in DESIGN.md).
    budget:
        Deprecated alias for ``ctx=ExecutionContext(budget=...)``:
        optional :class:`~repro.runtime.Budget`, checked once per level
        and charged two node units per applied split.  On exhaustion the
        still-growing frontier finalizes as leaves and ``truncated_`` is
        set — breadth-first growth makes the budgeted tree a balanced
        prefix of the full one.

    Notes
    -----
    Missing values are not supported (the original operates on complete
    attribute lists); validate/impute beforehand.

    Examples
    --------
    >>> from repro.datasets import play_tennis
    >>> SLIQ(prune=False).fit(play_tennis(), "play").score(play_tennis())
    1.0
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_gini_decrease: float = 1e-9,
        prune: bool = False,
        max_exhaustive_categories: int = 8,
        budget: Optional[Budget] = None,
        ctx: Optional[ExecutionContext] = None,
        backend: str = "scan",
    ):
        if max_depth is not None and max_depth < 1:
            raise ValidationError(f"max_depth must be >= 1, got {max_depth}")
        if backend not in SCAN_BACKENDS:
            raise ValidationError(
                f"backend must be one of {SCAN_BACKENDS}, got {backend!r}"
            )
        self.backend = backend
        check_in_range("min_samples_split", min_samples_split, 2, None)
        check_in_range("min_samples_leaf", min_samples_leaf, 1, None)
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_gini_decrease = min_gini_decrease
        self.prune = prune
        self.max_exhaustive_categories = max_exhaustive_categories
        self._init_context(ctx, budget=budget)
        self.tree_: Optional[TreeNode] = None
        self.truncated_ = False
        self.truncation_reason_: Optional[str] = None

    def _fit(self, features: Table, y: np.ndarray, target: Attribute) -> None:
        if features.n_rows < 2:
            raise ValidationError(
                f"cannot grow a decision tree from {features.n_rows} "
                f"row(s); need at least 2"
            )
        for attr in features.attributes:
            col = features.column(attr.name)
            has_missing = (
                np.isnan(col).any() if attr.is_numeric else (col < 0).any()
            )
            if has_missing:
                raise ValidationError(
                    f"SLIQ does not handle missing values ({attr.name!r})"
                )
        n = features.n_rows
        n_classes = len(target.values)
        self.truncated_ = False
        self.truncation_reason_ = None

        # Pre-sort every numeric attribute once — the SLIQ invariant —
        # through the shared columnar plane: the argsort indices are
        # memoized on the table, so refits over the same table reuse
        # them outright.
        presorted: Dict[str, np.ndarray] = presorted_columns(features).order

        # Class list: row -> current leaf id; -1 marks finished subtrees.
        leaf_of = np.zeros(n, dtype=np.int64)
        root_counts = np.bincount(y, minlength=n_classes).astype(np.float64)
        growing: Dict[int, _Growing] = {0: _Growing(root_counts, n)}
        # Assembled tree: leaf id -> node, plus parent wiring fix-ups.
        split_record: Dict[int, dict] = {}
        next_leaf_id = 1
        depth = 0

        while growing and (self.max_depth is None or depth < self.max_depth):
            if self.budget is not None:
                try:
                    self.budget.check(phase=f"sliq-level-{depth}")
                    # Applying this level materialises up to two children
                    # per splitter; charge before the work happens.
                    self.budget.charge_nodes(
                        2 * len(growing), phase=f"sliq-level-{depth}"
                    )
                except BudgetExceeded as exc:
                    # The tail below finalizes every still-growing leaf.
                    self.truncated_ = True
                    self.truncation_reason_ = f"{type(exc).__name__}: {exc}"
                    break
            for g in growing.values():
                g.best_decrease = self.min_gini_decrease
                g.best_split = None
            if self.backend == "columnar":
                self._scan_numeric_columnar(
                    features, y, leaf_of, growing, presorted, n_classes
                )
                self._scan_categorical_columnar(
                    features, y, leaf_of, growing, n_classes
                )
            else:
                self._scan_numeric(
                    features, y, leaf_of, growing, presorted, n_classes
                )
                self._scan_categorical(features, y, leaf_of, growing, n_classes)

            splitters = {
                leaf_id: g for leaf_id, g in growing.items() if g.best_split
            }
            if not splitters:
                break
            new_growing: Dict[int, _Growing] = {}
            for leaf_id, g in splitters.items():
                split = g.best_split
                left_id, right_id = next_leaf_id, next_leaf_id + 1
                next_leaf_id += 2
                member = leaf_of == leaf_id
                if split["kind"] == "numeric":
                    values = features.column(split["attribute"])
                    goes_left = member & (values <= split["threshold"])
                else:
                    codes = features.column(split["attribute"])
                    goes_left = member & np.isin(
                        codes, list(split["left_codes"])
                    )
                leaf_of[member & goes_left] = left_id
                leaf_of[member & ~goes_left] = right_id
                split_record[leaf_id] = {
                    **split,
                    "left_id": left_id,
                    "right_id": right_id,
                    "counts": g.counts,
                }
                for child_id in (left_id, right_id):
                    child_member = leaf_of == child_id
                    counts = np.bincount(
                        y[child_member], minlength=n_classes
                    ).astype(np.float64)
                    child = _Growing(counts, int(child_member.sum()))
                    if (
                        child.n_rows >= self.min_samples_split
                        and (counts > 0).sum() > 1
                    ):
                        new_growing[child_id] = child
                    else:
                        split_record[child_id] = {"kind": "leaf", "counts": counts}
            # Leaves that found no split this level are finished.
            for leaf_id, g in growing.items():
                if leaf_id not in splitters:
                    split_record[leaf_id] = {"kind": "leaf", "counts": g.counts}
            growing = new_growing
            depth += 1

        for leaf_id, g in growing.items():
            split_record[leaf_id] = {"kind": "leaf", "counts": g.counts}

        self.tree_ = self._assemble(0, split_record, features)
        if self.prune:
            self.tree_ = pessimistic_prune(self.tree_)

    # ------------------------------------------------------------------
    # Level-wide split evaluation
    # ------------------------------------------------------------------
    def _scan_numeric(self, features, y, leaf_of, growing, presorted, n_classes):
        for attr in features.attributes:
            if not attr.is_numeric:
                continue
            order = presorted[attr.name]
            values = features.column(attr.name)
            for g in growing.values():
                g.below = np.zeros(n_classes)
                g.last_value = None
            for row in order:
                leaf_id = leaf_of[row]
                g = growing.get(int(leaf_id))
                if g is None:
                    continue
                v = values[row]
                if g.last_value is not None and v > g.last_value:
                    self._consider_numeric(
                        g, attr.name, safe_threshold(g.last_value, float(v))
                    )
                g.below[y[row]] += 1.0
                g.last_value = v

    def _consider_numeric(self, g: _Growing, name: str, threshold: float):
        left = g.below
        right = g.counts - left
        nl, nr = left.sum(), right.sum()
        if nl < self.min_samples_leaf or nr < self.min_samples_leaf:
            return
        total = nl + nr
        child = nl / total * gini(left) + nr / total * gini(right)
        decrease = gini(g.counts) - child
        if decrease > g.best_decrease + 1e-12:
            g.best_decrease = decrease
            g.best_split = {
                "kind": "numeric",
                "attribute": name,
                "threshold": threshold,
            }

    def _scan_numeric_columnar(
        self, features, y, leaf_of, growing, presorted, n_classes
    ):
        """Vectorized numeric scan off the presorted columns.

        For each (attribute, leaf) pair the leaf's rows are extracted in
        presorted order, the running class histogram becomes one
        ``cumsum`` over a one-hot matrix, and the Gini decrease of every
        *boundary between distinct values* — exactly the split points
        the scalar scan considers — is evaluated in one batch with the
        same elementwise arithmetic as :meth:`_consider_numeric`.  The
        scalar scan's sequential ``decrease > best + 1e-12`` fold is
        replayed over the batch in boundary order (each record-setter
        found with one vectorized comparison), so the chosen splits are
        byte-identical.  All class counts are integer-valued floats, so
        ``cumsum`` totals, ``n_left = boundary index`` and ``n_right =
        leaf size - boundary index`` are exact and match the scalar
        accumulations bit for bit.
        """
        for attr in features.attributes:
            if not attr.is_numeric:
                continue
            order = presorted[attr.name]
            values = features.column(attr.name)
            leaf_sorted = leaf_of[order]
            for leaf_id, g in growing.items():
                rows = order[leaf_sorted == leaf_id]
                if rows.size < 2:
                    continue
                vals = values[rows]
                boundaries = np.flatnonzero(vals[1:] > vals[:-1]) + 1
                if boundaries.size == 0:
                    continue
                onehot = np.zeros((rows.size, n_classes))
                onehot[np.arange(rows.size), y[rows]] = 1.0
                cum = np.cumsum(onehot, axis=0)
                left = cum[boundaries - 1]
                right = g.counts - left
                nl = boundaries.astype(np.float64)
                nr = float(rows.size) - nl
                pl = left / nl[:, None]
                pr = right / nr[:, None]
                total = nl + nr
                child = (
                    nl / total * (1.0 - (pl * pl).sum(axis=1))
                    + nr / total * (1.0 - (pr * pr).sum(axis=1))
                )
                decrease = gini(g.counts) - child
                valid = (nl >= self.min_samples_leaf) & (
                    nr >= self.min_samples_leaf
                )
                decrease[~valid] = -np.inf
                pos = 0
                while pos < decrease.size:
                    ahead = np.flatnonzero(
                        decrease[pos:] > g.best_decrease + 1e-12
                    )
                    if ahead.size == 0:
                        break
                    i = pos + int(ahead[0])
                    idx = int(boundaries[i])
                    g.best_decrease = float(decrease[i])
                    g.best_split = {
                        "kind": "numeric",
                        "attribute": attr.name,
                        "threshold": safe_threshold(
                            vals[idx - 1], float(vals[idx])
                        ),
                    }
                    pos = i + 1

    def _scan_categorical_columnar(self, features, y, leaf_of, growing,
                                   n_classes):
        """Vectorized categorical scan: per-leaf histograms by bincount.

        The (code, class) histogram of each growing leaf is one
        ``bincount`` over a fused index instead of a per-row Python
        loop; the partition search itself (:meth:`_best_partition`) is
        shared with the scalar scan, so split choices are identical.
        """
        for attr in features.attributes:
            if not attr.is_categorical:
                continue
            codes = features.column(attr.name)
            n_codes = len(attr.values)
            for leaf_id, g in growing.items():
                member = leaf_of == leaf_id
                flat = np.bincount(
                    codes[member] * n_classes + y[member],
                    minlength=n_codes * n_classes,
                ).reshape(n_codes, n_classes).astype(np.float64)
                present = np.flatnonzero(flat.sum(axis=1) > 0)
                if present.size < 2:
                    continue
                code_counts = {int(code): flat[code] for code in present}
                best = self._best_partition(code_counts, g.counts)
                if best is None:
                    continue
                decrease, left_codes = best
                if decrease > g.best_decrease + 1e-12:
                    g.best_decrease = decrease
                    g.best_split = {
                        "kind": "categorical",
                        "attribute": attr.name,
                        "left_codes": left_codes,
                    }

    def _scan_categorical(self, features, y, leaf_of, growing, n_classes):
        for attr in features.attributes:
            if not attr.is_categorical:
                continue
            codes = features.column(attr.name)
            # One pass builds each growing leaf's per-category histogram.
            hist: Dict[Tuple[int, int], np.ndarray] = {}
            for row in range(len(codes)):
                leaf_id = int(leaf_of[row])
                if leaf_id not in growing:
                    continue
                key = (leaf_id, int(codes[row]))
                if key not in hist:
                    hist[key] = np.zeros(n_classes)
                hist[key][y[row]] += 1.0
            per_leaf: Dict[int, Dict[int, np.ndarray]] = {}
            for (leaf_id, code), counts in hist.items():
                per_leaf.setdefault(leaf_id, {})[code] = counts
            for leaf_id, code_counts in per_leaf.items():
                if len(code_counts) < 2:
                    continue
                g = growing[leaf_id]
                best = self._best_partition(code_counts, g.counts)
                if best is None:
                    continue
                decrease, left_codes = best
                if decrease > g.best_decrease + 1e-12:
                    g.best_decrease = decrease
                    g.best_split = {
                        "kind": "categorical",
                        "attribute": attr.name,
                        "left_codes": left_codes,
                    }

    def _best_partition(self, code_counts, parent_counts):
        """Best binary category partition by Gini decrease.

        Exhaustive for small arities, greedy class-proportion ordering
        beyond ``max_exhaustive_categories`` (mirrors CART).
        """
        codes = sorted(code_counts)
        total = parent_counts
        n_total = total.sum()
        parent_gini = gini(total)

        def evaluate(subset) -> Optional[float]:
            left = np.sum([code_counts[c] for c in subset], axis=0)
            right = total - left
            nl, nr = left.sum(), right.sum()
            if nl < self.min_samples_leaf or nr < self.min_samples_leaf:
                return None
            child = nl / n_total * gini(left) + nr / n_total * gini(right)
            return parent_gini - child

        candidates: List[tuple]
        if len(codes) <= self.max_exhaustive_categories:
            candidates = [
                subset
                for size in range(1, len(codes) // 2 + 1)
                for subset in combinations(codes, size)
                if not (2 * size == len(codes) and codes[0] not in subset)
            ]
        else:
            pivot = int(np.argmax(total))
            ordered = sorted(
                codes,
                key=lambda c: code_counts[c][pivot] / max(code_counts[c].sum(), 1e-12),
            )
            candidates = [tuple(ordered[: i + 1]) for i in range(len(ordered) - 1)]

        best = None
        for subset in candidates:
            decrease = evaluate(subset)
            if decrease is not None and (best is None or decrease > best[0]):
                best = (decrease, frozenset(subset))
        return best

    # ------------------------------------------------------------------
    # Assembly, prediction, introspection
    # ------------------------------------------------------------------
    def _assemble(self, leaf_id: int, record: Dict[int, dict], features: Table) -> TreeNode:
        node = record[leaf_id]
        if node["kind"] == "leaf":
            return Leaf(node["counts"])
        left = self._assemble(node["left_id"], record, features)
        right = self._assemble(node["right_id"], record, features)
        attr = features.attribute(node["attribute"])
        if node["kind"] == "numeric":
            return NumericSplit(
                attr, node["threshold"], left, right, node["counts"]
            )
        return BinaryCategoricalSplit(
            attr, node["left_codes"], left, right, node["counts"]
        )

    def _predict_codes(self, features: Table) -> np.ndarray:
        return predict_distributions(self.tree_, features).argmax(axis=1)

    def _predict_proba(self, features: Table) -> np.ndarray:
        return predict_distributions(self.tree_, features)

    def n_nodes(self) -> int:
        """Total node count of the fitted tree."""
        return self.tree_.n_nodes()

    def n_leaves(self) -> int:
        """Leaf count of the fitted tree."""
        return self.tree_.n_leaves()

    def depth(self) -> int:
        """Depth (number of splits on the longest path)."""
        return self.tree_.depth()


__all__ = ["SLIQ"]
