"""C4.5rules-style rule-set simplification.

C4.5's companion program converts a decision tree into an ordered rule
set and then *simplifies* it: each path-rule drops the conditions whose
removal does not raise its pessimistic error estimate, duplicate rules
collapse, and the survivors are ordered by estimated accuracy with a
majority-class default at the end.  Simplified rules are usually both
smaller and slightly more accurate than the tree they came from,
because condition-dropping generalises each leaf's region.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.base import Classifier, check_in_range
from ..core.exceptions import NotFittedError, ValidationError
from ..core.table import Attribute, Table
from .pruning import binomial_upper_limit
from .tree_model import (
    BinaryCategoricalSplit,
    CategoricalSplit,
    Leaf,
    NumericSplit,
    TreeNode,
)


@dataclass(frozen=True)
class Condition:
    """One test on an attribute.

    kind ``"eq"``: categorical equality to ``codes`` (a single code);
    kind ``"in"``: categorical membership of ``codes``;
    kind ``"le"`` / ``"gt"``: numeric threshold tests.
    """

    attribute: str
    kind: str
    threshold: Optional[float] = None
    codes: Optional[frozenset] = None

    def matches(self, column: np.ndarray) -> np.ndarray:
        if self.kind == "le":
            return column <= self.threshold
        if self.kind == "gt":
            return column > self.threshold
        return np.isin(column, list(self.codes))

    def render(self, attr: Attribute) -> str:
        if self.kind == "le":
            return f"{self.attribute} <= {self.threshold:g}"
        if self.kind == "gt":
            return f"{self.attribute} > {self.threshold:g}"
        values = [attr.values[c] for c in sorted(self.codes)]
        if len(values) == 1:
            return f"{self.attribute} = {values[0]!r}"
        return f"{self.attribute} in {values}"


@dataclass
class SimplifiedRule:
    """A conjunction of conditions predicting one class."""

    conditions: Tuple[Condition, ...]
    class_code: int
    coverage: int = 0
    errors: int = 0
    pessimistic: float = 1.0

    def matches(self, columns: Dict[str, np.ndarray], n_rows: int) -> np.ndarray:
        mask = np.ones(n_rows, dtype=bool)
        for condition in self.conditions:
            mask &= condition.matches(columns[condition.attribute])
        return mask


class C45Rules(Classifier):
    """Rule-set classifier distilled from a fitted decision tree.

    Parameters
    ----------
    make_tree:
        Factory for the underlying tree learner (default: pruned C4.5).
    confidence:
        Confidence level for the pessimistic error estimates used when
        dropping conditions and ordering rules.

    Notes
    -----
    Missing feature values are not supported at prediction time (the
    original C4.5rules handles them with fractional matching; impute
    beforehand here).

    Examples
    --------
    >>> from repro.datasets import play_tennis
    >>> model = C45Rules().fit(play_tennis(), "play")
    >>> model.score(play_tennis()) >= 0.9
    True
    """

    def __init__(self, make_tree=None, confidence: float = 0.25):
        check_in_range("confidence", confidence, 0.0, 0.5, low_inclusive=False)
        self.make_tree = make_tree
        self.confidence = confidence
        self.rules_: Optional[List[SimplifiedRule]] = None
        self.default_class_: Optional[int] = None

    def _fit(self, features: Table, y: np.ndarray, target: Attribute) -> None:
        from .c45 import C45

        factory = self.make_tree or (lambda: C45(prune=True))
        tree_model = factory()
        labelled = _with_target(features, y, target)
        tree_model.fit(labelled, target.name)
        raw_rules = _paths_to_rules(tree_model.tree_)

        columns = {
            a.name: features.column(a.name) for a in features.attributes
        }
        n_rows = features.n_rows
        simplified: List[SimplifiedRule] = []
        seen = set()
        for rule in raw_rules:
            rule = self._simplify(rule, columns, y, n_rows)
            key = (rule.conditions, rule.class_code)
            if key in seen:
                continue
            seen.add(key)
            if rule.coverage > 0:
                simplified.append(rule)
        # Order by pessimistic error (best rules fire first).
        simplified.sort(key=lambda r: (r.pessimistic, -r.coverage))
        self.rules_ = simplified
        self.default_class_ = int(np.bincount(y).argmax())
        self._columns_template = [a.name for a in features.attributes]

    def _simplify(self, rule: SimplifiedRule, columns, y, n_rows) -> SimplifiedRule:
        """Greedily drop conditions that don't hurt the pessimistic error."""
        conditions = list(rule.conditions)
        best = self._evaluate(conditions, rule.class_code, columns, y, n_rows)
        improved = True
        while improved and conditions:
            improved = False
            for idx in range(len(conditions)):
                trial = conditions[:idx] + conditions[idx + 1:]
                candidate = self._evaluate(
                    trial, rule.class_code, columns, y, n_rows
                )
                if candidate.pessimistic <= best.pessimistic + 1e-12:
                    conditions = trial
                    best = candidate
                    improved = True
                    break
        return best

    def _evaluate(self, conditions, class_code, columns, y, n_rows) -> SimplifiedRule:
        mask = np.ones(n_rows, dtype=bool)
        for condition in conditions:
            mask &= condition.matches(columns[condition.attribute])
        coverage = int(mask.sum())
        errors = int((y[mask] != class_code).sum())
        pessimistic = binomial_upper_limit(
            float(errors), float(max(coverage, 1)), self.confidence
        )
        return SimplifiedRule(
            tuple(conditions), class_code, coverage, errors, pessimistic
        )

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _predict_codes(self, features: Table) -> np.ndarray:
        if self.rules_ is None:
            raise NotFittedError(self)
        columns = {}
        for name in self._columns_template:
            if name in features.attribute_names:
                columns[name] = features.column(name)
        n = features.n_rows
        out = np.full(n, self.default_class_, dtype=np.int64)
        unassigned = np.ones(n, dtype=bool)
        for rule in self.rules_:
            if not unassigned.any():
                break
            if any(c.attribute not in columns for c in rule.conditions):
                continue
            mask = rule.matches(columns, n) & unassigned
            out[mask] = rule.class_code
            unassigned &= ~mask
        return out

    def render_rules(self, features_schema: Table) -> List[str]:
        """Readable rule list using a table's schema for value names."""
        if self.rules_ is None:
            raise NotFittedError(self)
        lines = []
        for rule in self.rules_:
            if rule.conditions:
                clause = " and ".join(
                    c.render(features_schema.attribute(c.attribute))
                    for c in rule.conditions
                )
            else:
                clause = "true"
            label = self.target_.values[rule.class_code]
            lines.append(
                f"if {clause} then {label!r}  "
                f"[covers {rule.coverage}, errors {rule.errors}]"
            )
        lines.append(f"default: {self.target_.values[self.default_class_]!r}")
        return lines

    def n_conditions(self) -> int:
        """Total conditions across all rules (the size metric)."""
        if self.rules_ is None:
            raise NotFittedError(self)
        return sum(len(r.conditions) for r in self.rules_)


def _paths_to_rules(root: TreeNode) -> List[SimplifiedRule]:
    rules: List[SimplifiedRule] = []
    _walk(root, [], rules)
    return rules


def _walk(node: TreeNode, conditions: List[Condition], out: List[SimplifiedRule]):
    if isinstance(node, Leaf):
        out.append(SimplifiedRule(tuple(conditions), node.majority_class))
        return
    if isinstance(node, NumericSplit):
        _walk(
            node.left,
            conditions + [Condition(node.attribute.name, "le", node.threshold)],
            out,
        )
        _walk(
            node.right,
            conditions + [Condition(node.attribute.name, "gt", node.threshold)],
            out,
        )
    elif isinstance(node, BinaryCategoricalSplit):
        all_codes = frozenset(range(len(node.attribute.values)))
        _walk(
            node.left,
            conditions + [
                Condition(node.attribute.name, "in", codes=node.left_codes)
            ],
            out,
        )
        _walk(
            node.right,
            conditions + [
                Condition(
                    node.attribute.name, "in", codes=all_codes - node.left_codes
                )
            ],
            out,
        )
    elif isinstance(node, CategoricalSplit):
        for code, child in node.children.items():
            _walk(
                child,
                conditions + [
                    Condition(node.attribute.name, "in", codes=frozenset({code}))
                ],
                out,
            )


def _with_target(features: Table, y: np.ndarray, target: Attribute) -> Table:
    attributes = features.attributes + (target,)
    columns = {a.name: features.column(a.name) for a in features.attributes}
    columns[target.name] = y
    return Table(attributes, columns)


__all__ = ["C45Rules", "SimplifiedRule", "Condition"]
