"""PRISM — modular rule induction (Cendrowska, 1987).

A sequential-covering rule learner: for each class in turn, grow a rule
by greedily adding the attribute=value condition with the highest
precision ``p / (p + n)`` on the still-covered rows, until the rule is
pure (or no condition helps); remove the rows it covers and repeat until
the class is exhausted.  The result is an ordered rule list — the
directly interpretable counterpart to a decision tree's paths.

Categorical attributes only (discretize numeric columns first, e.g.
with :func:`repro.preprocessing.discretize_table`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..core.base import Classifier, check_in_range
from ..core.exceptions import ValidationError
from ..core.table import Attribute, Table
from ..runtime import IterationBudgetExceeded


@dataclass(frozen=True)
class Rule:
    """One learned rule: conjunction of (attribute, code) tests -> class."""

    conditions: Tuple[Tuple[str, int], ...]
    class_code: int
    coverage: int
    precision: float

    def matches(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        """Boolean mask of rows satisfying every condition."""
        n = len(next(iter(columns.values())))
        mask = np.ones(n, dtype=bool)
        for name, code in self.conditions:
            mask &= columns[name] == code
        return mask

    def render(self, table_attrs: Dict[str, Attribute], target: Attribute) -> str:
        if self.conditions:
            clause = " and ".join(
                f"{name} = {table_attrs[name].values[code]!r}"
                for name, code in self.conditions
            )
        else:
            clause = "true"
        return (
            f"if {clause} then {target.name} = "
            f"{target.values[self.class_code]!r}  "
            f"[covers {self.coverage}, precision {self.precision:.2f}]"
        )


class PRISM(Classifier):
    """PRISM rule-list classifier for categorical tables.

    Parameters
    ----------
    min_coverage:
        A rule must cover at least this many training rows; stops rule
        growth from chasing single noisy rows.
    max_conditions:
        Cap on conditions per rule (``None`` = all attributes).

    Attributes
    ----------
    rules_:
        The ordered rule list (first match wins); a default majority
        rule closes the list.

    Examples
    --------
    >>> from repro.datasets import play_tennis
    >>> model = PRISM().fit(play_tennis(), "play")
    >>> model.score(play_tennis())
    1.0
    """

    def __init__(self, min_coverage: int = 1, max_conditions: Optional[int] = None):
        check_in_range("min_coverage", min_coverage, 1, None)
        if max_conditions is not None:
            check_in_range("max_conditions", max_conditions, 1, None)
        self.min_coverage = int(min_coverage)
        self.max_conditions = max_conditions
        self.rules_: Optional[List[Rule]] = None

    def _fit(self, features: Table, y: np.ndarray, target: Attribute) -> None:
        for attr in features.attributes:
            if not attr.is_categorical:
                raise ValidationError(
                    f"PRISM handles categorical attributes only; "
                    f"{attr.name!r} is numeric (discretize it first)"
                )
            if (features.column(attr.name) < 0).any():
                raise ValidationError(
                    f"PRISM does not handle missing values ({attr.name!r})"
                )
        columns = {
            a.name: features.column(a.name) for a in features.attributes
        }
        attr_values = {
            a.name: range(len(a.values)) for a in features.attributes
        }
        n_classes = len(target.values)
        rules: List[Rule] = []
        # Classes ordered by training frequency (most common last, so
        # rare classes get the crisper early rules).  PRISM treats each
        # class independently: every class starts from the FULL training
        # set and removes only the rows its own rules cover.
        order = np.argsort(np.bincount(y, minlength=n_classes))
        for class_code in order:
            class_code = int(class_code)
            remaining = np.ones(features.n_rows, dtype=bool)
            while (remaining & (y == class_code)).sum() >= self.min_coverage:
                rule = self._grow_rule(
                    columns, attr_values, y, remaining, class_code
                )
                if rule is None:
                    break
                covered = rule.matches(columns) & remaining
                if covered.sum() < self.min_coverage:
                    break
                rules.append(rule)
                # Remove only this class's covered positives, per the
                # original algorithm (negatives keep constraining later
                # rules of the same class).
                remaining &= ~(covered & (y == class_code))
        # Default rule: majority class of the whole training set, firing
        # for rows no learned rule matches.
        majority = int(np.bincount(y, minlength=n_classes).argmax())
        matched = np.zeros(features.n_rows, dtype=bool)
        for rule in rules:
            matched |= rule.matches(columns)
        rules.append(Rule((), majority, int((~matched).sum()), 0.0))
        self.rules_ = rules
        self._feature_attrs = {a.name: a for a in features.attributes}

    def _grow_rule(self, columns, attr_values, y, remaining, class_code):
        conditions: List[Tuple[str, int]] = []
        covered = remaining.copy()
        used = set()
        # Each pass consumes one attribute, so len(attr_values) passes is
        # the true ceiling; the explicit cap turns any bookkeeping bug
        # that would loop forever into a loud, typed failure.
        max_growth = len(attr_values) + 1
        for _growth in range(max_growth + 1):
            if _growth == max_growth:
                raise IterationBudgetExceeded(
                    f"PRISM rule growth did not terminate within "
                    f"{max_growth} passes",
                    resource="expansions",
                    limit=max_growth,
                    used=max_growth,
                )
            positives = (y == class_code) & covered
            negatives = (y != class_code) & covered
            if not negatives.any():
                break  # rule is pure
            if self.max_conditions is not None and len(conditions) >= self.max_conditions:
                break
            best = None
            for name, values in attr_values.items():
                if name in used:
                    continue
                col = columns[name]
                for code in values:
                    member = covered & (col == code)
                    p = int((member & positives).sum())
                    if p < self.min_coverage:
                        continue
                    total = int(member.sum())
                    precision = p / total
                    key = (precision, p)
                    if best is None or key > best[0]:
                        best = (key, name, code, member)
            if best is None:
                break
            _, name, code, member = best
            conditions.append((name, int(code)))
            used.add(name)
            covered = member
        positives = int(((y == class_code) & covered).sum())
        total = int(covered.sum())
        if total == 0 or positives < self.min_coverage or not conditions:
            return None
        return Rule(
            tuple(conditions), class_code, total, positives / total
        )

    def _predict_codes(self, features: Table) -> np.ndarray:
        columns = {
            name: features.column(name)
            for name in self._feature_attrs
            if name in features.attribute_names
        }
        out = np.empty(features.n_rows, dtype=np.int64)
        unassigned = np.ones(features.n_rows, dtype=bool)
        for rule in self.rules_:
            if not unassigned.any():
                break
            if any(name not in columns for name, _ in rule.conditions):
                continue
            mask = rule.matches(columns) & unassigned if rule.conditions else unassigned
            out[mask] = rule.class_code
            unassigned &= ~mask
        return out

    def render_rules(self) -> List[str]:
        """Human-readable rule list, in firing order."""
        from ..core.base import check_fitted

        check_fitted(self, "rules_")
        return [
            rule.render(self._feature_attrs, self.target_)
            for rule in self.rules_
        ]


__all__ = ["PRISM", "Rule"]
