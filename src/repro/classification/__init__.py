"""Classification: decision trees, naive Bayes, k-NN, baselines.

Tree family (shared node structures in :mod:`tree_model`, pruning in
:mod:`pruning`):

* :class:`ID3` — categorical-only, information gain, multiway.
* :class:`C45` — gain ratio, continuous splits, missing values,
  pessimistic pruning.
* :class:`CART` — binary Gini splits, cost-complexity pruning.
* :class:`SLIQ` — breadth-first growth over pre-sorted attribute lists
  (the scalable variant; same trees, different asymptotics).

Others:

* :class:`NaiveBayes` — Gaussian + Laplace-smoothed categorical.
* :class:`KNN` — lazy nearest-neighbour voting.
* :class:`PRISM` — sequential-covering rule lists.
* :class:`Bagging`, :class:`AdaBoostM1` — ensemble wrappers over any
  base classifier.
* :class:`ZeroR`, :class:`OneR` — evaluation floors.
"""

from .baselines import OneR, ZeroR
from .ensembles import AdaBoostM1, Bagging
from .prism import PRISM, Rule
from .tree_rules import C45Rules, Condition, SimplifiedRule
from .c45 import C45
from .cart import CART
from .criteria import (
    entropy,
    gain_ratio,
    gini,
    gini_gain,
    information_gain,
    split_information,
)
from .id3 import ID3
from .knn import KNN
from .naive_bayes import NaiveBayes
from .pruning import (
    binomial_upper_limit,
    cost_complexity_path,
    pessimistic_prune,
    prune_to_alpha,
    reduced_error_prune,
)
from .sliq import SLIQ
from .tree_model import (
    BinaryCategoricalSplit,
    CategoricalSplit,
    Leaf,
    NumericSplit,
    TreeNode,
    extract_rules,
    render_tree,
)

from ..registry import (
    AlgorithmSpec as _Spec,
    Capabilities as _Caps,
    register as _register,
)

# Capability declarations (see repro.registry).  Every classifier is a
# deterministic fit, so all are supervisable via restart-from-scratch;
# only the tree growers charge a budget (one node unit per attempted
# split).  The order fixes the CLI ``--classifier`` choices.
_TREE_CAPS = _Caps(supervisable=True, budget_resource="nodes")
_PLAIN_CAPS = _Caps(supervisable=True)
_SLIQ_CAPS = _Caps(supervisable=True, budget_resource="nodes",
                   vectorizable=True)
_VECTOR_PLAIN_CAPS = _Caps(supervisable=True, vectorizable=True)
for _spec in (
    _Spec("c45", "classification", C45, _TREE_CAPS,
          summary="gain-ratio tree with pessimistic pruning"),
    _Spec("cart", "classification", CART, _TREE_CAPS,
          summary="binary Gini tree with cost-complexity pruning"),
    _Spec("sliq", "classification", SLIQ, _SLIQ_CAPS,
          summary="breadth-first tree over pre-sorted attribute lists"),
    _Spec("nb", "classification", NaiveBayes, _VECTOR_PLAIN_CAPS,
          summary="Gaussian + Laplace-smoothed naive Bayes"),
    _Spec("knn", "classification", KNN, _VECTOR_PLAIN_CAPS,
          summary="lazy nearest-neighbour voting"),
    _Spec("oner", "classification", OneR, _PLAIN_CAPS,
          summary="best single-attribute rule set"),
    _Spec("zeror", "classification", ZeroR, _PLAIN_CAPS,
          summary="majority-class floor"),
):
    _register(_spec)

__all__ = [
    "ID3",
    "C45",
    "CART",
    "SLIQ",
    "NaiveBayes",
    "KNN",
    "PRISM",
    "Rule",
    "C45Rules",
    "SimplifiedRule",
    "Condition",
    "Bagging",
    "AdaBoostM1",
    "ZeroR",
    "OneR",
    "entropy",
    "gini",
    "information_gain",
    "gain_ratio",
    "gini_gain",
    "split_information",
    "pessimistic_prune",
    "reduced_error_prune",
    "cost_complexity_path",
    "prune_to_alpha",
    "binomial_upper_limit",
    "TreeNode",
    "Leaf",
    "CategoricalSplit",
    "NumericSplit",
    "BinaryCategoricalSplit",
    "render_tree",
    "extract_rules",
]
