"""Split-quality criteria for decision-tree induction.

All functions operate on *weighted* class-count vectors so the same code
serves plain trees and C4.5's fractional-instance missing-value handling.
Logarithms are base 2, matching the information-theoretic formulation of
ID3/C4.5.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def entropy(class_counts: np.ndarray) -> float:
    """Shannon entropy (bits) of a weighted class-count vector.

    >>> round(entropy(np.array([5.0, 5.0])), 6)
    1.0
    >>> entropy(np.array([10.0, 0.0]))
    0.0
    """
    total = class_counts.sum()
    if total <= 0:
        return 0.0
    p = class_counts[class_counts > 0] / total
    # Extreme count ratios can underflow a probability to exactly 0.0;
    # its entropy contribution is the limit value 0.
    p = p[p > 0]
    return max(0.0, float(-(p * np.log2(p)).sum()))


def gini(class_counts: np.ndarray) -> float:
    """Gini impurity of a weighted class-count vector.

    >>> gini(np.array([5.0, 5.0]))
    0.5
    >>> gini(np.array([10.0, 0.0]))
    0.0
    """
    total = class_counts.sum()
    if total <= 0:
        return 0.0
    p = class_counts / total
    return float(1.0 - (p * p).sum())


def weighted_impurity(
    branch_counts: Sequence[np.ndarray], criterion
) -> float:
    """Impurity of a split: branch impurities weighted by branch mass."""
    total = sum(float(c.sum()) for c in branch_counts)
    if total <= 0:
        return 0.0
    return sum(
        float(c.sum()) / total * criterion(c)
        for c in branch_counts
        if c.sum() > 0
    )


def information_gain(
    parent_counts: np.ndarray, branch_counts: Sequence[np.ndarray]
) -> float:
    """Entropy reduction achieved by a split (ID3's criterion)."""
    return entropy(parent_counts) - weighted_impurity(branch_counts, entropy)


def split_information(branch_counts: Sequence[np.ndarray]) -> float:
    """Entropy of the branch-size distribution itself (C4.5 denominator)."""
    sizes = np.array([float(c.sum()) for c in branch_counts])
    return entropy(sizes)


def gain_ratio(
    parent_counts: np.ndarray, branch_counts: Sequence[np.ndarray]
) -> float:
    """C4.5's gain ratio: information gain / split information.

    Returns 0.0 when split information vanishes (a one-branch split),
    which also makes such degenerate splits unattractive.
    """
    info = split_information(branch_counts)
    if info <= 0.0:
        return 0.0
    return information_gain(parent_counts, branch_counts) / info


def gini_gain(
    parent_counts: np.ndarray, branch_counts: Sequence[np.ndarray]
) -> float:
    """Gini-impurity reduction (CART's criterion)."""
    return gini(parent_counts) - weighted_impurity(branch_counts, gini)


__all__ = [
    "entropy",
    "gini",
    "weighted_impurity",
    "information_gain",
    "split_information",
    "gain_ratio",
    "gini_gain",
]
