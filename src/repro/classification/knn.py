"""k-nearest-neighbour classification.

A lazy learner: fit stores the training matrix, predict ranks Euclidean
(or Manhattan) distances.  Categorical attributes contribute a 0/1
mismatch term (the common heterogeneous-distance convention), so mixed
tables work without manual encoding.  Distances are computed blockwise
with numpy — no index structure, which is faithful to the classic
formulation and keeps memory bounded.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.base import Classifier, check_in_range
from ..core.columnar import table_matrix
from ..core.exceptions import ValidationError
from ..core.table import Attribute, Table

_METRICS = ("euclidean", "manhattan")
_WEIGHTS = ("uniform", "distance")

#: Distance-kernel backends.  ``"block"`` re-extracts dense matrices on
#: every call; ``"columnar"`` reads the memoized matrices from
#: :mod:`repro.core.columnar` and hoists the training-side squared
#: norms out of the per-block Euclidean expansion.  Distances — and so
#: predictions — are byte-for-byte identical.
DISTANCE_BACKENDS = ("block", "columnar")


class KNN(Classifier):
    """k-NN classifier over numeric + categorical tables.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours consulted (the classic "K").
    metric:
        ``"euclidean"`` or ``"manhattan"`` for the numeric part;
        categorical attributes always add 1 per mismatch.
    weights:
        ``"uniform"`` majority vote or ``"distance"`` (inverse-distance)
        weighted vote.
    block_size:
        Rows of the query matrix processed per distance block.
    backend:
        ``"block"`` (default) extracts dense matrices per call;
        ``"columnar"`` serves them from the table's memoized views
        (:mod:`repro.core.columnar`) when the schema matches training
        (falling back otherwise) and reuses the training squared norms
        across blocks.  Results are byte-for-byte identical.

    Notes
    -----
    Missing values are not supported; impute beforehand.  Numeric
    attributes should be on comparable scales (see
    :mod:`repro.preprocessing.scale`) or the largest-range attribute
    dominates — the standard caveat of Euclidean k-NN.

    Examples
    --------
    >>> from repro.datasets import iris
    >>> table = iris()
    >>> KNN(n_neighbors=5).fit(table, "species").score(table) > 0.9
    True
    """

    def __init__(
        self,
        n_neighbors: int = 5,
        metric: str = "euclidean",
        weights: str = "uniform",
        block_size: int = 1024,
        ctx=None,
        backend: str = "block",
    ):
        check_in_range("n_neighbors", n_neighbors, 1, None)
        if metric not in _METRICS:
            raise ValidationError(f"metric must be one of {_METRICS}, got {metric!r}")
        if weights not in _WEIGHTS:
            raise ValidationError(
                f"weights must be one of {_WEIGHTS}, got {weights!r}"
            )
        if backend not in DISTANCE_BACKENDS:
            raise ValidationError(
                f"backend must be one of {DISTANCE_BACKENDS}, "
                f"got {backend!r}"
            )
        self.backend = backend
        self.n_neighbors = int(n_neighbors)
        self.metric = metric
        self.weights = weights
        self.block_size = int(block_size)
        self._init_context(ctx)
        self._train_numeric: Optional[np.ndarray] = None
        self._train_sq_norms: Optional[np.ndarray] = None

    def _fit(self, features: Table, y: np.ndarray, target: Attribute) -> None:
        self._numeric_names = [
            a.name for a in features.attributes if a.is_numeric
        ]
        self._categorical_names = [
            a.name for a in features.attributes if a.is_categorical
        ]
        self._train_numeric = self._numeric_matrix(features)
        self._train_categorical = self._categorical_matrix(features)
        self._train_sq_norms = (
            (self._train_numeric**2).sum(axis=1)
            if self.backend == "columnar"
            else None
        )
        self._train_y = y.copy()
        self._n_classes = len(target.values)
        if self.n_neighbors > features.n_rows:
            raise ValidationError(
                f"n_neighbors={self.n_neighbors} exceeds the "
                f"{features.n_rows} training rows"
            )

    def _numeric_matrix(self, table: Table) -> np.ndarray:
        if not self._numeric_names:
            return np.empty((table.n_rows, 0))
        m = None
        if self.backend == "columnar":
            tm = table_matrix(table)
            if tm.numeric_names == tuple(self._numeric_names):
                m = tm.numeric
        if m is None:
            m = table.to_matrix(self._numeric_names)
        if np.isnan(m).any():
            raise ValidationError("KNN does not handle missing numeric values")
        return m

    def _categorical_matrix(self, table: Table) -> np.ndarray:
        if not self._categorical_names:
            return np.empty((table.n_rows, 0), dtype=np.int64)
        m = None
        if self.backend == "columnar":
            tm = table_matrix(table)
            if tm.categorical_names == tuple(self._categorical_names):
                m = tm.categorical
        if m is None:
            cols = [table.column(n) for n in self._categorical_names]
            m = np.column_stack(cols)
        if (m < 0).any():
            raise ValidationError("KNN does not handle missing categorical values")
        return m

    def _distances(self, q_num: np.ndarray, q_cat: np.ndarray) -> np.ndarray:
        t_num, t_cat = self._train_numeric, self._train_categorical
        if self.metric == "euclidean":
            t_sq = (
                self._train_sq_norms
                if self._train_sq_norms is not None
                else (t_num**2).sum(axis=1)
            )
            d = np.sqrt(
                np.maximum(
                    (q_num**2).sum(axis=1)[:, None]
                    - 2.0 * q_num @ t_num.T
                    + t_sq[None, :],
                    0.0,
                )
            )
        else:
            d = np.abs(q_num[:, None, :] - t_num[None, :, :]).sum(axis=2)
        if q_cat.shape[1]:
            d = d + (q_cat[:, None, :] != t_cat[None, :, :]).sum(axis=2)
        return d

    def _predict_proba(self, features: Table) -> np.ndarray:
        q_num = self._numeric_matrix(features)
        q_cat = self._categorical_matrix(features)
        n = features.n_rows
        proba = np.empty((n, self._n_classes))
        for start in range(0, n, self.block_size):
            stop = min(start + self.block_size, n)
            d = self._distances(q_num[start:stop], q_cat[start:stop])
            neighbour_idx = np.argpartition(d, self.n_neighbors - 1, axis=1)[
                :, : self.n_neighbors
            ]
            rows = np.arange(stop - start)[:, None]
            neighbour_d = d[rows, neighbour_idx]
            neighbour_y = self._train_y[neighbour_idx]
            if self.weights == "uniform":
                vote_w = np.ones_like(neighbour_d)
            else:
                vote_w = 1.0 / np.maximum(neighbour_d, 1e-12)
            block = np.zeros((stop - start, self._n_classes))
            for c in range(self._n_classes):
                block[:, c] = np.where(neighbour_y == c, vote_w, 0.0).sum(axis=1)
            block /= block.sum(axis=1, keepdims=True)
            proba[start:stop] = block
        return proba

    def _predict_codes(self, features: Table) -> np.ndarray:
        return self._predict_proba(features).argmax(axis=1)


__all__ = ["KNN", "DISTANCE_BACKENDS"]
