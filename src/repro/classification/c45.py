"""C4.5 decision-tree induction (Quinlan, 1993).

Improvements over ID3, all implemented here:

* **gain ratio** instead of raw information gain (counters the bias
  toward high-arity attributes);
* **continuous attributes** via binary threshold splits, with candidate
  thresholds at class-boundary midpoints;
* **missing values** — training rows with an unknown split value are sent
  down *every* branch with fractionally reduced weight, and the gain of a
  split is scaled by the fraction of known values; prediction blends the
  branches by training mass (probabilistic descent);
* **pessimistic error pruning** (see :mod:`repro.classification.pruning`)
  applied bottom-up after growth when ``prune=True``.
"""

from __future__ import annotations

import warnings
from typing import List, Optional

import numpy as np

from ..core.base import Classifier, check_in_range
from ..core.exceptions import ConvergenceWarning, ValidationError
from ..core.table import Attribute, Table
from ..runtime import Budget, BudgetExceeded
from ..runtime.context import ExecutionContext
from .criteria import entropy, gain_ratio, information_gain, split_information
from .pruning import pessimistic_prune
from .tree_model import (
    CategoricalSplit,
    Leaf,
    NumericSplit,
    TreeNode,
    predict_distributions,
    safe_threshold,
)

#: hard recursion ceiling applied even with ``max_depth=None`` — a tree
#: deeper than this is pathological, and Python's own recursion limit is
#: only a little further down.
_MAX_SAFE_DEPTH = 512


class C45(Classifier):
    """C4.5 classifier over mixed categorical/numeric attributes.

    Parameters
    ----------
    max_depth:
        Maximum split depth (``None`` = unlimited).
    min_samples_split:
        Minimum weighted row mass a node needs to attempt a split.
    min_gain:
        A split must achieve at least this information gain to be kept.
    prune:
        Apply pessimistic error pruning after growth.
    confidence:
        Confidence level for the pessimistic error estimate (Quinlan's
        default 0.25).
    budget:
        Deprecated alias for ``ctx=ExecutionContext(budget=...)``:
        optional :class:`~repro.runtime.Budget`, charged one node unit
        per attempted split and checked at every node.  On exhaustion
        the grower stops splitting, finalizes the remaining frontier as
        leaves, and sets ``truncated_ = True`` — the tree is complete
        and usable, just shallower than an unbudgeted fit.

    Examples
    --------
    >>> from repro.datasets import play_tennis
    >>> model = C45(prune=False).fit(play_tennis(), "play")
    >>> model.score(play_tennis())
    1.0
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: float = 2.0,
        min_gain: float = 1e-6,
        prune: bool = True,
        confidence: float = 0.25,
        budget: Optional[Budget] = None,
        ctx: Optional[ExecutionContext] = None,
    ):
        if max_depth is not None and max_depth < 1:
            raise ValidationError(f"max_depth must be >= 1, got {max_depth}")
        check_in_range("min_samples_split", min_samples_split, 1.0, None)
        check_in_range("confidence", confidence, 0.0, 0.5, low_inclusive=False)
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_gain = min_gain
        self.prune = prune
        self.confidence = confidence
        self._init_context(ctx, budget=budget)
        self.tree_: Optional[TreeNode] = None
        self.truncated_ = False
        self.truncation_reason_: Optional[str] = None

    def _fit(self, features: Table, y: np.ndarray, target: Attribute) -> None:
        if features.n_rows < 2:
            raise ValidationError(
                f"cannot grow a decision tree from {features.n_rows} "
                f"row(s); need at least 2"
            )
        self._features = features
        self._y = y
        self._n_classes = len(target.values)
        self.truncated_ = False
        self.truncation_reason_ = None
        indices = np.arange(features.n_rows)
        weights = np.ones(features.n_rows, dtype=np.float64)
        available = list(features.attribute_names)
        self.tree_ = self._build(indices, weights, available, depth=0)
        if self.prune:
            self.tree_ = pessimistic_prune(self.tree_, self.confidence)
        del self._features, self._y

    # ------------------------------------------------------------------
    # Recursive growth
    # ------------------------------------------------------------------
    def _counts(self, indices: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return np.bincount(
            self._y[indices], weights=weights, minlength=self._n_classes
        ).astype(np.float64)

    def _build(
        self,
        indices: np.ndarray,
        weights: np.ndarray,
        available: List[str],
        depth: int,
    ) -> TreeNode:
        counts = self._counts(indices, weights)
        total = counts.sum()
        if (
            total < self.min_samples_split
            or (counts > 1e-9).sum() <= 1
            or not available
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return Leaf(counts)
        if depth >= _MAX_SAFE_DEPTH:
            warnings.warn(
                f"C45 stopped splitting at safety depth {_MAX_SAFE_DEPTH}",
                ConvergenceWarning,
                stacklevel=2,
            )
            return Leaf(counts)
        if self.budget is not None:
            try:
                self.budget.charge_nodes(phase="c45-grow")
                self.budget.check(phase="c45-grow")
            except BudgetExceeded as exc:
                # Graceful degradation: this subtree (and, since the
                # budget stays exhausted, every remaining frontier node)
                # finalizes as a leaf.
                self.truncated_ = True
                self.truncation_reason_ = f"{type(exc).__name__}: {exc}"
                return Leaf(counts)

        best = self._best_split(indices, weights, available, counts)
        if best is None:
            return Leaf(counts)

        if best["kind"] == "categorical":
            name = best["attribute"]
            codes = self._features.column(name)[indices]
            known = codes >= 0
            known_mass = weights[known].sum()
            remaining = [a for a in available if a != name]
            children = {}
            for code in np.unique(codes[known]):
                member = codes == code
                branch_mass = weights[member].sum()
                child_idx = np.concatenate(
                    [indices[member], indices[~known]]
                )
                child_w = np.concatenate(
                    [
                        weights[member],
                        weights[~known] * (branch_mass / known_mass),
                    ]
                )
                children[int(code)] = self._build(
                    child_idx, child_w, remaining, depth + 1
                )
            return CategoricalSplit(
                self._features.attribute(name), children, counts
            )

        # Numeric split: attribute stays available deeper down the path.
        name = best["attribute"]
        threshold = best["threshold"]
        values = self._features.column(name)[indices]
        known = ~np.isnan(values)
        known_mass = weights[known].sum()
        left = known & (values <= threshold)
        right = known & (values > threshold)
        left_mass = weights[left].sum()
        right_mass = weights[right].sum()
        if left_mass <= 0 or right_mass <= 0:
            # A threshold that fails to separate the known values would
            # recreate this node verbatim in one child — stop here.
            return Leaf(counts)
        left_idx = np.concatenate([indices[left], indices[~known]])
        left_w = np.concatenate(
            [weights[left], weights[~known] * (left_mass / known_mass)]
        )
        right_idx = np.concatenate([indices[right], indices[~known]])
        right_w = np.concatenate(
            [weights[right], weights[~known] * (right_mass / known_mass)]
        )
        return NumericSplit(
            self._features.attribute(name),
            threshold,
            self._build(left_idx, left_w, available, depth + 1),
            self._build(right_idx, right_w, available, depth + 1),
            counts,
        )

    # ------------------------------------------------------------------
    # Split search
    # ------------------------------------------------------------------
    def _best_split(self, indices, weights, available, parent_counts):
        """Best attribute by gain ratio, among splits clearing min_gain.

        Quinlan's refinement — only consider attributes whose raw gain is
        at least the average positive gain — is applied to blunt the gain
        ratio's own bias toward unbalanced splits.
        """
        candidates = []
        for name in available:
            attr = self._features.attribute(name)
            if attr.is_categorical:
                split = self._eval_categorical(name, indices, weights, parent_counts)
            else:
                split = self._eval_numeric(name, indices, weights, parent_counts)
            if split is not None and split["gain"] >= self.min_gain:
                candidates.append(split)
        if not candidates:
            return None
        avg_gain = sum(c["gain"] for c in candidates) / len(candidates)
        eligible = [c for c in candidates if c["gain"] >= avg_gain - 1e-12]
        return max(eligible, key=lambda c: c["ratio"])

    def _eval_categorical(self, name, indices, weights, parent_counts):
        codes = self._features.column(name)[indices]
        known = codes >= 0
        if not known.any():
            return None
        known_fraction = weights[known].sum() / weights.sum()
        branch_counts = []
        for code in np.unique(codes[known]):
            member = known & (codes == code)
            branch_counts.append(
                np.bincount(
                    self._y[indices[member]],
                    weights=weights[member],
                    minlength=self._n_classes,
                )
            )
        if len(branch_counts) < 2:
            return None
        known_counts = np.sum(branch_counts, axis=0)
        gain = known_fraction * information_gain(known_counts, branch_counts)
        info = split_information(branch_counts)
        if info <= 0:
            return None
        return {
            "kind": "categorical",
            "attribute": name,
            "gain": gain,
            "ratio": gain / info,
        }

    def _eval_numeric(self, name, indices, weights, parent_counts):
        values = self._features.column(name)[indices]
        known = ~np.isnan(values)
        if not known.any():
            return None
        v = values[known]
        w = weights[known]
        y = self._y[indices[known]]
        order = np.argsort(v, kind="mergesort")
        v, w, y = v[order], w[order], y[order]
        known_fraction = w.sum() / weights.sum()
        distinct_boundary = np.nonzero(np.diff(v) > 0)[0]
        if distinct_boundary.size == 0:
            return None
        # Cumulative weighted class counts -> O(n) evaluation of every
        # candidate threshold (midpoints between distinct values).
        one_hot = np.zeros((len(y), self._n_classes))
        one_hot[np.arange(len(y)), y] = 1.0
        weighted = one_hot * w[:, None]
        prefix = np.cumsum(weighted, axis=0)
        total_counts = prefix[-1]
        parent_entropy = entropy(total_counts)
        total_mass = total_counts.sum()

        best_gain = -1.0
        best_threshold = None
        best_ratio = 0.0
        for boundary in distinct_boundary:
            left_counts = prefix[boundary]
            right_counts = total_counts - left_counts
            lm, rm = left_counts.sum(), right_counts.sum()
            if lm <= 0 or rm <= 0:
                continue
            child_entropy = (
                lm / total_mass * entropy(left_counts)
                + rm / total_mass * entropy(right_counts)
            )
            gain = parent_entropy - child_entropy
            if gain > best_gain:
                best_gain = gain
                best_threshold = safe_threshold(v[boundary], v[boundary + 1])
                info = split_information([left_counts, right_counts])
                best_ratio = gain / info if info > 0 else 0.0
        if best_threshold is None:
            return None
        return {
            "kind": "numeric",
            "attribute": name,
            "threshold": best_threshold,
            "gain": known_fraction * best_gain,
            "ratio": known_fraction * best_ratio,
        }

    # ------------------------------------------------------------------
    # Prediction and introspection
    # ------------------------------------------------------------------
    def _predict_codes(self, features: Table) -> np.ndarray:
        return predict_distributions(self.tree_, features).argmax(axis=1)

    def _predict_proba(self, features: Table) -> np.ndarray:
        return predict_distributions(self.tree_, features)

    def n_nodes(self) -> int:
        """Total node count of the fitted tree."""
        return self.tree_.n_nodes()

    def n_leaves(self) -> int:
        """Leaf count of the fitted tree."""
        return self.tree_.n_leaves()

    def depth(self) -> int:
        """Depth (number of splits on the longest path)."""
        return self.tree_.depth()


__all__ = ["C45"]
