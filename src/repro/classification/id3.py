"""ID3 decision-tree induction (Quinlan, 1986).

ID3 is the simplest member of the tree family: categorical attributes
only, multiway splits, node selection by information gain, no pruning.
It exists here both as a teaching implementation and as the weakest tree
baseline in the classifier benchmarks (E6).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.base import Classifier
from ..core.exceptions import ValidationError
from ..core.table import Attribute, Table
from .criteria import information_gain
from .tree_model import CategoricalSplit, Leaf, TreeNode, predict_distributions


class ID3(Classifier):
    """ID3 classifier over categorical attributes.

    Parameters
    ----------
    max_depth:
        Maximum number of splits on any root-to-leaf path (``None`` =
        unlimited).
    min_samples_split:
        Nodes with fewer rows become leaves.

    Attributes
    ----------
    tree_:
        Root :class:`TreeNode` after fitting.

    Examples
    --------
    >>> from repro.datasets import play_tennis
    >>> table = play_tennis()
    >>> model = ID3().fit(table, "play")
    >>> model.score(table)
    1.0
    """

    def __init__(self, max_depth: Optional[int] = None, min_samples_split: int = 2):
        if max_depth is not None and max_depth < 1:
            raise ValidationError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise ValidationError(
                f"min_samples_split must be >= 2, got {min_samples_split}"
            )
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.tree_: Optional[TreeNode] = None

    def _fit(self, features: Table, y: np.ndarray, target: Attribute) -> None:
        if features.n_rows < 2:
            raise ValidationError(
                f"cannot grow a decision tree from {features.n_rows} "
                f"row(s); need at least 2"
            )
        for attr in features.attributes:
            if not attr.is_categorical:
                raise ValidationError(
                    f"ID3 handles categorical attributes only; {attr.name!r} "
                    "is numeric (discretize it first or use C4.5/CART)"
                )
            if (features.column(attr.name) < 0).any():
                raise ValidationError(
                    f"ID3 does not handle missing values ({attr.name!r}); "
                    "use C4.5"
                )
        n_classes = len(target.values)
        indices = np.arange(features.n_rows)
        available = list(features.attribute_names)
        self._features = features
        self._y = y
        self._n_classes = n_classes
        self.tree_ = self._build(indices, available, depth=0)
        del self._features, self._y

    def _build(self, indices: np.ndarray, available, depth: int) -> TreeNode:
        y = self._y[indices]
        counts = np.bincount(y, minlength=self._n_classes).astype(np.float64)
        if (
            len(indices) < self.min_samples_split
            or (counts > 0).sum() <= 1
            or not available
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return Leaf(counts)

        best_gain = 0.0
        best_attr = None
        best_partition = None
        for name in available:
            codes = self._features.column(name)[indices]
            branch_counts = []
            partition = {}
            for code in np.unique(codes):
                member = indices[codes == code]
                partition[int(code)] = member
                branch_counts.append(
                    np.bincount(
                        self._y[member], minlength=self._n_classes
                    ).astype(np.float64)
                )
            if len(partition) < 2:
                continue
            gain = information_gain(counts, branch_counts)
            if gain > best_gain + 1e-12:
                best_gain = gain
                best_attr = name
                best_partition = partition
        if best_attr is None:
            return Leaf(counts)

        remaining = [a for a in available if a != best_attr]
        children = {
            code: self._build(member, remaining, depth + 1)
            for code, member in best_partition.items()
        }
        return CategoricalSplit(
            self._features.attribute(best_attr), children, counts
        )

    def _predict_codes(self, features: Table) -> np.ndarray:
        distributions = predict_distributions(self.tree_, features)
        return distributions.argmax(axis=1)

    def _predict_proba(self, features: Table) -> np.ndarray:
        return predict_distributions(self.tree_, features)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def n_nodes(self) -> int:
        """Total node count of the fitted tree."""
        return self.tree_.n_nodes()

    def n_leaves(self) -> int:
        """Leaf count of the fitted tree."""
        return self.tree_.n_leaves()

    def depth(self) -> int:
        """Depth (number of splits on the longest path)."""
        return self.tree_.depth()


__all__ = ["ID3"]
