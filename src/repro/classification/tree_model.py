"""Decision-tree node structures shared by ID3, C4.5, CART and SLIQ.

A fitted tree is a graph of three node kinds:

* :class:`Leaf` — a class distribution;
* :class:`CategoricalSplit` — one child per category code (multiway, the
  ID3/C4.5 style) with an explicit fallback for unseen/missing codes;
* :class:`NumericSplit` — binary threshold split (``<=`` goes left).

Prediction returns a class-distribution vector, computed recursively.
Rows with a missing split value are routed through *all* children and the
children's distributions are blended by the training mass that reached
them — C4.5's probabilistic descent, which the other builders inherit.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

import numpy as np

from ..core.table import Attribute, Table


class TreeNode:
    """Abstract node; concrete kinds implement distribution lookup."""

    #: weighted class counts of the training rows that reached this node
    class_counts: np.ndarray

    def distribution(self, row_values: Dict[str, object]) -> np.ndarray:
        raise NotImplementedError

    def n_nodes(self) -> int:
        raise NotImplementedError

    def n_leaves(self) -> int:
        raise NotImplementedError

    def depth(self) -> int:
        raise NotImplementedError

    def iter_nodes(self) -> Iterator["TreeNode"]:
        raise NotImplementedError

    @property
    def majority_class(self) -> int:
        return int(np.argmax(self.class_counts))

    @property
    def training_mass(self) -> float:
        return float(self.class_counts.sum())

    def training_errors(self) -> float:
        """Weighted count of training rows this node would misclassify."""
        return self.training_mass - float(self.class_counts.max())


class Leaf(TreeNode):
    """Terminal node carrying the class distribution of its region."""

    def __init__(self, class_counts: np.ndarray):
        self.class_counts = np.asarray(class_counts, dtype=np.float64)

    def distribution(self, row_values: Dict[str, object]) -> np.ndarray:
        total = self.class_counts.sum()
        if total <= 0:
            return np.full_like(self.class_counts, 1.0 / len(self.class_counts))
        return self.class_counts / total

    def n_nodes(self) -> int:
        return 1

    def n_leaves(self) -> int:
        return 1

    def depth(self) -> int:
        return 0

    def iter_nodes(self) -> Iterator[TreeNode]:
        yield self

    def __repr__(self) -> str:
        return f"Leaf(class={self.majority_class}, n={self.training_mass:.1f})"


class CategoricalSplit(TreeNode):
    """Multiway split on a categorical attribute (one child per code)."""

    def __init__(
        self,
        attribute: Attribute,
        children: Dict[int, TreeNode],
        class_counts: np.ndarray,
    ):
        self.attribute = attribute
        self.children = children
        self.class_counts = np.asarray(class_counts, dtype=np.float64)

    def distribution(self, row_values: Dict[str, object]) -> np.ndarray:
        code = row_values.get(self.attribute.name)
        if code is not None and code in self.children:
            return self.children[code].distribution(row_values)
        return self._blended(row_values)

    def _blended(self, row_values: Dict[str, object]) -> np.ndarray:
        """Probabilistic descent for missing/unseen categories."""
        total = sum(child.training_mass for child in self.children.values())
        if total <= 0:
            return Leaf(self.class_counts).distribution(row_values)
        blended = np.zeros_like(self.class_counts)
        for child in self.children.values():
            blended += (
                child.training_mass / total
            ) * child.distribution(row_values)
        return blended

    def n_nodes(self) -> int:
        return 1 + sum(c.n_nodes() for c in self.children.values())

    def n_leaves(self) -> int:
        return sum(c.n_leaves() for c in self.children.values())

    def depth(self) -> int:
        return 1 + max(c.depth() for c in self.children.values())

    def iter_nodes(self) -> Iterator[TreeNode]:
        yield self
        for child in self.children.values():
            yield from child.iter_nodes()

    def __repr__(self) -> str:
        return (
            f"CategoricalSplit({self.attribute.name!r}, "
            f"{len(self.children)} branches)"
        )


class NumericSplit(TreeNode):
    """Binary split on a numeric attribute: ``value <= threshold`` left."""

    def __init__(
        self,
        attribute: Attribute,
        threshold: float,
        left: TreeNode,
        right: TreeNode,
        class_counts: np.ndarray,
    ):
        self.attribute = attribute
        self.threshold = float(threshold)
        self.left = left
        self.right = right
        self.class_counts = np.asarray(class_counts, dtype=np.float64)

    def distribution(self, row_values: Dict[str, object]) -> np.ndarray:
        value = row_values.get(self.attribute.name)
        if value is None or (isinstance(value, float) and math.isnan(value)):
            total = self.left.training_mass + self.right.training_mass
            if total <= 0:
                return Leaf(self.class_counts).distribution(row_values)
            return (
                self.left.training_mass / total
            ) * self.left.distribution(row_values) + (
                self.right.training_mass / total
            ) * self.right.distribution(row_values)
        if value <= self.threshold:
            return self.left.distribution(row_values)
        return self.right.distribution(row_values)

    def n_nodes(self) -> int:
        return 1 + self.left.n_nodes() + self.right.n_nodes()

    def n_leaves(self) -> int:
        return self.left.n_leaves() + self.right.n_leaves()

    def depth(self) -> int:
        return 1 + max(self.left.depth(), self.right.depth())

    def iter_nodes(self) -> Iterator[TreeNode]:
        yield self
        yield from self.left.iter_nodes()
        yield from self.right.iter_nodes()

    def __repr__(self) -> str:
        return f"NumericSplit({self.attribute.name!r} <= {self.threshold:g})"


class BinaryCategoricalSplit(TreeNode):
    """CART-style binary split on a category subset (in-set goes left)."""

    def __init__(
        self,
        attribute: Attribute,
        left_codes: frozenset,
        left: TreeNode,
        right: TreeNode,
        class_counts: np.ndarray,
    ):
        self.attribute = attribute
        self.left_codes = frozenset(left_codes)
        self.left = left
        self.right = right
        self.class_counts = np.asarray(class_counts, dtype=np.float64)

    def distribution(self, row_values: Dict[str, object]) -> np.ndarray:
        code = row_values.get(self.attribute.name)
        if code is None:
            total = self.left.training_mass + self.right.training_mass
            if total <= 0:
                return Leaf(self.class_counts).distribution(row_values)
            return (
                self.left.training_mass / total
            ) * self.left.distribution(row_values) + (
                self.right.training_mass / total
            ) * self.right.distribution(row_values)
        if code in self.left_codes:
            return self.left.distribution(row_values)
        return self.right.distribution(row_values)

    def n_nodes(self) -> int:
        return 1 + self.left.n_nodes() + self.right.n_nodes()

    def n_leaves(self) -> int:
        return self.left.n_leaves() + self.right.n_leaves()

    def depth(self) -> int:
        return 1 + max(self.left.depth(), self.right.depth())

    def iter_nodes(self) -> Iterator[TreeNode]:
        yield self
        yield from self.left.iter_nodes()
        yield from self.right.iter_nodes()

    def __repr__(self) -> str:
        labels = sorted(self.left_codes)
        return f"BinaryCategoricalSplit({self.attribute.name!r} in {labels})"


# ----------------------------------------------------------------------
# Whole-table prediction and rendering helpers
# ----------------------------------------------------------------------
def safe_threshold(lo: float, hi: float) -> float:
    """Split threshold strictly separating two adjacent sorted values.

    The naive midpoint ``(lo + hi) / 2`` rounds up to ``hi`` when the two
    are adjacent floats, so a ``value <= threshold`` test sends *every*
    row left — a degenerate split that recurses forever in builders that
    re-partition by threshold.  Fall back to ``lo`` (which always
    separates, since ``lo < hi``) whenever the midpoint fails
    ``lo <= mid < hi``.

    >>> safe_threshold(1.0, 2.0)
    1.5
    >>> import math
    >>> hi = math.nextafter(1.0, 2.0)
    >>> safe_threshold(1.0, hi)
    1.0
    """
    mid = (lo + hi) / 2.0
    if not (lo <= mid < hi):
        return lo
    return mid


def predict_distributions(root: TreeNode, table: Table) -> np.ndarray:
    """Class-distribution matrix for every row of ``table``."""
    rows = _rows_as_dicts(table)
    n_classes = len(root.class_counts)
    out = np.empty((len(rows), n_classes), dtype=np.float64)
    for i, row in enumerate(rows):
        out[i] = root.distribution(row)
    return out


def _rows_as_dicts(table: Table) -> List[Dict[str, object]]:
    """Per-row attribute dictionaries in the form nodes expect.

    Numeric cells stay floats (NaN -> None); categorical cells become
    their integer codes (missing -> None).
    """
    columns = {}
    for attr in table.attributes:
        col = table.column(attr.name)
        if attr.is_numeric:
            columns[attr.name] = [
                None if math.isnan(v) else float(v) for v in col
            ]
        else:
            columns[attr.name] = [None if v < 0 else int(v) for v in col]
    names = list(columns)
    return [
        {name: columns[name][i] for name in names}
        for i in range(table.n_rows)
    ]


def render_tree(root: TreeNode, target: Attribute, indent: str = "") -> str:
    """Human-readable multi-line rendering of a fitted tree."""
    lines: List[str] = []
    _render(root, target, indent, lines)
    return "\n".join(lines)


def _render(node: TreeNode, target: Attribute, indent: str, lines: List[str]):
    if isinstance(node, Leaf):
        label = target.values[node.majority_class]
        lines.append(f"{indent}-> {label!r}  (n={node.training_mass:g})")
    elif isinstance(node, NumericSplit):
        lines.append(f"{indent}{node.attribute.name} <= {node.threshold:g}:")
        _render(node.left, target, indent + "  ", lines)
        lines.append(f"{indent}{node.attribute.name} > {node.threshold:g}:")
        _render(node.right, target, indent + "  ", lines)
    elif isinstance(node, BinaryCategoricalSplit):
        left_labels = [node.attribute.values[c] for c in sorted(node.left_codes)]
        lines.append(f"{indent}{node.attribute.name} in {left_labels}:")
        _render(node.left, target, indent + "  ", lines)
        lines.append(f"{indent}{node.attribute.name} not in {left_labels}:")
        _render(node.right, target, indent + "  ", lines)
    elif isinstance(node, CategoricalSplit):
        for code, child in sorted(node.children.items()):
            value = node.attribute.values[code]
            lines.append(f"{indent}{node.attribute.name} = {value!r}:")
            _render(child, target, indent + "  ", lines)


def extract_rules(
    root: TreeNode, target: Attribute
) -> List[Tuple[List[str], Hashable]]:
    """Flatten a tree into (conditions, predicted label) rules.

    One rule per leaf; conditions are human-readable strings.  This is
    the interpretability payoff decision trees are prized for.
    """
    rules: List[Tuple[List[str], Hashable]] = []
    _collect_rules(root, target, [], rules)
    return rules


def _collect_rules(node, target, conditions, rules):
    if isinstance(node, Leaf):
        rules.append((list(conditions), target.values[node.majority_class]))
        return
    if isinstance(node, NumericSplit):
        _collect_rules(
            node.left,
            target,
            conditions + [f"{node.attribute.name} <= {node.threshold:g}"],
            rules,
        )
        _collect_rules(
            node.right,
            target,
            conditions + [f"{node.attribute.name} > {node.threshold:g}"],
            rules,
        )
    elif isinstance(node, BinaryCategoricalSplit):
        left_labels = [node.attribute.values[c] for c in sorted(node.left_codes)]
        _collect_rules(
            node.left,
            target,
            conditions + [f"{node.attribute.name} in {left_labels}"],
            rules,
        )
        _collect_rules(
            node.right,
            target,
            conditions + [f"{node.attribute.name} not in {left_labels}"],
            rules,
        )
    elif isinstance(node, CategoricalSplit):
        for code, child in sorted(node.children.items()):
            value = node.attribute.values[code]
            _collect_rules(
                child,
                target,
                conditions + [f"{node.attribute.name} = {value!r}"],
                rules,
            )


__all__ = [
    "TreeNode",
    "Leaf",
    "CategoricalSplit",
    "NumericSplit",
    "BinaryCategoricalSplit",
    "safe_threshold",
    "predict_distributions",
    "render_tree",
    "extract_rules",
]
