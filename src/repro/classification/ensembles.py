"""Ensemble classifiers of the survey era: Bagging and AdaBoost.M1.

* **Bagging** (Breiman, 1994/96) — train each base classifier on a
  bootstrap resample and average the predicted class distributions.
  Variance reduction; helps unstable learners (deep trees) most.
* **AdaBoost.M1** (Freund & Schapire, 1995/97) — train base classifiers
  in sequence on reweighted data (implemented by weighted resampling,
  since the base protocol takes no instance weights), upweighting the
  rows the previous round misclassified; combine by
  ``log((1 - eps) / eps)`` weighted vote.  Bias reduction; the classic
  pairing is with shallow trees ("stumps").

Both wrap any zero-argument factory of :class:`~repro.core.base.Classifier`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..core.base import Classifier, check_in_range
from ..core.exceptions import ValidationError
from ..core.random import RandomState, check_random_state, spawn
from ..core.table import Attribute, Table


class Bagging(Classifier):
    """Bootstrap-aggregated classifier.

    Parameters
    ----------
    make_base:
        Zero-argument factory for base classifiers
        (e.g. ``lambda: CART()``).
    n_estimators:
        Ensemble size.
    random_state:
        Seed or generator for the bootstrap draws.

    Examples
    --------
    >>> from repro.classification import CART
    >>> from repro.datasets import agrawal
    >>> table = agrawal(400, function=1, random_state=0)
    >>> model = Bagging(lambda: CART(max_depth=4), 5, random_state=0)
    >>> model.fit(table, "group").score(table) > 0.85
    True
    """

    def __init__(
        self,
        make_base: Callable[[], Classifier],
        n_estimators: int = 10,
        random_state: RandomState = None,
    ):
        check_in_range("n_estimators", n_estimators, 1, None)
        self.make_base = make_base
        self.n_estimators = int(n_estimators)
        self.random_state = random_state
        self.estimators_: Optional[List[Classifier]] = None

    def _fit(self, features: Table, y: np.ndarray, target: Attribute) -> None:
        rng = check_random_state(self.random_state)
        n = features.n_rows
        # Rebuild a labelled table once; bootstraps take row subsets.
        table = _with_target(features, y, target)
        self.estimators_ = []
        for child in spawn(rng, self.n_estimators):
            indices = child.integers(0, n, size=n)
            # A bootstrap can miss a class entirely; retry a few times
            # rather than training a degenerate base model.
            for _ in range(8):
                if len(np.unique(y[indices])) == len(np.unique(y)):
                    break
                indices = child.integers(0, n, size=n)
            sample = table.take(indices)
            self.estimators_.append(
                self.make_base().fit(sample, target.name)
            )

    def _predict_proba(self, features: Table) -> np.ndarray:
        total = np.zeros((features.n_rows, len(self.target_.values)))
        for estimator in self.estimators_:
            total += estimator.predict_proba(features)
        return total / len(self.estimators_)

    def _predict_codes(self, features: Table) -> np.ndarray:
        return self._predict_proba(features).argmax(axis=1)


class AdaBoostM1(Classifier):
    """AdaBoost.M1 with weighted-resampling base training.

    Parameters
    ----------
    make_base:
        Factory for the weak learner; shallow trees are the classic
        choice (``lambda: CART(max_depth=1)`` is a decision stump).
    n_estimators:
        Maximum boosting rounds (stops early if a round's weighted
        error hits 0 or exceeds 1/2, per the M1 algorithm).
    random_state:
        Seed or generator for the resampling draws.

    Attributes
    ----------
    estimators_, alphas_:
        The fitted round models and their vote weights.

    Examples
    --------
    >>> from repro.classification import CART
    >>> from repro.datasets import agrawal
    >>> table = agrawal(400, function=2, random_state=0)
    >>> stumps = AdaBoostM1(lambda: CART(max_depth=1), 10, random_state=0)
    >>> deep = CART(max_depth=1)
    >>> stumps.fit(table, "group").score(table) > deep.fit(table, "group").score(table)
    True
    """

    def __init__(
        self,
        make_base: Callable[[], Classifier],
        n_estimators: int = 20,
        random_state: RandomState = None,
    ):
        check_in_range("n_estimators", n_estimators, 1, None)
        self.make_base = make_base
        self.n_estimators = int(n_estimators)
        self.random_state = random_state
        self.estimators_: Optional[List[Classifier]] = None
        self.alphas_: Optional[List[float]] = None

    def _fit(self, features: Table, y: np.ndarray, target: Attribute) -> None:
        rng = check_random_state(self.random_state)
        n = features.n_rows
        table = _with_target(features, y, target)
        weights = np.full(n, 1.0 / n)
        self.estimators_ = []
        self.alphas_ = []
        for child in spawn(rng, self.n_estimators):
            indices = child.choice(n, size=n, p=weights)
            sample = table.take(indices)
            if len(np.unique(y[indices])) < 2:
                continue  # degenerate draw; try the next round
            model = self.make_base().fit(sample, target.name)
            predictions = np.asarray(
                [target.values.index(p) for p in model.predict(features)]
            )
            wrong = predictions != y
            error = float(weights[wrong].sum())
            if error >= 0.5:
                # Weak-learning assumption violated; M1 stops here (keep
                # whatever rounds we already have).
                break
            self.estimators_.append(model)
            if error <= 1e-12:
                self.alphas_.append(25.0)  # effectively a unanimous vote
                break
            beta = error / (1.0 - error)
            self.alphas_.append(float(np.log(1.0 / beta)))
            weights[~wrong] *= beta
            weights /= weights.sum()
        if not self.estimators_:
            # Every round failed the weak-learning test: fall back to a
            # single unweighted base model so predict still works.
            self.estimators_ = [self.make_base().fit(table, target.name)]
            self.alphas_ = [1.0]

    def _predict_codes(self, features: Table) -> np.ndarray:
        votes = np.zeros((features.n_rows, len(self.target_.values)))
        value_index = {v: i for i, v in enumerate(self.target_.values)}
        for alpha, estimator in zip(self.alphas_, self.estimators_):
            predictions = estimator.predict(features)
            for row, label in enumerate(predictions):
                votes[row, value_index[label]] += alpha
        return votes.argmax(axis=1)

    def _predict_proba(self, features: Table) -> np.ndarray:
        votes = np.zeros((features.n_rows, len(self.target_.values)))
        value_index = {v: i for i, v in enumerate(self.target_.values)}
        for alpha, estimator in zip(self.alphas_, self.estimators_):
            predictions = estimator.predict(features)
            for row, label in enumerate(predictions):
                votes[row, value_index[label]] += alpha
        totals = votes.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return votes / totals


def _with_target(features: Table, y: np.ndarray, target: Attribute) -> Table:
    """Reattach the target column to a feature table."""
    attributes = features.attributes + (target,)
    columns = {a.name: features.column(a.name) for a in features.attributes}
    columns[target.name] = y
    return Table(attributes, columns)


__all__ = ["Bagging", "AdaBoostM1"]
