"""CART decision trees (Breiman, Friedman, Olshen & Stone, 1984).

Distinctives implemented here:

* strictly **binary** splits — numeric thresholds, and binary *subset*
  splits for categorical attributes (exhaustive subset search for small
  arities, the class-proportion ordering heuristic beyond that);
* **Gini impurity** as the default criterion (entropy selectable);
* **cost-complexity pruning** via the ``ccp_alpha`` parameter, using the
  weakest-link machinery in :mod:`repro.classification.pruning`.

Missing values route to the heavier branch, during both growth and
prediction (surrogate splits are out of scope; the substitution is
documented in DESIGN.md).
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional

import numpy as np

from ..core.base import Classifier, check_in_range
from ..core.exceptions import ValidationError
from ..core.table import Attribute, Table
from ..runtime import Budget, BudgetExceeded
from ..runtime.context import ExecutionContext
from .criteria import entropy, gini
from .pruning import prune_to_alpha
from .tree_model import (
    BinaryCategoricalSplit,
    Leaf,
    NumericSplit,
    TreeNode,
    predict_distributions,
    safe_threshold,
)

_CRITERIA = {"gini": gini, "entropy": entropy}


class CART(Classifier):
    """CART classifier with binary splits and optional CCP pruning.

    Parameters
    ----------
    criterion:
        ``"gini"`` (default) or ``"entropy"``.
    max_depth, min_samples_split, min_samples_leaf:
        The usual growth limits.
    min_impurity_decrease:
        A split must reduce the (mass-weighted) impurity by at least this.
    ccp_alpha:
        Cost-complexity pruning strength; 0 disables pruning.
    max_exhaustive_categories:
        Categorical attributes with at most this many observed categories
        get an exhaustive binary-subset search; beyond it, categories are
        ordered by the node's majority-class proportion and only the
        resulting linear splits are scanned (exact for binary targets).
    budget:
        Deprecated alias for ``ctx=ExecutionContext(budget=...)``:
        optional :class:`~repro.runtime.Budget`, charged one node unit
        per attempted split.  On exhaustion growth stops, the remaining
        frontier finalizes as leaves, and ``truncated_`` is set.

    Examples
    --------
    >>> from repro.datasets import play_tennis
    >>> model = CART().fit(play_tennis(), "play")
    >>> model.score(play_tennis())
    1.0
    """

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        ccp_alpha: float = 0.0,
        max_exhaustive_categories: int = 8,
        budget: Optional[Budget] = None,
        ctx: Optional[ExecutionContext] = None,
    ):
        if criterion not in _CRITERIA:
            raise ValidationError(
                f"criterion must be one of {sorted(_CRITERIA)}, got {criterion!r}"
            )
        if max_depth is not None and max_depth < 1:
            raise ValidationError(f"max_depth must be >= 1, got {max_depth}")
        check_in_range("min_samples_split", min_samples_split, 2, None)
        check_in_range("min_samples_leaf", min_samples_leaf, 1, None)
        check_in_range("min_impurity_decrease", min_impurity_decrease, 0.0, None)
        check_in_range("ccp_alpha", ccp_alpha, 0.0, None)
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.ccp_alpha = ccp_alpha
        self.max_exhaustive_categories = max_exhaustive_categories
        self._init_context(ctx, budget=budget)
        self.tree_: Optional[TreeNode] = None
        self.truncated_ = False
        self.truncation_reason_: Optional[str] = None

    def _fit(self, features: Table, y: np.ndarray, target: Attribute) -> None:
        if features.n_rows < 2:
            raise ValidationError(
                f"cannot grow a decision tree from {features.n_rows} "
                f"row(s); need at least 2"
            )
        self._features = features
        self._y = y
        self._n_classes = len(target.values)
        self._impurity = _CRITERIA[self.criterion]
        self.truncated_ = False
        self.truncation_reason_ = None
        indices = np.arange(features.n_rows)
        self.tree_ = self._build(indices, depth=0)
        if self.ccp_alpha > 0.0:
            self.tree_ = prune_to_alpha(
                self.tree_, self.ccp_alpha, float(features.n_rows)
            )
        del self._features, self._y

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def _build(self, indices: np.ndarray, depth: int) -> TreeNode:
        counts = np.bincount(self._y[indices], minlength=self._n_classes).astype(
            np.float64
        )
        if (
            len(indices) < self.min_samples_split
            or (counts > 0).sum() <= 1
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return Leaf(counts)
        if self.budget is not None:
            try:
                self.budget.charge_nodes(phase="cart-grow")
                self.budget.check(phase="cart-grow")
            except BudgetExceeded as exc:
                self.truncated_ = True
                self.truncation_reason_ = f"{type(exc).__name__}: {exc}"
                return Leaf(counts)

        best = self._best_split(indices, counts)
        if best is None:
            return Leaf(counts)
        left_idx, right_idx = best["left"], best["right"]
        if best["kind"] == "numeric":
            return NumericSplit(
                self._features.attribute(best["attribute"]),
                best["threshold"],
                self._build(left_idx, depth + 1),
                self._build(right_idx, depth + 1),
                counts,
            )
        return BinaryCategoricalSplit(
            self._features.attribute(best["attribute"]),
            best["left_codes"],
            self._build(left_idx, depth + 1),
            self._build(right_idx, depth + 1),
            counts,
        )

    def _best_split(self, indices: np.ndarray, counts: np.ndarray):
        parent_impurity = self._impurity(counts)
        n_node = len(indices)
        best = None
        best_decrease = self.min_impurity_decrease
        for attr in self._features.attributes:
            if attr.is_numeric:
                split = self._numeric_split(attr, indices, parent_impurity)
            else:
                split = self._categorical_split(attr, indices, parent_impurity)
            if split is not None and split["decrease"] > best_decrease + 1e-12:
                best_decrease = split["decrease"]
                best = split
        return best

    def _numeric_split(self, attr, indices, parent_impurity):
        values = self._features.column(attr.name)[indices]
        known_mask = ~np.isnan(values)
        known = indices[known_mask]
        if len(known) < 2 * self.min_samples_leaf:
            return None
        v = values[known_mask]
        y = self._y[known]
        order = np.argsort(v, kind="mergesort")
        v, y = v[order], y[order]
        known_sorted = known[order]
        boundaries = np.nonzero(np.diff(v) > 0)[0]
        if boundaries.size == 0:
            return None
        one_hot = np.zeros((len(y), self._n_classes))
        one_hot[np.arange(len(y)), y] = 1.0
        prefix = np.cumsum(one_hot, axis=0)
        total = prefix[-1]
        n_known = len(y)

        best_decrease = -1.0
        best_boundary = None
        for b in boundaries:
            nl = b + 1
            nr = n_known - nl
            if nl < self.min_samples_leaf or nr < self.min_samples_leaf:
                continue
            left_counts = prefix[b]
            right_counts = total - left_counts
            child = (
                nl / n_known * self._impurity(left_counts)
                + nr / n_known * self._impurity(right_counts)
            )
            decrease = (n_known / len(indices)) * (
                self._impurity(total) - child
            )
            if decrease > best_decrease:
                best_decrease = decrease
                best_boundary = b
        if best_boundary is None:
            return None
        # Partitioning is by boundary index, so growth cannot degenerate;
        # the safe threshold keeps *prediction* consistent with the
        # training partition when the midpoint rounds up to the higher
        # value.
        threshold = safe_threshold(v[best_boundary], v[best_boundary + 1])
        left_idx = known_sorted[: best_boundary + 1]
        right_idx = known_sorted[best_boundary + 1:]
        # Missing values follow the heavier branch.
        missing = indices[~known_mask]
        if missing.size:
            if left_idx.size >= right_idx.size:
                left_idx = np.concatenate([left_idx, missing])
            else:
                right_idx = np.concatenate([right_idx, missing])
        return {
            "kind": "numeric",
            "attribute": attr.name,
            "threshold": threshold,
            "decrease": best_decrease,
            "left": left_idx,
            "right": right_idx,
        }

    def _categorical_split(self, attr, indices, parent_impurity):
        codes = self._features.column(attr.name)[indices]
        known_mask = codes >= 0
        known = indices[known_mask]
        if len(known) < 2 * self.min_samples_leaf:
            return None
        observed = np.unique(codes[known_mask])
        if observed.size < 2:
            return None
        per_code_counts = {
            int(code): np.bincount(
                self._y[indices[known_mask & (codes == code)]],
                minlength=self._n_classes,
            ).astype(np.float64)
            for code in observed
        }
        candidates = self._subset_candidates(observed, per_code_counts)
        total = np.sum(list(per_code_counts.values()), axis=0)
        n_known = total.sum()

        best = None
        best_decrease = -1.0
        for left_codes in candidates:
            left_counts = np.sum(
                [per_code_counts[c] for c in left_codes], axis=0
            )
            right_counts = total - left_counts
            nl, nr = left_counts.sum(), right_counts.sum()
            if nl < self.min_samples_leaf or nr < self.min_samples_leaf:
                continue
            child = (
                nl / n_known * self._impurity(left_counts)
                + nr / n_known * self._impurity(right_counts)
            )
            decrease = (n_known / len(indices)) * (
                self._impurity(total) - child
            )
            if decrease > best_decrease:
                best_decrease = decrease
                best = frozenset(left_codes)
        if best is None:
            return None
        in_left = np.isin(codes, list(best)) & known_mask
        left_idx = indices[in_left]
        right_idx = indices[known_mask & ~in_left]
        missing = indices[~known_mask]
        if missing.size:
            if left_idx.size >= right_idx.size:
                left_idx = np.concatenate([left_idx, missing])
            else:
                right_idx = np.concatenate([right_idx, missing])
        return {
            "kind": "categorical",
            "attribute": attr.name,
            "left_codes": best,
            "decrease": best_decrease,
            "left": left_idx,
            "right": right_idx,
        }

    def _subset_candidates(self, observed, per_code_counts) -> List[tuple]:
        """Binary-partition candidates over the observed category codes."""
        observed = [int(c) for c in observed]
        if len(observed) <= self.max_exhaustive_categories:
            out = []
            for size in range(1, len(observed) // 2 + 1):
                for subset in combinations(observed, size):
                    # Avoid enumerating complements twice when the subset
                    # is exactly half the categories.
                    if (
                        2 * size == len(observed)
                        and observed[0] not in subset
                    ):
                        continue
                    out.append(subset)
            return out
        # Breiman ordering: sort categories by the proportion of the
        # globally most frequent class and scan linear prefixes (exact
        # for two-class problems, a strong heuristic otherwise).
        totals = np.sum(list(per_code_counts.values()), axis=0)
        pivot_class = int(np.argmax(totals))
        ordered = sorted(
            observed,
            key=lambda c: (
                per_code_counts[c][pivot_class] / max(per_code_counts[c].sum(), 1e-12)
            ),
        )
        return [tuple(ordered[: i + 1]) for i in range(len(ordered) - 1)]

    # ------------------------------------------------------------------
    # Prediction and introspection
    # ------------------------------------------------------------------
    def _predict_codes(self, features: Table) -> np.ndarray:
        return predict_distributions(self.tree_, features).argmax(axis=1)

    def _predict_proba(self, features: Table) -> np.ndarray:
        return predict_distributions(self.tree_, features)

    def n_nodes(self) -> int:
        """Total node count of the fitted tree."""
        return self.tree_.n_nodes()

    def n_leaves(self) -> int:
        """Leaf count of the fitted tree."""
        return self.tree_.n_leaves()

    def depth(self) -> int:
        """Depth (number of splits on the longest path)."""
        return self.tree_.depth()


__all__ = ["CART"]
