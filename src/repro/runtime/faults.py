"""Deterministic fault injection for budget checkpoints.

The ``tests/runtime`` suite needs to prove that every guarded loop
actually reaches a budget checkpoint — without relying on wall-clock
races or pathological inputs.  The pieces here make that deterministic:

* :class:`VirtualClock` — an injectable time source (``Budget(clock=...)``)
  that only moves when told to, so deadline tests never sleep;
* :class:`SlowPass` — a fault that advances a virtual clock on every
  checkpoint, simulating a slow pass until the deadline fires;
* :class:`TriggerAfter` — a fault that raises on the N-th checkpoint,
  proving the guarded loop polls its budget at all.

Faults are attached with :meth:`Budget.install_fault` and run at the
start of every full :meth:`Budget.check`.
"""

from __future__ import annotations

import errno as _errno
import os
import signal as _signal
import time
from typing import Callable, List, Optional, Tuple, Union

from ..core.base import check_in_range
from ..core.exceptions import ReproError
from ..core.random import RandomState, check_random_state
from .budget import Budget, IterationBudgetExceeded, TimeBudgetExceeded


class TransientFault(ReproError, RuntimeError):
    """A failure worth retrying: storage hiccups, flaky I/O, races.

    Deliberately *not* a :class:`~repro.runtime.budget.BudgetExceeded`:
    budget exhaustion is a deterministic property of the run and must
    not be retried, whereas a transient fault is expected to clear on
    its own — :class:`~repro.runtime.retry.RetryPolicy` retries exactly
    this type by default.
    """


class Fault:
    """Base class: ``on_check`` runs at every full budget checkpoint."""

    def on_check(self, budget: Budget) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class InjectedFault(IterationBudgetExceeded):
    """Raised by :class:`TriggerAfter` when no custom factory is given.

    Subclasses :class:`IterationBudgetExceeded` so production code paths
    treat an injected failure exactly like real budget exhaustion.
    """


class TriggerAfter(Fault):
    """Raise deterministically on the ``n_checks``-th budget checkpoint.

    Parameters
    ----------
    n_checks:
        Which full check fires the fault (1 = the very first).
    exc_factory:
        Optional zero-argument callable building the exception to raise;
        defaults to :class:`InjectedFault`.

    Examples
    --------
    >>> budget = Budget().install_fault(TriggerAfter(2))
    >>> budget.check()
    >>> budget.check()
    Traceback (most recent call last):
        ...
    repro.runtime.faults.InjectedFault: injected fault at check 2
    """

    def __init__(
        self,
        n_checks: int,
        exc_factory: Optional[Callable[[], BaseException]] = None,
    ):
        check_in_range("n_checks", n_checks, 1, None)
        self.n_checks = n_checks
        self.exc_factory = exc_factory
        self.fired = False

    def on_check(self, budget: Budget) -> None:
        if budget.n_checks >= self.n_checks and not self.fired:
            self.fired = True
            if self.exc_factory is not None:
                raise self.exc_factory()
            raise InjectedFault(
                f"injected fault at check {budget.n_checks}",
                resource="expansions",
                limit=self.n_checks,
                used=budget.n_checks,
            )


class SlowPass(Fault):
    """Advance a :class:`VirtualClock` on every checkpoint.

    Attach to a budget whose ``clock`` is the same virtual clock and
    every check costs ``delay`` simulated seconds — a deadline of
    ``time_limit`` then fires after ``time_limit / delay`` checks with
    zero real sleeping, raising :class:`TimeBudgetExceeded` from the
    budget's own deadline logic.
    """

    def __init__(self, clock: "VirtualClock", delay: float):
        check_in_range("delay", delay, 0.0, None)
        self.clock = clock
        self.delay = delay

    def on_check(self, budget: Budget) -> None:
        self.clock.advance(self.delay)


class FlakyFault(Fault):
    """Raise :class:`TransientFault` on the next ``n_failures`` checks.

    Models an environment that fails transiently a few times and then
    recovers: each raise consumes one failure, so a run wrapped in a
    :class:`~repro.runtime.retry.RetryPolicy` fails on its first
    ``n_failures`` attempts and succeeds on the next one.
    """

    def __init__(self, n_failures: int):
        check_in_range("n_failures", n_failures, 0, None)
        self.remaining = int(n_failures)

    def on_check(self, budget: Budget) -> None:
        if self.remaining > 0:
            self.remaining -= 1
            raise TransientFault(
                f"injected transient fault ({self.remaining} remaining)"
            )


class ChaosMonkey:
    """SIGKILL a supervised child process at seeded random points mid-run.

    The cooperative faults above prove that guarded loops poll their
    budgets; the monkey proves the *process-level* story — that a child
    killed by the OS (OOM killer, preempting scheduler, operator
    ``kill -9``) resumes from its newest checkpoint and still produces
    byte-identical results.  It is wired into
    :class:`~repro.runtime.supervisor.Supervisor` via the ``monkey=``
    parameter and stalks each attempt's child from a watcher thread.

    Two seeded trigger modes:

    * **checkpoint-triggered** (the default, used when the supervisor
      manages a checkpoint directory): the strike fires after the child
      persists ``n`` *new* snapshots this attempt, with ``n`` drawn from
      ``after_checkpoints``.  Because every trigger requires at least
      one newly persisted boundary, each doomed attempt makes forward
      progress — a kill storm of any length terminates.
    * **delay-triggered** (fallback when there is no checkpoint store to
      watch): the strike fires after a delay drawn from ``delay_range``
      seconds.

    Parameters
    ----------
    kills:
        Total strikes the monkey will perform across all attempts; once
        exhausted it goes dormant and the run completes undisturbed.
    after_checkpoints:
        Inclusive ``(lo, hi)`` range for the checkpoint-count trigger.
    delay_range:
        ``(lo, hi)`` seconds for the delay trigger.
    random_state:
        Seed for the trigger stream — a given seed produces one
        deterministic schedule of trigger points.
    poll_interval:
        Seconds between checks of the child / checkpoint directory.
    """

    def __init__(
        self,
        kills: int = 1,
        after_checkpoints: Tuple[int, int] = (1, 2),
        delay_range: Tuple[float, float] = (0.005, 0.05),
        random_state: RandomState = 0,
        poll_interval: float = 0.002,
    ):
        check_in_range("kills", kills, 0, None)
        lo, hi = after_checkpoints
        check_in_range("after_checkpoints[0]", lo, 1, None)
        check_in_range("after_checkpoints[1]", hi, lo, None)
        dlo, dhi = delay_range
        check_in_range("delay_range[0]", dlo, 0.0, None)
        check_in_range("delay_range[1]", dhi, dlo, None)
        check_in_range("poll_interval", poll_interval, 0.0, None,
                       low_inclusive=False)
        self.kills = int(kills)
        self.after_checkpoints = (int(lo), int(hi))
        self.delay_range = (float(dlo), float(dhi))
        self.poll_interval = float(poll_interval)
        self._rng = check_random_state(random_state)
        #: strike log: one dict per successful SIGKILL.
        self.strikes: List[dict] = []

    @property
    def remaining(self) -> int:
        """Strikes the monkey may still perform."""
        return self.kills - len(self.strikes)

    def stalk(self, process, store=None) -> None:
        """Watch one attempt's ``process`` and maybe SIGKILL it.

        Blocking — the supervisor runs it in a daemon thread per
        attempt.  Returns when the strike lands, the child exits on its
        own, or the monkey is dormant.  ``process`` needs ``pid`` and
        ``is_alive()`` (a :class:`multiprocessing.Process` fits);
        ``store`` is the :class:`~repro.runtime.checkpoint.CheckpointStore`
        to watch for the checkpoint trigger.
        """
        if self.remaining <= 0:
            return
        lo, hi = self.after_checkpoints
        dlo, dhi = self.delay_range
        if store is not None:
            threshold = int(self._rng.integers(lo, hi + 1))
            baseline = store.latest_seq() or 0
            while process.is_alive():
                newest = store.latest_seq() or 0
                if newest >= baseline + threshold:
                    self._strike(process, trigger={
                        "mode": "checkpoint",
                        "threshold": threshold,
                        "snapshot_seq": newest,
                    })
                    return
                time.sleep(self.poll_interval)
        else:
            delay = dlo + (dhi - dlo) * float(self._rng.random())
            deadline = time.monotonic() + delay
            while process.is_alive():
                if time.monotonic() >= deadline:
                    self._strike(process, trigger={
                        "mode": "delay",
                        "delay": delay,
                    })
                    return
                time.sleep(self.poll_interval)

    def _strike(self, process, trigger: dict) -> None:
        """Deliver SIGKILL; only a landed kill consumes an allowance."""
        pid = process.pid
        if pid is None or not process.is_alive():
            return
        try:
            os.kill(pid, _signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            return
        self.strikes.append({"pid": pid, **trigger})


#: disk-protocol stages a :class:`DiskGremlin` can break: the ``op``
#: strings :func:`repro.runtime.fsio.atomic_write_bytes` reports, plus
#: the ``"append"`` stage of :func:`repro.runtime.fsio.append_bytes`
#: (event-log appends).
DISK_OPS = ("write", "fsync", "replace", "fsync-dir", "append")


class DiskGremlin:
    """Inject disk faults into the atomic-write seam (:mod:`..fsio`).

    The sibling of :class:`ChaosMonkey`: the monkey kills processes,
    the gremlin breaks the *disk* under them — ``ENOSPC`` on a full
    store, ``EIO`` from a dying device, an fsync the hardware lies
    about, a rename a power cut tears in half.  Install it process-wide
    with :func:`repro.runtime.fsio.install_injector` (or the
    ``fsio.injected(...)`` context manager); forked supervised children
    inherit the installation, so one gremlin covers every storage plane
    — job-store records, checkpoint snapshots, transport payloads.

    The trigger is deterministic and seedable: the first ``after``
    matching operations pass through untouched, then the next ``burst``
    matching operations fail, then the disk "heals" and everything
    passes again — the classic shape of a store filling up and an
    operator clearing space.

    Parameters
    ----------
    op:
        Which protocol stage to break: ``"write"``, ``"fsync"``,
        ``"replace"``, ``"fsync-dir"``, or ``"append"`` (event-log
        appends).
    errno_code:
        ``errno`` of the injected :class:`OSError`;
        ``errno.ENOSPC`` by default, ``errno.EIO`` for device faults.
    after:
        Matching operations let through before the first fault — an
        int, or an inclusive ``(lo, hi)`` range drawn once from
        ``random_state`` (the seeded mid-job burst the CI smoke uses).
    burst:
        Consecutive matching operations that fail once triggered;
        ``None`` never heals (a permanently full disk).
    match:
        Substring the *path* must contain for the gremlin to care
        (e.g. ``"result.json"`` to target only the store's result
        plane); ``None`` matches everything.
    torn:
        Simulate a power cut at the rename: the injected error is
        marked so the seam leaves the half-written temp file on disk
        for the recovery sweeps to find, exactly like a real crash.
        Only meaningful with ``op="replace"``.
    random_state:
        Seed for the ``after`` range draw.

    Examples
    --------
    >>> import errno
    >>> gremlin = DiskGremlin(op="write", after=0, burst=2)
    >>> try:
    ...     gremlin.on_op("write", "/store/job/.job.json.tmp")
    ... except OSError as exc:
    ...     exc.errno == errno.ENOSPC
    True
    """

    def __init__(
        self,
        op: str = "write",
        errno_code: int = _errno.ENOSPC,
        after: Union[int, Tuple[int, int]] = 0,
        burst: Optional[int] = 1,
        match: Optional[str] = None,
        torn: bool = False,
        random_state: RandomState = 0,
    ):
        if op not in DISK_OPS:
            raise ReproError(
                f"unknown disk op {op!r}; choices: {DISK_OPS}"
            )
        if isinstance(after, tuple):
            lo, hi = after
            check_in_range("after[0]", lo, 0, None)
            check_in_range("after[1]", hi, lo, None)
            rng = check_random_state(random_state)
            self.after = int(rng.integers(int(lo), int(hi) + 1))
        else:
            check_in_range("after", after, 0, None)
            self.after = int(after)
        if burst is not None:
            check_in_range("burst", burst, 1, None)
        self.op = op
        self.errno_code = int(errno_code)
        self.burst = None if burst is None else int(burst)
        self.match = match
        self.torn = bool(torn)
        self._seen = 0
        #: log of the faults actually injected, oldest first.
        self.injected: List[dict] = []

    def on_op(self, op: str, path: str) -> None:
        """The :mod:`..fsio` hook: raise :class:`OSError` per schedule."""
        if op != self.op:
            return
        if self.match is not None and self.match not in path:
            return
        self._seen += 1
        if self._seen <= self.after:
            return
        if self.burst is not None and len(self.injected) >= self.burst:
            return  # the disk has healed
        self.injected.append({"op": op, "path": path,
                              "errno": self.errno_code})
        message = (
            f"injected disk fault at {op} #{self._seen} "
            f"({os.strerror(self.errno_code)})"
        )
        exc = OSError(self.errno_code, message, path)
        if self.torn:
            exc.repro_leave_tmp = True
        raise exc


class PoolGremlin:
    """Crash a persistent pool worker on its N-th task, from the inside.

    :class:`ChaosMonkey` SIGKILLs supervised children from the outside;
    the pool's failure surface is different — a long-lived worker dying
    *mid-task* must surface as :class:`~repro.runtime.parallel.WorkerCrashed`
    with the right classification and be replaced by a fresh worker on
    the next dispatch.  The gremlin is installed process-wide **before**
    the pool forks its workers, so every worker inherits it and counts
    the tasks it executes; the worker whose counter hits ``kill_at_task``
    dies via ``os._exit`` / raw signal without writing a result, exactly
    like an OOM kill between recv and send.

    Parameters
    ----------
    kill_at_task:
        1-based index, per worker process, of the task that dies.
    signum:
        ``None`` exits with :attr:`exit_code`; a signal number (e.g.
        ``signal.SIGKILL``) raises it against the worker itself.
    exit_code:
        Exit status used when ``signum`` is ``None``.
    """

    def __init__(self, kill_at_task: int = 1,
                 signum: Optional[int] = None, exit_code: int = 7):
        check_in_range("kill_at_task", kill_at_task, 1, None)
        self.kill_at_task = int(kill_at_task)
        self.signum = signum
        self.exit_code = int(exit_code)
        self._tasks_seen = 0

    def on_task(self) -> None:
        """Called by a worker as it picks up one task; maybe dies here."""
        self._tasks_seen += 1
        if self._tasks_seen != self.kill_at_task:
            return
        if self.signum is not None:
            os.kill(os.getpid(), self.signum)
            time.sleep(5.0)  # pragma: no cover - waiting for the signal
        os._exit(self.exit_code)


#: the process-wide pool gremlin, inherited by forked pool workers.
_POOL_GREMLIN: Optional[PoolGremlin] = None


def install_pool_gremlin(gremlin: PoolGremlin) -> PoolGremlin:
    """Install ``gremlin`` process-wide; fork workers *after* this."""
    global _POOL_GREMLIN
    _POOL_GREMLIN = gremlin
    return gremlin


def clear_pool_gremlin() -> None:
    """Remove the installed pool gremlin (parent-side cleanup)."""
    global _POOL_GREMLIN
    _POOL_GREMLIN = None


def active_pool_gremlin() -> Optional[PoolGremlin]:
    """The installed pool gremlin, if any (worker-side hook)."""
    return _POOL_GREMLIN


class VirtualClock:
    """Deterministic manual time source for deadline tests.

    Callable (returns the current simulated time) so it plugs straight
    into ``Budget(clock=...)``.

    >>> clock = VirtualClock()
    >>> clock()
    0.0
    >>> clock.advance(1.5)
    >>> clock()
    1.5
    """

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        check_in_range("dt", dt, 0.0, None)
        self.now += dt


__all__ = [
    "ChaosMonkey",
    "DISK_OPS",
    "DiskGremlin",
    "Fault",
    "FlakyFault",
    "InjectedFault",
    "PoolGremlin",
    "TransientFault",
    "TriggerAfter",
    "SlowPass",
    "VirtualClock",
    "active_pool_gremlin",
    "clear_pool_gremlin",
    "install_pool_gremlin",
]
