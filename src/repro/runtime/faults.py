"""Deterministic fault injection for budget checkpoints.

The ``tests/runtime`` suite needs to prove that every guarded loop
actually reaches a budget checkpoint — without relying on wall-clock
races or pathological inputs.  The pieces here make that deterministic:

* :class:`VirtualClock` — an injectable time source (``Budget(clock=...)``)
  that only moves when told to, so deadline tests never sleep;
* :class:`SlowPass` — a fault that advances a virtual clock on every
  checkpoint, simulating a slow pass until the deadline fires;
* :class:`TriggerAfter` — a fault that raises on the N-th checkpoint,
  proving the guarded loop polls its budget at all.

Faults are attached with :meth:`Budget.install_fault` and run at the
start of every full :meth:`Budget.check`.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.base import check_in_range
from ..core.exceptions import ReproError
from .budget import Budget, IterationBudgetExceeded, TimeBudgetExceeded


class TransientFault(ReproError, RuntimeError):
    """A failure worth retrying: storage hiccups, flaky I/O, races.

    Deliberately *not* a :class:`~repro.runtime.budget.BudgetExceeded`:
    budget exhaustion is a deterministic property of the run and must
    not be retried, whereas a transient fault is expected to clear on
    its own — :class:`~repro.runtime.retry.RetryPolicy` retries exactly
    this type by default.
    """


class Fault:
    """Base class: ``on_check`` runs at every full budget checkpoint."""

    def on_check(self, budget: Budget) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class InjectedFault(IterationBudgetExceeded):
    """Raised by :class:`TriggerAfter` when no custom factory is given.

    Subclasses :class:`IterationBudgetExceeded` so production code paths
    treat an injected failure exactly like real budget exhaustion.
    """


class TriggerAfter(Fault):
    """Raise deterministically on the ``n_checks``-th budget checkpoint.

    Parameters
    ----------
    n_checks:
        Which full check fires the fault (1 = the very first).
    exc_factory:
        Optional zero-argument callable building the exception to raise;
        defaults to :class:`InjectedFault`.

    Examples
    --------
    >>> budget = Budget().install_fault(TriggerAfter(2))
    >>> budget.check()
    >>> budget.check()
    Traceback (most recent call last):
        ...
    repro.runtime.faults.InjectedFault: injected fault at check 2
    """

    def __init__(
        self,
        n_checks: int,
        exc_factory: Optional[Callable[[], BaseException]] = None,
    ):
        check_in_range("n_checks", n_checks, 1, None)
        self.n_checks = n_checks
        self.exc_factory = exc_factory
        self.fired = False

    def on_check(self, budget: Budget) -> None:
        if budget.n_checks >= self.n_checks and not self.fired:
            self.fired = True
            if self.exc_factory is not None:
                raise self.exc_factory()
            raise InjectedFault(
                f"injected fault at check {budget.n_checks}",
                resource="expansions",
                limit=self.n_checks,
                used=budget.n_checks,
            )


class SlowPass(Fault):
    """Advance a :class:`VirtualClock` on every checkpoint.

    Attach to a budget whose ``clock`` is the same virtual clock and
    every check costs ``delay`` simulated seconds — a deadline of
    ``time_limit`` then fires after ``time_limit / delay`` checks with
    zero real sleeping, raising :class:`TimeBudgetExceeded` from the
    budget's own deadline logic.
    """

    def __init__(self, clock: "VirtualClock", delay: float):
        check_in_range("delay", delay, 0.0, None)
        self.clock = clock
        self.delay = delay

    def on_check(self, budget: Budget) -> None:
        self.clock.advance(self.delay)


class FlakyFault(Fault):
    """Raise :class:`TransientFault` on the next ``n_failures`` checks.

    Models an environment that fails transiently a few times and then
    recovers: each raise consumes one failure, so a run wrapped in a
    :class:`~repro.runtime.retry.RetryPolicy` fails on its first
    ``n_failures`` attempts and succeeds on the next one.
    """

    def __init__(self, n_failures: int):
        check_in_range("n_failures", n_failures, 0, None)
        self.remaining = int(n_failures)

    def on_check(self, budget: Budget) -> None:
        if self.remaining > 0:
            self.remaining -= 1
            raise TransientFault(
                f"injected transient fault ({self.remaining} remaining)"
            )


class VirtualClock:
    """Deterministic manual time source for deadline tests.

    Callable (returns the current simulated time) so it plugs straight
    into ``Budget(clock=...)``.

    >>> clock = VirtualClock()
    >>> clock()
    0.0
    >>> clock.advance(1.5)
    >>> clock()
    1.5
    """

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        check_in_range("dt", dt, 0.0, None)
        self.now += dt


__all__ = [
    "Fault",
    "FlakyFault",
    "InjectedFault",
    "TransientFault",
    "TriggerAfter",
    "SlowPass",
    "VirtualClock",
]
