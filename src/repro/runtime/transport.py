"""Result transport between forked children and their parent.

One file per outcome, written atomically: the child pickles a payload
dict, writes it to ``<path>.tmp``, fsyncs, and renames.  The parent
either reads a complete payload or — when the child died mid-write —
sees no file at all, never a torn one.  Both the
:class:`~repro.runtime.supervisor.Supervisor` and the
:class:`~repro.runtime.parallel.WorkerPool` ship results through here,
so the two process layers cannot drift apart in their crash semantics.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Dict

from ..core.exceptions import ReproError

#: exception types a result read can raise; anything here means the
#: writer exited "cleanly" but its payload is missing or unusable.
READ_ERRORS = (OSError, pickle.UnpicklingError, EOFError,
               AttributeError, ImportError)


def write_result(result_path: str, payload: Dict[str, Any]) -> None:
    """Atomically persist a child's outcome (success or app error).

    An unpicklable payload degrades to a pickled :class:`ReproError`
    describing the failure, so the parent always gets *something* to
    re-raise instead of a torn transport.
    """
    try:
        raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raw = pickle.dumps({
            "ok": False,
            "error": ReproError(
                f"supervised result is not picklable: {exc!r}"
            ),
        })
    tmp = result_path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(raw)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, result_path)


def read_result(result_path: str) -> Dict[str, Any]:
    """Load a payload written by :func:`write_result`.

    Raises one of :data:`READ_ERRORS` when the file is missing or
    unreadable; callers classify that as a torn result.
    """
    with open(result_path, "rb") as handle:
        return pickle.load(handle)


__all__ = ["READ_ERRORS", "read_result", "write_result"]
