"""Data transport between forked children and their parent.

Two mechanisms live here, one per direction and size class:

* **Result files** — one file per outcome, written atomically: the
  child pickles a payload dict, writes it to ``<path>.tmp``, fsyncs,
  and renames.  The parent either reads a complete payload or — when
  the child died mid-write — sees no file at all, never a torn one.
  Both the :class:`~repro.runtime.supervisor.Supervisor` and the
  :class:`~repro.runtime.parallel.WorkerPool` ship oversized results
  through here, so the two process layers cannot drift apart in their
  crash semantics.

* **Shared segments** — mmap-backed read-only input placement for the
  persistent worker pool.  A parallel region places its large inputs
  (transaction databases, bitmap matrices, feature arrays) into a
  :class:`SharedRegion` *once* and hands workers a tiny picklable
  :class:`SegmentHandle` per task instead of re-pickling the payload
  per shard.  Workers forked after placement inherit the parent's
  already-unpickled object copy-on-write (zero transport cost); a
  worker that outlives the placement attaches the mmap file once and
  caches the decoded object, so successive passes over the same
  segment pay nothing after the first touch.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import time
import uuid
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional, Set, Tuple, Union

from ..core.exceptions import ReproError, ValidationError
from .fsio import atomic_write_bytes

#: exception types a result read can raise; anything here means the
#: writer exited "cleanly" but its payload is missing or unusable.
READ_ERRORS = (OSError, pickle.UnpicklingError, EOFError,
               AttributeError, ImportError)

#: suffix of the not-yet-renamed half of an atomic payload write.
TMP_SUFFIX = ".tmp"

#: filename prefix of shared-segment files; the stale-transport sweep
#: reclaims orphans carrying it from :func:`segment_dir`.
SEGMENT_PREFIX = "repro-shm-"

#: scratch-directory prefixes the process layers create under the system
#: temp root; the stale-transport sweep only ever touches these.
TRANSPORT_PREFIXES = ("repro-supervised-", "repro-pool-", SEGMENT_PREFIX)


def write_result(result_path: str, payload: Dict[str, Any]) -> None:
    """Atomically persist a child's outcome (success or app error).

    An unpicklable payload degrades to a pickled :class:`ReproError`
    describing the failure, so the parent always gets *something* to
    re-raise instead of a torn transport.
    """
    try:
        raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raw = pickle.dumps({
            "ok": False,
            "error": ReproError(
                f"supervised result is not picklable: {exc!r}"
            ),
        })
    path = Path(result_path)
    atomic_write_bytes(path, raw, tmp_name=path.name + TMP_SUFFIX,
                       fsync_dir=False)


def read_result(result_path: str) -> Dict[str, Any]:
    """Load a payload written by :func:`write_result`.

    Raises one of :data:`READ_ERRORS` when the file is missing or
    unreadable; callers classify that as a torn result.
    """
    with open(result_path, "rb") as handle:
        return pickle.load(handle)


# ----------------------------------------------------------------------
# Shared segments (mmap-backed input placement for the worker pool)
# ----------------------------------------------------------------------

def segment_dir() -> Path:
    """Directory shared-segment files are created in.

    ``/dev/shm`` when the platform provides it (a tmpfs, so "mmap" means
    page-cache sharing with no disk traffic); the system temp dir
    otherwise.  Either way the files are world-visible named objects, so
    a SIGKILLed owner leaks at worst files that
    :func:`sweep_stale_transport` reclaims by prefix and age.
    """
    shm = Path("/dev/shm")
    if shm.is_dir() and os.access(shm, os.W_OK):
        return shm
    return Path(tempfile.gettempdir())


class SegmentHandle:
    """Picklable reference to one shared segment.

    The handle is what crosses the pipe to a worker: a path, a size (for
    validation), a ``kind`` discriminating the decode path, and for
    arrays the ``(dtype, shape)`` needed to rebuild a view without
    copying.  Handles compare and hash by path so they can key
    worker-side caches.
    """

    __slots__ = ("path", "size", "kind", "meta")

    def __init__(self, path: str, size: int, kind: str,
                 meta: Optional[Tuple[str, Tuple[int, ...]]] = None):
        self.path = str(path)
        self.size = int(size)
        self.kind = str(kind)
        self.meta = meta

    def __getstate__(self):
        return (self.path, self.size, self.kind, self.meta)

    def __setstate__(self, state):
        self.path, self.size, self.kind, self.meta = state

    def __eq__(self, other):
        return isinstance(other, SegmentHandle) and other.path == self.path

    def __hash__(self):
        return hash(self.path)

    def __repr__(self):
        return (f"SegmentHandle(kind={self.kind!r}, size={self.size}, "
                f"path={self.path!r})")


#: objects placed by *this* process, keyed by segment path.  A worker
#: forked after placement inherits this dict copy-on-write, so
#: :func:`get_object` resolves the handle to the parent's already-built
#: object with zero decode cost — the common case for pool workers,
#: which fork lazily at first dispatch, after the region is populated.
_LOCAL_OBJECTS: Dict[str, Any] = {}

#: decoded-object cache for segments attached from disk (workers that
#: outlive the placement fork).  Bounded LRU by segment count.
_ATTACH_CACHE: "OrderedDict[str, Any]" = OrderedDict()
_ATTACH_CACHE_SLOTS = 8


class SharedRegion:
    """Owner of a set of shared segments with one lifetime.

    Created by the parent of a parallel region (one region per
    algorithm run, typically), populated with :meth:`put_object` /
    :meth:`put_array`, and closed when the run finishes — a context
    manager, so the segments cannot outlive an exception.  Closing
    unlinks every file the region created and drops the local-object
    entries; workers holding an attached mmap keep it alive until they
    release it (POSIX unlink semantics), so close is safe while maps
    are still live.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None):
        self._dir = Path(directory) if directory is not None else segment_dir()
        self._owner_pid = os.getpid()
        self._handles: list = []
        self._closed = False

    # -- placement ------------------------------------------------------
    def _new_path(self) -> Path:
        return self._dir / f"{SEGMENT_PREFIX}{os.getpid()}-{uuid.uuid4().hex}"

    def _write(self, raw: bytes, kind: str, meta=None) -> SegmentHandle:
        if self._closed:
            raise ValidationError("SharedRegion is closed")
        path = self._new_path()
        tmp = path.with_name(path.name + TMP_SUFFIX)
        with open(tmp, "wb") as sink:
            sink.write(raw)
            sink.flush()
        os.replace(tmp, path)
        handle = SegmentHandle(str(path), len(raw), kind, meta)
        self._handles.append(handle)
        return handle

    def put_object(self, obj: Any) -> SegmentHandle:
        """Place one picklable object; workers decode (or inherit) it."""
        raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        handle = self._write(raw, kind="object")
        _LOCAL_OBJECTS[handle.path] = obj
        return handle

    def put_array(self, arr: Any) -> SegmentHandle:
        """Place one C-contiguous numpy array as raw bytes.

        Attaching rebuilds a read-only zero-copy view over the mmap —
        no pickle framing, no decode, pages shared through the page
        cache across every attached worker.
        """
        import numpy as np

        arr = np.ascontiguousarray(arr)
        handle = self._write(
            arr.tobytes(), kind="array", meta=(str(arr.dtype), arr.shape)
        )
        _LOCAL_OBJECTS[handle.path] = arr
        return handle

    # -- lifetime -------------------------------------------------------
    def release(self, handle: SegmentHandle) -> None:
        """Unlink one segment early (e.g. a per-pass candidate set)."""
        if handle in self._handles:
            self._handles.remove(handle)
        _LOCAL_OBJECTS.pop(handle.path, None)
        try:
            os.unlink(handle.path)
        except OSError:
            pass

    def close(self) -> None:
        """Unlink every segment this region created (idempotent).

        A region inherited across a fork is *not* the child's to tear
        down: only the creating pid unlinks, so a supervised child or
        pool worker exiting never deletes segments its parent is still
        serving to siblings.
        """
        if self._closed:
            return
        self._closed = True
        if os.getpid() != self._owner_pid:
            return
        for handle in self._handles:
            _LOCAL_OBJECTS.pop(handle.path, None)
            try:
                os.unlink(handle.path)
            except OSError:
                pass
        self._handles.clear()

    def __enter__(self) -> "SharedRegion":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass


def _attach(handle: SegmentHandle) -> Any:
    """Decode one segment from its file (worker-side cold path)."""
    if handle.kind == "array":
        import mmap as _mmap

        import numpy as np

        with open(handle.path, "rb") as source:
            buf = _mmap.mmap(source.fileno(), 0, access=_mmap.ACCESS_READ)
        dtype, shape = handle.meta
        view = np.frombuffer(buf, dtype=np.dtype(dtype)).reshape(shape)
        view.flags.writeable = False
        return view
    with open(handle.path, "rb") as source:
        return pickle.load(source)


def get_object(handle: SegmentHandle) -> Any:
    """Resolve a handle to its object, cheapest path first.

    Order of preference: the placing process's own object (inherited
    copy-on-write by forked workers — free), then the per-process
    attach cache, then a cold attach from the segment file.  Raises
    :class:`ReproError` when the segment has been released and no
    inherited copy exists — a handle used after region close.
    """
    obj = _LOCAL_OBJECTS.get(handle.path)
    if obj is not None:
        return obj
    cached = _ATTACH_CACHE.get(handle.path)
    if cached is not None:
        _ATTACH_CACHE.move_to_end(handle.path)
        return cached
    try:
        obj = _attach(handle)
    except READ_ERRORS as exc:
        raise ReproError(
            f"shared segment {handle.path} is gone or unreadable ({exc!r}); "
            "was the owning SharedRegion closed while tasks still "
            "referenced it?"
        ) from exc
    _ATTACH_CACHE[handle.path] = obj
    while len(_ATTACH_CACHE) > _ATTACH_CACHE_SLOTS:
        _ATTACH_CACHE.popitem(last=False)
    return obj


def get_array(handle: SegmentHandle) -> Any:
    """Resolve an array handle (alias of :func:`get_object`, typed)."""
    return get_object(handle)


def sweep_stale_tmp(
    directory: Union[str, Path],
    min_age_seconds: float = 0.0,
    pattern: str = f"*{TMP_SUFFIX}",
) -> int:
    """Delete torn ``*.tmp`` payloads left in one transport directory.

    A writer SIGKILLed between opening its temp file and the atomic
    rename leaves the ``*.tmp`` half behind forever — harmless to
    correctness (readers only ever see renamed, complete payloads) but a
    disk leak in any directory that outlives a single run (job stores,
    persistent scratch dirs).  Callers invoke this on startup, before
    any writer of the new run is live, so every matching file is by
    definition orphaned.  Returns the number of files removed; missing
    directories and racing deleters are not errors.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    now = time.time()
    removed = 0
    for entry in directory.glob(pattern):
        try:
            if min_age_seconds and now - entry.stat().st_mtime < min_age_seconds:
                continue
            entry.unlink()
            removed += 1
        except OSError:  # pragma: no cover - concurrent cleanup
            continue
    return removed


#: temp roots already swept by this process (``once=True`` guard).
_SWEPT_ROOTS: Set[str] = set()


def sweep_stale_transport(
    root: Optional[Union[str, Path]] = None,
    min_age_seconds: float = 3600.0,
    once: bool = False,
) -> int:
    """Remove orphaned transport scratch directories from ``root``.

    The supervisor and the worker pool normally delete their
    ``mkdtemp`` scratch in a ``finally`` block, but a parent process
    SIGKILLed mid-run never reaches it and the whole directory —
    including any torn ``*.tmp`` payload its children were writing —
    leaks into the system temp dir.  This sweep deletes entries whose
    name carries one of :data:`TRANSPORT_PREFIXES` and whose mtime is
    older than ``min_age_seconds`` (the age guard keeps concurrently
    *live* runs safe).  With ``once=True`` the scan runs at most one
    time per process per root — the cheap form both process layers call
    on startup.  Returns the number of entries removed.

    When ``root`` is not pinned, the sweep also covers
    :func:`segment_dir`: shared-segment files (``repro-shm-*``) live in
    ``/dev/shm`` rather than the temp root, and a SIGKILLed pool owner
    leaks them exactly like orphaned scratch directories.
    """
    roots = (
        [Path(root)] if root is not None
        else [Path(tempfile.gettempdir()), segment_dir()]
    )
    now = time.time()
    removed = 0
    for root_dir in dict.fromkeys(roots):
        if once:
            key = str(root_dir)
            if key in _SWEPT_ROOTS:
                continue
            _SWEPT_ROOTS.add(key)
        if not root_dir.is_dir():
            continue
        for entry in root_dir.iterdir():
            if not entry.name.startswith(TRANSPORT_PREFIXES):
                continue
            if entry.name in _LOCAL_OBJECTS or str(entry) in _LOCAL_OBJECTS:
                continue
            try:
                if now - entry.stat().st_mtime < min_age_seconds:
                    continue
                if entry.is_dir() and not entry.is_symlink():
                    shutil.rmtree(entry, ignore_errors=True)
                else:
                    entry.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent cleanup
                continue
    return removed


__all__ = [
    "READ_ERRORS",
    "SEGMENT_PREFIX",
    "TMP_SUFFIX",
    "TRANSPORT_PREFIXES",
    "SegmentHandle",
    "SharedRegion",
    "get_array",
    "get_object",
    "read_result",
    "segment_dir",
    "sweep_stale_tmp",
    "sweep_stale_transport",
    "write_result",
]
