"""Result transport between forked children and their parent.

One file per outcome, written atomically: the child pickles a payload
dict, writes it to ``<path>.tmp``, fsyncs, and renames.  The parent
either reads a complete payload or — when the child died mid-write —
sees no file at all, never a torn one.  Both the
:class:`~repro.runtime.supervisor.Supervisor` and the
:class:`~repro.runtime.parallel.WorkerPool` ship results through here,
so the two process layers cannot drift apart in their crash semantics.
"""

from __future__ import annotations

import pickle
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Set, Union

from ..core.exceptions import ReproError
from .fsio import atomic_write_bytes

#: exception types a result read can raise; anything here means the
#: writer exited "cleanly" but its payload is missing or unusable.
READ_ERRORS = (OSError, pickle.UnpicklingError, EOFError,
               AttributeError, ImportError)

#: suffix of the not-yet-renamed half of an atomic payload write.
TMP_SUFFIX = ".tmp"

#: scratch-directory prefixes the process layers create under the system
#: temp root; the stale-transport sweep only ever touches these.
TRANSPORT_PREFIXES = ("repro-supervised-", "repro-pool-")


def write_result(result_path: str, payload: Dict[str, Any]) -> None:
    """Atomically persist a child's outcome (success or app error).

    An unpicklable payload degrades to a pickled :class:`ReproError`
    describing the failure, so the parent always gets *something* to
    re-raise instead of a torn transport.
    """
    try:
        raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raw = pickle.dumps({
            "ok": False,
            "error": ReproError(
                f"supervised result is not picklable: {exc!r}"
            ),
        })
    path = Path(result_path)
    atomic_write_bytes(path, raw, tmp_name=path.name + TMP_SUFFIX,
                       fsync_dir=False)


def read_result(result_path: str) -> Dict[str, Any]:
    """Load a payload written by :func:`write_result`.

    Raises one of :data:`READ_ERRORS` when the file is missing or
    unreadable; callers classify that as a torn result.
    """
    with open(result_path, "rb") as handle:
        return pickle.load(handle)


def sweep_stale_tmp(
    directory: Union[str, Path],
    min_age_seconds: float = 0.0,
    pattern: str = f"*{TMP_SUFFIX}",
) -> int:
    """Delete torn ``*.tmp`` payloads left in one transport directory.

    A writer SIGKILLed between opening its temp file and the atomic
    rename leaves the ``*.tmp`` half behind forever — harmless to
    correctness (readers only ever see renamed, complete payloads) but a
    disk leak in any directory that outlives a single run (job stores,
    persistent scratch dirs).  Callers invoke this on startup, before
    any writer of the new run is live, so every matching file is by
    definition orphaned.  Returns the number of files removed; missing
    directories and racing deleters are not errors.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    now = time.time()
    removed = 0
    for entry in directory.glob(pattern):
        try:
            if min_age_seconds and now - entry.stat().st_mtime < min_age_seconds:
                continue
            entry.unlink()
            removed += 1
        except OSError:  # pragma: no cover - concurrent cleanup
            continue
    return removed


#: temp roots already swept by this process (``once=True`` guard).
_SWEPT_ROOTS: Set[str] = set()


def sweep_stale_transport(
    root: Optional[Union[str, Path]] = None,
    min_age_seconds: float = 3600.0,
    once: bool = False,
) -> int:
    """Remove orphaned transport scratch directories from ``root``.

    The supervisor and the worker pool normally delete their
    ``mkdtemp`` scratch in a ``finally`` block, but a parent process
    SIGKILLed mid-run never reaches it and the whole directory —
    including any torn ``*.tmp`` payload its children were writing —
    leaks into the system temp dir.  This sweep deletes entries whose
    name carries one of :data:`TRANSPORT_PREFIXES` and whose mtime is
    older than ``min_age_seconds`` (the age guard keeps concurrently
    *live* runs safe).  With ``once=True`` the scan runs at most one
    time per process per root — the cheap form both process layers call
    on startup.  Returns the number of entries removed.
    """
    root = Path(root if root is not None else tempfile.gettempdir())
    if once:
        key = str(root)
        if key in _SWEPT_ROOTS:
            return 0
        _SWEPT_ROOTS.add(key)
    if not root.is_dir():
        return 0
    now = time.time()
    removed = 0
    for entry in root.iterdir():
        if not entry.name.startswith(TRANSPORT_PREFIXES):
            continue
        try:
            if now - entry.stat().st_mtime < min_age_seconds:
                continue
            if entry.is_dir() and not entry.is_symlink():
                shutil.rmtree(entry, ignore_errors=True)
            else:
                entry.unlink()
            removed += 1
        except OSError:  # pragma: no cover - concurrent cleanup
            continue
    return removed


__all__ = [
    "READ_ERRORS",
    "TMP_SUFFIX",
    "TRANSPORT_PREFIXES",
    "read_result",
    "sweep_stale_tmp",
    "sweep_stale_transport",
    "write_result",
]
