"""Execution guardrails: budgets, cancellation, and fault injection.

See :mod:`repro.runtime.budget` for the budget/cancellation machinery
and :mod:`repro.runtime.faults` for the deterministic fault harness
used by ``tests/runtime``.
"""

from .budget import (
    Budget,
    BudgetExceeded,
    CancellationToken,
    IterationBudgetExceeded,
    OperationCancelled,
    ProgressEvent,
    SpaceBudgetExceeded,
    TimeBudgetExceeded,
)
from .faults import Fault, InjectedFault, SlowPass, TriggerAfter, VirtualClock

__all__ = [
    "Budget",
    "BudgetExceeded",
    "TimeBudgetExceeded",
    "SpaceBudgetExceeded",
    "IterationBudgetExceeded",
    "CancellationToken",
    "OperationCancelled",
    "ProgressEvent",
    "Fault",
    "InjectedFault",
    "TriggerAfter",
    "SlowPass",
    "VirtualClock",
]
