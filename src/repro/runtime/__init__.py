"""Execution guardrails: budgets, cancellation, checkpoint/resume,
retries, and fault injection.

See :mod:`repro.runtime.context` for the :class:`ExecutionContext`
that bundles these services into the single ``ctx=`` seam algorithms
accept, :mod:`repro.runtime.budget` for the budget/cancellation machinery,
:mod:`repro.runtime.checkpoint` for crash-safe snapshot persistence,
:mod:`repro.runtime.retry` for transient-fault retries,
:mod:`repro.runtime.faults` for the deterministic fault harness used by
``tests/runtime``, :mod:`repro.runtime.supervisor` for process-level
supervision (hard limits, crash containment, chaos-proven resume), and
:mod:`repro.runtime.parallel` for the persistent prefork
:class:`WorkerPool` that executes shard tasks deterministically under
the same budgets, fed by the shared-memory segments of
:mod:`repro.runtime.transport`.
"""

from .budget import (
    Budget,
    BudgetExceeded,
    CancellationToken,
    IterationBudgetExceeded,
    OperationCancelled,
    ProgressEvent,
    SpaceBudgetExceeded,
    TimeBudgetExceeded,
)
from .checkpoint import (
    CheckpointCorrupted,
    CheckpointMismatch,
    CheckpointStore,
    CheckpointWriteError,
    Checkpointer,
    Snapshottable,
)
from .context import (
    BASIC_POLICIES,
    LEVELWISE_POLICIES,
    ExecutionContext,
    RunCounters,
    check_degradation_policy,
    derive_shard_budget,
    progress_event,
    resolve_context,
)
from .faults import (
    DISK_OPS,
    ChaosMonkey,
    DiskGremlin,
    Fault,
    FlakyFault,
    InjectedFault,
    PoolGremlin,
    SlowPass,
    TransientFault,
    TriggerAfter,
    VirtualClock,
    active_pool_gremlin,
    clear_pool_gremlin,
    install_pool_gremlin,
)
from .fsio import (
    atomic_write_bytes,
    clear_injector,
    injected,
    install_injector,
)
from .parallel import (
    INLINE_RESULT_LIMIT,
    SMALL_TASK_SECONDS,
    WorkerCrashed,
    WorkerPool,
    close_shared_pools,
    effective_n_jobs,
    fork_per_task_map,
    resolve_n_jobs,
    shard_bounds,
    shared_pool,
)
from .retry import RetryPolicy
from .transport import (
    SegmentHandle,
    SharedRegion,
    get_array,
    get_object,
    segment_dir,
    sweep_stale_tmp,
    sweep_stale_transport,
)
from .supervisor import (
    FailureReport,
    HardLimits,
    SupervisedCrash,
    SupervisedResult,
    Supervisor,
    SupervisorStopped,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "TimeBudgetExceeded",
    "SpaceBudgetExceeded",
    "IterationBudgetExceeded",
    "CancellationToken",
    "OperationCancelled",
    "ProgressEvent",
    "CheckpointCorrupted",
    "CheckpointMismatch",
    "CheckpointStore",
    "CheckpointWriteError",
    "Checkpointer",
    "Snapshottable",
    "ExecutionContext",
    "RunCounters",
    "resolve_context",
    "check_degradation_policy",
    "progress_event",
    "BASIC_POLICIES",
    "LEVELWISE_POLICIES",
    "RetryPolicy",
    "WorkerCrashed",
    "WorkerPool",
    "INLINE_RESULT_LIMIT",
    "SMALL_TASK_SECONDS",
    "close_shared_pools",
    "derive_shard_budget",
    "effective_n_jobs",
    "fork_per_task_map",
    "resolve_n_jobs",
    "shard_bounds",
    "shared_pool",
    "SegmentHandle",
    "SharedRegion",
    "get_array",
    "get_object",
    "segment_dir",
    "ChaosMonkey",
    "DISK_OPS",
    "DiskGremlin",
    "FailureReport",
    "HardLimits",
    "SupervisedCrash",
    "SupervisedResult",
    "Supervisor",
    "SupervisorStopped",
    "atomic_write_bytes",
    "clear_injector",
    "injected",
    "install_injector",
    "sweep_stale_tmp",
    "sweep_stale_transport",
    "Fault",
    "FlakyFault",
    "InjectedFault",
    "PoolGremlin",
    "TransientFault",
    "TriggerAfter",
    "SlowPass",
    "VirtualClock",
    "active_pool_gremlin",
    "clear_pool_gremlin",
    "install_pool_gremlin",
]
