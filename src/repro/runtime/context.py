"""ExecutionContext: one object for all runtime plumbing.

PRs 1-3 threaded budgets, checkpointers and retries through ~25
algorithm modules as parallel keyword arguments (``budget=``,
``checkpoint=``) plus attribute monkey-patching.  Every new
cross-cutting feature (metrics, sharding, async) would have added yet
another kwarg chain.  :class:`ExecutionContext` collapses those chains
into a single seam:

* ``ctx.step(phase=...)`` replaces the scattered
  ``budget.check()`` / ``budget.progress()`` pairs at loop heads;
* ``ctx.mark(state)`` / ``ctx.resume(key)`` / ``ctx.flush()`` replace
  the ``if checkpoint is not None:`` guards around boundary snapshots;
* :class:`RunCounters` accumulates lightweight run statistics (steps,
  candidates, nodes, expansions, snapshots) with or without a budget —
  the hook the observability work hangs metrics on;
* :func:`resolve_context` keeps the deprecated ``budget=`` /
  ``checkpoint=`` kwargs working for one release, building a context
  from them with a :class:`DeprecationWarning`.

The *null context* — ``ExecutionContext()`` with every slot ``None`` —
is the default everywhere and is byte-identical to the pre-context bare
call path: no budget checks, no snapshots, no cancellation polling, only
counter increments.

The degradation-policy vocabulary shared by the budget-aware miners
(previously duplicated across nine modules) also lives here:
:data:`LEVELWISE_POLICIES`, :data:`BASIC_POLICIES` and
:func:`check_degradation_policy`.
"""

from __future__ import annotations

import time
import warnings
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

from ..core.exceptions import ValidationError
from .budget import Budget, CancellationToken
from .checkpoint import Checkpointer
from .retry import RetryPolicy

#: policies accepted by the levelwise miners (apriori, apriori_tid, dhp)
LEVELWISE_POLICIES = ("raise", "truncate", "partition", "sampling")

#: policies accepted by every other budget-aware miner
BASIC_POLICIES = ("raise", "truncate")


def check_degradation_policy(
    policy: str, allowed: Tuple[str, ...], algorithm: str
) -> None:
    """Validate an ``on_exhausted`` policy against an allowed set.

    The single validation point (and single error message) for all
    budget-aware miners; the allowed set per algorithm is declared in
    :mod:`repro.registry` capabilities and passed through here.
    """
    if policy not in allowed:
        raise ValidationError(
            f"on_exhausted for {algorithm} must be one of {allowed}, "
            f"got {policy!r}"
        )


def progress_event(
    seq: int,
    phase: str,
    info: Optional[Mapping[str, Any]] = None,
    at: Optional[float] = None,
) -> Dict[str, Any]:
    """Shape one progress event for an append-only event log.

    The single record shape shared by everything that serializes a
    progress stream — the job server's per-job ``events.jsonl`` most of
    all.  The key set is fixed and flat so pollers can parse blind:

    * ``seq`` — 0-based position in the log, gapless per log;
    * ``at`` — unix timestamp of the append (``time.time()`` unless
      the caller pins one);
    * ``phase`` — a ``ctx.step`` phase name (``"pass"``,
      ``"iteration"``...) or a lifecycle marker the log owner defines
      (``"submitted"``, ``"requeued"``, ``"done"``...);
    * ``info`` — the step's progress payload, nested so arbitrary
      per-phase keys can never collide with the envelope.
    """
    return {
        "seq": int(seq),
        "at": float(time.time() if at is None else at),
        "phase": str(phase),
        "info": dict(info or {}),
    }


class RunCounters:
    """Lightweight run statistics accumulated by a context.

    Counted with or without a budget, so a bare run still reports how
    much work it did.  ``steps`` counts :meth:`ExecutionContext.step`
    calls (pass/iteration boundaries); ``candidates`` / ``nodes`` /
    ``expansions`` accumulate the per-step work hints the algorithms
    already report as progress info; ``snapshots`` counts checkpoint
    marks that reached the checkpointer.
    """

    __slots__ = ("steps", "candidates", "nodes", "expansions", "snapshots")

    def __init__(self):
        self.steps = 0
        self.candidates = 0
        self.nodes = 0
        self.expansions = 0
        self.snapshots = 0

    def to_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.to_dict().items())
        return f"RunCounters({inner})"


class ExecutionContext:
    """Bundle of runtime services threaded through one algorithm run.

    Parameters
    ----------
    budget:
        Optional :class:`~repro.runtime.Budget`; :meth:`step` checks it
        and forwards progress info.
    checkpointer:
        Optional :class:`~repro.runtime.Checkpointer`; :meth:`resume`
        binds the run key, :meth:`mark` snapshots boundaries,
        :meth:`flush` persists on any exit.
    cancel_token:
        Optional :class:`~repro.runtime.CancellationToken` polled by
        :meth:`step` even when no budget is attached.  (A budget's own
        token is still honoured through ``budget.check``.)
    retry:
        Optional :class:`~repro.runtime.RetryPolicy` carried for the
        caller that owns the run loop (the context itself never
        retries).
    on_progress:
        Optional callable ``(phase, info_dict)`` invoked at every
        :meth:`step`, independent of any budget-level progress hook.

    A context is cheap, single-run state: it carries mutable
    :class:`RunCounters` and the bound checkpoint key, so reuse one
    context per algorithm call, not across calls (use :meth:`replace`
    to derive siblings).
    """

    def __init__(
        self,
        budget: Optional[Budget] = None,
        checkpointer: Optional[Checkpointer] = None,
        cancel_token: Optional[CancellationToken] = None,
        retry: Optional[RetryPolicy] = None,
        on_progress: Optional[Callable[[str, Dict[str, Any]], None]] = None,
    ):
        self.budget = budget
        self.checkpointer = checkpointer
        self.cancel_token = cancel_token
        self.retry = retry
        self.on_progress = on_progress
        self.counters = RunCounters()
        self._key: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # Introspection / derivation
    # ------------------------------------------------------------------
    @property
    def is_null(self) -> bool:
        """True when every service slot is empty (the default context)."""
        return (
            self.budget is None
            and self.checkpointer is None
            and self.cancel_token is None
            and self.retry is None
            and self.on_progress is None
        )

    @property
    def resume_requested(self) -> bool:
        """Whether the attached checkpointer was asked to resume."""
        return (
            self.checkpointer is not None
            and self.checkpointer.resume_requested
        )

    def replace(self, **changes: Any) -> "ExecutionContext":
        """A sibling context with some slots swapped and fresh counters.

        Used by the supervisor to hand each attempt the caller's budget
        with a per-attempt checkpointer.
        """
        fields = {
            "budget": self.budget,
            "checkpointer": self.checkpointer,
            "cancel_token": self.cancel_token,
            "retry": self.retry,
            "on_progress": self.on_progress,
        }
        unknown = set(changes) - set(fields)
        if unknown:
            raise ValidationError(
                f"unknown ExecutionContext fields: {sorted(unknown)}"
            )
        fields.update(changes)
        return ExecutionContext(**fields)

    # ------------------------------------------------------------------
    # Checkpoint lifecycle
    # ------------------------------------------------------------------
    def resume(
        self,
        key: Union[Dict[str, Any], Callable[[], Dict[str, Any]]],
    ) -> Optional[Dict[str, Any]]:
        """Bind the run's checkpoint key; return resumed state or None.

        ``key`` may be a dict or a zero-argument callable producing one
        (evaluated only when a checkpointer is attached, so bare runs
        pay nothing for key construction).
        """
        if self.checkpointer is None:
            return None
        self._key = key() if callable(key) else key
        return self.checkpointer.resume(self._key)

    def mark(
        self,
        state: Union[Dict[str, Any], Callable[[], Dict[str, Any]]],
    ) -> None:
        """Snapshot a completed boundary (no-op without a checkpointer).

        ``state`` may be a dict or a zero-argument callable producing
        one, evaluated lazily so bare runs never build snapshots.
        Requires a prior :meth:`resume` call to have bound the key.
        """
        if self.checkpointer is None:
            return
        if self._key is None:
            raise ValidationError(
                "ExecutionContext.mark() before resume(): the checkpoint "
                "key is unbound"
            )
        self.checkpointer.mark(self._key, state() if callable(state) else state)
        self.counters.snapshots += 1

    def flush(self) -> None:
        """Persist any pending snapshot; safe in ``finally`` blocks."""
        if self.checkpointer is not None:
            self.checkpointer.flush()

    # ------------------------------------------------------------------
    # The per-boundary call
    # ------------------------------------------------------------------
    def step(self, phase: str, **info: Any) -> None:
        """One pass/iteration boundary: count, check, report.

        Replaces the old ``if budget is not None: budget.check(...);
        budget.progress(...)`` pairs.  Order matters and is part of the
        equivalence contract: the budget check runs before any progress
        reporting, so an exhausted budget raises without emitting a
        progress event — exactly as the bare ``check``/``progress``
        pairs behaved.
        """
        counters = self.counters
        counters.steps += 1
        counters.candidates += int(info.get("candidates", 0) or 0)
        counters.nodes += int(info.get("nodes", 0) or 0)
        counters.expansions += int(info.get("expansions", 0) or 0)
        if self.budget is not None:
            self.budget.check(phase=phase)
            self.budget.progress(phase, **info)
        if self.cancel_token is not None:
            self.cancel_token.raise_if_cancelled()
        if self.on_progress is not None:
            self.on_progress(phase, dict(info))

    def raise_if_cancelled(self) -> None:
        """Poll the context-level cancellation token, if any."""
        if self.cancel_token is not None:
            self.cancel_token.raise_if_cancelled()

    def shard_context(self) -> "ExecutionContext":
        """The context one parallel shard runs under.

        Derives a sub-budget capped at what this context's budget has
        left (:func:`derive_shard_budget`) and strips everything that
        must not cross a process boundary: the checkpointer (the parent
        marks at merge points), the cancellation token (cancellation
        reaches workers as SIGTERM from the parent's poll loop, and the
        token's event is unpicklable anyway), and the progress hook
        (closures don't pickle; the parent reports at merge points).
        The result is fully picklable whenever the budget's clock is
        the default, which is what lets shard contexts travel over the
        pool's pipes instead of requiring a fork per task.
        """
        return self.replace(
            budget=derive_shard_budget(self.budget),
            checkpointer=None,
            cancel_token=None,
            on_progress=None,
        )

    def __repr__(self) -> str:
        slots = []
        if self.budget is not None:
            slots.append("budget")
        if self.checkpointer is not None:
            slots.append("checkpointer")
        if self.cancel_token is not None:
            slots.append("cancel_token")
        if self.retry is not None:
            slots.append("retry")
        if self.on_progress is not None:
            slots.append("on_progress")
        inner = "+".join(slots) if slots else "null"
        return f"ExecutionContext<{inner}, {self.counters!r}>"


def derive_shard_budget(budget: Optional[Budget]) -> Optional[Budget]:
    """A shard-side budget capped at what the parent has left.

    Counter caps are the parent's remaining allowance (floored at one
    unit so construction stays valid — the parent re-charges actual
    usage on merge and is the authority on exhaustion); the deadline is
    the parent's remaining wall-clock.  Tokens and progress hooks do
    not cross the process boundary: cancellation reaches workers as
    SIGTERM from the parent's poll loop.
    """
    if budget is None:
        return None
    kwargs = {"check_interval": budget.check_interval}
    if budget.time_limit is not None:
        kwargs["time_limit"] = budget.remaining_time()
    if budget.max_candidates is not None:
        kwargs["max_candidates"] = max(
            1, budget.max_candidates - budget.candidates_used
        )
    if budget.max_nodes is not None:
        kwargs["max_nodes"] = max(1, budget.max_nodes - budget.nodes_used)
    if budget.max_expansions is not None:
        kwargs["max_expansions"] = max(
            1, budget.max_expansions - budget.expansions_used
        )
    return Budget(**kwargs)


def resolve_context(
    ctx: Optional[ExecutionContext],
    budget: Optional[Budget] = None,
    checkpoint: Optional[Checkpointer] = None,
    owner: str = "this algorithm",
) -> ExecutionContext:
    """Normalise the ``ctx`` / deprecated-kwarg surface of an algorithm.

    * ``ctx`` given, no legacy kwargs → returned as-is.
    * Legacy ``budget=`` / ``checkpoint=`` given (and no ``ctx``) → a
      context is built from them and a :class:`DeprecationWarning` is
      emitted naming the owner.
    * Both given → :class:`~repro.core.exceptions.ValidationError`;
      silently preferring one would mask a caller bug.
    * Neither given → a fresh null context.
    """
    if ctx is not None and (budget is not None or checkpoint is not None):
        raise ValidationError(
            f"{owner} got both ctx= and the deprecated budget=/checkpoint= "
            "kwargs; pass everything through ctx"
        )
    if budget is not None or checkpoint is not None:
        warnings.warn(
            f"the budget=/checkpoint= kwargs of {owner} are deprecated; "
            "pass ctx=ExecutionContext(budget=..., checkpointer=...) "
            "instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return ExecutionContext(budget=budget, checkpointer=checkpoint)
    if ctx is None:
        return ExecutionContext()
    return ctx


__all__ = [
    "BASIC_POLICIES",
    "LEVELWISE_POLICIES",
    "ExecutionContext",
    "RunCounters",
    "check_degradation_policy",
    "derive_shard_budget",
    "progress_event",
    "resolve_context",
]
