"""Execution budgets and cooperative cancellation.

The mining canon is full of algorithms whose cost explodes with input
shape — Apriori candidate blow-up at low support, quadratic region
queries, non-converging medoid search.  A service cannot ship miners
that may hang or eat unbounded memory, so every long-running algorithm
in this library accepts an optional :class:`Budget` and checks it
cooperatively from its hot loops:

* a **wall-clock deadline** (``time_limit`` seconds) raises
  :class:`TimeBudgetExceeded`;
* **space caps** (``max_candidates`` generated candidates,
  ``max_nodes`` materialised tree/structure nodes) raise
  :class:`SpaceBudgetExceeded`;
* an **expansion cap** (``max_expansions`` — iterations, region
  queries, recursive descents; a proxy for total work) raises
  :class:`IterationBudgetExceeded`;
* a :class:`CancellationToken` lets another thread stop the run at the
  next checkpoint, raising :class:`OperationCancelled`.

All three exhaustion errors derive from :class:`BudgetExceeded`
(itself a :class:`~repro.core.exceptions.ReproError`), so callers can
catch one class.  Cancellation deliberately does *not* derive from
:class:`BudgetExceeded`: algorithms that degrade gracefully on budget
exhaustion must still abort promptly when cancelled.

A budget with no limits set never raises, and passing ``budget=None``
(the default everywhere) skips every check — results are bit-identical
to an unbudgeted run.

Checkpoints double as **progress hooks**: pass ``on_progress`` a
callable and it receives a :class:`ProgressEvent` whenever a guarded
algorithm reports a pass/level/iteration boundary.  They are also the
injection points of the fault harness in :mod:`repro.runtime.faults`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.base import check_in_range
from ..core.exceptions import ReproError


class BudgetExceeded(ReproError, RuntimeError):
    """Base class for budget exhaustion.

    Attributes
    ----------
    resource:
        Which resource ran out (``"time"``, ``"candidates"``,
        ``"nodes"``, ``"expansions"``).
    limit, used:
        The configured cap and the amount consumed when it fired.
    """

    def __init__(
        self,
        message: str,
        *,
        resource: Optional[str] = None,
        limit: Optional[float] = None,
        used: Optional[float] = None,
    ):
        super().__init__(message)
        self.resource = resource
        self.limit = limit
        self.used = used


class TimeBudgetExceeded(BudgetExceeded):
    """The wall-clock deadline passed."""


class SpaceBudgetExceeded(BudgetExceeded):
    """A candidate/node count cap was hit (memory-shaped exhaustion)."""


class IterationBudgetExceeded(BudgetExceeded):
    """An iteration/expansion cap was hit (work-shaped exhaustion)."""


class OperationCancelled(ReproError, RuntimeError):
    """The run was cancelled through its :class:`CancellationToken`."""

    def __init__(self, reason: Optional[str] = None):
        super().__init__(reason or "operation cancelled")
        self.reason = reason


class CancellationToken:
    """Cooperative, thread-safe cancellation signal.

    Hand the same token to a :class:`Budget` and to whatever owns the
    run (another thread, a request handler); calling :meth:`cancel`
    makes the algorithm raise :class:`OperationCancelled` at its next
    checkpoint.

    >>> token = CancellationToken()
    >>> token.cancelled
    False
    >>> token.cancel("shutting down")
    >>> token.cancelled
    True
    """

    def __init__(self):
        self._event = threading.Event()
        self._reason: Optional[str] = None

    def cancel(self, reason: Optional[str] = None) -> None:
        """Request cancellation (idempotent; the first reason wins)."""
        if not self._event.is_set():
            self._reason = reason
            self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> Optional[str]:
        return self._reason

    def raise_if_cancelled(self) -> None:
        """Raise :class:`OperationCancelled` if :meth:`cancel` was called."""
        if self._event.is_set():
            raise OperationCancelled(self._reason)


@dataclass(frozen=True)
class ProgressEvent:
    """One progress report from a guarded algorithm.

    Attributes
    ----------
    phase:
        Algorithm-defined label (``"pass-3"``, ``"level-2"``, ...).
    elapsed:
        Seconds since the budget started.
    info:
        Free-form counters (candidate counts, frontier sizes, ...).
    """

    phase: str
    elapsed: float
    info: Dict[str, object] = field(default_factory=dict)


class Budget:
    """Enforceable execution budget, checked cooperatively.

    Parameters
    ----------
    time_limit:
        Wall-clock seconds before :class:`TimeBudgetExceeded`
        (``None`` = no deadline).  The clock starts at the first
        checkpoint (or an explicit :meth:`start`).
    max_candidates:
        Cap on :meth:`charge_candidates` units — generated candidate
        itemsets/patterns (``None`` = unlimited).
    max_nodes:
        Cap on :meth:`charge_nodes` units — materialised tree nodes or
        equivalent structures.
    max_expansions:
        Cap on :meth:`charge_expansions` units — iterations, region
        queries, recursive expansions; an estimate of total work.
    cancel_token:
        Optional :class:`CancellationToken` polled at every checkpoint.
    on_progress:
        Optional callable receiving :class:`ProgressEvent` objects.
    check_interval:
        Full (clock + cancellation) checks run every this many charge
        calls; counter caps are still enforced on *every* charge.  Use
        ``1`` in tests for fully deterministic fault injection.
    clock:
        Time source returning monotonic seconds; tests inject a
        :class:`~repro.runtime.faults.VirtualClock` here.

    Examples
    --------
    >>> budget = Budget(max_candidates=2)
    >>> budget.charge_candidates()
    >>> budget.charge_candidates()
    >>> budget.charge_candidates()
    Traceback (most recent call last):
        ...
    repro.runtime.budget.SpaceBudgetExceeded: candidate budget exhausted (limit 2)
    """

    def __init__(
        self,
        time_limit: Optional[float] = None,
        max_candidates: Optional[int] = None,
        max_nodes: Optional[int] = None,
        max_expansions: Optional[int] = None,
        cancel_token: Optional[CancellationToken] = None,
        on_progress: Optional[Callable[[ProgressEvent], None]] = None,
        check_interval: int = 256,
        clock: Optional[Callable[[], float]] = None,
    ):
        if time_limit is not None:
            check_in_range("time_limit", time_limit, 0.0, None)
        if max_candidates is not None:
            check_in_range("max_candidates", max_candidates, 1, None)
        if max_nodes is not None:
            check_in_range("max_nodes", max_nodes, 1, None)
        if max_expansions is not None:
            check_in_range("max_expansions", max_expansions, 1, None)
        check_in_range("check_interval", check_interval, 1, None)
        self.time_limit = time_limit
        self.max_candidates = max_candidates
        self.max_nodes = max_nodes
        self.max_expansions = max_expansions
        self.cancel_token = cancel_token
        self.on_progress = on_progress
        self.check_interval = int(check_interval)
        self._clock = clock if clock is not None else time.monotonic
        self._started_at: Optional[float] = None
        self.candidates_used = 0
        self.nodes_used = 0
        self.expansions_used = 0
        self.n_checks = 0
        self._charges = 0
        self._faults: List[object] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def start(self) -> "Budget":
        """Stamp the deadline clock now (idempotent); returns ``self``."""
        if self._started_at is None:
            self._started_at = self._clock()
        return self

    def elapsed(self) -> float:
        """Seconds since the budget started (0 before the first check)."""
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    def remaining_time(self) -> Optional[float]:
        """Seconds left on the deadline; ``None`` when unlimited."""
        if self.time_limit is None:
            return None
        return max(0.0, self.time_limit - self.elapsed())

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def check(self, phase: Optional[str] = None) -> None:
        """Full checkpoint: faults, cancellation, then the deadline.

        Algorithms call this at pass/level/iteration boundaries; the
        ``charge_*`` methods call it every ``check_interval`` charges.
        """
        self.start()
        self.n_checks += 1
        for fault in self._faults:
            fault.on_check(self)
        if self.cancel_token is not None:
            self.cancel_token.raise_if_cancelled()
        if self.time_limit is not None:
            used = self.elapsed()
            if used > self.time_limit:
                raise TimeBudgetExceeded(
                    f"time budget exhausted after {used:.3f}s "
                    f"(limit {self.time_limit}s"
                    + (f", phase {phase!r})" if phase else ")"),
                    resource="time",
                    limit=self.time_limit,
                    used=used,
                )

    def _charge(self, amount: int) -> None:
        self._charges += 1
        if self._charges % self.check_interval == 0:
            self.check()

    def charge_candidates(self, n: int = 1, phase: Optional[str] = None) -> None:
        """Account for ``n`` generated candidates; may raise."""
        self.candidates_used += n
        if (
            self.max_candidates is not None
            and self.candidates_used > self.max_candidates
        ):
            raise SpaceBudgetExceeded(
                f"candidate budget exhausted (limit {self.max_candidates}"
                + (f", phase {phase!r})" if phase else ")"),
                resource="candidates",
                limit=self.max_candidates,
                used=self.candidates_used,
            )
        self._charge(n)

    def charge_nodes(self, n: int = 1, phase: Optional[str] = None) -> None:
        """Account for ``n`` materialised nodes; may raise."""
        self.nodes_used += n
        if self.max_nodes is not None and self.nodes_used > self.max_nodes:
            raise SpaceBudgetExceeded(
                f"node budget exhausted (limit {self.max_nodes}"
                + (f", phase {phase!r})" if phase else ")"),
                resource="nodes",
                limit=self.max_nodes,
                used=self.nodes_used,
            )
        self._charge(n)

    def charge_expansions(self, n: int = 1, phase: Optional[str] = None) -> None:
        """Account for ``n`` iterations/expansions; may raise."""
        self.expansions_used += n
        if (
            self.max_expansions is not None
            and self.expansions_used > self.max_expansions
        ):
            raise IterationBudgetExceeded(
                f"expansion budget exhausted (limit {self.max_expansions}"
                + (f", phase {phase!r})" if phase else ")"),
                resource="expansions",
                limit=self.max_expansions,
                used=self.expansions_used,
            )
        self._charge(n)

    # ------------------------------------------------------------------
    # Progress and fault hooks
    # ------------------------------------------------------------------
    def progress(self, phase: str, **info: object) -> None:
        """Report a progress event to the ``on_progress`` callback."""
        if self.on_progress is not None:
            self.start()
            self.on_progress(ProgressEvent(phase, self.elapsed(), dict(info)))

    def install_fault(self, fault: object) -> "Budget":
        """Attach a fault (see :mod:`repro.runtime.faults`); returns self."""
        self._faults.append(fault)
        return self


__all__ = [
    "Budget",
    "BudgetExceeded",
    "TimeBudgetExceeded",
    "SpaceBudgetExceeded",
    "IterationBudgetExceeded",
    "CancellationToken",
    "OperationCancelled",
    "ProgressEvent",
]
