"""Crash-safe checkpoint/resume for long-running miners.

A levelwise miner killed mid-pass in the low-support blow-up regime
should resume from its last completed pass instead of recomputing hours
of work.  The pieces here make that safe against the two classic
failure modes of naive "pickle to a file" checkpointing — torn writes
and silent corruption:

* :class:`CheckpointStore` persists numbered snapshots with an atomic
  write-temp → fsync → rename protocol, a versioned header and a
  SHA-256 payload checksum, and rotates old snapshots so at most
  ``keep`` of them exist.  Loading verifies the header and checksum;
  a torn, truncated, bit-flipped or stale-format file raises
  :class:`CheckpointCorrupted`, and :meth:`CheckpointStore.load_latest`
  falls back to the newest snapshot that still verifies.
* :class:`Checkpointer` is the thin policy layer algorithms actually
  talk to: :meth:`Checkpointer.mark` is called at every pass/level/
  iteration boundary with the full resumable state, persists every
  ``every``-th boundary, and :meth:`Checkpointer.flush` (called from the
  algorithms' exhaustion/exception paths) persists the newest marked
  state so budget exhaustion always leaves a final checkpoint behind.
* Snapshots are stamped with the producing algorithm's *key* — its name
  and result-determining parameters — and resuming verifies the key, so
  a checkpoint from a different dataset, threshold or algorithm raises
  :class:`CheckpointMismatch` instead of silently blending two runs.

The contract every snapshottable algorithm honours (property-tested in
``tests/runtime/test_resume_equivalence.py``): a run killed at an
arbitrary budget checkpoint and resumed from its newest snapshot
returns results identical to an uninterrupted run, and passing
``checkpoint=None`` (the default everywhere) is byte-identical to a
build without checkpointing.
"""

from __future__ import annotations

import hashlib
import pickle
import re
import struct
from pathlib import Path
from typing import Any, Dict, List, Optional, Protocol, Tuple, runtime_checkable

from ..core.base import check_in_range
from ..core.exceptions import ReproError
from .faults import TransientFault
from .fsio import atomic_write_bytes

#: magic + format version; bumping the version invalidates old snapshots.
MAGIC = b"RPCKPT01"

#: header layout: magic, 8-byte big-endian payload length, SHA-256 digest.
_HEADER = struct.Struct(">8sQ32s")

_SNAPSHOT_RE = re.compile(r"^(?P<prefix>.+)-(?P<seq>\d{8})\.ckpt$")


class CheckpointCorrupted(ReproError, RuntimeError):
    """A snapshot file is torn, truncated, bit-flipped or stale-format.

    Attributes
    ----------
    path:
        The offending file (``None`` when every candidate failed).
    """

    def __init__(self, message: str, path: Optional[Path] = None):
        super().__init__(message)
        self.path = path


class CheckpointMismatch(ReproError, RuntimeError):
    """A snapshot was produced by a different algorithm/parameter key."""


class CheckpointWriteError(TransientFault):
    """Persisting a snapshot failed at the filesystem (ENOSPC, EIO...).

    A :class:`~repro.runtime.faults.TransientFault`: a full or flaky
    disk is expected to clear, so a
    :class:`~repro.runtime.retry.RetryPolicy` retries the run — and
    because the atomic protocol never touches existing snapshots on a
    failed save, every previously persisted snapshot is still valid to
    resume from.  ``path`` is the snapshot that could not be written.
    """

    def __init__(self, message: str, path: Optional[Path] = None):
        super().__init__(message)
        self.path = path


@runtime_checkable
class Snapshottable(Protocol):
    """Protocol for estimators that expose pass-boundary state.

    Functional miners satisfy the same contract through their
    ``checkpoint=`` parameter; clusterers implement these two methods so
    generic harnesses can capture and restore them mid-optimisation.
    """

    def snapshot_state(self) -> Dict[str, Any]:
        """Resumable state at the last completed boundary."""
        ...  # pragma: no cover - protocol

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`snapshot_state`."""
        ...  # pragma: no cover - protocol


def _encode(payload: Dict[str, Any]) -> bytes:
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(MAGIC, len(body), hashlib.sha256(body).digest()) + body


def _decode(raw: bytes, path: Optional[Path] = None) -> Dict[str, Any]:
    if len(raw) < _HEADER.size:
        raise CheckpointCorrupted(
            f"checkpoint shorter than its header ({len(raw)} bytes): {path}",
            path,
        )
    magic, length, digest = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise CheckpointCorrupted(
            f"unrecognised checkpoint header {magic!r} "
            f"(expected {MAGIC!r}): {path}",
            path,
        )
    body = raw[_HEADER.size:]
    if len(body) != length:
        raise CheckpointCorrupted(
            f"truncated checkpoint: header promises {length} payload bytes, "
            f"found {len(body)}: {path}",
            path,
        )
    if hashlib.sha256(body).digest() != digest:
        raise CheckpointCorrupted(f"checkpoint checksum mismatch: {path}", path)
    try:
        return pickle.loads(body)
    except Exception as exc:  # pickle raises many concrete types
        raise CheckpointCorrupted(
            f"checkpoint payload does not unpickle ({exc}): {path}", path
        ) from exc


class CheckpointStore:
    """Versioned, checksummed snapshot files with N-snapshot rotation.

    Parameters
    ----------
    directory:
        Where snapshots live; created on first save.
    prefix:
        Filename prefix — snapshots are ``{prefix}-{seq:08d}.ckpt``.
    keep:
        How many snapshots to retain; older ones are deleted after each
        successful save.  Keeping more than one is what makes fallback
        from a corrupted newest snapshot possible.

    Examples
    --------
    >>> import tempfile
    >>> store = CheckpointStore(tempfile.mkdtemp(), keep=2)
    >>> store.save({"state": {"k": 3}})  # doctest: +ELLIPSIS
    PosixPath('...-00000001.ckpt')
    >>> store.load_latest()["state"]
    {'k': 3}
    """

    def __init__(self, directory, prefix: str = "snapshot", keep: int = 3):
        check_in_range("keep", keep, 1, None)
        if not prefix or "/" in prefix:
            from ..core.exceptions import ValidationError

            raise ValidationError(f"invalid snapshot prefix {prefix!r}")
        self.directory = Path(directory)
        self.prefix = prefix
        self.keep = int(keep)

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def snapshots(self) -> List[Tuple[int, Path]]:
        """(seq, path) pairs of existing snapshots, oldest first."""
        if not self.directory.is_dir():
            return []
        found = []
        for entry in self.directory.iterdir():
            match = _SNAPSHOT_RE.match(entry.name)
            if match and match.group("prefix") == self.prefix:
                found.append((int(match.group("seq")), entry))
        return sorted(found)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(self, payload: Dict[str, Any]) -> Path:
        """Atomically persist ``payload`` as the next numbered snapshot.

        The bytes are written to a temp file in the same directory,
        fsync'd, then renamed into place (atomic on POSIX), and the
        directory entry is fsync'd — a crash at any point leaves either
        the previous snapshots intact or the new one complete, never a
        half-written file under the final name.  A filesystem failure
        (full disk, I/O error) raises :class:`CheckpointWriteError` —
        retryable, with every prior snapshot untouched.
        """
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            existing = self.snapshots()
            seq = existing[-1][0] + 1 if existing else 1
            final = self.directory / f"{self.prefix}-{seq:08d}.ckpt"
            atomic_write_bytes(final, _encode(payload))
        except OSError as exc:
            raise CheckpointWriteError(
                f"cannot persist checkpoint in {self.directory}: {exc}",
                path=getattr(exc, "filename", None),
            ) from exc
        self._rotate()
        return final

    def _rotate(self) -> None:
        snapshots = self.snapshots()
        for _, path in snapshots[: max(0, len(snapshots) - self.keep)]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass

    def clear(self) -> int:
        """Delete every snapshot (and stray temp file) of this prefix.

        Called on successful completion so long runs — a chaos harness
        SIGKILLing the same job dozens of times, a supervised fleet
        churning through retries — do not leak snapshot files onto disk.
        Returns the number of files removed.
        """
        removed = 0
        for _, path in self.snapshots():
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        if self.directory.is_dir():
            for entry in self.directory.glob(f".{self.prefix}-*.ckpt.tmp"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
        return removed

    def latest_seq(self) -> Optional[int]:
        """Sequence number of the newest snapshot file, or ``None``.

        Purely an enumeration — the file is not verified; use
        :meth:`load_latest` to get verified contents.
        """
        snapshots = self.snapshots()
        return snapshots[-1][0] if snapshots else None

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read(self, path) -> Dict[str, Any]:
        """Decode one snapshot file; raises :class:`CheckpointCorrupted`."""
        path = Path(path)
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise CheckpointCorrupted(
                f"cannot read checkpoint {path}: {exc}", path
            ) from exc
        return _decode(raw, path)

    def load_latest(self) -> Optional[Dict[str, Any]]:
        """Newest snapshot that verifies, or ``None`` when none exist.

        Corrupted snapshots are skipped newest-to-oldest; if every
        existing snapshot fails verification the corruption is not
        silently ignored — :class:`CheckpointCorrupted` propagates with
        the details of the newest failure.
        """
        snapshots = self.snapshots()
        if not snapshots:
            return None
        first_error: Optional[CheckpointCorrupted] = None
        for _, path in reversed(snapshots):
            try:
                return self.read(path)
            except CheckpointCorrupted as exc:
                if first_error is None:
                    first_error = exc
        raise CheckpointCorrupted(
            f"all {len(snapshots)} snapshots in {self.directory} are "
            f"corrupted (newest failure: {first_error})",
        )


class Checkpointer:
    """Boundary-marking policy over a :class:`CheckpointStore`.

    Algorithms call :meth:`mark` at every completed pass/level/iteration
    boundary with their full resumable state; every ``every``-th mark is
    persisted, and :meth:`flush` persists the newest state regardless —
    the algorithms' budget-exhaustion and error paths call it so an
    interrupted run always leaves its last completed boundary on disk.

    Parameters
    ----------
    store:
        The backing store (or a directory path, for convenience).
    every:
        Persist one snapshot per this many boundary marks.  ``1`` (the
        default) checkpoints every boundary; larger values trade
        resume granularity for write volume.
    resume:
        When True, :meth:`resume` returns the state of the newest valid
        snapshot (verifying its key); when False it returns ``None`` and
        the algorithm starts from scratch.
    """

    def __init__(self, store, every: int = 1, resume: bool = False):
        check_in_range("every", every, 1, None)
        if not isinstance(store, CheckpointStore):
            store = CheckpointStore(store)
        self.store = store
        self.every = int(every)
        self.resume_requested = bool(resume)
        self._marks = 0
        self._latest: Optional[Dict[str, Any]] = None
        self._dirty = False

    def resume(self, key: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """State of the newest valid snapshot, verified against ``key``.

        Returns ``None`` when resuming was not requested or no snapshot
        exists.  A snapshot whose key differs raises
        :class:`CheckpointMismatch` — resuming an apriori run from a
        kmeans snapshot (or the same miner at a different threshold)
        would silently corrupt results.
        """
        if not self.resume_requested:
            return None
        payload = self.store.load_latest()
        if payload is None:
            return None
        if payload.get("key") != key:
            raise CheckpointMismatch(
                f"checkpoint key mismatch: snapshot was written by "
                f"{payload.get('key')!r}, this run is {key!r}"
            )
        return payload["state"]

    def mark(self, key: Dict[str, Any], state: Dict[str, Any]) -> None:
        """Record ``state`` at a completed boundary (maybe persisting)."""
        self._latest = {"key": key, "state": state}
        self._dirty = True
        self._marks += 1
        if self._marks % self.every == 0:
            self._persist()

    def flush(self) -> None:
        """Persist the newest marked state if it is not on disk yet."""
        if self._dirty:
            self._persist()

    def _persist(self) -> None:
        if self._latest is not None:
            self.store.save(self._latest)
            self._dirty = False

    def complete(self) -> int:
        """Declare the run finished and delete its snapshots.

        The inverse of :meth:`flush`: once a run has produced its final
        result the snapshots have served their purpose, so harnesses
        that own the whole lifecycle (the supervisor, batch drivers)
        call this to leave the checkpoint directory clean.  Algorithms
        never call it themselves — a bare library run keeps its final
        snapshot so idempotent restarts stay cheap.
        """
        self._latest = None
        self._dirty = False
        return self.store.clear()


__all__ = [
    "MAGIC",
    "CheckpointCorrupted",
    "CheckpointMismatch",
    "CheckpointStore",
    "CheckpointWriteError",
    "Checkpointer",
    "Snapshottable",
]
