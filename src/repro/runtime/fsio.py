"""The injectable filesystem seam under every atomic write.

Three storage planes share one durability protocol — write-temp →
fsync → rename → directory fsync: the job store's ``job.json`` /
``result.json`` records, the checkpoint store's snapshots, and the
fork-result transport files.  Before this module each plane carried its
own copy of the protocol, which left no single place to inject the disk
faults the robustness tests need (ENOSPC, EIO, a rename that never
lands, an fsync the device lies about).

:func:`atomic_write_bytes` is now that single place.  A fault injector
(:class:`~repro.runtime.faults.DiskGremlin`, or anything with an
``on_op(op, path)`` method) installed via :func:`install_injector` is
consulted at every stage of every atomic write in the process —
*including* forked children, which inherit the installed injector
through the fork.  Production runs never install one, and the seam then
costs a single ``is None`` check per stage.

The stages, in protocol order (the ``op`` strings an injector sees):

* ``"write"``  — before the temp file is opened/written;
* ``"fsync"``  — before the temp file's ``fsync``;
* ``"replace"``— before the atomic rename onto the final name;
* ``"fsync-dir"`` — before the containing directory's ``fsync``.

:func:`append_bytes` is the second, smaller plane: append-only logs
(the job server's per-job ``events.jsonl``) grow by whole records
through it.  It carries its own single ``"append"`` stage — an injected
fault fires before anything is written, so the log keeps exactly the
records it had.

A fault raised at any stage leaves the final path untouched (the old
contents, or nothing, are still there — that is the point of the
protocol).  The half-written temp file is removed best-effort unless
the injected exception carries ``repro_leave_tmp = True``, which
simulates a power-cut between write and rename: the torn temp file
stays on disk for the recovery sweeps to find, exactly like a real
crash would leave it.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Protocol, Union, runtime_checkable


@runtime_checkable
class FaultInjector(Protocol):
    """Anything that wants a veto over atomic-write stages."""

    def on_op(self, op: str, path: str) -> None:
        """Called before each stage; raise ``OSError`` to inject."""
        ...  # pragma: no cover - protocol


#: the process-wide injector; ``None`` in every production run.
_INJECTOR: Optional[FaultInjector] = None


def install_injector(injector: FaultInjector) -> FaultInjector:
    """Install a process-wide disk-fault injector (returns it).

    Forked children inherit the installation; tests pair this with
    :func:`clear_injector` in a ``finally`` (or use :class:`injected`).
    """
    global _INJECTOR
    _INJECTOR = injector
    return injector


def clear_injector() -> None:
    """Remove the installed injector (idempotent)."""
    global _INJECTOR
    _INJECTOR = None


def current_injector() -> Optional[FaultInjector]:
    return _INJECTOR


class injected:
    """Context manager: install an injector for the ``with`` body only.

    >>> from repro.runtime.faults import DiskGremlin
    >>> with injected(DiskGremlin(op="write", after=0)):
    ...     pass  # every atomic write in here hits the gremlin
    """

    def __init__(self, injector: FaultInjector):
        self.injector = injector

    def __enter__(self) -> FaultInjector:
        return install_injector(self.injector)

    def __exit__(self, *exc_info) -> None:
        clear_injector()


def _hook(op: str, path: Path) -> None:
    if _INJECTOR is not None:
        _INJECTOR.on_op(op, str(path))


def fsync_directory(directory: Union[str, Path]) -> None:
    """Flush a directory entry; best-effort on platforms that refuse."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-specific
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: Union[str, Path],
    data: bytes,
    tmp_name: Optional[str] = None,
    fsync_dir: bool = True,
) -> None:
    """Write ``data`` to ``path`` with the full durability protocol.

    ``tmp_name`` overrides the temp file's name within the same
    directory (default ``.{name}.tmp``) so callers keep their historic
    torn-file patterns and the recovery sweeps keep matching them.  On
    any failure the final path is untouched; the temp half is removed
    unless the exception asks to be left torn (``repro_leave_tmp``).
    """
    path = Path(path)
    tmp = path.parent / (tmp_name if tmp_name else f".{path.name}.tmp")
    try:
        _hook("write", tmp)
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            _hook("fsync", tmp)
            os.fsync(handle.fileno())
        _hook("replace", path)
        os.replace(tmp, path)
    except BaseException as exc:
        if not getattr(exc, "repro_leave_tmp", False):
            try:
                tmp.unlink()
            except OSError:
                pass
        raise
    if fsync_dir:
        # The hook sees the *file* being made durable, not the directory
        # — injectors match on the record they want to fail.
        _hook("fsync-dir", path)
        fsync_directory(path.parent)


def append_bytes(
    path: Union[str, Path],
    data: bytes,
    fsync_file: bool = True,
) -> None:
    """Append ``data`` to ``path`` (created if missing) and fsync it.

    The append-only sibling of :func:`atomic_write_bytes`, used for
    event logs that grow one record at a time.  The injector seam sees
    one ``"append"`` stage per call, consulted *before* the file is
    opened — an injected ENOSPC/EIO leaves the log exactly as it was.
    A process killed between the kernel write and the fsync can still
    leave a torn final record; readers own that case (they treat the
    first unparsable line as the end of the log) and writers truncate
    the tear before extending.
    """
    path = Path(path)
    _hook("append", path)
    with open(path, "ab") as handle:
        handle.write(data)
        handle.flush()
        if fsync_file:
            os.fsync(handle.fileno())


__all__ = [
    "FaultInjector",
    "append_bytes",
    "atomic_write_bytes",
    "clear_injector",
    "current_injector",
    "fsync_directory",
    "injected",
    "install_injector",
]
